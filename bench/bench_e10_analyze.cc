// E10 — Static admission analysis throughput.
//
// Admission analysis sits on the agent-arrival path: every CODE folder is
// verified before its first activation at a site (ISSUE: TACL agent
// verifier).  These benchmarks size the cost per script and the sustained
// throughput in MB/s so the admission knob can be priced against the
// activation costs in E9.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "tacl/analyze.h"

namespace tacoma::tacl {
namespace {

// A synthetic agent script exercising every analyzer pass: proc definitions,
// nested bodies, expr strings, substitutions, and capability commands.
std::string MakeScript(int blocks) {
  std::string script =
      "proc classify {n} {\n"
      "  if {$n < 4} { return short }\n"
      "  if {$n < 8} { return medium }\n"
      "  return long\n"
      "}\n";
  for (int i = 0; i < blocks; ++i) {
    std::string v = "v" + std::to_string(i);
    script += "set " + v + " [expr {" + std::to_string(i) + " % 7}]\n";
    script += "if {$" + v + " > 3} {\n";
    script += "  bc_put RESULT [classify $" + v + "]\n";
    script += "} else {\n";
    script += "  foreach w [split \"a bb ccc\"] { bc_push LOG $w }\n";
    script += "}\n";
  }
  script += "jump next_site\n";
  return script;
}

AnalyzerOptions AgentOptions() {
  AnalyzerOptions options;
  options.signatures = BuiltinCommandSignatures();
  options.known_commands.insert("bc_put");
  options.known_commands.insert("bc_push");
  options.known_commands.insert("jump");
  return options;
}

void BM_AnalyzeThroughput(benchmark::State& state) {
  std::string script = MakeScript(static_cast<int>(state.range(0)));
  AnalyzerOptions options = AgentOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Analyze(script, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(script.size()));
}
BENCHMARK(BM_AnalyzeThroughput)->Arg(10)->Arg(100)->Arg(1000);

void BM_AnalyzeSmallAgent(benchmark::State& state) {
  // A realistic courier agent, roughly the size of the shipped examples:
  // this is the per-arrival admission cost when the cache misses.
  std::string script =
      "if {[bc_len ITINERARY] == 0} {\n"
      "  log \"done at [site]\"\n"
      "  return\n"
      "}\n"
      "foreach s [cab_list field SAMPLES] { bc_put RESULT $s }\n"
      "set next [bc_pop ITINERARY]\n"
      "jump $next\n";
  AnalyzerOptions options = AgentOptions();
  options.known_commands.insert("bc_len");
  options.known_commands.insert("bc_pop");
  options.known_commands.insert("cab_list");
  options.known_commands.insert("log");
  options.known_commands.insert("site");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Analyze(script, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(script.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AnalyzeSmallAgent);

void BM_AnalyzeParseErrorPath(benchmark::State& state) {
  // Malformed input must fail fast: the analyzer stops at the first parse
  // error instead of scanning the remainder.
  std::string script = MakeScript(50) + "set broken {unclosed\n";
  AnalyzerOptions options = AgentOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Analyze(script, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(script.size()));
}
BENCHMARK(BM_AnalyzeParseErrorPath);

void BM_AnalyzeDeepNesting(benchmark::State& state) {
  // Each nesting level re-parses its braced body; this prices the recursion.
  int depth = static_cast<int>(state.range(0));
  std::string script;
  for (int i = 0; i < depth; ++i) {
    script += "if {1} {\n";
  }
  script += "set x 1\n";
  for (int i = 0; i < depth; ++i) {
    script += "}\n";
  }
  AnalyzerOptions options = AgentOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Analyze(script, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(script.size()));
}
BENCHMARK(BM_AnalyzeDeepNesting)->Arg(8)->Arg(32);

// The shipped example agents, the workload the admission-path numbers are
// quoted over.
std::vector<std::string> LoadExampleScripts() {
  std::vector<std::string> scripts;
  const std::filesystem::path dir =
      std::filesystem::path(TACOMA_SOURCE_DIR) / "examples" / "agents";
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".tacl") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    scripts.push_back(buffer.str());
  }
  return scripts;
}

void BM_AdmissionColdAnalyze(benchmark::State& state) {
  // Full admission cost on a cache miss: build the analysis interpreter and
  // run the effect-inference pass, per example script.
  Kernel kernel;
  SiteId site = kernel.AddSite("bench");
  std::vector<std::string> scripts = LoadExampleScripts();
  for (auto _ : state) {
    for (const std::string& script : scripts) {
      benchmark::DoNotOptimize(kernel.place(site)->AnalyzeAgentCode(script));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(scripts.size()));
}
BENCHMARK(BM_AdmissionColdAnalyze);

void BM_AdmissionCacheHit(benchmark::State& state) {
  // Admission for a digest the kernel has already analyzed: SHA-256 + cache
  // lookup + policy evaluation, no parsing, no interpreter construction.
  Kernel kernel;
  SiteId site = kernel.AddSite("bench");
  std::vector<std::string> scripts = LoadExampleScripts();
  for (const std::string& script : scripts) {
    (void)kernel.place(site)->CheckAdmission(script);  // Warm the cache.
  }
  for (auto _ : state) {
    for (const std::string& script : scripts) {
      benchmark::DoNotOptimize(kernel.place(site)->CheckAdmission(script));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(scripts.size()));
}
BENCHMARK(BM_AdmissionCacheHit);

// --- Smoke mode ---------------------------------------------------------------
//
// ci/check.sh runs `bench_e10_analyze --smoke` as an acceptance gate:
//   1. cache-hit admission must be ≥10× faster than cold analysis over the
//      example scripts;
//   2. an enforce-mode policy table denying exfiltration-risk must bounce an
//      adversarial agent at admission, with the dead-letter return observed
//      at the origin site.

int RunSmoke() {
  using Clock = std::chrono::steady_clock;

  // 1: cold vs cache-hit admission ratio.
  {
    Kernel kernel;
    SiteId site = kernel.AddSite("bench");
    std::vector<std::string> scripts = LoadExampleScripts();
    if (scripts.empty()) {
      std::printf("SMOKE FAIL: no example scripts found\n");
      return 1;
    }
    constexpr int kRounds = 50;
    auto cold_start = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      for (const std::string& script : scripts) {
        benchmark::DoNotOptimize(kernel.place(site)->AnalyzeAgentCode(script));
      }
    }
    auto cold_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - cold_start)
                       .count();
    for (const std::string& script : scripts) {
      (void)kernel.place(site)->CheckAdmission(script);  // Warm the cache.
    }
    auto hit_start = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      for (const std::string& script : scripts) {
        benchmark::DoNotOptimize(kernel.place(site)->CheckAdmission(script));
      }
    }
    auto hit_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - hit_start)
                      .count();
    double ratio = hit_us > 0 ? static_cast<double>(cold_us) / hit_us : 1e9;
    std::printf("admission over %zu scripts x %d rounds: cold %lld us, "
                "cache-hit %lld us, ratio %.1fx\n",
                scripts.size(), kRounds, static_cast<long long>(cold_us),
                static_cast<long long>(hit_us), ratio);
    if (ratio < 10.0) {
      std::printf("SMOKE FAIL: cache-hit admission is not >=10x faster\n");
      return 1;
    }
  }

  // 2: policy rejection with a dead-letter return.
  {
    KernelOptions options;
    options.reliability.mode = Reliability::kReliable;
    Kernel kernel(options);
    SiteId origin = kernel.AddSite("origin");
    SiteId target = kernel.AddSite("target");
    kernel.net().AddLink(origin, target);

    auto rules = AdmissionRules::Parse(
        "mode enforce\n"
        "deny errors\n"
        "deny slug exfiltration-risk\n");
    if (!rules.ok()) {
      std::printf("SMOKE FAIL: policy parse: %s\n",
                  rules.status().message().c_str());
      return 1;
    }
    kernel.place(target)->set_admission_rules(*rules);

    std::string dead_letter_reason;
    kernel.place(origin)->RegisterAgent(
        "morgue", [&dead_letter_reason](Place&, Briefcase& bc) {
          dead_letter_reason = bc.GetString("DEADLETTER_REASON").value_or("?");
          return OkStatus();
        });

    // The adversary reads a SECRET folder and moves to the host it names.
    Briefcase bc;
    bc.folder(kCodeFolder).PushBackString(
        "set dest [bc_get SECRET_ROUTE]\n"
        "move $dest\n");
    bc.SetString("SECRET_ROUTE", "elsewhere");
    TransferOptions transfer;
    transfer.dead_letter = "morgue";
    Status sent = kernel.TransferAgent(origin, target, "ag_tacl", bc, transfer);
    if (!sent.ok()) {
      std::printf("SMOKE FAIL: transfer refused: %s\n", sent.ToString().c_str());
      return 1;
    }
    kernel.sim().Run();

    const auto& stats = kernel.place(target)->stats();
    std::printf("policy rejection: rejected_agents=%llu dead_letter=\"%s\"\n",
                static_cast<unsigned long long>(stats.rejected_agents),
                dead_letter_reason.c_str());
    if (stats.rejected_agents != 1) {
      std::printf("SMOKE FAIL: adversarial agent was not rejected at admission\n");
      return 1;
    }
    if (dead_letter_reason.empty()) {
      std::printf("SMOKE FAIL: no dead-letter return observed at origin\n");
      return 1;
    }
  }

  std::printf("SMOKE OK\n");
  return 0;
}

}  // namespace
}  // namespace tacoma::tacl

int main(int argc, char** argv) {
  std::printf(
      "E10 — static admission analysis throughput (CODE folders are verified\n"
      "before activation; this prices the check against E9 activation costs)\n\n");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return tacoma::tacl::RunSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
