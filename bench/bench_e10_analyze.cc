// E10 — Static admission analysis throughput.
//
// Admission analysis sits on the agent-arrival path: every CODE folder is
// verified before its first activation at a site (ISSUE: TACL agent
// verifier).  These benchmarks size the cost per script and the sustained
// throughput in MB/s so the admission knob can be priced against the
// activation costs in E9.
#include <benchmark/benchmark.h>

#include <string>

#include "tacl/analyze.h"

namespace tacoma::tacl {
namespace {

// A synthetic agent script exercising every analyzer pass: proc definitions,
// nested bodies, expr strings, substitutions, and capability commands.
std::string MakeScript(int blocks) {
  std::string script =
      "proc classify {n} {\n"
      "  if {$n < 4} { return short }\n"
      "  if {$n < 8} { return medium }\n"
      "  return long\n"
      "}\n";
  for (int i = 0; i < blocks; ++i) {
    std::string v = "v" + std::to_string(i);
    script += "set " + v + " [expr {" + std::to_string(i) + " % 7}]\n";
    script += "if {$" + v + " > 3} {\n";
    script += "  bc_put RESULT [classify $" + v + "]\n";
    script += "} else {\n";
    script += "  foreach w [split \"a bb ccc\"] { bc_push LOG $w }\n";
    script += "}\n";
  }
  script += "jump next_site\n";
  return script;
}

AnalyzerOptions AgentOptions() {
  AnalyzerOptions options;
  options.signatures = BuiltinCommandSignatures();
  options.known_commands.insert("bc_put");
  options.known_commands.insert("bc_push");
  options.known_commands.insert("jump");
  return options;
}

void BM_AnalyzeThroughput(benchmark::State& state) {
  std::string script = MakeScript(static_cast<int>(state.range(0)));
  AnalyzerOptions options = AgentOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Analyze(script, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(script.size()));
}
BENCHMARK(BM_AnalyzeThroughput)->Arg(10)->Arg(100)->Arg(1000);

void BM_AnalyzeSmallAgent(benchmark::State& state) {
  // A realistic courier agent, roughly the size of the shipped examples:
  // this is the per-arrival admission cost when the cache misses.
  std::string script =
      "if {[bc_len ITINERARY] == 0} {\n"
      "  log \"done at [site]\"\n"
      "  return\n"
      "}\n"
      "foreach s [cab_list field SAMPLES] { bc_put RESULT $s }\n"
      "set next [bc_pop ITINERARY]\n"
      "jump $next\n";
  AnalyzerOptions options = AgentOptions();
  options.known_commands.insert("bc_len");
  options.known_commands.insert("bc_pop");
  options.known_commands.insert("cab_list");
  options.known_commands.insert("log");
  options.known_commands.insert("site");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Analyze(script, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(script.size()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AnalyzeSmallAgent);

void BM_AnalyzeParseErrorPath(benchmark::State& state) {
  // Malformed input must fail fast: the analyzer stops at the first parse
  // error instead of scanning the remainder.
  std::string script = MakeScript(50) + "set broken {unclosed\n";
  AnalyzerOptions options = AgentOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Analyze(script, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(script.size()));
}
BENCHMARK(BM_AnalyzeParseErrorPath);

void BM_AnalyzeDeepNesting(benchmark::State& state) {
  // Each nesting level re-parses its braced body; this prices the recursion.
  int depth = static_cast<int>(state.range(0));
  std::string script;
  for (int i = 0; i < depth; ++i) {
    script += "if {1} {\n";
  }
  script += "set x 1\n";
  for (int i = 0; i < depth; ++i) {
    script += "}\n";
  }
  AnalyzerOptions options = AgentOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Analyze(script, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(script.size()));
}
BENCHMARK(BM_AnalyzeDeepNesting)->Arg(8)->Arg(32);

}  // namespace
}  // namespace tacoma::tacl

int main(int argc, char** argv) {
  std::printf(
      "E10 — static admission analysis throughput (CODE folders are verified\n"
      "before activation; this prices the check against E9 activation costs)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
