// E11 — Reliable agent transport: delivery under loss, and what it costs.
//
// The paper's failure story (§5) is blunt: "the agent has vanished ... the
// simplest scheme is to return an exception to the agent's owner."  This
// experiment quantifies the alternative the kernel now offers — end-to-end
// ack/retry/backoff with receiver-side duplicate suppression and dead-letter
// returns — against fire-and-forget, across per-link loss rates:
//
//   1. Delivery sweep: success rate, duplicate activations, retries, latency
//      and bytes per transfer for off / at-most-once / reliable at loss
//      rates 0..30%.
//   2. Failure-free overhead: what the acks and ids cost when nothing fails.
//   3. Guard x transport ablation (E8 tie-in): itinerary completion with
//      rear guards riding fire-and-forget vs reliable transport.
#include <cstring>
#include <map>

#include "bench/bench_util.h"
#include "ft/rearguard.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

struct SweepOutcome {
  int sent = 0;
  int unique_activations = 0;
  int duplicate_activations = 0;
  Kernel::Stats stats;
  NetworkStats net;
  std::vector<SimTime> latencies;  // Send -> first activation, per token.
  std::string metrics_json;        // Unified registry snapshot at quiesce.
};

// kTransfers uniquely-tokened transfers across a 3-site line (2 lossy hops),
// paced far apart so transfers don't queue behind one another.
SweepOutcome RunSweep(Reliability mode, double loss, uint64_t seed) {
  constexpr int kTransfers = 200;
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = mode;
  Kernel kernel(options);
  auto sites = BuildLine(&kernel.net(), 3);
  kernel.AdoptNetworkSites();
  kernel.net().SetLinkLoss(sites[0], sites[1], loss);
  kernel.net().SetLinkLoss(sites[1], sites[2], loss);

  SweepOutcome outcome;
  std::map<std::string, int> activations;
  std::map<std::string, SimTime> sent_at;
  kernel.place(sites[2])->RegisterAgent(
      "sink", [&](Place&, Briefcase& bc) {
        std::string token = bc.GetString("TOKEN").value_or("?");
        if (++activations[token] == 1) {
          outcome.latencies.push_back(kernel.sim().Now() - sent_at[token]);
        }
        return OkStatus();
      });

  for (int i = 0; i < kTransfers; ++i) {
    SimTime when = static_cast<SimTime>(i) * 20 * kMillisecond;
    kernel.sim().At(when, [&kernel, &sites, &sent_at, &outcome, i] {
      std::string token = "t" + std::to_string(i);
      sent_at[token] = kernel.sim().Now();
      Briefcase bc;
      bc.SetString("TOKEN", token);
      if (kernel.TransferAgent(sites[0], sites[2], "sink", bc).ok()) {
        ++outcome.sent;
      }
    });
  }
  kernel.sim().Run();

  for (const auto& [token, count] : activations) {
    ++outcome.unique_activations;
    outcome.duplicate_activations += count - 1;
  }
  outcome.stats = kernel.stats();
  outcome.net = kernel.net().stats();
  outcome.metrics_json = kernel.metrics().JsonSnapshot();
  return outcome;
}

// Metrics snapshot of the most interesting sweep run (reliable, highest
// loss), exported for the CI smoke check.
std::string g_sweep_metrics_json;

void DeliverySweep(bool smoke) {
  bench::Table table({"loss/link", "mode", "delivered", "dup acts", "retries",
                      "mean lat (ms)", "p99 lat (ms)", "bytes/transfer"});
  std::vector<double> losses = smoke ? std::vector<double>{0.0, 0.10}
                                     : std::vector<double>{0.0, 0.05, 0.10,
                                                           0.20, 0.30};
  for (double loss : losses) {
    for (Reliability mode :
         {Reliability::kOff, Reliability::kAtMostOnce, Reliability::kReliable}) {
      SweepOutcome out = RunSweep(mode, loss, 42);
      if (mode == Reliability::kReliable) {
        g_sweep_metrics_json = out.metrics_json;
      }
      table.AddRow(
          {bench::Fmt("%.0f%%", loss * 100), ToString(mode),
           bench::Fmt("%d/%d (%.1f%%)", out.unique_activations, out.sent,
                      100.0 * out.unique_activations / out.sent),
           bench::Fmt("%d", out.duplicate_activations),
           bench::Fmt("%llu", (unsigned long long)out.stats.retries_sent),
           out.latencies.empty()
               ? "-"
               : bench::Fmt("%.1f", bench::Mean(out.latencies) / kMillisecond),
           out.latencies.empty()
               ? "-"
               : bench::Fmt("%.1f",
                            static_cast<double>(bench::Percentile(
                                out.latencies, 99)) /
                                kMillisecond),
           bench::Fmt("%.0f", static_cast<double>(out.net.bytes_on_wire) /
                                  out.sent)});
    }
  }
  std::printf("\nDelivery sweep: 200 transfers over a 2-hop line, per-link loss\n"
              "applied in both directions (DATA and ACK frames alike):\n");
  table.Print();
}

void FailureFreeOverhead() {
  bench::Table table({"mode", "bytes/transfer", "msgs on wire", "mean lat (ms)"});
  for (Reliability mode :
       {Reliability::kOff, Reliability::kAtMostOnce, Reliability::kReliable}) {
    SweepOutcome out = RunSweep(mode, 0.0, 7);
    table.AddRow({ToString(mode),
                  bench::Fmt("%.0f", static_cast<double>(out.net.bytes_on_wire) /
                                         out.sent),
                  bench::Fmt("%llu", (unsigned long long)out.net.link_traversals),
                  bench::Fmt("%.1f", bench::Mean(out.latencies) / kMillisecond)});
  }
  std::printf("\nFailure-free overhead: ids + flags ride the DATA frame; reliable\n"
              "mode adds one ACK frame per transfer (and zero latency — acks\n"
              "confirm, they do not gate activation):\n");
  table.Print();
}

// E8 tie-in: an itinerary agent guarded by ft::RearGuard walks 5 sites and
// returns home, with lossy links instead of site crashes.  Rear guards
// relaunch from checkpoints when the agent vanishes; reliable transport stops
// it from vanishing in the first place.  Both mechanisms compose.
constexpr char kGuardedAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    ft_jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE 1
    ft_retire
  }
)";

constexpr char kBareAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE 1
  }
)";

bool RunWalk(bool guarded, Reliability mode, double loss, uint64_t seed) {
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = mode;
  Kernel kernel(options);
  auto sites = BuildRing(&kernel.net(), 6);
  kernel.AdoptNetworkSites();
  auto links = kernel.net().Links();
  for (auto [a, b] : links) {
    kernel.net().SetLinkLoss(a, b, loss);
  }
  ft::RearGuard guard(&kernel, ft::GuardOptions{25 * kMillisecond, 3, 6});
  if (guarded) {
    guard.Install();
  }

  Briefcase bc;
  bc.SetString("AGENT", "walker");
  for (size_t i = 1; i < sites.size(); ++i) {
    bc.folder("ITINERARY").PushBackString(kernel.net().site_name(sites[i]));
  }
  bc.folder("ITINERARY").PushBackString(kernel.net().site_name(sites[0]));
  (void)kernel.LaunchAgent(sites[0], guarded ? kGuardedAgent : kBareAgent, bc);
  kernel.sim().RunUntil(10 * kSecond);
  return kernel.place(sites[0])->Cabinet("t").HasFolder("DONE");
}

void GuardTransportAblation(bool smoke) {
  const int kTrials = smoke ? 3 : 30;
  constexpr double kLoss = 0.25;
  bench::Table table({"agent", "transport", "completed walks"});
  struct Config {
    bool guarded;
    Reliability mode;
  };
  for (Config config : {Config{false, Reliability::kOff},
                        Config{false, Reliability::kReliable},
                        Config{true, Reliability::kOff},
                        Config{true, Reliability::kReliable}}) {
    int completed = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      completed += RunWalk(config.guarded, config.mode, kLoss,
                           5000 + static_cast<uint64_t>(trial))
                       ? 1
                       : 0;
    }
    table.AddRow({config.guarded ? "guarded (rear guards)" : "bare",
                  ToString(config.mode),
                  bench::Fmt("%d/%d", completed, kTrials)});
  }
  std::printf("\nGuard x transport ablation: 6-hop ring walk at %.0f%% per-link\n"
              "loss.  Rear guards recover from vanished agents; reliable\n"
              "transport prevents the vanishing (paper S5):\n", kLoss * 100);
  table.Print();
}

}  // namespace
}  // namespace tacoma

// Flags:
//   --smoke              trimmed sweep for CI (fewer loss rates and trials)
//   --metrics-out PATH   write the reliable-mode sweep's unified metrics
//                        registry snapshot as JSON to PATH
int main(int argc, char** argv) {
  bool smoke = false;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--metrics-out PATH]\n", argv[0]);
      return 2;
    }
  }
  tacoma::bench::PrintHeader(
      "E11 — Reliable agent transport: ack/retry/backoff + dedup + dead letters",
      "the kernel, not each agent, should own the retransmission and "
      "duplicate-suppression story for vanished agents (paper S5)");
  tacoma::DeliverySweep(smoke);
  tacoma::FailureFreeOverhead();
  tacoma::GuardTransportAblation(smoke);
  if (metrics_out != nullptr) {
    std::FILE* f = std::fopen(metrics_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out);
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"bench_e11_reliable\",\"smoke\":%s,\"metrics\":%s}\n",
                 smoke ? "true" : "false",
                 tacoma::g_sweep_metrics_json.c_str());
    std::fclose(f);
    std::printf("\nmetrics snapshot written to %s\n", metrics_out);
  }
  return 0;
}
