// E12 — Cheap-to-move migration: content-addressed CODE caching.
//
// Paper §2 demands that folders be "cheap to move", and for interpreted
// agents the CODE folder dominates the briefcase — yet it is the one part of
// a journey that never changes hop to hop.  This experiment measures what the
// kernel's content-addressed code cache (stub CODE transfers + NeedCode
// fallback, see docs/performance.md) buys:
//
//   1. k-hop itineraries: repeated walkers with identical CODE over a line,
//      bytes-on-wire and transfers/sec, cache off vs on.
//   2. Diffusion floods: the same payload flooded repeatedly over a grid.
//   3. Chaos: 20% per-link loss with reliable transport and the cache on —
//      the optimisation must not cost a single delivery.
#include <cstring>

#include "bench/bench_util.h"
#include "core/kernel.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

// Agent CODE is padded toward a realistic size (the walkers in the paper's
// prototype are whole Tcl programs, not three-liners): the itinerary logic
// plus ~40 lines of comment ballast.
std::string PaddedWalkerCode() {
  std::string code = R"(
    cab_append t VISITS [site]
    if {[bc_len ITINERARY] > 0} {
      jump [bc_pop ITINERARY]
    } else {
      cab_append t DONE 1
    }
  )";
  for (int i = 0; i < 40; ++i) {
    code += "# ballast line standing in for the rest of a real agent program\n";
  }
  return code;
}

std::string PaddedFloodCode() {
  std::string code = "cab_set t SEEN 1\n";
  for (int i = 0; i < 40; ++i) {
    code += "# ballast line standing in for the rest of a real agent program\n";
  }
  return code;
}

struct MigrationOutcome {
  int journeys = 0;
  int completed = 0;
  uint64_t bytes_on_wire = 0;
  SimTime duration = 0;
  Kernel::Stats stats;
  Kernel::CodeCacheStats code;
  uint64_t cache_hits = 0;
  std::string metrics_json;
};

// `walkers` agents with identical CODE walk a (sites-1)-hop line one after
// another.  With the cache on, walker 1 warms every hop's cache and every
// later walker ships 32-byte stubs end to end.
MigrationOutcome RunItinerary(size_t sites, int walkers, bool cache_on,
                              double loss, uint64_t seed) {
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = Reliability::kReliable;
  options.code_cache.enabled = cache_on;
  Kernel kernel(options);
  auto ids = BuildLine(&kernel.net(), sites);
  kernel.AdoptNetworkSites();
  if (loss > 0) {
    for (auto [a, b] : kernel.net().Links()) {
      kernel.net().SetLinkLoss(a, b, loss);
    }
  }

  std::string code = PaddedWalkerCode();
  for (int w = 0; w < walkers; ++w) {
    SimTime when = static_cast<SimTime>(w) * 500 * kMillisecond;
    kernel.sim().At(when, [&kernel, &ids, &code, w] {
      Briefcase bc;
      bc.SetString("AGENT", "walker" + std::to_string(w));
      for (size_t i = 1; i < ids.size(); ++i) {
        bc.folder("ITINERARY").PushBackString(kernel.net().site_name(ids[i]));
      }
      (void)kernel.LaunchAgent(ids[0], code, bc);
    });
  }
  kernel.sim().Run();

  MigrationOutcome out;
  out.journeys = walkers;
  Place* last = kernel.place(ids.back());
  if (last != nullptr && last->HasCabinet("t")) {
    out.completed = static_cast<int>(last->Cabinet("t").List("DONE").size());
  }
  out.bytes_on_wire = kernel.net().stats().bytes_on_wire;
  out.duration = kernel.sim().Now();
  out.stats = kernel.stats();
  out.code = kernel.code_cache_stats();
  for (SiteId s : ids) {
    if (Place* p = kernel.place(s)) {
      out.cache_hits += p->code_cache().stats().hits;
    }
  }
  out.metrics_json = kernel.metrics().JsonSnapshot();
  return out;
}

// `floods` sequential diffusion floods of the same payload CODE over an n x n
// grid.  Distinct MSGIDs keep diffusion's visit markers from short-circuiting
// the repeats; only the CODE bytes are redundant, which is exactly what the
// cache elides.
MigrationOutcome RunFloods(size_t side, int floods, bool cache_on, uint64_t seed) {
  KernelOptions options;
  options.seed = seed;
  options.code_cache.enabled = cache_on;
  Kernel kernel(options);
  auto ids = BuildGrid(&kernel.net(), side, side);
  kernel.AdoptNetworkSites();
  kernel.sim().set_event_limit(500'000);

  std::string code = PaddedFloodCode();
  for (int f = 0; f < floods; ++f) {
    SimTime when = static_cast<SimTime>(f) * 2 * kSecond;
    kernel.sim().At(when, [&kernel, &ids, &code, f] {
      Briefcase bc;
      bc.folder(kCodeFolder).PushBackString(code);
      bc.SetString("MSGID", "flood" + std::to_string(f));
      Place* origin = kernel.place(ids[0]);
      if (origin != nullptr) {
        (void)origin->Meet("diffusion", bc);
      }
    });
  }
  kernel.sim().Run();

  MigrationOutcome out;
  out.journeys = floods;
  out.completed = 0;
  for (SiteId s : ids) {
    Place* place = kernel.place(s);
    if (place != nullptr && place->Cabinet("t").HasFolder("SEEN")) {
      ++out.completed;  // Sites reached (by any flood).
    }
  }
  out.bytes_on_wire = kernel.net().stats().bytes_on_wire;
  out.duration = kernel.sim().Now();
  out.stats = kernel.stats();
  out.code = kernel.code_cache_stats();
  out.metrics_json = kernel.metrics().JsonSnapshot();
  return out;
}

// Metrics snapshot of the cache-on 5-hop itinerary run, exported for the CI
// smoke check (must contain the code_cache.* keys).
std::string g_metrics_json;

std::string Reduction(uint64_t off, uint64_t on) {
  if (off == 0) {
    return "-";
  }
  return bench::Fmt("%.1f%%", 100.0 * (1.0 - static_cast<double>(on) /
                                                 static_cast<double>(off)));
}

void ItinerarySweep(bool smoke) {
  const int walkers = smoke ? 4 : 10;
  std::vector<size_t> lines = smoke ? std::vector<size_t>{6}
                                    : std::vector<size_t>{3, 6, 9};
  bench::Table table({"hops", "cache", "bytes on wire", "reduction", "stubs",
                      "cache hits", "xfer/s (sim)", "completed"});
  for (size_t sites : lines) {
    MigrationOutcome off = RunItinerary(sites, walkers, false, 0.0, 42);
    MigrationOutcome on = RunItinerary(sites, walkers, true, 0.0, 42);
    if (sites == 6) {
      g_metrics_json = on.metrics_json;
    }
    for (const auto* out : {&off, &on}) {
      double secs = static_cast<double>(out->duration) / kSecond;
      table.AddRow({bench::Fmt("%zu", sites - 1), out == &off ? "off" : "on",
                    bench::Fmt("%llu", (unsigned long long)out->bytes_on_wire),
                    out == &off ? "-" : Reduction(off.bytes_on_wire, on.bytes_on_wire),
                    bench::Fmt("%llu", (unsigned long long)out->code.stub_sends),
                    bench::Fmt("%llu", (unsigned long long)out->cache_hits),
                    secs > 0 ? bench::Fmt("%.1f", out->stats.transfers_delivered / secs)
                             : "-",
                    bench::Fmt("%d/%d", out->completed, out->journeys)});
    }
  }
  std::printf("\nItinerary sweep: %d sequential walkers with identical CODE walk\n"
              "a k-hop line (reliable transport, no loss).  Walker 1 warms every\n"
              "cache; later walkers ship 32-byte CODE stubs end to end:\n", walkers);
  table.Print();
}

void FloodSweep(bool smoke) {
  const int floods = smoke ? 3 : 5;
  const size_t side = smoke ? 3 : 4;
  MigrationOutcome off = RunFloods(side, floods, false, 7);
  MigrationOutcome on = RunFloods(side, floods, true, 7);
  bench::Table table({"cache", "bytes on wire", "reduction", "stubs", "full sends",
                      "sites reached"});
  for (const auto* out : {&off, &on}) {
    table.AddRow({out == &off ? "off" : "on",
                  bench::Fmt("%llu", (unsigned long long)out->bytes_on_wire),
                  out == &off ? "-" : Reduction(off.bytes_on_wire, on.bytes_on_wire),
                  bench::Fmt("%llu", (unsigned long long)out->code.stub_sends),
                  bench::Fmt("%llu", (unsigned long long)out->code.full_sends),
                  bench::Fmt("%d/%zu", out->completed, side * side)});
  }
  std::printf("\nDiffusion floods: the same payload flooded %d times over a "
              "%zux%zu grid\n(distinct MSGIDs; only the CODE bytes repeat):\n",
              floods, side, side);
  table.Print();
}

void ChaosCheck(bool smoke) {
  const int walkers = smoke ? 3 : 8;
  bench::Table table({"cache", "completed", "retries", "need_code", "full resends",
                      "bytes on wire"});
  bool all_delivered = true;
  for (bool cache_on : {false, true}) {
    MigrationOutcome out = RunItinerary(6, walkers, cache_on, 0.20, 1995);
    all_delivered = all_delivered && out.completed == out.journeys;
    table.AddRow({cache_on ? "on" : "off",
                  bench::Fmt("%d/%d", out.completed, out.journeys),
                  bench::Fmt("%llu", (unsigned long long)out.stats.retries_sent),
                  bench::Fmt("%llu", (unsigned long long)out.code.need_code_sent),
                  bench::Fmt("%llu", (unsigned long long)out.code.full_resends),
                  bench::Fmt("%llu", (unsigned long long)out.bytes_on_wire)});
  }
  std::printf("\nChaos: 5-hop walks at 20%% per-link loss, reliable transport.\n"
              "The cache must not cost a delivery (NeedCode falls back to full\n"
              "source; retries ride the usual backoff):\n");
  table.Print();
  std::printf("delivery under chaos: %s\n", all_delivered ? "100%" : "INCOMPLETE");
}

}  // namespace
}  // namespace tacoma

// Flags:
//   --smoke              trimmed sweep for CI (fewer walkers/floods)
//   --metrics-out PATH   write the cache-on itinerary run's unified metrics
//                        registry snapshot as JSON to PATH
int main(int argc, char** argv) {
  bool smoke = false;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--metrics-out PATH]\n", argv[0]);
      return 2;
    }
  }
  tacoma::bench::PrintHeader(
      "E12 — Cheap-to-move migration: content-addressed CODE caching",
      "folders must be cheap to move (paper S2); an agent's CODE rarely "
      "changes hop to hop, so repeat transfers should ship a digest, not "
      "the source");
  tacoma::ItinerarySweep(smoke);
  tacoma::FloodSweep(smoke);
  tacoma::ChaosCheck(smoke);
  if (metrics_out != nullptr) {
    std::FILE* f = std::fopen(metrics_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out);
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"bench_e12_migration\",\"smoke\":%s,\"metrics\":%s}\n",
                 smoke ? "true" : "false", tacoma::g_metrics_json.c_str());
    std::fclose(f);
    std::printf("\nmetrics snapshot written to %s\n", metrics_out);
  }
  return 0;
}
