// E13 — Crash-atomic cabinet persistence.
//
// Paper §6: "file cabinets can be flushed to disk when permanence is
// required."  This experiment prices that permanence and verifies the
// machinery behind it scales the way the design claims:
//
//   1. Flush latency vs cabinet size, MemDisk vs FileDisk (real fsync-less
//      filesystem I/O): the cost of an explicit snapshot.
//   2. Write-ahead overhead per mutation: time and log bytes each mutation
//      pays for crash survival without explicit flushes.
//   3. Recovery time vs log length across compaction thresholds: the knob
//      that bounds how much log a restart must replay.
//   4. A kernel crash/recover scenario (armed disk, mid-flush crash) whose
//      unified metrics snapshot — including the storage.* keys — is exported
//      for the CI smoke check.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/cabinet.h"
#include "core/kernel.h"
#include "storage/crash_disk.h"
#include "storage/disk.h"
#include "storage/disk_log.h"

namespace tacoma {
namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
}

// A cabinet with `elements` ~64-byte entries spread over a handful of folders
// (the paper's visit lists: many small records, few folders).
void Populate(FileCabinet* cab, int elements) {
  // Strings built with += rather than `"literal" + std::to_string(...)`:
  // gcc 12's -Wrestrict misfires on the latter at -O2 (PR 105651).
  for (int i = 0; i < elements; ++i) {
    std::string value = "element-";
    value += std::to_string(i);
    value += "-padding-padding-padding-padding-padding-padding";
    std::string folder = "F";
    folder += std::to_string(i % 4);
    cab->AppendString(folder, value);
  }
}

void FlushLatency(bool smoke) {
  const int repeats = smoke ? 5 : 20;
  std::vector<int> sizes = smoke ? std::vector<int>{100, 1000}
                                 : std::vector<int>{100, 1000, 10000};
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tacoma_bench_e13";
  std::filesystem::remove_all(dir);

  bench::Table table({"elements", "disk", "snapshot bytes", "flush p50 us",
                      "flush p95 us"});
  for (int elements : sizes) {
    for (bool file_backed : {false, true}) {
      MemDisk mem;
      FileDisk file(dir.string());
      Disk* disk = file_backed ? static_cast<Disk*>(&file) : &mem;
      FileCabinet cab("bench");
      cab.AttachStorage(std::make_unique<DiskLog>(disk, "cab.bench"));
      Populate(&cab, elements);

      std::vector<double> micros;
      for (int r = 0; r < repeats; ++r) {
        // Touch one element so each flush snapshots fresh state.
        cab.AppendString("F0", "touch-" + std::to_string(r));
        Clock::time_point start = Clock::now();
        if (!cab.Flush().ok()) {
          std::fprintf(stderr, "flush failed\n");
          return;
        }
        micros.push_back(MicrosSince(start));
      }
      table.AddRow({bench::Fmt("%d", elements), file_backed ? "file" : "mem",
                    bench::Fmt("%zu", cab.Serialize().size()),
                    bench::Fmt("%.1f", bench::Percentile(micros, 50)),
                    bench::Fmt("%.1f", bench::Percentile(micros, 95))});
    }
  }
  std::printf("\nFlush latency: explicit snapshot of an n-element cabinet\n"
              "(epoch-stamped snapshot + atomic rename commit):\n");
  table.Print();
  std::filesystem::remove_all(dir);
}

void WalOverhead(bool smoke) {
  const int mutations = smoke ? 2000 : 20000;
  bench::Table table({"write-ahead", "mutations", "us/mutation",
                      "disk bytes/mutation"});
  for (bool write_ahead : {false, true}) {
    MemDisk mem;
    FileCabinet cab("bench");
    cab.AttachStorage(std::make_unique<DiskLog>(&mem, "cab.bench"), write_ahead);
    size_t bytes_before = mem.TotalBytes();
    Clock::time_point start = Clock::now();
    Populate(&cab, mutations);
    double micros = MicrosSince(start);
    table.AddRow(
        {write_ahead ? "on" : "off", bench::Fmt("%d", mutations),
         bench::Fmt("%.3f", micros / mutations),
         bench::Fmt("%.1f", static_cast<double>(mem.TotalBytes() - bytes_before) /
                                mutations)});
  }
  std::printf("\nWrite-ahead overhead: what each mutation pays for crash\n"
              "survival without explicit flushes (MemDisk):\n");
  table.Print();
}

void RecoveryVsThreshold(bool smoke) {
  const int mutations = smoke ? 2000 : 20000;
  std::vector<uint64_t> thresholds = {0, 64, 256, 1024};
  bench::Table table({"threshold", "autocompactions", "records replayed",
                      "recovery us"});
  for (uint64_t threshold : thresholds) {
    MemDisk mem;
    StorageStats stats;
    FileCabinet cab("bench");
    cab.AttachStorage(std::make_unique<DiskLog>(&mem, "cab.bench"),
                      /*write_ahead=*/true);
    cab.set_storage_stats(&stats);
    cab.set_compaction_threshold(threshold);
    Populate(&cab, mutations);

    FileCabinet recovered("bench");
    recovered.AttachStorage(std::make_unique<DiskLog>(&mem, "cab.bench"),
                            /*write_ahead=*/true);
    recovered.set_storage_stats(&stats);
    Clock::time_point start = Clock::now();
    if (!recovered.Recover().ok()) {
      std::fprintf(stderr, "recovery failed\n");
      return;
    }
    double micros = MicrosSince(start);
    table.AddRow({threshold == 0 ? "off" : bench::Fmt("%llu",
                                                      (unsigned long long)threshold),
                  bench::Fmt("%llu", (unsigned long long)stats.autocompactions),
                  bench::Fmt("%llu", (unsigned long long)stats.records_replayed),
                  bench::Fmt("%.1f", micros)});
  }
  std::printf("\nRecovery vs compaction threshold: %d write-ahead mutations,\n"
              "then a cold Recover().  The threshold bounds the log a restart\n"
              "must replay (off = the whole history):\n", mutations);
  table.Print();
}

// Metrics snapshot of the crash/recover scenario, exported for the CI smoke
// check (must contain the storage.* keys).
std::string g_metrics_json;

void CrashRecoverScenario(bool smoke) {
  const int tokens = smoke ? 50 : 500;
  KernelOptions options;
  options.seed = 13;
  options.cabinet_write_ahead = true;
  options.cabinet_compaction_threshold = 64;
  Kernel kernel(options);
  SiteId site = kernel.AddSite("s");

  for (int i = 0; i < tokens; ++i) {
    std::string token = "t";
    token += std::to_string(i);
    kernel.place(site)->Cabinet("visits").AppendString("SEEN", token);
  }
  (void)kernel.place(site)->Cabinet("visits").Flush();
  // More work, then a disk that dies mid-flush and a site crash on top.
  for (int i = 0; i < tokens; ++i) {
    std::string token = "u";
    token += std::to_string(i);
    kernel.place(site)->Cabinet("visits").AppendString("MORE", token);
  }
  kernel.ArmDiskCrash(site, /*ops_from_now=*/1, /*tear_fraction=*/0.4);
  (void)kernel.place(site)->Cabinet("visits").Flush();
  kernel.CrashSite(site);

  Clock::time_point start = Clock::now();
  kernel.RestartSite(site);
  double restart_micros = MicrosSince(start);
  size_t recovered = kernel.place(site)->Cabinet("visits").Size("SEEN") +
                     kernel.place(site)->Cabinet("visits").Size("MORE");

  g_metrics_json = kernel.metrics().JsonSnapshot();
  std::printf("\nCrash/recover scenario: %d+%d tokens, disk armed mid-flush,\n"
              "site crashed and restarted.  Recovered %zu/%d tokens in %.1f us\n"
              "(storage.recoveries=%lld, records_replayed=%lld, "
              "stale_records_dropped=%lld).\n",
              tokens, tokens, recovered, 2 * tokens, restart_micros,
              static_cast<long long>(
                  kernel.metrics().Value("storage.recoveries").value_or(0)),
              static_cast<long long>(
                  kernel.metrics().Value("storage.records_replayed").value_or(0)),
              static_cast<long long>(
                  kernel.metrics().Value("storage.stale_records_dropped")
                      .value_or(0)));
}

}  // namespace
}  // namespace tacoma

// Flags:
//   --smoke              trimmed sweep for CI (smaller cabinets, fewer repeats)
//   --metrics-out PATH   write the crash/recover scenario's unified metrics
//                        registry snapshot as JSON to PATH
int main(int argc, char** argv) {
  bool smoke = false;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--metrics-out PATH]\n", argv[0]);
      return 2;
    }
  }
  tacoma::bench::PrintHeader(
      "E13 — Crash-atomic cabinet persistence",
      "cabinets can be flushed to disk when permanence is required (paper "
      "S6); permanence must be cheap, recovery fast, and a crash at any "
      "disk operation must never corrupt or double-apply state");
  tacoma::FlushLatency(smoke);
  tacoma::WalOverhead(smoke);
  tacoma::RecoveryVsThreshold(smoke);
  tacoma::CrashRecoverScenario(smoke);
  if (metrics_out != nullptr) {
    std::FILE* f = std::fopen(metrics_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out);
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"bench_e13_persistence\",\"smoke\":%s,\"metrics\":%s}\n",
                 smoke ? "true" : "false", tacoma::g_metrics_json.c_str());
    std::fclose(f);
    std::printf("\nmetrics snapshot written to %s\n", metrics_out);
  }
  return 0;
}
