// E14 — Exactly-once agent survival: recovery latency and relaunch
// amplification under failure.
//
// The paper's §5 rear guards give at-least-once recovery; the completion
// registry (ft/registry.h) squeezes that to an exactly-once end-to-end
// contract.  This experiment quantifies what the squeeze costs and how fast
// it reacts:
//
//   1. Crash-rate sweep: resolution rate, median relaunch-to-reactivation
//      latency, and relaunch amplification (extra incarnations per launched
//      agent) as per-site crash probability rises.
//   2. Partition storms: correlated group link-cuts (plus crashes and loss
//      flaps) drive false suspicions; stale incarnations are quenched by the
//      fences while every agent still resolves exactly once.
//
// ci/check.sh runs `bench_e14_ft --smoke` as an acceptance gate: under the
// seed-1995 partition storm every agent must resolve exactly once, stale
// incarnations must have been quenched (the storm provokes them), and the
// median relaunch-to-reactivation latency must stay under 250ms.
#include <algorithm>
#include <cstring>

#include "bench/bench_util.h"
#include "ft/rearguard.h"
#include "sim/chaos.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

constexpr char kWalker[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    ft_jump [bc_pop ITINERARY]
  } else {
    ft_complete
  }
)";

struct E14Outcome {
  size_t launched = 0;
  ft::CompletionRegistry::Stats registry;
  ft::RearGuard::Stats guard;
  std::vector<SimTime> reactivation_latencies;
  bool exactly_once = false;
  std::string exactly_once_error;
  ChaosHarness::Report report;
  std::string metrics_json;
};

// Most interesting run's unified snapshot, exported for the CI smoke check.
std::string g_metrics_json;

// One-shot crashes, e8-style: each data site crashes with probability
// `crash_prob` at a random moment during the walk window and restarts 250ms
// later.  `walkers` guarded agents rotate through the mesh and report home.
E14Outcome RunCrashTrial(double crash_prob, uint64_t seed, int walkers = 6) {
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = Reliability::kReliable;
  Kernel kernel(options);
  SiteId home = kernel.AddSite("home");
  std::vector<SiteId> sites;
  for (int i = 0; i < 6; ++i) {
    sites.push_back(kernel.AddSite("d" + std::to_string(i)));
  }
  for (size_t i = 0; i < sites.size(); ++i) {
    kernel.net().AddLink(home, sites[i]);
    for (size_t j = i + 1; j < sites.size(); ++j) {
      kernel.net().AddLink(sites[i], sites[j]);
    }
  }
  ft::GuardOptions guard_options;
  guard_options.heartbeat = 25 * kMillisecond;
  guard_options.max_misses = 2;
  guard_options.max_relaunches = 6;
  guard_options.lease = 2 * kSecond;
  ft::RearGuard guard(&kernel, guard_options);
  guard.Install();

  // Crashes land inside the walk window (walkers are staggered over ~18ms, a
  // hop takes ~1ms) so they catch agents resident or in flight, like E8.
  Rng rng(seed * 7919 + 13);
  for (SiteId site : sites) {
    if (rng.Bernoulli(crash_prob)) {
      SimTime when = 1 + rng.Uniform(30 * kMillisecond);
      kernel.sim().At(when, [&kernel, site] { kernel.CrashSite(site); });
      kernel.sim().At(when + 250 * kMillisecond,
                      [&kernel, site] { kernel.RestartSite(site); });
    }
  }

  E14Outcome out;
  for (int w = 0; w < walkers; ++w) {
    kernel.sim().At(1 + static_cast<SimTime>(w) * 3 * kMillisecond,
                    [&kernel, &guard, &sites, &out, home, w] {
      Briefcase bc;
      for (size_t h = 0; h < 5; ++h) {
        bc.folder("ITINERARY").PushBackString(
            kernel.net().site_name(sites[(w + h) % sites.size()]));
      }
      bc.folder("ITINERARY").PushBackString("home");
      if (guard.LaunchGuarded(home, kWalker, std::move(bc),
                              "w" + std::to_string(w)).ok()) {
        ++out.launched;
      }
    });
  }
  kernel.sim().RunUntil(8 * kSecond);

  Status verdict = guard.registry().CheckExactlyOnce(home, /*require_resolved=*/true);
  out.exactly_once = verdict.ok();
  out.exactly_once_error = verdict.ToString();
  out.registry = guard.registry().stats();
  out.guard = guard.stats();
  out.reactivation_latencies = guard.relaunch_latencies();
  return out;
}

// Partition-mode storm: correlated bipartition cuts plus crashes and loss
// flaps over a 3x3 grid, with a dozen guarded walkers riding it out.
E14Outcome RunPartitionStorm(uint64_t seed) {
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = Reliability::kReliable;
  Kernel kernel(options);
  auto sites = BuildGrid(&kernel.net(), 3, 3);
  kernel.AdoptNetworkSites();
  const SiteId home = sites[0];
  const std::string home_name = kernel.net().site_name(home);

  ft::GuardOptions guard_options;
  guard_options.heartbeat = 30 * kMillisecond;
  guard_options.max_misses = 2;
  guard_options.max_relaunches = 5;
  guard_options.lease = 1500 * kMillisecond;
  ft::RearGuard guard(&kernel, guard_options);
  guard.Install();

  ChaosOptions chaos_options;
  chaos_options.seed = seed * 2654435761 + 9;
  chaos_options.horizon = 2 * kSecond;
  chaos_options.protected_sites = {home};
  chaos_options.mean_partition_interval = 350 * kMillisecond;
  ChaosHarness chaos(&kernel.sim(), &kernel.net(), chaos_options);
  chaos.SetSiteHooks([&kernel](SiteId s) { kernel.CrashSite(s); },
                     [&kernel](SiteId s) { kernel.RestartSite(s); });
  chaos.RegisterMetrics(&kernel.metrics());

  E14Outcome out;
  Rng workload_rng(seed * 7919 + 3);
  for (int i = 0; i < 12; ++i) {
    const SimTime when = 1 + static_cast<SimTime>(i) * 45 * kMillisecond;
    kernel.sim().At(when, [&kernel, &guard, &workload_rng, &sites, &out,
                           &home_name, home, i] {
      Briefcase bc;
      const size_t hops = 3 + workload_rng.Uniform(3);
      for (size_t h = 0; h < hops; ++h) {
        SiteId hop = sites[1 + workload_rng.Uniform(sites.size() - 1)];
        bc.folder("ITINERARY").PushBackString(kernel.net().site_name(hop));
      }
      bc.folder("ITINERARY").PushBackString(home_name);
      if (guard.LaunchGuarded(home, kWalker, std::move(bc),
                              "ag" + std::to_string(i)).ok()) {
        ++out.launched;
      }
    });
  }

  chaos.Start();
  kernel.sim().RunUntil(12 * kSecond);

  Status verdict = guard.registry().CheckExactlyOnce(home, /*require_resolved=*/true);
  out.exactly_once = verdict.ok();
  out.exactly_once_error = verdict.ToString();
  out.registry = guard.registry().stats();
  out.guard = guard.stats();
  out.reactivation_latencies = guard.relaunch_latencies();
  out.report = chaos.report();
  out.metrics_json = kernel.metrics().JsonSnapshot();
  return out;
}

SimTime Median(std::vector<SimTime> values) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

void CrashRateSweep(bool smoke) {
  const int kTrials = smoke ? 3 : 15;
  bench::Table table({"crash prob/site", "resolved", "median reactivation (ms)",
                      "relaunch amplification", "deadletters"});
  std::vector<double> probs = smoke ? std::vector<double>{0.0, 0.3}
                                    : std::vector<double>{0.0, 0.1, 0.3, 0.5,
                                                          0.7};
  for (double p : probs) {
    size_t launched = 0;
    uint64_t resolved = 0, relaunches = 0, deadletters = 0;
    std::vector<SimTime> latencies;
    for (int trial = 0; trial < kTrials; ++trial) {
      E14Outcome out = RunCrashTrial(p, 1000 + static_cast<uint64_t>(trial));
      launched += out.launched;
      resolved += out.registry.resolved;
      relaunches += out.guard.relaunches;
      deadletters += out.registry.deadletters;
      latencies.insert(latencies.end(), out.reactivation_latencies.begin(),
                       out.reactivation_latencies.end());
    }
    table.AddRow(
        {bench::Fmt("%.0f%%", p * 100),
         bench::Fmt("%llu/%zu", (unsigned long long)resolved, launched),
         latencies.empty()
             ? "-"
             : bench::Fmt("%.1f", static_cast<double>(Median(latencies)) /
                                      kMillisecond),
         bench::Fmt("%.2f", static_cast<double>(relaunches) /
                                static_cast<double>(launched)),
         bench::Fmt("%llu", (unsigned long long)deadletters)});
  }
  std::printf("\nCrash-rate sweep: %d trials per cell, 6 walkers x 6 hops over a\n"
              "full mesh; crashed sites restart after 250ms.  Amplification is\n"
              "extra incarnations per launched agent; every row resolves every\n"
              "agent exactly once (complete or dead-letter):\n", kTrials);
  table.Print();
}

void PartitionStormTable(bool smoke) {
  bench::Table table({"seed", "partitions", "crashes", "relaunches", "quenches",
                      "resolved", "median reactivation (ms)", "exactly-once"});
  std::vector<uint64_t> seeds = smoke ? std::vector<uint64_t>{1995}
                                      : std::vector<uint64_t>{1995, 7, 42};
  for (uint64_t seed : seeds) {
    E14Outcome out = RunPartitionStorm(seed);
    if (seed == 1995) {
      g_metrics_json = out.metrics_json;
    }
    table.AddRow(
        {bench::Fmt("%llu", (unsigned long long)seed),
         bench::Fmt("%llu", (unsigned long long)out.report.partitions),
         bench::Fmt("%llu", (unsigned long long)out.report.crashes),
         bench::Fmt("%llu", (unsigned long long)out.guard.relaunches),
         bench::Fmt("%llu", (unsigned long long)(out.guard.quenches +
                                                 out.registry.duplicates_quenched)),
         bench::Fmt("%llu/%zu", (unsigned long long)out.registry.resolved,
                    out.launched),
         out.reactivation_latencies.empty()
             ? "-"
             : bench::Fmt("%.1f",
                          static_cast<double>(Median(out.reactivation_latencies)) /
                              kMillisecond),
         out.exactly_once ? "yes" : "NO"});
  }
  std::printf("\nPartition storms: correlated bipartition cuts + crashes + loss\n"
              "flaps.  False suspicions relaunch agents that were merely\n"
              "partitioned away; incarnation fences quench the stale copies while\n"
              "the registry keeps the end-to-end outcome exactly-once:\n");
  table.Print();
}

int RunSmoke() {
  E14Outcome out = RunPartitionStorm(/*seed=*/1995);
  g_metrics_json = out.metrics_json;
  const SimTime median = Median(out.reactivation_latencies);
  const uint64_t quenches = out.guard.quenches + out.registry.duplicates_quenched;
  std::printf("[smoke] partitions=%llu crashes=%llu relaunches=%llu "
              "quenches=%llu resolved=%llu/%zu median_reactivation=%.1fms\n",
              (unsigned long long)out.report.partitions,
              (unsigned long long)out.report.crashes,
              (unsigned long long)out.guard.relaunches,
              (unsigned long long)quenches,
              (unsigned long long)out.registry.resolved, out.launched,
              static_cast<double>(median) / kMillisecond);
  if (!out.exactly_once) {
    std::printf("SMOKE FAIL: exactly-once violated: %s\n",
                out.exactly_once_error.c_str());
    return 1;
  }
  if (out.registry.resolved != out.launched) {
    std::printf("SMOKE FAIL: %llu of %zu agents resolved\n",
                (unsigned long long)out.registry.resolved, out.launched);
    return 1;
  }
  if (out.guard.relaunches == 0) {
    std::printf("SMOKE FAIL: the storm provoked no relaunches\n");
    return 1;
  }
  if (quenches == 0) {
    std::printf("SMOKE FAIL: no stale incarnation was quenched under the storm\n");
    return 1;
  }
  if (median > 250 * kMillisecond) {
    std::printf("SMOKE FAIL: median relaunch-to-reactivation %.1fms > 250ms\n",
                static_cast<double>(median) / kMillisecond);
    return 1;
  }
  std::printf("[smoke] ok\n");
  return 0;
}

}  // namespace
}  // namespace tacoma

// Flags:
//   --smoke              gated partition-storm run for CI (plus trimmed tables)
//   --metrics-out PATH   write the seed-1995 partition storm's unified metrics
//                        registry snapshot as JSON to PATH
int main(int argc, char** argv) {
  bool smoke = false;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--metrics-out PATH]\n", argv[0]);
      return 2;
    }
  }
  tacoma::bench::PrintHeader(
      "E14 — Exactly-once agent survival: recovery latency and amplification",
      "durable rear guards and incarnation fences turn at-least-once recovery "
      "into an exactly-once completion contract (paper S5)");
  int rc = 0;
  if (smoke) {
    rc = tacoma::RunSmoke();
  }
  tacoma::CrashRateSweep(smoke);
  tacoma::PartitionStormTable(smoke);
  if (metrics_out != nullptr) {
    std::FILE* f = std::fopen(metrics_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out);
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"bench_e14_ft\",\"smoke\":%s,\"metrics\":%s}\n",
                 smoke ? "true" : "false", tacoma::g_metrics_json.c_str());
    std::fclose(f);
    std::printf("\nmetrics snapshot written to %s\n", metrics_out);
  }
  return rc;
}
