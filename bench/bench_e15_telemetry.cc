// E15 — Continuous telemetry: metering overhead, sampler determinism, and
// the flight recorder under chaos.
//
// The paper's OS framing (§6: "the operating system must manage the
// resources of the computer ... accounting") implies the kernel meters
// agents continuously, not on demand.  Three gates:
//
//   1. Metering overhead: the E1 agent-collection workload with per-agent
//      accounting on vs off.  Charging at kernel choke points must cost
//      ≤5% wall clock.
//   2. Sampler determinism: two identically-seeded chaos soaks produce
//      byte-identical sampler histories and ledger snapshots.
//   3. Flight recorder: a chaos soak with an injected invariant failure
//      dumps a parseable flight-record JSON, and the ledger attributes
//      ≥95% of the bytes the network carried to per-agent entries.
//
// Gates 2 and 3 are deterministic and fail the binary; gate 1 is wall-clock
// and therefore reported (CI trends it via the metrics artifact) rather
// than enforced on a possibly-loaded machine.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cash/billing.h"
#include "core/kernel.h"
#include "sim/chaos.h"
#include "sim/topology.h"
#include "stormcast/scenario.h"
#include "util/json.h"

namespace tacoma {
namespace {

using stormcast::CollectionResult;
using stormcast::Scenario;
using stormcast::ScenarioOptions;
using stormcast::Thresholds;

// --- Gate 1: metering overhead on the E1 workload ---------------------------

double TimeE1Seconds(bool accounting) {
  ScenarioOptions options;
  options.sensor_count = 32;
  options.samples_per_site = 384;
  options.storm_events = 2;
  options.seed = 1995;
  options.accounting = accounting;
  Thresholds thresholds;
  auto start = std::chrono::steady_clock::now();
  Scenario scenario(options);
  CollectionResult result = scenario.RunAgentCollection(thresholds);
  auto stop = std::chrono::steady_clock::now();
  if (result.bytes_on_wire == 0) {
    std::fprintf(stderr, "E1 workload moved no bytes?\n");
  }
  return std::chrono::duration<double>(stop - start).count();
}

// Interleaved min-of-N: the minimum is the least-noise estimate of the true
// cost, and interleaving keeps thermal/cache drift from biasing one mode.
double MeteringOverheadPct(int reps) {
  double best_off = 1e300;
  double best_on = 1e300;
  for (int r = 0; r < reps; ++r) {
    best_off = std::min(best_off, TimeE1Seconds(false));
    best_on = std::min(best_on, TimeE1Seconds(true));
  }
  return best_off > 0 ? (best_on - best_off) / best_off * 100.0 : 0.0;
}

// --- Gates 2+3: chaos soak with sampler, ledger, and flight recorder --------

struct SoakResult {
  std::string sampler_history;  // kernel.sampler().JsonHistory()
  std::string ledger_json;      // kernel.accounts().JsonSnapshot(10)
  uint64_t ledger_bytes = 0;    // accounts().totals().bytes_sent
  uint64_t wire_bytes = 0;      // net().stats().bytes_on_wire
  uint64_t samples = 0;
  uint64_t flight_dumps = 0;
  uint64_t transfers_sent = 0;
  size_t violations = 0;
  size_t ledger_entries = 0;
};

SoakResult RunTelemetrySoak(uint64_t seed, const std::string& flight_path,
                            SimTime horizon) {
  KernelOptions options;
  options.seed = seed;
  options.reliability.mode = Reliability::kReliable;
  Kernel kernel(options);
  std::vector<SiteId> sites = BuildStar(&kernel.net(), 8);
  kernel.AdoptNetworkSites();

  kernel.AddPlaceInitializer([](Place& place) {
    place.RegisterAgent("sink", [](Place&, Briefcase&) { return OkStatus(); });
    place.RegisterAgent("morgue", [](Place&, Briefcase&) { return OkStatus(); });
  });

  // Agents pay their way: hop charges are debited from the WALLET folder at
  // each activation boundary, so ecu_billed shows up in the ledger too.
  cash::InstallWalletBilling(&kernel);

  ChaosOptions chaos_options;
  chaos_options.seed = seed * 2654435761 + 1;
  chaos_options.horizon = horizon;
  chaos_options.protected_sites = {sites[0]};  // The hub carries every route.
  ChaosHarness chaos(&kernel.sim(), &kernel.net(), chaos_options);
  chaos.SetSiteHooks([&kernel](SiteId s) { kernel.CrashSite(s); },
                     [&kernel](SiteId s) { kernel.RestartSite(s); });
  chaos.RegisterMetrics(&kernel.metrics());

  // Injected invariant failure: trips exactly once, mid-storm, so the dump
  // captures a busy system rather than the quiesced end state.
  bool injected = false;
  chaos.AddInvariant("injected.flight_probe",
                     [&kernel, &injected, horizon]() -> Status {
                       if (!injected && kernel.sim().Now() >= horizon / 2) {
                         injected = true;
                         return InternalError(
                             "injected probe failure (flight-record gate)");
                       }
                       return OkStatus();
                     });
  kernel.AttachFlightRecorder(&chaos, flight_path);

  // Workload: a drizzle of walletted transfers between random up sites, six
  // distinct agent identities so the ledger has a population to rank.
  Rng workload_rng(seed * 7919 + 3);
  int sent = 0;
  for (SimTime t = 5 * kMillisecond; t < horizon; t += 8 * kMillisecond) {
    kernel.sim().At(t, [&kernel, &workload_rng, &sent, &sites] {
      SiteId from = sites[workload_rng.Uniform(sites.size())];
      SiteId to = sites[workload_rng.Uniform(sites.size())];
      if (from == to || kernel.place(from) == nullptr) {
        return;
      }
      Briefcase bc;
      bc.SetString("AGENT", "walker" + std::to_string(sent % 6));
      bc.SetString("WALLET", "100000");
      bc.SetString("TOKEN", "t" + std::to_string(sent));
      // Travel as TACL so arrival is a real activation: eval steps are
      // metered and the WALLET is billed at the activation boundary.
      bc.folder(kCodeFolder).PushBackString("bc_set SEEN 1");
      TransferOptions transfer_options;
      transfer_options.dead_letter = "morgue";
      if (kernel.TransferAgent(from, to, "ag_tacl", bc, transfer_options).ok()) {
        ++sent;
      }
    });
  }

  chaos.Start();
  kernel.ScheduleSampling(horizon + 500 * kMillisecond);
  kernel.sim().Run();

  SoakResult out;
  out.sampler_history = kernel.sampler().JsonHistory();
  out.ledger_json = kernel.accounts().JsonSnapshot(10);
  out.ledger_bytes = kernel.accounts().totals().bytes_sent;
  out.wire_bytes = kernel.net().stats().bytes_on_wire;
  out.samples = kernel.sampler().samples_taken();
  out.flight_dumps = kernel.flight_dumps();
  out.transfers_sent = kernel.stats().transfers_sent;
  out.violations = chaos.report().violations.size();
  out.ledger_entries = kernel.accounts().size();
  return out;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return "";
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

}  // namespace
}  // namespace tacoma

int main(int argc, char** argv) {
  using namespace tacoma;
  bench::SmokeArgs smoke = bench::ParseSmokeArgs(&argc, argv);
  std::string flight_out = "bench_e15_flight.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flight-out" && i + 1 < argc) {
      flight_out = argv[++i];
    } else if (arg.rfind("--flight-out=", 0) == 0) {
      flight_out = arg.substr(std::strlen("--flight-out="));
    }
  }
  bench::MetricsArtifact artifact("e15_telemetry");
  bench::PrintHeader(
      "E15 — Continuous telemetry: accounting, sampler, flight recorder",
      "the OS meters agent resource consumption continuously (paper S6)");

  bool ok = true;

  // Gate 1 — metering overhead (reported, not enforced; wall clock).
  const int reps = smoke.smoke ? 3 : 7;
  double overhead_pct = MeteringOverheadPct(reps);
  std::printf("\n[gate 1] metering overhead on E1 (32 sensors, min of %d): "
              "%+.2f%%  (target <= 5%%)\n",
              reps, overhead_pct);
  artifact.SetDouble("metering_overhead_pct", overhead_pct);

  // Gates 2+3 — two identically-seeded soaks.
  const SimTime horizon = smoke.smoke ? 1500 * kMillisecond : 3 * kSecond;
  SoakResult first = RunTelemetrySoak(1995, flight_out, horizon);
  SoakResult second = RunTelemetrySoak(1995, flight_out + ".run2", horizon);

  bool sampler_match = first.sampler_history == second.sampler_history;
  bool ledger_match = first.ledger_json == second.ledger_json;
  std::printf("[gate 2] sampler determinism: histories %s (%llu samples, "
              "%zu bytes), ledgers %s\n",
              sampler_match ? "byte-identical" : "DIFFER",
              (unsigned long long)first.samples, first.sampler_history.size(),
              ledger_match ? "byte-identical" : "DIFFER");
  ok = ok && sampler_match && ledger_match;

  std::string flight_doc = ReadFileOrEmpty(flight_out);
  bool flight_parses = !flight_doc.empty() && JsonParses(flight_doc);
  double attribution =
      first.wire_bytes > 0
          ? std::min(1.0, static_cast<double>(first.ledger_bytes) /
                              static_cast<double>(first.wire_bytes))
          : 0.0;
  std::printf("[gate 3] flight recorder: %llu dump(s) -> %s (%zu bytes, "
              "parses: %s); ledger attributes %.1f%% of %llu wire bytes "
              "(target >= 95%%)\n",
              (unsigned long long)first.flight_dumps, flight_out.c_str(),
              flight_doc.size(), flight_parses ? "yes" : "NO",
              attribution * 100.0, (unsigned long long)first.wire_bytes);
  ok = ok && first.flight_dumps >= 1 && flight_parses && attribution >= 0.95;

  bench::Table table({"soak stat", "value"});
  table.AddRow({"transfers sent", bench::Fmt("%llu", (unsigned long long)
                                                 first.transfers_sent)});
  table.AddRow({"ledger entries", bench::Fmt("%zu", first.ledger_entries)});
  table.AddRow({"chaos violations (1 injected)",
                bench::Fmt("%zu", first.violations)});
  table.AddRow({"sampler samples", bench::Fmt("%llu",
                                              (unsigned long long)first.samples)});
  std::printf("\n");
  table.Print();

  artifact.Set("soak_transfers", first.transfers_sent);
  artifact.Set("ledger_entries", first.ledger_entries);
  artifact.Set("ledger_bytes", first.ledger_bytes);
  artifact.Set("wire_bytes", first.wire_bytes);
  artifact.SetDouble("attribution_ratio", attribution);
  artifact.Set("flight_dumps", first.flight_dumps);
  artifact.Set("sampler_samples", first.samples);
  artifact.Set("sampler_deterministic", sampler_match ? 1 : 0);
  artifact.Set("ledger_deterministic", ledger_match ? 1 : 0);
  artifact.Set("flight_parses", flight_parses ? 1 : 0);
  artifact.SetRaw("sampler_history", first.sampler_history);

  std::printf("\nE15 verdict: %s\n", ok ? "PASS" : "FAIL");
  return (artifact.WriteTo(smoke.metrics_out) && ok) ? 0 : 1;
}
