// E16 — TACL bytecode VM: digest-keyed compiled units vs the tree-walker.
//
// The paper's portability argument (§6) makes agents source strings evaluated
// per activation — which bills every warm hop for a fresh parse of code that
// has not changed since the last hop.  The bytecode VM moves that cost to a
// one-time compile cached in the place's content-addressed CodeCache under
// the same SHA-256 digest admission already computes, so a warm activation
// skips the parse AND the compile:
//
//   1. Parse-heavy speedup: a large straight-line agent activated repeatedly
//      at one place — the tree-walker re-parses per activation, the VM hits
//      the digest-keyed unit cache.  Gate: >= 10x.
//   2. Builtin-heavy speedup: a tight counting loop with warm caches under
//      both engines — inlined set/incr/while vs per-command substitution and
//      std::function dispatch.  Gate: >= 2x.
//   3. Compile-count flatness: repeated 5-hop itineraries must compile once
//      per place, never per hop (hard assertion).
//   4. Chaos parity: the E11 delivery sweep (lossy links, reliable transport)
//      run under both engines with identical seeds must deliver identically,
//      with zero static-manifest violations (hard assertion).
//
// Exits non-zero if any gate fails.
#include <chrono>
#include <cstring>
#include <map>

#include "bench/bench_util.h"
#include "core/briefcase.h"
#include "core/kernel.h"
#include "core/place.h"
#include "sim/topology.h"
#include "tacl/interp.h"

namespace tacoma {
namespace {

int g_failures = 0;

void Gate(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::printf("GATE FAILED: %s\n", what.c_str());
  } else {
    std::printf("gate ok: %s\n", what.c_str());
  }
}

// Wall-clock microseconds for `fn()` run `iters` times, best of three passes
// (the minimum is robust against scheduler noise on a loaded box).
template <typename Fn>
double MicrosPerIter(int iters, Fn&& fn) {
  double best = 0;
  for (int pass = 0; pass < 3; ++pass) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    auto end = std::chrono::steady_clock::now();
    double micros =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            end - start)
            .count() /
        iters;
    if (pass == 0 || micros < best) {
      best = micros;
    }
  }
  return best;
}

// A large, cheap-to-run script: the shape of an agent that is mostly code,
// not loops.  Parsing dominates evaluation, as with real CODE folders.
std::string ParseHeavyScript(int lines) {
  std::string script = "set v0 seed\n";
  for (int i = 1; i <= lines; ++i) {
    switch (i % 8) {
      case 1:
        script += "set v" + std::to_string(i) + " {literal value " +
                  std::to_string(i) + "}\n";
        break;
      case 2:
        // References v(4k+1), always a literal or folded-expr statement.
        script += "set v" + std::to_string(i) + " \"prefix $v" +
                  std::to_string(i / 2) + " suffix\"\n";
        break;
      case 3:
      case 5:
      case 7: {
        // A long constant chain: the compiler folds it to one constant push,
        // the tree-walker re-parses and re-evaluates every term on every
        // activation.  Products pair small terms, so no overflow.
        std::string expr = std::to_string(i % 89 + 1);
        for (int t = 1; t <= 24; ++t) {
          expr += t % 3 == 0 ? " * " : (t % 3 == 1 ? " + " : " - ");
          expr += std::to_string((i + 7 * t) % 97 + 1);
        }
        script += "set v" + std::to_string(i) + " [expr {" + expr + "}]\n";
        break;
      }
      default:
        // Real agents ship commentary; the tree-walker re-scans it on every
        // hop, a compiled unit never sees it again.
        script += "# step " + std::to_string(i) +
                  ": carried along in the CODE folder, parsed at every "
                  "activation, executes nothing\n";
        break;
    }
  }
  return script;
}

void ParseHeavySpeedup(bool smoke) {
  const int kLines = 400;
  const int kIters = smoke ? 30 : 200;
  const std::string script = ParseHeavyScript(kLines);

  // The tree-walk activation: a fresh interpreter evaluates the source.  The
  // per-interp parse cache cannot help — it dies with the activation.
  double tree_us = MicrosPerIter(kIters, [&script] {
    tacl::Interp interp;
    interp.set_vm_enabled(false);
    (void)interp.Eval(script);
  });

  // The VM warm-hop activation: a fresh interpreter runs the unit the place's
  // digest-keyed cache already holds.
  tacl::Interp compiler_interp;
  Status compile_error = OkStatus();
  auto unit = compiler_interp.CompileUnit(script, &compile_error);
  if (unit == nullptr) {
    Gate(false, "parse-heavy script compiles (" + compile_error.message() + ")");
    return;
  }
  double vm_us = MicrosPerIter(kIters, [&unit] {
    tacl::Interp interp;
    interp.set_vm_enabled(true);
    (void)interp.RunUnit(unit);
  });

  double ratio = vm_us > 0 ? tree_us / vm_us : 0;
  bench::Table table({"engine", "us/activation", "speedup"});
  table.AddRow({"tree-walk (reparse per hop)", bench::Fmt("%.1f", tree_us), "1.0x"});
  table.AddRow({"VM (warm digest hit)", bench::Fmt("%.1f", vm_us),
                bench::Fmt("%.1fx", ratio)});
  std::printf("\nParse-heavy agent (%d statements), fresh interpreter per\n"
              "activation, %d activations:\n", kLines + 1, kIters);
  table.Print();
  Gate(ratio >= 10.0,
       bench::Fmt("parse-heavy warm-hop speedup %.1fx >= 10x", ratio));
}

void BuiltinHeavySpeedup(bool smoke) {
  const int kLoop = 2000;
  const int kIters = smoke ? 20 : 100;
  const std::string script =
      "set s 0; set i 0; while {$i < " + std::to_string(kLoop) +
      "} {incr s $i; incr i}; set s";

  // Both engines keep their caches warm: this isolates the dispatch loop
  // (inlined opcodes vs word substitution + std::function lookup).
  tacl::Interp tree;
  tree.set_vm_enabled(false);
  (void)tree.Eval(script);
  double tree_us = MicrosPerIter(kIters, [&tree, &script] {
    (void)tree.Eval(script);
  });

  tacl::Interp vm;
  vm.set_vm_enabled(true);
  (void)vm.Eval(script);
  double vm_us = MicrosPerIter(kIters, [&vm, &script] {
    (void)vm.Eval(script);
  });

  double ratio = vm_us > 0 ? tree_us / vm_us : 0;
  bench::Table table({"engine", "us/eval", "steps/us", "speedup"});
  table.AddRow({"tree-walk (warm parse cache)", bench::Fmt("%.1f", tree_us),
                bench::Fmt("%.1f", 2.0 * kLoop / tree_us), "1.0x"});
  table.AddRow({"VM (warm unit cache)", bench::Fmt("%.1f", vm_us),
                bench::Fmt("%.1f", 2.0 * kLoop / vm_us),
                bench::Fmt("%.1fx", ratio)});
  std::printf("\nBuiltin-heavy loop (%d iterations of incr+incr), warm caches\n"
              "under both engines:\n", kLoop);
  table.Print();
  Gate(ratio >= 2.0,
       bench::Fmt("builtin-heavy speedup %.1fx >= 2x", ratio));
}

// The itinerary agent from E11/E12: visit every site on the list, then mark
// the home cabinet.  The CODE folder is identical on every hop.
constexpr char kWalkerAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE 1
  }
)";

void CompileCountFlatness(bool smoke) {
  const int kWalks = smoke ? 4 : 12;
  KernelOptions options;
  options.seed = 1234;
  Kernel kernel(options);
  auto sites = BuildRing(&kernel.net(), 5);
  kernel.AdoptNetworkSites();

  // CODE compiles = place-cache misses: the compiles triggered by activating
  // the agent's CODE folder.  (Interpreter-level vm_compiles also counts the
  // tiny bracketed scripts expressions evaluate — `[bc_len ITINERARY]` — which
  // recur per activation by design; the flatness claim is about the CODE.)
  uint64_t code_compiles_after_first = 0;
  for (int walk = 0; walk < kWalks; ++walk) {
    Briefcase bc;
    bc.SetString("AGENT", "walker");
    for (size_t i = 1; i < sites.size(); ++i) {
      bc.folder("ITINERARY").PushBackString(kernel.net().site_name(sites[i]));
    }
    (void)kernel.LaunchAgent(sites[0], kWalkerAgent, bc);
    kernel.sim().Run();
    if (walk == 0) {
      uint64_t total = 0;
      for (SiteId site : sites) {
        total += kernel.place(site)->code_cache().unit_stats().misses;
      }
      code_compiles_after_first = total;
    }
  }

  uint64_t code_compiles = 0;
  uint64_t unit_hits = 0;
  uint64_t activations = 0;
  for (SiteId site : sites) {
    code_compiles += kernel.place(site)->code_cache().unit_stats().misses;
    unit_hits += kernel.place(site)->code_cache().unit_stats().hits;
    activations += kernel.place(site)->stats().activations;
  }
  bench::Table table({"walks", "activations", "CODE compiles", "warm unit hits"});
  table.AddRow({bench::Fmt("%d", kWalks), bench::Fmt("%llu",
                    (unsigned long long)activations),
                bench::Fmt("%llu", (unsigned long long)code_compiles),
                bench::Fmt("%llu", (unsigned long long)unit_hits)});
  std::printf("\nCompile-count flatness: the same CODE walks a 5-site ring %d\n"
              "times; every place compiles it once and serves later hops from\n"
              "the digest-keyed unit cache:\n", kWalks);
  table.Print();
  Gate(code_compiles == code_compiles_after_first,
       bench::Fmt("CODE compile count flat across walks (%llu after walk 1, "
                  "%llu after walk %d)",
                  (unsigned long long)code_compiles_after_first,
                  (unsigned long long)code_compiles, kWalks));
  Gate(code_compiles <= sites.size(),
       bench::Fmt("at most one CODE compile per place (%llu compiles, %zu "
                  "places)",
                  (unsigned long long)code_compiles, sites.size()));
  Gate(unit_hits == activations - code_compiles,
       bench::Fmt("every warm activation hit the unit cache (%llu hits, %llu "
                  "activations)",
                  (unsigned long long)unit_hits, (unsigned long long)activations));
}

// E11-style chaos soak: itinerary walks over lossy links with reliable
// transport, identical seeds under both engines.
struct SoakOutcome {
  int completed = 0;
  uint64_t activations = 0;
  uint64_t violations_static = 0;
  std::string metrics_json;
};

SoakOutcome RunSoak(bool vm_on, int walks, uint64_t seed) {
  const bool saved = tacl::VmDefaultEnabled();
  tacl::SetVmDefaultEnabled(vm_on);
  SoakOutcome outcome;
  for (int walk = 0; walk < walks; ++walk) {
    KernelOptions options;
    options.seed = seed + static_cast<uint64_t>(walk);
    options.reliability.mode = Reliability::kReliable;
    Kernel kernel(options);
    auto sites = BuildRing(&kernel.net(), 5);
    kernel.AdoptNetworkSites();
    for (auto [a, b] : kernel.net().Links()) {
      kernel.net().SetLinkLoss(a, b, 0.15);
    }
    Briefcase bc;
    bc.SetString("AGENT", "walker");
    for (size_t i = 1; i < sites.size(); ++i) {
      bc.folder("ITINERARY").PushBackString(kernel.net().site_name(sites[i]));
    }
    bc.folder("ITINERARY").PushBackString(kernel.net().site_name(sites[0]));
    (void)kernel.LaunchAgent(sites[0], kWalkerAgent, bc);
    kernel.sim().RunUntil(30 * kSecond);
    if (kernel.place(sites[0])->Cabinet("t").HasFolder("DONE")) {
      ++outcome.completed;
    }
    for (SiteId site : sites) {
      outcome.activations += kernel.place(site)->stats().activations;
      outcome.violations_static +=
          kernel.place(site)->stats().manifest_violations_static;
    }
    if (walk == walks - 1) {
      outcome.metrics_json = kernel.metrics().JsonSnapshot();
    }
  }
  tacl::SetVmDefaultEnabled(saved);
  return outcome;
}

std::string g_soak_metrics_json;

void ChaosParity(bool smoke) {
  const int kWalks = smoke ? 6 : 25;
  SoakOutcome tree = RunSoak(false, kWalks, 9000);
  SoakOutcome vm = RunSoak(true, kWalks, 9000);
  g_soak_metrics_json = vm.metrics_json;

  bench::Table table({"engine", "completed walks", "activations",
                      "static manifest violations"});
  table.AddRow({"tree-walk", bench::Fmt("%d/%d", tree.completed, kWalks),
                bench::Fmt("%llu", (unsigned long long)tree.activations),
                bench::Fmt("%llu", (unsigned long long)tree.violations_static)});
  table.AddRow({"VM", bench::Fmt("%d/%d", vm.completed, kWalks),
                bench::Fmt("%llu", (unsigned long long)vm.activations),
                bench::Fmt("%llu", (unsigned long long)vm.violations_static)});
  std::printf("\nChaos parity: 5-site ring walks at 15%% per-link loss over\n"
              "reliable transport, identical seeds under both engines:\n");
  table.Print();
  Gate(tree.completed == vm.completed && tree.activations == vm.activations,
       bench::Fmt("delivery parity (tree %d/%llu acts, vm %d/%llu acts)",
                  tree.completed, (unsigned long long)tree.activations,
                  vm.completed, (unsigned long long)vm.activations));
  Gate(vm.violations_static == 0,
       "effect monitor clean under the VM (no static-manifest violations)");
  Gate(tree.completed == kWalks,
       bench::Fmt("reliable transport completes every walk (%d/%d)",
                  tree.completed, kWalks));
}

}  // namespace
}  // namespace tacoma

// Flags:
//   --smoke              reduced iteration counts for CI (gates still enforced)
//   --metrics-out PATH   write the VM-engine soak's unified metrics registry
//                        snapshot as JSON to PATH (carries the vm.* keys)
int main(int argc, char** argv) {
  bool smoke = false;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--metrics-out PATH]\n", argv[0]);
      return 2;
    }
  }
  tacoma::bench::PrintHeader(
      "E16 — TACL bytecode VM: digest-keyed compiled units vs tree-walk",
      "agents are source strings for portability (paper S6), but a warm hop "
      "should not re-pay the parse: compile once per place, keyed by the "
      "CODE digest admission already computes");
  tacoma::ParseHeavySpeedup(smoke);
  tacoma::BuiltinHeavySpeedup(smoke);
  tacoma::CompileCountFlatness(smoke);
  tacoma::ChaosParity(smoke);
  if (metrics_out != nullptr) {
    std::FILE* f = std::fopen(metrics_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out);
      return 1;
    }
    std::fprintf(f, "{\"bench\":\"bench_e16_vm\",\"smoke\":%s,\"metrics\":%s}\n",
                 smoke ? "true" : "false", tacoma::g_soak_metrics_json.c_str());
    std::fclose(f);
    std::printf("\nmetrics snapshot written to %s\n", metrics_out);
  }
  if (tacoma::g_failures > 0) {
    std::printf("\n%d gate(s) FAILED\n", tacoma::g_failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
