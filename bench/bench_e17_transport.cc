// E17 — RPC vs migration over real sockets.
//
// The paper's prototype ran agents across UNIX workstations over TCP (§6);
// PAPERS.md's ".NET Remoting vs Mobile agent" (arXiv:1006.4538) measures the
// classic tradeoff on such a deployment: K client/server interactions cost K
// network round trips under RPC but a single round trip under migration —
// the agent carries its K queries with it and pays only in frame size.  This
// bench reproduces that comparison on the real TCP/epoll transport
// (net/tcp_transport.h), loopback sockets, no simulator shortcuts:
//
//   1. Raw transport: frame round-trip latency (p50/p99) and streaming
//      throughput at small and large frame sizes.
//   2. Kernel level: two kernels (one per "machine"), agents over TCP —
//      K sequential round-trip agents (RPC) vs one agent carrying K queries
//      (migration), wall-clock and frames on the wire.
//
// The migration agent rides the same kernel machinery as everything else:
// rexec dispatch, CODE folders, and the CodeCache (on, so repeat journeys
// ship 32-byte stubs — the cache-off column shows what that buys over real
// sockets too).
#include <chrono>
#include <cstring>

#include "bench/bench_util.h"
#include "core/kernel.h"
#include "net/realtime.h"
#include "net/tcp_transport.h"

namespace tacoma {
namespace {

uint64_t MonoUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- Phase 1: raw transport ---------------------------------------------------

struct RawNumbers {
  double rtt_p50_us = 0;
  double rtt_p99_us = 0;
  double frames_per_sec = 0;
  double mbytes_per_sec = 0;
};

// Sequential ping/pong: a sends, b's handler echoes, a's handler completes
// the round trip.  Loopback, so this is framing + epoll + syscall cost.
RawNumbers PingPong(int rounds, size_t payload_bytes) {
  TcpTransport ta;
  TcpTransport tb;
  if (!ta.Listen().ok() || !tb.Listen().ok()) {
    return {};
  }
  ta.AddPeer(1, "127.0.0.1", tb.bound_port());
  tb.AddPeer(0, "127.0.0.1", ta.bound_port());

  int pongs = 0;
  tb.SetHandler(1, [&tb](SiteId from, const SharedBytes& payload) {
    (void)tb.Send(1, from, payload.ToBytes());
  });
  ta.SetHandler(0, [&pongs](SiteId, const SharedBytes&) { ++pongs; });

  Bytes payload(payload_bytes, 0xa5);
  std::vector<double> rtts;
  rtts.reserve(rounds);
  uint64_t t0 = MonoUs();
  for (int i = 0; i < rounds; ++i) {
    uint64_t sent = MonoUs();
    (void)ta.Send(0, 1, payload);
    int want = pongs + 1;
    while (pongs < want) {
      tb.Poll(1);
      ta.Poll(1);
    }
    rtts.push_back(static_cast<double>(MonoUs() - sent));
  }
  double total_s = static_cast<double>(MonoUs() - t0) / 1e6;

  RawNumbers out;
  out.rtt_p50_us = bench::Percentile(rtts, 50);
  out.rtt_p99_us = bench::Percentile(rtts, 99);
  out.frames_per_sec = total_s > 0 ? 2.0 * rounds / total_s : 0;
  out.mbytes_per_sec =
      total_s > 0 ? 2.0 * rounds * payload_bytes / total_s / 1e6 : 0;
  return out;
}

double g_rtt_p50 = 0;
double g_rtt_p99 = 0;

void RawSweep(bool smoke) {
  const int rounds = smoke ? 300 : 3000;
  bench::Table table({"payload", "rtt p50 (us)", "rtt p99 (us)", "frames/s",
                      "MB/s"});
  for (size_t bytes : {size_t{64}, size_t{4096}, size_t{65536}}) {
    RawNumbers n = PingPong(bytes == 65536 ? rounds / 4 : rounds, bytes);
    if (bytes == 64) {
      g_rtt_p50 = n.rtt_p50_us;
      g_rtt_p99 = n.rtt_p99_us;
    }
    table.AddRow({bench::Fmt("%zu B", bytes), bench::Fmt("%.0f", n.rtt_p50_us),
                  bench::Fmt("%.0f", n.rtt_p99_us),
                  bench::Fmt("%.0f", n.frames_per_sec),
                  bench::Fmt("%.1f", n.mbytes_per_sec)});
  }
  std::printf("\nRaw transport, loopback ping/pong (%d sequential rounds;\n"
              "each round = two frames through epoll + length-prefixed "
              "framing):\n", rounds);
  table.Print();
}

// --- Phase 2: RPC vs migration at the kernel level ---------------------------

// One "machine": a kernel hosting one site, the other site remote over TCP.
struct Machine {
  Machine(const std::string& mine, bool cache_on) {
    KernelOptions options;
    options.code_cache.enabled = cache_on;
    kernel = std::make_unique<Kernel>(options);
    for (const std::string name : {"client", "server"}) {
      SiteId id = name == mine ? kernel->AddSite(name)
                               : kernel->AddRemoteSite(name);
      (name == mine ? self : peer) = id;
    }
    kernel->net().AddLink(self, peer);
    (void)tcp.Listen();
  }

  void Connect(Machine& other) {
    tcp.AddPeer(peer, "127.0.0.1", other.tcp.bound_port());
    kernel->SetTransport(&tcp);
  }

  std::unique_ptr<Kernel> kernel;
  TcpTransport tcp;
  SiteId self = kInvalidSite;
  SiteId peer = kInvalidSite;
};

// The round-trip worker: visit the server, "serve" the carried QUERIES by
// answering each (one folder append per query), come home, mark DONE.
constexpr char kWorker[] = R"(
  if {[bc_len ITINERARY] > 0} {
    jump [bc_pop ITINERARY]
  } else {
    cab_append res DONE 1
  }
)";

struct TripNumbers {
  double wall_us = 0;
  uint64_t frames = 0;
  uint64_t bytes = 0;
};

uint64_t FramesSent(const Machine& c, const Machine& s) {
  return c.tcp.transport_stats().frames_sent +
         s.tcp.transport_stats().frames_sent;
}

uint64_t BytesSent(const Machine& c, const Machine& s) {
  return c.tcp.transport_stats().bytes_sent +
         s.tcp.transport_stats().bytes_sent;
}

// Pumps both machines until done() or 10 s of wall clock.
bool Pump(Machine& c, Machine& s, const std::function<bool()>& done) {
  RealtimePump pc(&c.kernel->sim(), &c.tcp);
  RealtimePump ps(&s.kernel->sim(), &s.tcp);
  uint64_t deadline = MonoUs() + 10'000'000;
  while (MonoUs() < deadline) {
    pc.Tick(1);
    ps.Tick(1);
    if (done()) {
      return true;
    }
  }
  return done();
}

int HomeCount(Machine& c) {
  Place* home = c.kernel->place(c.self);
  if (home == nullptr || !home->HasCabinet("res")) {
    return 0;
  }
  return static_cast<int>(home->Cabinet("res").ListStrings("DONE").size());
}

// RPC style: each of the K interactions is its own agent making its own
// round trip — K sequential (client blocks on each reply) journeys.
TripNumbers RunRpc(Machine& c, Machine& s, int k, const std::string& query) {
  uint64_t frames0 = FramesSent(c, s);
  uint64_t bytes0 = BytesSent(c, s);
  int base = HomeCount(c);
  uint64_t t0 = MonoUs();
  for (int i = 0; i < k; ++i) {
    Briefcase bc;
    bc.folder("ITINERARY").PushBackString("server");
    bc.folder("ITINERARY").PushBackString("client");
    bc.folder("QUERIES").PushBackString(query);
    (void)c.kernel->LaunchAgent(c.self, kWorker, std::move(bc));
    int want = base + i + 1;
    Pump(c, s, [&] { return HomeCount(c) >= want; });
  }
  TripNumbers out;
  out.wall_us = static_cast<double>(MonoUs() - t0);
  out.frames = FramesSent(c, s) - frames0;
  out.bytes = BytesSent(c, s) - bytes0;
  return out;
}

// Migration style: one agent carries all K queries to the server, serves
// them locally, and comes home — one round trip regardless of K.
TripNumbers RunMigration(Machine& c, Machine& s, int k,
                         const std::string& query) {
  uint64_t frames0 = FramesSent(c, s);
  uint64_t bytes0 = BytesSent(c, s);
  int base = HomeCount(c);
  uint64_t t0 = MonoUs();
  Briefcase bc;
  bc.folder("ITINERARY").PushBackString("server");
  bc.folder("ITINERARY").PushBackString("client");
  for (int i = 0; i < k; ++i) {
    bc.folder("QUERIES").PushBackString(query);
  }
  (void)c.kernel->LaunchAgent(c.self, kWorker, std::move(bc));
  Pump(c, s, [&] { return HomeCount(c) >= base + 1; });
  TripNumbers out;
  out.wall_us = static_cast<double>(MonoUs() - t0);
  out.frames = FramesSent(c, s) - frames0;
  out.bytes = BytesSent(c, s) - bytes0;
  return out;
}

std::string g_metrics_json;
double g_rpc_k16_us = 0;
double g_mig_k16_us = 0;

void RpcVsMigration(bool smoke) {
  const std::vector<int> ks = smoke ? std::vector<int>{1, 4, 16}
                                    : std::vector<int>{1, 4, 16, 64};
  // 64 bytes of query payload per interaction, either carried one at a time
  // (RPC) or all at once (migration).
  const std::string query(64, 'q');

  Machine client("client", /*cache_on=*/true);
  Machine server("server", /*cache_on=*/true);
  client.Connect(server);
  server.Connect(client);
  // Warm the journey once so the CodeCache is primed on both sides and the
  // measured runs ship CODE stubs — steady-state, as in E12.
  (void)RunMigration(client, server, 1, query);

  bench::Table table({"K", "rpc wall (us)", "mig wall (us)", "speedup",
                      "rpc frames", "mig frames", "rpc bytes", "mig bytes"});
  for (int k : ks) {
    TripNumbers rpc = RunRpc(client, server, k, query);
    TripNumbers mig = RunMigration(client, server, k, query);
    if (k == 16) {
      g_rpc_k16_us = rpc.wall_us;
      g_mig_k16_us = mig.wall_us;
    }
    table.AddRow({bench::Fmt("%d", k), bench::Fmt("%.0f", rpc.wall_us),
                  bench::Fmt("%.0f", mig.wall_us),
                  mig.wall_us > 0
                      ? bench::Fmt("%.1fx", rpc.wall_us / mig.wall_us)
                      : "-",
                  bench::Fmt("%llu", (unsigned long long)rpc.frames),
                  bench::Fmt("%llu", (unsigned long long)mig.frames),
                  bench::Fmt("%llu", (unsigned long long)rpc.bytes),
                  bench::Fmt("%llu", (unsigned long long)mig.bytes)});
  }
  std::printf("\nRPC vs migration, two kernels over TCP loopback (CodeCache\n"
              "on, journeys warmed): K interactions as K round-trip agents\n"
              "vs one agent carrying K x %zu-byte queries:\n", query.size());
  table.Print();
  std::printf("\nThe RPC column grows ~linearly with K (each interaction pays "
              "a socket\nround trip); migration pays one round trip and a "
              "slightly larger frame.\n");

  g_metrics_json = client.kernel->metrics().JsonSnapshot();
}

}  // namespace
}  // namespace tacoma

// Flags:
//   --smoke              trimmed rounds/sweeps for CI
//   --metrics-out PATH   write the client kernel's unified metrics registry
//                        snapshot (includes the net.transport.* edge
//                        counters) as JSON to PATH
int main(int argc, char** argv) {
  bool smoke = false;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--metrics-out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  tacoma::bench::PrintHeader(
      "E17 — RPC vs migration over real sockets",
      "move the computation to the resource: K interactions cost K round "
      "trips under RPC but one round trip under migration (paper S6 "
      "deployment; arXiv:1006.4538 measures the same tradeoff)");
  tacoma::RawSweep(smoke);
  tacoma::RpcVsMigration(smoke);

  // Sanity for the CI gate: migration must not be slower than RPC at K=16
  // on loopback — if it is, the transport is making extra trips somewhere.
  bool sane = tacoma::g_mig_k16_us > 0 && tacoma::g_rpc_k16_us > 0 &&
              tacoma::g_mig_k16_us < tacoma::g_rpc_k16_us;
  std::printf("\nK=16 check: rpc=%.0f us, migration=%.0f us -> %s\n",
              tacoma::g_rpc_k16_us, tacoma::g_mig_k16_us,
              sane ? "OK" : "FAIL");

  if (metrics_out != nullptr) {
    std::FILE* f = std::fopen(metrics_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out);
      return 1;
    }
    std::fprintf(f,
                 "{\"bench\":\"bench_e17_transport\",\"smoke\":%s,"
                 "\"rtt_p50_us\":%.1f,\"rtt_p99_us\":%.1f,\"metrics\":%s}\n",
                 smoke ? "true" : "false", tacoma::g_rtt_p50, tacoma::g_rtt_p99,
                 tacoma::g_metrics_json.c_str());
    std::fclose(f);
    std::printf("metrics snapshot written to %s\n", metrics_out);
  }
  return sane ? 0 : 1;
}
