// E1 — Bandwidth: agent-based filtering vs client/server raw transfer.
//
// Paper §1: "By structuring a system in terms of agents, applications can be
// constructed in which communication-network bandwidth is conserved.  Data
// may be accessed only by an agent executing at the same site as the data
// resides.  An agent typically will filter or otherwise reduce the data it
// reads, carrying with it only the relevant information as it roams the
// network; there is rarely a need to transmit raw data from one site to
// another."
//
// The StormCast pipeline measures exactly this: identical sensor data is
// collected by (a) a filtering agent walking the sensors and (b) every sensor
// shipping its raw series to the home site.  Both must produce the same storm
// verdict; the bytes each puts on the wire differ.
#include "bench/bench_util.h"
#include "stormcast/scenario.h"

namespace tacoma {
namespace {

using stormcast::CollectionResult;
using stormcast::Scenario;
using stormcast::ScenarioOptions;
using stormcast::Thresholds;
using stormcast::Topology;

void SweepSites(Topology topology, const char* topology_name, bool smoke,
                bench::MetricsArtifact* artifact) {
  // The paper's regime: raw data much larger than the agent.  The agent
  // carries per-site summaries home (the expert system's inputs); the
  // selectivity sweep below maps what happens as it hauls more raw readings.
  bench::Table table({"sites", "samples/site", "agent bytes", "c/s bytes", "ratio",
                      "agent msgs", "c/s msgs", "verdicts agree"});
  const std::vector<size_t> full = {4, 8, 16, 32, 64};
  const std::vector<size_t> quick = {4, 8};
  for (size_t sites : smoke ? quick : full) {
    ScenarioOptions options;
    options.sensor_count = sites;
    options.samples_per_site = 384;
    options.storm_events = 2;
    options.seed = 1995;
    options.topology = topology;
    Thresholds thresholds;
    thresholds.filter_wind_ms = 1000.0;  // Summaries only; no raw readings travel.

    Scenario agent_scenario(options);
    CollectionResult agent = agent_scenario.RunAgentCollection(thresholds);
    Scenario cs_scenario(options);
    CollectionResult cs = cs_scenario.RunClientServerCollection(thresholds);

    table.AddRow({bench::Fmt("%zu", sites), bench::Fmt("%zu", options.samples_per_site),
                  bench::Fmt("%llu", (unsigned long long)agent.bytes_on_wire),
                  bench::Fmt("%llu", (unsigned long long)cs.bytes_on_wire),
                  bench::Fmt("%.2fx", static_cast<double>(cs.bytes_on_wire) /
                                          std::max<uint64_t>(1, agent.bytes_on_wire)),
                  bench::Fmt("%llu", (unsigned long long)agent.messages),
                  bench::Fmt("%llu", (unsigned long long)cs.messages),
                  agent.prediction.storm == cs.prediction.storm ? "yes" : "NO"});
    if (artifact != nullptr && topology == Topology::kStar && sites == 8) {
      // The canonical configuration CI tracks across commits.
      artifact->Set("agent_bytes", agent.bytes_on_wire);
      artifact->Set("cs_bytes", cs.bytes_on_wire);
      artifact->SetDouble("ratio", static_cast<double>(cs.bytes_on_wire) /
                                       std::max<uint64_t>(1, agent.bytes_on_wire));
      artifact->Set("verdicts_agree",
                    agent.prediction.storm == cs.prediction.storm ? 1 : 0);
    }
  }
  std::printf("\nTopology: %s (c/s ratio > 1 means the agent conserved bandwidth)\n",
              topology_name);
  table.Print();
}

void SweepSelectivity() {
  // Crossover analysis: as the filter admits more of the raw data, the agent
  // hauls more with it and its advantage shrinks — eventually the agent can
  // lose (it re-carries accumulated matches over every remaining hop).
  bench::Table table({"wind filter (m/s)", "selectivity", "agent bytes", "c/s bytes",
                      "agent wins"});
  ScenarioOptions options;
  options.sensor_count = 12;
  options.samples_per_site = 96;
  options.storm_events = 2;
  options.seed = 1995;
  options.topology = Topology::kStar;

  for (double filter : {100.0, 26.0, 18.0, 10.0, 4.0, 0.0}) {
    Thresholds thresholds;
    thresholds.filter_wind_ms = filter;

    Scenario agent_scenario(options);
    CollectionResult agent = agent_scenario.RunAgentCollection(thresholds);
    Scenario cs_scenario(options);
    CollectionResult cs = cs_scenario.RunClientServerCollection(thresholds);

    double selectivity =
        static_cast<double>(agent.prediction.matches_carried) /
        static_cast<double>(options.sensor_count * options.samples_per_site);
    table.AddRow({bench::Fmt("%.1f", filter), bench::Fmt("%.1f%%", selectivity * 100),
                  bench::Fmt("%llu", (unsigned long long)agent.bytes_on_wire),
                  bench::Fmt("%llu", (unsigned long long)cs.bytes_on_wire),
                  agent.bytes_on_wire < cs.bytes_on_wire ? "yes" : "no"});
  }
  std::printf("\nSelectivity sweep (12 sensors, star): where does filtering stop paying?\n");
  table.Print();
}

}  // namespace
}  // namespace tacoma

int main(int argc, char** argv) {
  tacoma::bench::SmokeArgs smoke = tacoma::bench::ParseSmokeArgs(&argc, argv);
  tacoma::bench::MetricsArtifact artifact("e1_bandwidth");
  tacoma::bench::PrintHeader(
      "E1 — Bandwidth: mobile agent vs client/server collection (StormCast)",
      "agents conserve network bandwidth by filtering at the data (paper S1)");
  tacoma::SweepSites(tacoma::stormcast::Topology::kStar, "star (home is hub)",
                     smoke.smoke, &artifact);
  tacoma::SweepSites(tacoma::stormcast::Topology::kLine,
                     "line (home at one end; c/s data crosses many links)",
                     smoke.smoke, nullptr);
  if (!smoke.smoke) {
    tacoma::SweepSelectivity();
  }
  return artifact.WriteTo(smoke.metrics_out) ? 0 : 1;
}
