// E2 — Flooding: visit-record diffusion vs unbounded naive cloning.
//
// Paper §2: "consider a flooding algorithm ... One implementation would have
// each agent deliver the message and then create a clone of itself at every
// adjacent site.  Unfortunately, here the number of agents increases without
// bound.  If, instead, an agent also records its visit in a site-local
// folder, then an agent can simply terminate — rather than clone — when it
// finds itself at a site that has already been visited."
#include "bench/bench_util.h"
#include "core/kernel.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

struct FloodOutcome {
  size_t total_sites = 0;
  size_t sites_reached = 0;
  uint64_t activations = 0;  // Diffusion-agent executions (the agent count).
  uint64_t transfers = 0;
  bool exploded = false;  // Hit the event-limit safety valve.
};

FloodOutcome RunFlood(const std::string& topology, size_t n, bool naive, int ttl,
                      uint64_t seed) {
  Kernel kernel(KernelOptions{seed, 5'000'000, false});
  std::vector<SiteId> ids;
  Rng rng(seed);
  if (topology == "ring") {
    ids = BuildRing(&kernel.net(), n);
  } else if (topology == "grid") {
    size_t side = 1;
    while (side * side < n) {
      ++side;
    }
    ids = BuildGrid(&kernel.net(), side, (n + side - 1) / side);
  } else {
    ids = BuildRandom(&kernel.net(), n, 0.1, &rng);
  }
  kernel.AdoptNetworkSites();
  kernel.sim().set_event_limit(200'000);

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString("cab_set t SEEN 1");
  if (naive) {
    bc.SetString("MODE", "naive");
    bc.SetString("TTL", std::to_string(ttl));
  }
  (void)kernel.place(ids[0])->Meet("diffusion", bc);
  kernel.sim().Run();

  FloodOutcome out;
  out.total_sites = ids.size();
  out.exploded = kernel.sim().hit_event_limit();
  out.transfers = kernel.stats().transfers_sent;
  for (SiteId s : ids) {
    Place* place = kernel.place(s);
    if (place != nullptr && place->Cabinet("t").HasFolder("SEEN")) {
      ++out.sites_reached;
    }
    // Each diffusion execution runs ag_tacl once; activations counts both the
    // payload and any TACL resident, so count meets of the payload instead.
    out.activations += place->stats().activations;
  }
  return out;
}

void SweepTopology(const std::string& topology, bool smoke,
                   bench::MetricsArtifact* artifact) {
  bench::Table table({"sites", "mode", "reached", "agent activations", "transfers",
                      "bounded"});
  const std::vector<size_t> full = {8, 16, 32, 64};
  const std::vector<size_t> quick = {8, 16};
  for (size_t n : smoke ? quick : full) {
    FloodOutcome visited = RunFlood(topology, n, /*naive=*/false, 0, 42);
    table.AddRow({bench::Fmt("%zu", n), "visit-records",
                  bench::Fmt("%zu/%zu", visited.sites_reached, visited.total_sites),
                  bench::Fmt("%llu", (unsigned long long)visited.activations),
                  bench::Fmt("%llu", (unsigned long long)visited.transfers),
                  visited.exploded ? "NO (event limit!)" : "yes"});

    FloodOutcome naive = RunFlood(topology, n, /*naive=*/true, /*ttl=*/10, 42);
    table.AddRow({bench::Fmt("%zu", n), "naive clone (TTL 10)",
                  bench::Fmt("%zu/%zu", naive.sites_reached, naive.total_sites),
                  bench::Fmt("%llu", (unsigned long long)naive.activations),
                  bench::Fmt("%llu", (unsigned long long)naive.transfers),
                  naive.exploded ? "NO (event limit!)" : "only by TTL"});
    if (artifact != nullptr && topology == "ring" && n == 16) {
      artifact->Set("visit_record_activations", visited.activations);
      artifact->Set("naive_activations", naive.activations);
      artifact->Set("visit_record_reached", visited.sites_reached);
      artifact->Set("visit_record_transfers", visited.transfers);
    }
  }
  std::printf("\nTopology: %s\n", topology.c_str());
  table.Print();
}

void TtlGrowth() {
  // Show the exponential blow-up: naive agent count vs TTL on a fixed ring.
  bench::Table table({"TTL", "naive activations", "visit-record activations"});
  for (int ttl : {2, 4, 6, 8, 10, 12}) {
    FloodOutcome naive = RunFlood("ring", 16, true, ttl, 7);
    FloodOutcome visited = RunFlood("ring", 16, false, 0, 7);
    table.AddRow({bench::Fmt("%d", ttl),
                  bench::Fmt("%llu", (unsigned long long)naive.activations),
                  bench::Fmt("%llu", (unsigned long long)visited.activations)});
  }
  std::printf(
      "\nAgent population growth on a 16-site ring (naive doubles per hop; the\n"
      "visit-record variant is constant — 'increases without bound' made visible):\n");
  table.Print();
}

}  // namespace
}  // namespace tacoma

int main(int argc, char** argv) {
  tacoma::bench::SmokeArgs smoke = tacoma::bench::ParseSmokeArgs(&argc, argv);
  tacoma::bench::MetricsArtifact artifact("e2_flooding");
  tacoma::bench::PrintHeader(
      "E2 — Flooding: site-local visit records bound the agent population",
      "clone-only flooding grows without bound; recording visits in a "
      "site-local folder lets agents terminate instead (paper S2)");
  tacoma::SweepTopology("ring", smoke.smoke, &artifact);
  if (!smoke.smoke) {
    tacoma::SweepTopology("grid", false, nullptr);
    tacoma::SweepTopology("random", false, nullptr);
    tacoma::TtlGrowth();
  }
  return artifact.WriteTo(smoke.metrics_out) ? 0 : 1;
}
