// E3 — The folder/cabinet trade-off: mobility vs access time.
//
// Paper §2: "Unlike files in a traditional operating system, folders must be
// easy to transfer from one computing system to another ... elaborate index
// structures are not suitable" — while file cabinets "can be implemented
// using techniques that optimize access times even if this increases the
// cost of moving the file cabinet from one site to another."
//
// Micro-benchmarks (google-benchmark) measure both sides:
//   - folders: push/pop, serialize+deserialize (the move cost) — flat and fast;
//   - cabinets: O(1) indexed membership vs a folder's linear scan (the access
//     win), and the larger serialized-move cost of rebuilding the index.
#include <benchmark/benchmark.h>

#include "core/briefcase.h"
#include "core/cabinet.h"
#include "util/rng.h"

namespace tacoma {
namespace {

std::vector<std::string> MakeElements(size_t count, size_t size) {
  Rng rng(99);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string e = "element-" + std::to_string(i) + "-";
    while (e.size() < size) {
      e.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    out.push_back(e);
  }
  return out;
}

void BM_FolderPushPop(benchmark::State& state) {
  size_t count = static_cast<size_t>(state.range(0));
  auto elements = MakeElements(count, 32);
  for (auto _ : state) {
    Folder f;
    for (const auto& e : elements) {
      f.PushBackString(e);
    }
    while (!f.empty()) {
      benchmark::DoNotOptimize(f.PopFront());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * count * 2));
}
BENCHMARK(BM_FolderPushPop)->Range(8, 4096);

void BM_FolderSerializeMove(benchmark::State& state) {
  // The cost of moving a folder: encode + decode (what rexec pays per folder).
  size_t count = static_cast<size_t>(state.range(0));
  Folder f;
  for (const auto& e : MakeElements(count, 64)) {
    f.PushBackString(e);
  }
  for (auto _ : state) {
    Encoder enc;
    f.Encode(&enc);
    Decoder dec(enc.buffer());
    auto restored = Folder::Decode(&dec);
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * f.ByteSize()));
}
BENCHMARK(BM_FolderSerializeMove)->Range(8, 4096);

void BM_BriefcaseSerializeMove(benchmark::State& state) {
  size_t folders = static_cast<size_t>(state.range(0));
  Briefcase bc;
  for (size_t i = 0; i < folders; ++i) {
    Folder& f = bc.folder("folder" + std::to_string(i));
    for (const auto& e : MakeElements(16, 64)) {
      f.PushBackString(e);
    }
  }
  for (auto _ : state) {
    Bytes wire = bc.Serialize();
    auto restored = Briefcase::Deserialize(wire);
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bc.ByteSize()));
}
BENCHMARK(BM_BriefcaseSerializeMove)->Range(1, 64);

void BM_FolderLinearContains(benchmark::State& state) {
  // Folders are deliberately unindexed: membership is a scan.
  size_t count = static_cast<size_t>(state.range(0));
  Folder f;
  auto elements = MakeElements(count, 32);
  for (const auto& e : elements) {
    f.PushBackString(e);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ContainsString(elements[i++ % count]));
  }
}
BENCHMARK(BM_FolderLinearContains)->Range(8, 4096);

void BM_CabinetIndexedContains(benchmark::State& state) {
  // The access-time optimization the paper allows cabinets: O(1) membership.
  size_t count = static_cast<size_t>(state.range(0));
  FileCabinet cab("bench");
  auto elements = MakeElements(count, 32);
  for (const auto& e : elements) {
    cab.AppendString("F", e);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cab.ContainsString("F", elements[i++ % count]));
  }
}
BENCHMARK(BM_CabinetIndexedContains)->Range(8, 4096);

void BM_CabinetMove(benchmark::State& state) {
  // Moving a cabinet means serializing AND rebuilding the index on arrival —
  // the cost the paper accepts in exchange for access speed.
  size_t count = static_cast<size_t>(state.range(0));
  FileCabinet cab("bench");
  for (const auto& e : MakeElements(count, 64)) {
    cab.AppendString("F", e);
  }
  for (auto _ : state) {
    Bytes wire = cab.Serialize();
    FileCabinet restored("copy");
    benchmark::DoNotOptimize(restored.RestoreFrom(wire));
  }
}
BENCHMARK(BM_CabinetMove)->Range(8, 4096);

void BM_CabinetAppend(benchmark::State& state) {
  auto elements = MakeElements(256, 32);
  size_t i = 0;
  FileCabinet cab("bench");
  for (auto _ : state) {
    cab.AppendString("F", elements[i++ % elements.size()]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CabinetAppend);

void BM_FolderAppend(benchmark::State& state) {
  auto elements = MakeElements(256, 32);
  size_t i = 0;
  Folder f;
  for (auto _ : state) {
    f.PushBackString(elements[i++ % elements.size()]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FolderAppend);

}  // namespace
}  // namespace tacoma

int main(int argc, char** argv) {
  std::printf(
      "E3 — Folder mobility vs cabinet access (paper S2 trade-off)\n"
      "Folders: flat wire format, linear membership.  Cabinets: hash-indexed\n"
      "membership, costlier to move (index rebuild).  Compare\n"
      "BM_FolderLinearContains vs BM_CabinetIndexedContains (access) and\n"
      "BM_FolderSerializeMove vs BM_CabinetMove (mobility).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
