// E4 — meet dispatch cost and agent migration latency.
//
// Paper §2: "the meet operation is thus analogous to a procedure call" —
// so its cost should be procedure-call-like (measured here in real ns), and
// migration cost should be dominated by the briefcase data, since TACOMA
// ships state, not interpreter stacks (measured in simulated time vs
// briefcase size and hop count).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/kernel.h"
#include "sim/topology.h"

namespace tacoma {
namespace {

void BM_MeetNativeAgent(benchmark::State& state) {
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  kernel.place(site)->RegisterAgent("noop", [](Place&, Briefcase&) {
    return OkStatus();
  });
  Briefcase bc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.place(site)->Meet("noop", bc));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MeetNativeAgent);

void BM_MeetTaclAgent(benchmark::State& state) {
  // A TACL resident pays interpreter setup per meet.
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  kernel.place(site)->RegisterTaclAgent("tacl_noop", "bc_set OUT done");
  Briefcase bc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.place(site)->Meet("tacl_noop", bc));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MeetTaclAgent);

void BM_AgentActivation(benchmark::State& state) {
  // Full ag_tacl activation: pop CODE, fresh interpreter, bind primitives.
  Kernel kernel;
  SiteId site = kernel.AddSite("s");
  for (auto _ : state) {
    Briefcase bc;
    bc.folder(kCodeFolder).PushBackString("set x 1");
    benchmark::DoNotOptimize(kernel.place(site)->Meet("ag_tacl", bc));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentActivation);

void BM_TransferSerialization(benchmark::State& state) {
  // The real-time cost of one rexec hop: serialize + route + deserialize.
  Kernel kernel;
  SiteId a = kernel.AddSite("a");
  SiteId b = kernel.AddSite("b");
  kernel.net().AddLink(a, b);
  kernel.place(b)->RegisterAgent("sink", [](Place&, Briefcase&) {
    return OkStatus();
  });
  Briefcase bc;
  bc.folder("PAYLOAD").PushBack(Bytes(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.TransferAgent(a, b, "sink", bc));
    kernel.sim().Run();
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransferSerialization)->Range(1 << 10, 1 << 20);

// Simulated migration latency vs briefcase size and hop count.
void MigrationLatencyTable() {
  bench::Table table({"briefcase", "hops", "sim latency (ms)", "bytes on wire"});
  for (size_t kib : {1u, 16u, 256u, 1024u}) {
    for (size_t hops : {1u, 2u, 4u, 8u}) {
      Kernel kernel;
      // 10 MB/s links with 1 ms latency.
      auto ids = BuildLine(&kernel.net(), hops + 1,
                           LinkParams{1 * kMillisecond, 10'000'000});
      kernel.AdoptNetworkSites();
      kernel.net().ResetStats();

      Briefcase bc;
      bc.folder("PAYLOAD").PushBack(Bytes(kib * 1024));
      bc.folder(kCodeFolder).PushBackString("cab_set t ARRIVED [now_us]");
      SimTime start = kernel.sim().Now();
      (void)kernel.TransferAgent(ids[0], ids[hops], "ag_tacl", bc);
      kernel.sim().Run();
      SimTime latency = kernel.sim().Now() - start;

      table.AddRow({bench::Fmt("%zu KiB", kib), bench::Fmt("%zu", hops),
                    bench::Fmt("%.2f", static_cast<double>(latency) / kMillisecond),
                    bench::Fmt("%llu",
                               (unsigned long long)kernel.net().stats().bytes_on_wire)});
    }
  }
  std::printf(
      "\nSimulated migration latency (1 ms + 10 MB/s per hop; latency should\n"
      "scale linearly in both briefcase size and hop count — data cost only,\n"
      "since TACOMA restarts code rather than shipping stacks):\n");
  table.Print();
}

}  // namespace
}  // namespace tacoma

int main(int argc, char** argv) {
  std::printf("E4 — meet dispatch cost and migration latency (paper S2)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tacoma::MigrationLatencyTable();
  return 0;
}
