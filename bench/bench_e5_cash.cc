// E5 — Electronic cash: validation foils double-spending; mint throughput.
//
// Paper §3: "An attempt by an agent to spend retired or copied ECUs will be
// foiled if a validation agent is always consulted before any service is
// rendered."  The sweep runs marketplaces with a rising fraction of
// double-spending customers against (a) validate-first providers (zero goods
// lost) and (b) trusting providers (goods lost to every fraud, recovered only
// in court).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "cash/exchange.h"

namespace tacoma {
namespace {

using namespace tacoma::cash;

void BM_MintIssue(benchmark::State& state) {
  Mint mint(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mint.Issue(10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MintIssue);

void BM_MintValidate(benchmark::State& state) {
  Mint mint(1);
  Ecu note = mint.Issue(10);
  for (auto _ : state) {
    auto fresh = mint.Validate(note);
    benchmark::DoNotOptimize(fresh);
    note = std::move(fresh).value();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MintValidate);

void BM_MintRejectForgery(benchmark::State& state) {
  Mint mint(1);
  Ecu forged;
  forged.amount = 10;
  forged.serial = Bytes(32, 0x7f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mint.Validate(forged));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MintRejectForgery);

void BM_WalletPayCollect(benchmark::State& state) {
  Mint mint(1);
  Wallet a;
  Wallet b;
  for (int i = 0; i < 64; ++i) {
    a.Add(mint.Issue(10));
  }
  for (auto _ : state) {
    Briefcase bc;
    benchmark::DoNotOptimize(a.PayInto(&bc, 10));
    benchmark::DoNotOptimize(b.CollectFrom(&bc));
    // Swap roles to keep balances stable.
    std::swap(a, b);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WalletPayCollect);

struct FraudOutcome {
  int exchanges = 0;
  int frauds_attempted = 0;
  int frauds_blocked = 0;   // Aborted before goods shipped.
  int goods_lost = 0;       // Shipped without valid payment.
  int court_convictions = 0;
};

FraudOutcome RunFraudSweep(double fraud_rate, ProviderPolicy policy, uint64_t seed) {
  Kernel kernel(KernelOptions{seed, 5'000'000, false});
  SiteId customer = kernel.AddSite("customer");
  SiteId provider = kernel.AddSite("provider");
  SiteId bank = kernel.AddSite("bank");
  SiteId court = kernel.AddSite("court");
  for (SiteId a : {customer, provider, bank}) {
    for (SiteId b : {provider, bank, court}) {
      if (a != b) {
        kernel.net().AddLink(a, b);
      }
    }
  }
  SignatureAuthority auth(seed);
  Mint mint(seed);
  Notary notary(&auth);
  InstallMintAgent(&kernel, bank, &mint, &auth);
  InstallNotaryAgent(&kernel, court, &notary);

  MarketConfig config;
  config.customer_site = customer;
  config.provider_site = provider;
  config.mint_site = bank;
  config.notary_site = court;
  config.policy = policy;
  Marketplace market(&kernel, &auth, &mint, &notary, config);

  FraudOutcome out;
  Rng rng(seed);
  const int kExchanges = 40;
  market.FundCustomer(kExchanges * 2, 10);
  for (int i = 0; i < kExchanges; ++i) {
    bool fraud = rng.Bernoulli(fraud_rate);
    // Double-spend: the cheat mode pays honestly first, then replays copies.
    CheatMode mode =
        fraud ? CheatMode::kCustomerDoubleSpends : CheatMode::kHonest;
    std::string xid = "x" + std::to_string(i);
    if (market.StartExchange(xid, 10, mode).ok()) {
      ++out.exchanges;
    }
    kernel.sim().Run();

    const ExchangeRecord* rec = market.record(xid);
    bool replayed_copies = fraud && i > 0 && rec != nullptr;
    if (replayed_copies) {
      ++out.frauds_attempted;
      if (rec->aborted) {
        ++out.frauds_blocked;
      }
      if (rec->goods_delivered && !rec->payment_collected) {
        ++out.goods_lost;
        if (market.AuditExchange(xid).verdict == Verdict::kCustomerViolated) {
          ++out.court_convictions;
        }
      }
    }
  }
  return out;
}

void FraudTable(bool smoke, bench::MetricsArtifact* artifact) {
  bench::Table table({"fraud rate", "policy", "frauds", "blocked", "goods lost",
                      "court convictions"});
  const std::vector<double> full = {0.0, 0.1, 0.25, 0.5};
  const std::vector<double> quick = {0.25};
  for (double rate : smoke ? quick : full) {
    for (ProviderPolicy policy :
         {ProviderPolicy::kValidateFirst, ProviderPolicy::kTrusting}) {
      FraudOutcome out = RunFraudSweep(rate, policy, 1995);
      table.AddRow(
          {bench::Fmt("%.0f%%", rate * 100),
           policy == ProviderPolicy::kValidateFirst ? "validate-first" : "trusting",
           bench::Fmt("%d", out.frauds_attempted),
           bench::Fmt("%d", out.frauds_blocked), bench::Fmt("%d", out.goods_lost),
           bench::Fmt("%d", out.court_convictions)});
      if (artifact != nullptr && rate == 0.25) {
        const char* prefix = policy == ProviderPolicy::kValidateFirst
                                 ? "validate_first_"
                                 : "trusting_";
        artifact->Set(std::string(prefix) + "frauds",
                      static_cast<uint64_t>(out.frauds_attempted));
        artifact->Set(std::string(prefix) + "blocked",
                      static_cast<uint64_t>(out.frauds_blocked));
        artifact->Set(std::string(prefix) + "goods_lost",
                      static_cast<uint64_t>(out.goods_lost));
      }
    }
  }
  std::printf(
      "\nDouble-spend sweep, 40 exchanges each (validate-first providers block\n"
      "every replay; trusting providers lose goods but win every audit):\n");
  table.Print();
}

}  // namespace
}  // namespace tacoma

int main(int argc, char** argv) {
  // Strip --smoke/--metrics-out first: google-benchmark rejects flags it
  // does not know.
  tacoma::bench::SmokeArgs smoke = tacoma::bench::ParseSmokeArgs(&argc, argv);
  tacoma::bench::MetricsArtifact artifact("e5_cash");
  std::printf(
      "E5 — Electronic cash: mint throughput and double-spend detection "
      "(paper S3)\n\n");
  if (!smoke.smoke) {
    // The microbenches burn wall-clock calibrating; the smoke run only needs
    // the deterministic fraud sweep.
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  tacoma::FraudTable(smoke.smoke, &artifact);
  return artifact.WriteTo(smoke.metrics_out) ? 0 : 1;
}
