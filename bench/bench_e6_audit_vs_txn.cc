// E6 — Audited exchange vs the rejected transaction mechanism.
//
// Paper §3: "We rejected adding support for transactions to our system for
// two reasons: (1) Having such a mechanism would impact performance and would
// be effective only if it were trusted. (2) Such a mechanism would be alien
// to the computer illiterate."
//
// Head-to-head over identical site layouts: messages per exchange, settle
// latency (simulated), and behaviour when the trusted party dies
// mid-protocol — 2PC blocks with the customer's cash in escrow; the audited
// protocol has no such dependency and keeps settling.
#include "bench/bench_util.h"
#include "cash/exchange.h"
#include "cash/negotiate.h"
#include "cash/twophase.h"

namespace tacoma {
namespace {

using namespace tacoma::cash;

struct ProtocolCosts {
  double messages_per_exchange = 0;
  double bytes_per_exchange = 0;
  double settle_latency_ms = 0;
  int completed = 0;
};

ProtocolCosts RunAudited(int exchanges, uint64_t seed) {
  Kernel kernel(KernelOptions{seed, 5'000'000, false});
  SiteId customer = kernel.AddSite("customer");
  SiteId provider = kernel.AddSite("provider");
  SiteId bank = kernel.AddSite("bank");
  SiteId court = kernel.AddSite("court");
  for (SiteId a : {customer, provider, bank, court}) {
    for (SiteId b : {customer, provider, bank, court}) {
      if (a < b) {
        kernel.net().AddLink(a, b);
      }
    }
  }
  SignatureAuthority auth(seed);
  Mint mint(seed);
  Notary notary(&auth);
  InstallMintAgent(&kernel, bank, &mint, &auth);
  InstallNotaryAgent(&kernel, court, &notary);
  MarketConfig config;
  config.customer_site = customer;
  config.provider_site = provider;
  config.mint_site = bank;
  config.notary_site = court;
  Marketplace market(&kernel, &auth, &mint, &notary, config);
  market.FundCustomer(exchanges, 10);

  uint64_t messages0 = kernel.stats().transfers_sent;
  uint64_t bytes0 = kernel.net().stats().bytes_on_wire;
  std::vector<SimTime> latencies;
  ProtocolCosts costs;
  for (int i = 0; i < exchanges; ++i) {
    std::string xid = "x" + std::to_string(i);
    (void)market.StartExchange(xid, 10, CheatMode::kHonest);
    kernel.sim().Run();
    const ExchangeRecord* rec = market.record(xid);
    if (rec != nullptr && rec->goods_received) {
      ++costs.completed;
      latencies.push_back(rec->settled - rec->started);
    }
  }
  costs.messages_per_exchange =
      static_cast<double>(kernel.stats().transfers_sent - messages0) / exchanges;
  costs.bytes_per_exchange =
      static_cast<double>(kernel.net().stats().bytes_on_wire - bytes0) / exchanges;
  costs.settle_latency_ms = bench::Mean(latencies) / kMillisecond;
  return costs;
}

ProtocolCosts RunTwoPhase(int exchanges, uint64_t seed) {
  Kernel kernel(KernelOptions{seed, 5'000'000, false});
  SiteId customer = kernel.AddSite("customer");
  SiteId provider = kernel.AddSite("provider");
  SiteId coordinator = kernel.AddSite("coordinator");
  kernel.net().AddLink(customer, coordinator);
  kernel.net().AddLink(provider, coordinator);
  kernel.net().AddLink(customer, provider);
  Mint mint(seed);
  TwoPhaseExchange exchange(&kernel, TwoPhaseConfig{customer, provider, coordinator});
  std::vector<Ecu> notes;
  for (int i = 0; i < exchanges; ++i) {
    notes.push_back(mint.Issue(10));
  }
  exchange.FundCustomer(notes);

  uint64_t messages0 = kernel.stats().transfers_sent;
  uint64_t bytes0 = kernel.net().stats().bytes_on_wire;
  std::vector<SimTime> latencies;
  ProtocolCosts costs;
  for (int i = 0; i < exchanges; ++i) {
    std::string xid = "t" + std::to_string(i);
    (void)exchange.Start(xid, 10);
    kernel.sim().Run();
    const TxnRecord* rec = exchange.record(xid);
    if (rec != nullptr && rec->goods_transferred && rec->cash_transferred) {
      ++costs.completed;
      latencies.push_back(rec->settled - rec->started);
    }
  }
  costs.messages_per_exchange =
      static_cast<double>(kernel.stats().transfers_sent - messages0) / exchanges;
  costs.bytes_per_exchange =
      static_cast<double>(kernel.net().stats().bytes_on_wire - bytes0) / exchanges;
  costs.settle_latency_ms = bench::Mean(latencies) / kMillisecond;
  return costs;
}

void CostTable() {
  const int kExchanges = 50;
  ProtocolCosts audited = RunAudited(kExchanges, 1995);
  ProtocolCosts txn = RunTwoPhase(kExchanges, 1995);

  bench::Table table({"protocol", "completed", "msgs/exchange", "bytes/exchange",
                      "settle latency (ms)", "trusted party needed"});
  table.AddRow({"audited exchange", bench::Fmt("%d/%d", audited.completed, kExchanges),
                bench::Fmt("%.1f", audited.messages_per_exchange),
                bench::Fmt("%.0f", audited.bytes_per_exchange),
                bench::Fmt("%.2f", audited.settle_latency_ms),
                "mint only (payee-blind)"});
  table.AddRow({"2PC transaction", bench::Fmt("%d/%d", txn.completed, kExchanges),
                bench::Fmt("%.1f", txn.messages_per_exchange),
                bench::Fmt("%.0f", txn.bytes_per_exchange),
                bench::Fmt("%.2f", txn.settle_latency_ms),
                "coordinator (sees every deal)"});
  std::printf("\nPer-exchange cost, %d honest exchanges each.  Note: the audited\n"
              "protocol's receipt filings are OFF the critical path (async couriers);\n"
              "every 2PC message blocks the exchange:\n", kExchanges);
  table.Print();
}

void FailureTable() {
  // Kill the trusted party mid-stream and watch who keeps settling.
  bench::Table table({"protocol", "trusted-party crash", "settled", "stuck escrow"});

  // 2PC: crash the coordinator during exchange 5 of 10.
  {
    Kernel kernel(KernelOptions{7, 5'000'000, false});
    SiteId customer = kernel.AddSite("customer");
    SiteId provider = kernel.AddSite("provider");
    SiteId coordinator = kernel.AddSite("coordinator");
    kernel.net().AddLink(customer, coordinator);
    kernel.net().AddLink(provider, coordinator);
    kernel.net().AddLink(customer, provider);
    Mint mint(7);
    TwoPhaseExchange exchange(&kernel,
                              TwoPhaseConfig{customer, provider, coordinator});
    std::vector<Ecu> notes;
    for (int i = 0; i < 10; ++i) {
      notes.push_back(mint.Issue(10));
    }
    exchange.FundCustomer(notes);
    int settled = 0;
    for (int i = 0; i < 10; ++i) {
      (void)exchange.Start("t" + std::to_string(i), 10);
      if (i == 5) {
        // Crash inside the blocking window of this transaction.
        kernel.sim().After(2500, [&kernel, coordinator] {
          kernel.CrashSite(coordinator);
        });
      }
      kernel.sim().Run();
      const TxnRecord* rec = exchange.record("t" + std::to_string(i));
      if (rec != nullptr && rec->goods_transferred) {
        ++settled;
      }
    }
    uint64_t escrow_stuck = 100 - exchange.customer_wallet().Balance() -
                            exchange.provider_wallet().Balance();
    table.AddRow({"2PC transaction", "coordinator at exchange 5",
                  bench::Fmt("%d/10", settled),
                  bench::Fmt("%llu ECU", (unsigned long long)escrow_stuck)});
  }

  // Audited: crash the notary mid-stream — exchanges still settle (receipts
  // for the window are lost, which only weakens later audits).
  {
    Kernel kernel(KernelOptions{7, 5'000'000, false});
    SiteId customer = kernel.AddSite("customer");
    SiteId provider = kernel.AddSite("provider");
    SiteId bank = kernel.AddSite("bank");
    SiteId court = kernel.AddSite("court");
    for (SiteId a : {customer, provider, bank, court}) {
      for (SiteId b : {customer, provider, bank, court}) {
        if (a < b) {
          kernel.net().AddLink(a, b);
        }
      }
    }
    SignatureAuthority auth(7);
    Mint mint(7);
    Notary notary(&auth);
    InstallMintAgent(&kernel, bank, &mint, &auth);
    InstallNotaryAgent(&kernel, court, &notary);
    MarketConfig config;
    config.customer_site = customer;
    config.provider_site = provider;
    config.mint_site = bank;
    config.notary_site = court;
    Marketplace market(&kernel, &auth, &mint, &notary, config);
    market.FundCustomer(10, 10);
    int settled = 0;
    for (int i = 0; i < 10; ++i) {
      if (i == 5) {
        kernel.CrashSite(court);
      }
      std::string xid = "x" + std::to_string(i);
      (void)market.StartExchange(xid, 10, CheatMode::kHonest);
      kernel.sim().Run();
      if (market.record(xid)->goods_received) {
        ++settled;
      }
    }
    uint64_t stuck = 100 - market.customer_wallet().Balance() -
                     market.provider_wallet().Balance();
    table.AddRow({"audited exchange", "notary (court) at exchange 5",
                  bench::Fmt("%d/10", settled),
                  bench::Fmt("%llu ECU", (unsigned long long)stuck)});
  }

  std::printf("\nTrusted-party failure: 2PC blocks with escrow stuck; the audited\n"
              "protocol keeps settling (the paper's trust objection, quantified):\n");
  table.Print();
}

void NegotiationTable() {
  // §1's "perhaps after some negotiation": rounds and outcome as a function
  // of how much the private limits overlap.
  bench::Table table({"ask", "floor", "budget", "outcome", "price", "rounds",
                      "msgs"});
  struct Case {
    uint64_t ask, floor, budget;
  };
  for (const Case& c : {Case{100, 40, 95}, Case{100, 60, 80}, Case{100, 70, 72},
                        Case{100, 80, 50}, Case{100, 99, 98}}) {
    Kernel kernel(KernelOptions{5, 5'000'000, false});
    SiteId customer = kernel.AddSite("customer");
    SiteId provider = kernel.AddSite("provider");
    kernel.net().AddLink(customer, provider);
    NegotiationConfig config;
    config.customer_site = customer;
    config.provider_site = provider;
    config.ask = c.ask;
    config.floor = c.floor;
    config.budget = c.budget;
    config.step = 10;
    Negotiator negotiator(&kernel, config);
    uint64_t messages0 = kernel.stats().transfers_sent;
    (void)negotiator.Start("n");
    kernel.sim().Run();
    const NegotiationRecord* rec = negotiator.record("n");
    table.AddRow({bench::Fmt("%llu", (unsigned long long)c.ask),
                  bench::Fmt("%llu", (unsigned long long)c.floor),
                  bench::Fmt("%llu", (unsigned long long)c.budget),
                  rec->agreed ? "deal" : "walk away",
                  rec->agreed ? bench::Fmt("%llu", (unsigned long long)rec->price)
                              : "-",
                  bench::Fmt("%d", rec->rounds),
                  bench::Fmt("%llu", (unsigned long long)(kernel.stats().transfers_sent -
                                                          messages0))});
  }
  std::printf("\nNegotiation before the exchange (S1): alternating concessions,\n"
              "step 10; private limits (floor/budget) never travel:\n");
  table.Print();
}

}  // namespace
}  // namespace tacoma

int main() {
  tacoma::bench::PrintHeader(
      "E6 — Audits vs transactions for fair exchange",
      "transactions were rejected: performance cost, trust requirement, alien "
      "metaphor (paper S3)");
  tacoma::CostTable();
  tacoma::FailureTable();
  tacoma::NegotiationTable();
  return 0;
}
