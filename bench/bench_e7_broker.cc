// E7 — Broker scheduling: distributing requests on load and capacity.
//
// Paper §4: "Brokers are expected to communicate among themselves and with
// the service providers, so that requests can be distributed amongst service
// providers based on load and capacity."
//
// A client streams jobs at a pool of heterogeneous workers (speeds 1x..Nx)
// under different placement policies; monitors feed load reports to the
// broker.  Reported: mean/p99 completion latency, and the imbalance between
// the busiest and average worker.  The staleness sweep shows why monitors
// must keep reporting (the paper's WAN-routing analogy).
#include "bench/bench_util.h"
#include "sched/jobs.h"
#include "sched/loadgen.h"
#include "sched/monitor.h"

namespace tacoma {
namespace {

using namespace tacoma::sched;

struct PolicyOutcome {
  size_t completed = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  double imbalance = 0;  // max worker busy-time / mean worker busy-time.
};

PolicyOutcome RunPolicy(Policy policy, bool use_broker, size_t workers, size_t jobs,
                        SimTime report_period, uint64_t seed) {
  Kernel kernel(KernelOptions{seed, 5'000'000, false});
  SiteId client = kernel.AddSite("client");
  SiteId broker_site = kernel.AddSite("brokersite");
  kernel.net().AddLink(client, broker_site);

  BrokerService broker(&kernel, broker_site);
  broker.Install();

  std::vector<std::unique_ptr<JobServer>> servers;
  std::vector<std::unique_ptr<Monitor>> monitors;
  std::vector<ProviderInfo> direct;
  for (size_t i = 0; i < workers; ++i) {
    SiteId site = kernel.AddSite("w" + std::to_string(i));
    kernel.net().AddLink(site, broker_site);
    kernel.net().AddLink(site, client);
    double speed = 1.0 + static_cast<double>(i);
    auto server = std::make_unique<JobServer>(&kernel, site, "worker", speed);
    server->Install();
    ProviderInfo p;
    p.service = "compute";
    p.site = kernel.net().site_name(site);
    p.agent = "worker";
    p.capacity = speed;
    broker.Register(p);
    direct.push_back(p);
    if (report_period > 0) {
      monitors.push_back(std::make_unique<Monitor>(
          &kernel, server.get(), std::vector<SiteId>{broker_site}, report_period));
      monitors.back()->Start();
    }
    servers.push_back(std::move(server));
  }

  LoadGenOptions options;
  options.client_site = client;
  options.broker_site = broker_site;
  options.use_broker = use_broker;
  options.policy = policy;
  options.job_count = jobs;
  options.job_duration_us = 40 * kMillisecond;
  options.inter_arrival_us = 6 * kMillisecond;
  LoadGenerator gen(&kernel, options, direct);
  gen.Start();
  kernel.sim().RunUntil(300 * kSecond);

  PolicyOutcome out;
  out.completed = gen.completed();
  auto latencies = gen.Latencies();
  out.mean_ms = bench::Mean(latencies) / kMillisecond;
  out.p99_ms = static_cast<double>(bench::Percentile(latencies, 99)) / kMillisecond;
  std::vector<double> busy;
  for (const auto& server : servers) {
    busy.push_back(static_cast<double>(server->stats().busy_time));
  }
  double mean_busy = bench::Mean(busy);
  double max_busy = *std::max_element(busy.begin(), busy.end());
  out.imbalance = mean_busy > 0 ? max_busy / mean_busy : 0;
  return out;
}

void PolicyTable(bool smoke, bench::MetricsArtifact* artifact) {
  bench::Table table({"policy", "completed", "mean latency (ms)", "p99 (ms)",
                      "busy-time imbalance"});
  const size_t kWorkers = 4;
  const size_t kJobs = smoke ? 40 : 120;
  const SimTime kReport = 10 * kMillisecond;

  struct Row {
    const char* name;
    Policy policy;
    bool use_broker;
  };
  for (const Row& row :
       {Row{"no broker (random direct)", Policy::kRandom, false},
        Row{"broker: random", Policy::kRandom, true},
        Row{"broker: round robin", Policy::kRoundRobin, true},
        Row{"broker: least loaded", Policy::kLeastLoaded, true},
        Row{"broker: weighted capacity", Policy::kWeightedCapacity, true}}) {
    PolicyOutcome out =
        RunPolicy(row.policy, row.use_broker, kWorkers, kJobs, kReport, 1995);
    table.AddRow({row.name, bench::Fmt("%zu/%zu", out.completed, kJobs),
                  bench::Fmt("%.1f", out.mean_ms), bench::Fmt("%.1f", out.p99_ms),
                  bench::Fmt("%.2f", out.imbalance)});
    if (artifact != nullptr && row.policy == Policy::kLeastLoaded && row.use_broker) {
      artifact->Set("least_loaded_completed", out.completed);
      artifact->SetDouble("least_loaded_mean_ms", out.mean_ms);
      artifact->SetDouble("least_loaded_p99_ms", out.p99_ms);
      artifact->SetDouble("least_loaded_imbalance", out.imbalance);
    }
  }
  std::printf("\n4 workers with speeds 1x/2x/3x/4x, 120 jobs (40ms nominal each,\n"
              "6ms inter-arrival).  Load/capacity-aware policies should cut latency\n"
              "and imbalance vs blind placement:\n");
  table.Print();
}

void StalenessTable() {
  bench::Table table({"report period", "mean latency (ms)", "p99 (ms)"});
  for (SimTime period : {2 * kMillisecond, 10 * kMillisecond, 50 * kMillisecond,
                         250 * kMillisecond, SimTime{0}}) {
    PolicyOutcome out = RunPolicy(Policy::kLeastLoaded, true, 4, 120, period, 1995);
    table.AddRow({period == 0 ? "never (stale forever)"
                              : bench::Fmt("%llu ms", (unsigned long long)(
                                                          period / kMillisecond)),
                  bench::Fmt("%.1f", out.mean_ms), bench::Fmt("%.1f", out.p99_ms)});
  }
  std::printf("\nLoad-report staleness under least-loaded (stale state degrades\n"
              "toward blind placement — the routing-protocol analogy of S4):\n");
  table.Print();
}

}  // namespace
}  // namespace tacoma

int main(int argc, char** argv) {
  tacoma::bench::SmokeArgs smoke = tacoma::bench::ParseSmokeArgs(&argc, argv);
  tacoma::bench::MetricsArtifact artifact("e7_broker");
  tacoma::bench::PrintHeader(
      "E7 — Broker scheduling: load- and capacity-aware placement",
      "brokers distribute requests amongst providers based on load and "
      "capacity (paper S4)");
  tacoma::PolicyTable(smoke.smoke, &artifact);
  if (!smoke.smoke) {
    tacoma::StalenessTable();
  }
  return artifact.WriteTo(smoke.metrics_out) ? 0 : 1;
}
