// E8 — Rear guards: surviving site failures (§5).
//
// Paper: "we have been investigating ways to ensure that a computation can
// proceed, even though one or more of its agents is the victim of a site
// failure.  The solutions we have studied involve leaving a rear guard agent
// behind whenever execution moves from one site to another."
//
// An itinerary agent walks N data sites and returns home.  Each non-home
// site crashes with probability p at a random moment during the walk (and
// restarts later).  Completion rate, completion time, and message overhead
// are compared with and without rear guards, over R independent trials.
#include <cstring>

#include "bench/bench_util.h"
#include "ft/rearguard.h"

namespace tacoma {
namespace {

// Metrics snapshot from the last guarded trial, exported via --metrics-out so
// ci/check.sh can verify the ft.* key surface against the golden list.
std::string g_metrics_json;

constexpr char kGuardedAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    ft_jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE [now_us]
    ft_retire
  }
)";

constexpr char kUnguardedAgent[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    jump [bc_pop ITINERARY]
  } else {
    cab_set t DONE [now_us]
  }
)";

struct TrialOutcome {
  bool completed = false;
  SimTime completion_time = 0;
  uint64_t transfers = 0;
  uint64_t relaunches = 0;
};

TrialOutcome RunTrial(bool guarded, size_t hops, double crash_prob, uint64_t seed,
                      SimTime heartbeat = 25 * kMillisecond) {
  Kernel kernel(KernelOptions{seed, 5'000'000, false});
  SiteId home = kernel.AddSite("home");
  std::vector<SiteId> sites;
  for (size_t i = 0; i < hops; ++i) {
    sites.push_back(kernel.AddSite("d" + std::to_string(i)));
  }
  // Full mesh so recovery can always route around dead sites.
  kernel.net().AddLink(home, sites[0]);
  for (size_t i = 0; i < sites.size(); ++i) {
    kernel.net().AddLink(home, sites[i]);
    for (size_t j = i + 1; j < sites.size(); ++j) {
      kernel.net().AddLink(sites[i], sites[j]);
    }
  }

  ft::RearGuard guard(&kernel, ft::GuardOptions{heartbeat, 3, 6});
  if (guarded) {
    guard.Install();
  }

  // Failure injection: each data site may crash once during the walk window
  // and restarts 300ms later.
  Rng rng(seed * 7919 + 13);
  for (SiteId site : sites) {
    if (rng.Bernoulli(crash_prob)) {
      SimTime when = rng.Uniform(static_cast<uint64_t>(hops) * 2 * kMillisecond) + 1;
      kernel.sim().At(when, [&kernel, site] { kernel.CrashSite(site); });
      kernel.sim().At(when + 300 * kMillisecond,
                      [&kernel, site] { kernel.RestartSite(site); });
    }
  }

  Briefcase bc;
  bc.SetString("AGENT", "walker");
  for (SiteId site : sites) {
    bc.folder("ITINERARY").PushBackString(kernel.net().site_name(site));
  }
  bc.folder("ITINERARY").PushBackString("home");
  (void)kernel.LaunchAgent(home, guarded ? kGuardedAgent : kUnguardedAgent, bc);
  kernel.sim().RunUntil(10 * kSecond);

  TrialOutcome out;
  Place* home_place = kernel.place(home);
  if (home_place != nullptr && home_place->Cabinet("t").HasFolder("DONE")) {
    out.completed = true;
    out.completion_time = static_cast<SimTime>(std::strtoull(
        home_place->Cabinet("t").GetSingleString("DONE")->c_str(), nullptr, 10));
  }
  out.transfers = kernel.stats().transfers_sent;
  out.relaunches = guard.stats().relaunches;
  if (guarded) {
    g_metrics_json = kernel.metrics().JsonSnapshot();
  }
  return out;
}

// Returns false if the smoke gate fails: with a full mesh and restarting
// sites, rear guards must complete every trial at every swept crash rate.
bool SweepFailureRate(bool smoke) {
  const size_t kHops = 6;
  const int kTrials = smoke ? 5 : 25;
  bool guarded_always_completed = true;
  bench::Table table({"crash prob/site", "variant", "completed", "mean msgs",
                      "relaunches (total)"});
  std::vector<double> probs = smoke
                                  ? std::vector<double>{0.0, 0.3}
                                  : std::vector<double>{0.0, 0.05, 0.1, 0.2,
                                                        0.3, 0.5};
  for (double p : probs) {
    for (bool guarded : {false, true}) {
      int completed = 0;
      uint64_t messages = 0;
      uint64_t relaunches = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        TrialOutcome out =
            RunTrial(guarded, kHops, p, 1000 + static_cast<uint64_t>(trial));
        completed += out.completed ? 1 : 0;
        messages += out.transfers;
        relaunches += out.relaunches;
      }
      if (guarded && completed != kTrials) {
        guarded_always_completed = false;
      }
      table.AddRow({bench::Fmt("%.0f%%", p * 100), guarded ? "rear guards" : "bare",
                    bench::Fmt("%d/%d", completed, kTrials),
                    bench::Fmt("%.1f", static_cast<double>(messages) / kTrials),
                    bench::Fmt("%llu", (unsigned long long)relaunches)});
    }
  }
  std::printf("\n%zu-hop itinerary, %d trials per cell; crashed sites restart after\n"
              "300ms.  Bare agents vanish with the first lost hop; guarded agents\n"
              "relaunch from checkpoints (at-least-once semantics):\n",
              kHops, kTrials);
  table.Print();
  return guarded_always_completed;
}

void OverheadTable(bool smoke) {
  // The price of protection in the failure-free case.
  bench::Table table({"hops", "variant", "sim time (ms)", "messages"});
  std::vector<size_t> hop_counts =
      smoke ? std::vector<size_t>{2, 8} : std::vector<size_t>{2, 4, 8, 16};
  for (size_t hops : hop_counts) {
    for (bool guarded : {false, true}) {
      TrialOutcome out = RunTrial(guarded, hops, 0.0, 555);
      table.AddRow({bench::Fmt("%zu", hops), guarded ? "rear guards" : "bare",
                    bench::Fmt("%.1f",
                               static_cast<double>(out.completion_time) / kMillisecond),
                    bench::Fmt("%llu", (unsigned long long)out.transfers)});
    }
  }
  std::printf("\nFailure-free overhead (guard heartbeats and retirement waves cost\n"
              "messages; sim time includes the post-completion guard wind-down):\n");
  table.Print();
}

void HeartbeatAblation(bool smoke) {
  // Design-choice ablation: the heartbeat sets the failure-detection latency
  // vs message-overhead trade-off (recovery fires after max_misses+1 ticks).
  const size_t kHops = 6;
  const int kTrials = smoke ? 5 : 20;
  const double kCrashProb = 0.3;
  bench::Table table({"heartbeat", "completed", "mean completion (ms)",
                      "mean msgs"});
  std::vector<SimTime> heartbeats =
      smoke ? std::vector<SimTime>{25 * kMillisecond, 100 * kMillisecond}
            : std::vector<SimTime>{10 * kMillisecond, 25 * kMillisecond,
                                   50 * kMillisecond, 100 * kMillisecond,
                                   200 * kMillisecond};
  for (SimTime heartbeat : heartbeats) {
    int completed = 0;
    uint64_t messages = 0;
    std::vector<SimTime> times;
    for (int trial = 0; trial < kTrials; ++trial) {
      TrialOutcome out = RunTrial(true, kHops, kCrashProb,
                                  2000 + static_cast<uint64_t>(trial), heartbeat);
      completed += out.completed ? 1 : 0;
      messages += out.transfers;
      if (out.completed) {
        times.push_back(out.completion_time);
      }
    }
    table.AddRow({bench::Fmt("%llu ms", (unsigned long long)(heartbeat / kMillisecond)),
                  bench::Fmt("%d/%d", completed, kTrials),
                  bench::Fmt("%.0f", bench::Mean(times) / kMillisecond),
                  bench::Fmt("%.1f", static_cast<double>(messages) / kTrials)});
  }
  std::printf("\nHeartbeat ablation at 30%% crash probability: faster heartbeats\n"
              "detect failures sooner (lower completion time) but cost messages:\n");
  table.Print();
}

void CyclicTable() {
  // §5's hard case: cyclic itineraries.  home -> d0 -> d1 -> d0 -> d1 -> home.
  Kernel kernel(KernelOptions{77, 5'000'000, false});
  SiteId home = kernel.AddSite("home");
  SiteId d0 = kernel.AddSite("d0");
  SiteId d1 = kernel.AddSite("d1");
  kernel.net().AddLink(home, d0);
  kernel.net().AddLink(d0, d1);
  kernel.net().AddLink(d1, home);
  ft::RearGuard guard(&kernel, ft::GuardOptions{25 * kMillisecond, 3, 6});
  guard.Install();

  Briefcase bc;
  bc.SetString("AGENT", "cyclist");
  for (const char* s : {"d0", "d1", "d0", "d1", "home"}) {
    bc.folder("ITINERARY").PushBackString(s);
  }
  (void)kernel.LaunchAgent(home, kGuardedAgent, bc);
  kernel.sim().RunUntil(5 * kSecond);

  bench::Table table({"metric", "value"});
  table.AddRow({"completed", kernel.place(home)->Cabinet("t").HasFolder("DONE")
                                 ? "yes"
                                 : "no"});
  table.AddRow({"guard deposits (5 hops, revisits distinct)",
                bench::Fmt("%llu", (unsigned long long)guard.stats().deposits)});
  table.AddRow({"guards left after retirement wave",
                bench::Fmt("%zu", guard.TotalGuards())});
  std::printf("\nCyclic itinerary (home,d0,d1,d0,d1,home) — revisit guards are keyed\n"
              "by hop sequence so the wave still terminates:\n");
  table.Print();
}

}  // namespace
}  // namespace tacoma

// Flags:
//   --smoke              trimmed trial counts plus a completion gate for CI
//   --metrics-out PATH   write the last guarded trial's unified metrics
//                        registry snapshot as JSON to PATH
int main(int argc, char** argv) {
  bool smoke = false;
  const char* metrics_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--metrics-out PATH]\n", argv[0]);
      return 2;
    }
  }
  tacoma::bench::PrintHeader(
      "E8 — Rear guards: computations survive site failures",
      "a rear guard left at each hop relaunches vanished agents and retires "
      "when no longer needed (paper S5)");
  bool guarded_ok = tacoma::SweepFailureRate(smoke);
  tacoma::OverheadTable(smoke);
  tacoma::HeartbeatAblation(smoke);
  tacoma::CyclicTable();
  int rc = 0;
  if (smoke && !guarded_ok) {
    std::printf("SMOKE FAIL: a guarded trial failed to complete its itinerary\n");
    rc = 1;
  } else if (smoke) {
    std::printf("\n[smoke] ok\n");
  }
  if (metrics_out != nullptr) {
    std::FILE* f = std::fopen(metrics_out, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_out);
      return 1;
    }
    std::fprintf(f,
                 "{\"bench\":\"bench_e8_rearguard\",\"smoke\":%s,\"metrics\":%s}\n",
                 smoke ? "true" : "false", tacoma::g_metrics_json.c_str());
    std::fclose(f);
    std::printf("\nmetrics snapshot written to %s\n", metrics_out);
  }
  return rc;
}
