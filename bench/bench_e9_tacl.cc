// E9 — TACL interpreter micro-costs.
//
// Paper §6: "Each site in our system runs a Tcl interpreter, which provides
// the place where agents execute."  The place is a real interpreter; these
// micro-benchmarks size its costs: parsing, command dispatch, control flow,
// expression evaluation, proc calls, and list handling.
#include <benchmark/benchmark.h>

#include "tacl/interp.h"
#include "tacl/list.h"
#include "tacl/parse.h"

namespace tacoma::tacl {
namespace {

void BM_ParseScript(benchmark::State& state) {
  std::string script;
  for (int i = 0; i < 50; ++i) {
    script += "set v" + std::to_string(i) + " [expr {$a + " + std::to_string(i) +
              "}]\n";
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseScript(script));
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_ParseScript);

void BM_CommandDispatch(benchmark::State& state) {
  Interp interp;
  interp.SetVar("x", "1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Eval("set x 2"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CommandDispatch);

void BM_WhileLoop(benchmark::State& state) {
  Interp interp;
  int64_t n = state.range(0);
  std::string script =
      "set s 0; set i 0; while {$i < " + std::to_string(n) +
      "} {incr s $i; incr i}; set s";
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Eval(script));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WhileLoop)->Arg(100)->Arg(1000);

void BM_ExprArithmetic(benchmark::State& state) {
  Interp interp;
  interp.SetVar("a", "17");
  interp.SetVar("b", "4");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvalExpr(interp, "($a * $b + 3) % 7 == 2 && $a > $b"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ExprArithmetic);

void BM_ProcCall(benchmark::State& state) {
  Interp interp;
  (void)interp.Eval("proc add {a b} {return [expr {$a + $b}]}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Eval("add 3 4"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProcCall);

void BM_RecursiveFib(benchmark::State& state) {
  Interp interp;
  (void)interp.Eval(
      "proc fib {n} {if {$n < 2} {return $n}; "
      "return [expr {[fib [expr {$n-1}]] + [fib [expr {$n-2}]]}]}");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Eval("fib 12"));
  }
}
BENCHMARK(BM_RecursiveFib);

void BM_ListOps(benchmark::State& state) {
  Interp interp;
  std::vector<std::string> elements;
  for (int i = 0; i < 100; ++i) {
    elements.push_back("item" + std::to_string(i));
  }
  interp.SetVar("l", FormatList(elements));
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Eval("lindex $l 50"));
    benchmark::DoNotOptimize(interp.Eval("llength $l"));
    benchmark::DoNotOptimize(interp.Eval("lsearch $l item77"));
  }
}
BENCHMARK(BM_ListOps);

void BM_ForeachSum(benchmark::State& state) {
  Interp interp;
  std::vector<std::string> elements;
  for (int i = 0; i < 200; ++i) {
    elements.push_back(std::to_string(i));
  }
  interp.SetVar("l", FormatList(elements));
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Eval("set s 0; foreach x $l {incr s $x}; set s"));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ForeachSum);

void BM_StringOps(benchmark::State& state) {
  Interp interp;
  interp.SetVar("s", "the quick brown fox jumps over the lazy dog");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Eval("string toupper $s"));
    benchmark::DoNotOptimize(interp.Eval("string match {*fox*} $s"));
    benchmark::DoNotOptimize(interp.Eval("split $s"));
  }
}
BENCHMARK(BM_StringOps);

void BM_InterpConstruction(benchmark::State& state) {
  // Every agent activation builds a fresh interpreter: this is the floor of
  // activation cost.
  for (auto _ : state) {
    Interp interp;
    benchmark::DoNotOptimize(&interp);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InterpConstruction);

void BM_ParseCacheEffect(benchmark::State& state) {
  // Loop bodies hit the parse cache; this measures eval of an already-cached
  // script vs BM_ParseScript which re-parses cold.
  Interp interp;
  interp.SetVar("a", "1");
  std::string script = "set b [expr {$a + 1}]";
  (void)interp.Eval(script);  // Warm the cache.
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.Eval(script));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseCacheEffect);

}  // namespace
}  // namespace tacoma::tacl

int main(int argc, char** argv) {
  std::printf("E9 — TACL interpreter micro-costs (paper S6: the place is a real\n"
              "interpreter; agents are source strings evaluated per activation)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
