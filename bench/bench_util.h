// Shared helpers for the experiment harness: fixed-width table printing and
// simple statistics.  Each bench binary regenerates the table(s) for one
// experiment from EXPERIMENTS.md.
#ifndef TACOMA_BENCH_BENCH_UTIL_H_
#define TACOMA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"

namespace tacoma::bench {

inline void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s", static_cast<int>(widths[c] + 2), cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    size_t total = std::accumulate(widths.begin(), widths.end(), size_t{0}) +
                   2 * widths.size();
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

// --- CI smoke mode and metrics artifacts ------------------------------------
//
// Every retrofitted bench binary accepts two flags:
//   --smoke               reduced sweeps, sized for CI (seconds, not minutes)
//   --metrics-out <path>  write the run's headline numbers as one JSON object
// ParseSmokeArgs strips both out of argv in place, so downstream argument
// parsers (google-benchmark's Initialize in bench_e5) never see them.

struct SmokeArgs {
  bool smoke = false;
  std::string metrics_out;  // Empty: no artifact.
};

inline SmokeArgs ParseSmokeArgs(int* argc, char** argv) {
  SmokeArgs out;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      out.smoke = true;
    } else if (arg == "--metrics-out" && i + 1 < *argc) {
      out.metrics_out = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      out.metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return out;
}

// Headline numbers of one bench run, written as
// {"bench":"<name>","metrics":{...}} for the CI perf-smoke trajectory
// artifacts (ci/check.sh collects them as BENCH_*.json).  Keys are sorted, so
// a fixed-seed run produces a byte-identical artifact.
class MetricsArtifact {
 public:
  explicit MetricsArtifact(std::string bench) : bench_(std::move(bench)) {}

  void Set(const std::string& name, uint64_t value) {
    values_[name] = std::to_string(value);
  }
  void SetDouble(const std::string& name, double value) {
    values_[name] = Fmt("%.4f", value);
  }
  // `json` must already be valid JSON (a nested document, a quoted string).
  void SetRaw(const std::string& name, std::string json) {
    values_[name] = std::move(json);
  }

  std::string Json() const {
    std::string out = "{\"bench\":\"" + JsonEscape(bench_) + "\",\"metrics\":{";
    bool first = true;
    for (const auto& [name, value] : values_) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"' + JsonEscape(name) + "\":" + value;
    }
    out += "}}";
    return out;
  }

  // Writes the artifact; empty path is a no-op success (flag not given).
  bool WriteTo(const std::string& path) const {
    if (path.empty()) {
      return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write metrics artifact: %s\n", path.c_str());
      return false;
    }
    const std::string doc = Json();
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return written == doc.size();
  }

 private:
  std::string bench_;
  std::map<std::string, std::string> values_;
};

// Percentile over a copy (p in [0, 100]).  Thin aliases over the shared
// statistics helpers in util/metrics.h, kept so bench code reads naturally.
template <typename T>
T Percentile(std::vector<T> values, double p) {
  return PercentileOf(std::move(values), p);
}

template <typename T>
double Mean(const std::vector<T>& values) {
  return MeanOf(values);
}

}  // namespace tacoma::bench

#endif  // TACOMA_BENCH_BENCH_UTIL_H_
