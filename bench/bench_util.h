// Shared helpers for the experiment harness: fixed-width table printing and
// simple statistics.  Each bench binary regenerates the table(s) for one
// experiment from EXPERIMENTS.md.
#ifndef TACOMA_BENCH_BENCH_UTIL_H_
#define TACOMA_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace tacoma::bench {

inline void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s", static_cast<int>(widths[c] + 2), cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(columns_);
    size_t total = std::accumulate(widths.begin(), widths.end(), size_t{0}) +
                   2 * widths.size();
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, ...) {
  char buf[128];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

// Percentile over a copy (p in [0, 100]).  Thin aliases over the shared
// statistics helpers in util/metrics.h, kept so bench code reads naturally.
template <typename T>
T Percentile(std::vector<T> values, double p) {
  return PercentileOf(std::move(values), p);
}

template <typename T>
double Mean(const std::vector<T>& values) {
  return MeanOf(values);
}

}  // namespace tacoma::bench

#endif  // TACOMA_BENCH_BENCH_UTIL_H_
