file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_bandwidth.dir/bench_e1_bandwidth.cc.o"
  "CMakeFiles/bench_e1_bandwidth.dir/bench_e1_bandwidth.cc.o.d"
  "bench_e1_bandwidth"
  "bench_e1_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
