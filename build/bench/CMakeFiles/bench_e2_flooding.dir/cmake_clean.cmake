file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_flooding.dir/bench_e2_flooding.cc.o"
  "CMakeFiles/bench_e2_flooding.dir/bench_e2_flooding.cc.o.d"
  "bench_e2_flooding"
  "bench_e2_flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
