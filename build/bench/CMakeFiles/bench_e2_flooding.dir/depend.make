# Empty dependencies file for bench_e2_flooding.
# This may be replaced when dependencies are built.
