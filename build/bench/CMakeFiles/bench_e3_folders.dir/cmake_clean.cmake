file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_folders.dir/bench_e3_folders.cc.o"
  "CMakeFiles/bench_e3_folders.dir/bench_e3_folders.cc.o.d"
  "bench_e3_folders"
  "bench_e3_folders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_folders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
