file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_meet_migrate.dir/bench_e4_meet_migrate.cc.o"
  "CMakeFiles/bench_e4_meet_migrate.dir/bench_e4_meet_migrate.cc.o.d"
  "bench_e4_meet_migrate"
  "bench_e4_meet_migrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_meet_migrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
