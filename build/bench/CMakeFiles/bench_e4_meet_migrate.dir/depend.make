# Empty dependencies file for bench_e4_meet_migrate.
# This may be replaced when dependencies are built.
