file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_cash.dir/bench_e5_cash.cc.o"
  "CMakeFiles/bench_e5_cash.dir/bench_e5_cash.cc.o.d"
  "bench_e5_cash"
  "bench_e5_cash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_cash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
