# Empty dependencies file for bench_e5_cash.
# This may be replaced when dependencies are built.
