# Empty compiler generated dependencies file for bench_e6_audit_vs_txn.
# This may be replaced when dependencies are built.
