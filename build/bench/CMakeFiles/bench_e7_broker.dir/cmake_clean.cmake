file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_broker.dir/bench_e7_broker.cc.o"
  "CMakeFiles/bench_e7_broker.dir/bench_e7_broker.cc.o.d"
  "bench_e7_broker"
  "bench_e7_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
