file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_rearguard.dir/bench_e8_rearguard.cc.o"
  "CMakeFiles/bench_e8_rearguard.dir/bench_e8_rearguard.cc.o.d"
  "bench_e8_rearguard"
  "bench_e8_rearguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_rearguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
