# Empty dependencies file for bench_e8_rearguard.
# This may be replaced when dependencies are built.
