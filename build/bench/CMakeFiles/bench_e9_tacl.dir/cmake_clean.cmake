file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_tacl.dir/bench_e9_tacl.cc.o"
  "CMakeFiles/bench_e9_tacl.dir/bench_e9_tacl.cc.o.d"
  "bench_e9_tacl"
  "bench_e9_tacl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_tacl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
