file(REMOVE_RECURSE
  "CMakeFiles/agent_mail.dir/agent_mail.cc.o"
  "CMakeFiles/agent_mail.dir/agent_mail.cc.o.d"
  "agent_mail"
  "agent_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
