# Empty dependencies file for agent_mail.
# This may be replaced when dependencies are built.
