file(REMOVE_RECURSE
  "CMakeFiles/flooding.dir/flooding.cc.o"
  "CMakeFiles/flooding.dir/flooding.cc.o.d"
  "flooding"
  "flooding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flooding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
