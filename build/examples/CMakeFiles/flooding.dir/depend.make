# Empty dependencies file for flooding.
# This may be replaced when dependencies are built.
