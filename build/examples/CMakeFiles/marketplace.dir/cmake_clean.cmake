file(REMOVE_RECURSE
  "CMakeFiles/marketplace.dir/marketplace.cc.o"
  "CMakeFiles/marketplace.dir/marketplace.cc.o.d"
  "marketplace"
  "marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
