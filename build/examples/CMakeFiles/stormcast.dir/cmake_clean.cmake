file(REMOVE_RECURSE
  "CMakeFiles/stormcast.dir/stormcast.cc.o"
  "CMakeFiles/stormcast.dir/stormcast.cc.o.d"
  "stormcast"
  "stormcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
