# Empty compiler generated dependencies file for stormcast.
# This may be replaced when dependencies are built.
