file(REMOVE_RECURSE
  "CMakeFiles/tacoma_shell.dir/tacoma_shell.cc.o"
  "CMakeFiles/tacoma_shell.dir/tacoma_shell.cc.o.d"
  "tacoma_shell"
  "tacoma_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
