# Empty compiler generated dependencies file for tacoma_shell.
# This may be replaced when dependencies are built.
