# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_agent_mail "/root/repo/build/examples/agent_mail")
set_tests_properties(example_agent_mail PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_flooding "/root/repo/build/examples/flooding")
set_tests_properties(example_flooding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_marketplace "/root/repo/build/examples/marketplace")
set_tests_properties(example_marketplace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stormcast "/root/repo/build/examples/stormcast")
set_tests_properties(example_stormcast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tacoma_shell "/root/repo/build/examples/tacoma_shell")
set_tests_properties(example_tacoma_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
