
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cash/court.cc" "src/cash/CMakeFiles/tacoma_cash.dir/court.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/court.cc.o.d"
  "/root/repo/src/cash/ecu.cc" "src/cash/CMakeFiles/tacoma_cash.dir/ecu.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/ecu.cc.o.d"
  "/root/repo/src/cash/exchange.cc" "src/cash/CMakeFiles/tacoma_cash.dir/exchange.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/exchange.cc.o.d"
  "/root/repo/src/cash/mint.cc" "src/cash/CMakeFiles/tacoma_cash.dir/mint.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/mint.cc.o.d"
  "/root/repo/src/cash/negotiate.cc" "src/cash/CMakeFiles/tacoma_cash.dir/negotiate.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/negotiate.cc.o.d"
  "/root/repo/src/cash/notary.cc" "src/cash/CMakeFiles/tacoma_cash.dir/notary.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/notary.cc.o.d"
  "/root/repo/src/cash/receipts.cc" "src/cash/CMakeFiles/tacoma_cash.dir/receipts.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/receipts.cc.o.d"
  "/root/repo/src/cash/twophase.cc" "src/cash/CMakeFiles/tacoma_cash.dir/twophase.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/twophase.cc.o.d"
  "/root/repo/src/cash/wallet.cc" "src/cash/CMakeFiles/tacoma_cash.dir/wallet.cc.o" "gcc" "src/cash/CMakeFiles/tacoma_cash.dir/wallet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tacoma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tacoma_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tacoma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tacoma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/tacoma_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/tacl/CMakeFiles/tacoma_tacl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tacoma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
