file(REMOVE_RECURSE
  "CMakeFiles/tacoma_cash.dir/court.cc.o"
  "CMakeFiles/tacoma_cash.dir/court.cc.o.d"
  "CMakeFiles/tacoma_cash.dir/ecu.cc.o"
  "CMakeFiles/tacoma_cash.dir/ecu.cc.o.d"
  "CMakeFiles/tacoma_cash.dir/exchange.cc.o"
  "CMakeFiles/tacoma_cash.dir/exchange.cc.o.d"
  "CMakeFiles/tacoma_cash.dir/mint.cc.o"
  "CMakeFiles/tacoma_cash.dir/mint.cc.o.d"
  "CMakeFiles/tacoma_cash.dir/negotiate.cc.o"
  "CMakeFiles/tacoma_cash.dir/negotiate.cc.o.d"
  "CMakeFiles/tacoma_cash.dir/notary.cc.o"
  "CMakeFiles/tacoma_cash.dir/notary.cc.o.d"
  "CMakeFiles/tacoma_cash.dir/receipts.cc.o"
  "CMakeFiles/tacoma_cash.dir/receipts.cc.o.d"
  "CMakeFiles/tacoma_cash.dir/twophase.cc.o"
  "CMakeFiles/tacoma_cash.dir/twophase.cc.o.d"
  "CMakeFiles/tacoma_cash.dir/wallet.cc.o"
  "CMakeFiles/tacoma_cash.dir/wallet.cc.o.d"
  "libtacoma_cash.a"
  "libtacoma_cash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_cash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
