file(REMOVE_RECURSE
  "libtacoma_cash.a"
)
