# Empty dependencies file for tacoma_cash.
# This may be replaced when dependencies are built.
