
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bindings.cc" "src/core/CMakeFiles/tacoma_core.dir/bindings.cc.o" "gcc" "src/core/CMakeFiles/tacoma_core.dir/bindings.cc.o.d"
  "/root/repo/src/core/briefcase.cc" "src/core/CMakeFiles/tacoma_core.dir/briefcase.cc.o" "gcc" "src/core/CMakeFiles/tacoma_core.dir/briefcase.cc.o.d"
  "/root/repo/src/core/cabinet.cc" "src/core/CMakeFiles/tacoma_core.dir/cabinet.cc.o" "gcc" "src/core/CMakeFiles/tacoma_core.dir/cabinet.cc.o.d"
  "/root/repo/src/core/folder.cc" "src/core/CMakeFiles/tacoma_core.dir/folder.cc.o" "gcc" "src/core/CMakeFiles/tacoma_core.dir/folder.cc.o.d"
  "/root/repo/src/core/kernel.cc" "src/core/CMakeFiles/tacoma_core.dir/kernel.cc.o" "gcc" "src/core/CMakeFiles/tacoma_core.dir/kernel.cc.o.d"
  "/root/repo/src/core/place.cc" "src/core/CMakeFiles/tacoma_core.dir/place.cc.o" "gcc" "src/core/CMakeFiles/tacoma_core.dir/place.cc.o.d"
  "/root/repo/src/core/system_agents.cc" "src/core/CMakeFiles/tacoma_core.dir/system_agents.cc.o" "gcc" "src/core/CMakeFiles/tacoma_core.dir/system_agents.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tacoma_util.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/tacoma_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tacoma_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tacoma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tacoma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/tacl/CMakeFiles/tacoma_tacl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
