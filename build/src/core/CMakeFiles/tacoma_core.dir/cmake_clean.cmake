file(REMOVE_RECURSE
  "CMakeFiles/tacoma_core.dir/bindings.cc.o"
  "CMakeFiles/tacoma_core.dir/bindings.cc.o.d"
  "CMakeFiles/tacoma_core.dir/briefcase.cc.o"
  "CMakeFiles/tacoma_core.dir/briefcase.cc.o.d"
  "CMakeFiles/tacoma_core.dir/cabinet.cc.o"
  "CMakeFiles/tacoma_core.dir/cabinet.cc.o.d"
  "CMakeFiles/tacoma_core.dir/folder.cc.o"
  "CMakeFiles/tacoma_core.dir/folder.cc.o.d"
  "CMakeFiles/tacoma_core.dir/kernel.cc.o"
  "CMakeFiles/tacoma_core.dir/kernel.cc.o.d"
  "CMakeFiles/tacoma_core.dir/place.cc.o"
  "CMakeFiles/tacoma_core.dir/place.cc.o.d"
  "CMakeFiles/tacoma_core.dir/system_agents.cc.o"
  "CMakeFiles/tacoma_core.dir/system_agents.cc.o.d"
  "libtacoma_core.a"
  "libtacoma_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
