file(REMOVE_RECURSE
  "libtacoma_core.a"
)
