# Empty compiler generated dependencies file for tacoma_core.
# This may be replaced when dependencies are built.
