file(REMOVE_RECURSE
  "CMakeFiles/tacoma_crypto.dir/authority.cc.o"
  "CMakeFiles/tacoma_crypto.dir/authority.cc.o.d"
  "CMakeFiles/tacoma_crypto.dir/hmac.cc.o"
  "CMakeFiles/tacoma_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/tacoma_crypto.dir/sha256.cc.o"
  "CMakeFiles/tacoma_crypto.dir/sha256.cc.o.d"
  "libtacoma_crypto.a"
  "libtacoma_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
