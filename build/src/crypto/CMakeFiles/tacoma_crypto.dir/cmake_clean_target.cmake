file(REMOVE_RECURSE
  "libtacoma_crypto.a"
)
