# Empty compiler generated dependencies file for tacoma_crypto.
# This may be replaced when dependencies are built.
