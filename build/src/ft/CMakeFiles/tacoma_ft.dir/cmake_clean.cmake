file(REMOVE_RECURSE
  "CMakeFiles/tacoma_ft.dir/rearguard.cc.o"
  "CMakeFiles/tacoma_ft.dir/rearguard.cc.o.d"
  "libtacoma_ft.a"
  "libtacoma_ft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
