file(REMOVE_RECURSE
  "libtacoma_ft.a"
)
