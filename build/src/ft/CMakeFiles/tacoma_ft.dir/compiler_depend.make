# Empty compiler generated dependencies file for tacoma_ft.
# This may be replaced when dependencies are built.
