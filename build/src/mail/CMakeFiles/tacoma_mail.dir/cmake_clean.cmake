file(REMOVE_RECURSE
  "CMakeFiles/tacoma_mail.dir/mail.cc.o"
  "CMakeFiles/tacoma_mail.dir/mail.cc.o.d"
  "libtacoma_mail.a"
  "libtacoma_mail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_mail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
