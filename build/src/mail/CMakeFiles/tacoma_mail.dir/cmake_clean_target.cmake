file(REMOVE_RECURSE
  "libtacoma_mail.a"
)
