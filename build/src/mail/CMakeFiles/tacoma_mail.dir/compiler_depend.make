# Empty compiler generated dependencies file for tacoma_mail.
# This may be replaced when dependencies are built.
