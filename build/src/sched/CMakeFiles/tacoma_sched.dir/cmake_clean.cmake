file(REMOVE_RECURSE
  "CMakeFiles/tacoma_sched.dir/broker.cc.o"
  "CMakeFiles/tacoma_sched.dir/broker.cc.o.d"
  "CMakeFiles/tacoma_sched.dir/jobs.cc.o"
  "CMakeFiles/tacoma_sched.dir/jobs.cc.o.d"
  "CMakeFiles/tacoma_sched.dir/loadgen.cc.o"
  "CMakeFiles/tacoma_sched.dir/loadgen.cc.o.d"
  "CMakeFiles/tacoma_sched.dir/monitor.cc.o"
  "CMakeFiles/tacoma_sched.dir/monitor.cc.o.d"
  "CMakeFiles/tacoma_sched.dir/ticket.cc.o"
  "CMakeFiles/tacoma_sched.dir/ticket.cc.o.d"
  "libtacoma_sched.a"
  "libtacoma_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
