file(REMOVE_RECURSE
  "libtacoma_sched.a"
)
