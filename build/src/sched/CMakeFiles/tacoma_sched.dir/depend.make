# Empty dependencies file for tacoma_sched.
# This may be replaced when dependencies are built.
