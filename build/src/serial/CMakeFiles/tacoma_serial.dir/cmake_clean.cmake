file(REMOVE_RECURSE
  "CMakeFiles/tacoma_serial.dir/encoder.cc.o"
  "CMakeFiles/tacoma_serial.dir/encoder.cc.o.d"
  "libtacoma_serial.a"
  "libtacoma_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
