file(REMOVE_RECURSE
  "libtacoma_serial.a"
)
