# Empty compiler generated dependencies file for tacoma_serial.
# This may be replaced when dependencies are built.
