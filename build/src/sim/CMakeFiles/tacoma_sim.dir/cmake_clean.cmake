file(REMOVE_RECURSE
  "CMakeFiles/tacoma_sim.dir/network.cc.o"
  "CMakeFiles/tacoma_sim.dir/network.cc.o.d"
  "CMakeFiles/tacoma_sim.dir/simulator.cc.o"
  "CMakeFiles/tacoma_sim.dir/simulator.cc.o.d"
  "CMakeFiles/tacoma_sim.dir/topology.cc.o"
  "CMakeFiles/tacoma_sim.dir/topology.cc.o.d"
  "libtacoma_sim.a"
  "libtacoma_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
