file(REMOVE_RECURSE
  "libtacoma_sim.a"
)
