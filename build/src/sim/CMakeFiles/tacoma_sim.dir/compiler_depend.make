# Empty compiler generated dependencies file for tacoma_sim.
# This may be replaced when dependencies are built.
