file(REMOVE_RECURSE
  "CMakeFiles/tacoma_storage.dir/disk.cc.o"
  "CMakeFiles/tacoma_storage.dir/disk.cc.o.d"
  "CMakeFiles/tacoma_storage.dir/disk_log.cc.o"
  "CMakeFiles/tacoma_storage.dir/disk_log.cc.o.d"
  "libtacoma_storage.a"
  "libtacoma_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
