file(REMOVE_RECURSE
  "libtacoma_storage.a"
)
