# Empty dependencies file for tacoma_storage.
# This may be replaced when dependencies are built.
