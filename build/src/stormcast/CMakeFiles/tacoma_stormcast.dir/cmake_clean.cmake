file(REMOVE_RECURSE
  "CMakeFiles/tacoma_stormcast.dir/scenario.cc.o"
  "CMakeFiles/tacoma_stormcast.dir/scenario.cc.o.d"
  "CMakeFiles/tacoma_stormcast.dir/weather.cc.o"
  "CMakeFiles/tacoma_stormcast.dir/weather.cc.o.d"
  "libtacoma_stormcast.a"
  "libtacoma_stormcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_stormcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
