file(REMOVE_RECURSE
  "libtacoma_stormcast.a"
)
