# Empty compiler generated dependencies file for tacoma_stormcast.
# This may be replaced when dependencies are built.
