
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tacl/builtins.cc" "src/tacl/CMakeFiles/tacoma_tacl.dir/builtins.cc.o" "gcc" "src/tacl/CMakeFiles/tacoma_tacl.dir/builtins.cc.o.d"
  "/root/repo/src/tacl/expr.cc" "src/tacl/CMakeFiles/tacoma_tacl.dir/expr.cc.o" "gcc" "src/tacl/CMakeFiles/tacoma_tacl.dir/expr.cc.o.d"
  "/root/repo/src/tacl/interp.cc" "src/tacl/CMakeFiles/tacoma_tacl.dir/interp.cc.o" "gcc" "src/tacl/CMakeFiles/tacoma_tacl.dir/interp.cc.o.d"
  "/root/repo/src/tacl/list.cc" "src/tacl/CMakeFiles/tacoma_tacl.dir/list.cc.o" "gcc" "src/tacl/CMakeFiles/tacoma_tacl.dir/list.cc.o.d"
  "/root/repo/src/tacl/parse.cc" "src/tacl/CMakeFiles/tacoma_tacl.dir/parse.cc.o" "gcc" "src/tacl/CMakeFiles/tacoma_tacl.dir/parse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tacoma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
