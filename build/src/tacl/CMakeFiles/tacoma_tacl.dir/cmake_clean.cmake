file(REMOVE_RECURSE
  "CMakeFiles/tacoma_tacl.dir/builtins.cc.o"
  "CMakeFiles/tacoma_tacl.dir/builtins.cc.o.d"
  "CMakeFiles/tacoma_tacl.dir/expr.cc.o"
  "CMakeFiles/tacoma_tacl.dir/expr.cc.o.d"
  "CMakeFiles/tacoma_tacl.dir/interp.cc.o"
  "CMakeFiles/tacoma_tacl.dir/interp.cc.o.d"
  "CMakeFiles/tacoma_tacl.dir/list.cc.o"
  "CMakeFiles/tacoma_tacl.dir/list.cc.o.d"
  "CMakeFiles/tacoma_tacl.dir/parse.cc.o"
  "CMakeFiles/tacoma_tacl.dir/parse.cc.o.d"
  "libtacoma_tacl.a"
  "libtacoma_tacl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_tacl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
