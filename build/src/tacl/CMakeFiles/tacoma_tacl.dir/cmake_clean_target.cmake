file(REMOVE_RECURSE
  "libtacoma_tacl.a"
)
