# Empty compiler generated dependencies file for tacoma_tacl.
# This may be replaced when dependencies are built.
