file(REMOVE_RECURSE
  "CMakeFiles/tacoma_util.dir/bytes.cc.o"
  "CMakeFiles/tacoma_util.dir/bytes.cc.o.d"
  "CMakeFiles/tacoma_util.dir/log.cc.o"
  "CMakeFiles/tacoma_util.dir/log.cc.o.d"
  "CMakeFiles/tacoma_util.dir/rng.cc.o"
  "CMakeFiles/tacoma_util.dir/rng.cc.o.d"
  "CMakeFiles/tacoma_util.dir/status.cc.o"
  "CMakeFiles/tacoma_util.dir/status.cc.o.d"
  "libtacoma_util.a"
  "libtacoma_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacoma_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
