file(REMOVE_RECURSE
  "libtacoma_util.a"
)
