# Empty dependencies file for tacoma_util.
# This may be replaced when dependencies are built.
