file(REMOVE_RECURSE
  "CMakeFiles/briefcase_test.dir/briefcase_test.cc.o"
  "CMakeFiles/briefcase_test.dir/briefcase_test.cc.o.d"
  "briefcase_test"
  "briefcase_test.pdb"
  "briefcase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/briefcase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
