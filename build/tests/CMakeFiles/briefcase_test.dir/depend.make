# Empty dependencies file for briefcase_test.
# This may be replaced when dependencies are built.
