file(REMOVE_RECURSE
  "CMakeFiles/cabinet_test.dir/cabinet_test.cc.o"
  "CMakeFiles/cabinet_test.dir/cabinet_test.cc.o.d"
  "cabinet_test"
  "cabinet_test.pdb"
  "cabinet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cabinet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
