# Empty compiler generated dependencies file for cabinet_test.
# This may be replaced when dependencies are built.
