file(REMOVE_RECURSE
  "CMakeFiles/cash_test.dir/cash_test.cc.o"
  "CMakeFiles/cash_test.dir/cash_test.cc.o.d"
  "cash_test"
  "cash_test.pdb"
  "cash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
