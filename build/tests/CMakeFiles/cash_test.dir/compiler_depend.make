# Empty compiler generated dependencies file for cash_test.
# This may be replaced when dependencies are built.
