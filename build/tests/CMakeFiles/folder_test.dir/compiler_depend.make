# Empty compiler generated dependencies file for folder_test.
# This may be replaced when dependencies are built.
