file(REMOVE_RECURSE
  "CMakeFiles/jobs_monitor_test.dir/jobs_monitor_test.cc.o"
  "CMakeFiles/jobs_monitor_test.dir/jobs_monitor_test.cc.o.d"
  "jobs_monitor_test"
  "jobs_monitor_test.pdb"
  "jobs_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobs_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
