# Empty dependencies file for jobs_monitor_test.
# This may be replaced when dependencies are built.
