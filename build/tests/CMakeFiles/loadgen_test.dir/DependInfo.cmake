
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/loadgen_test.cc" "tests/CMakeFiles/loadgen_test.dir/loadgen_test.cc.o" "gcc" "tests/CMakeFiles/loadgen_test.dir/loadgen_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mail/CMakeFiles/tacoma_mail.dir/DependInfo.cmake"
  "/root/repo/build/src/stormcast/CMakeFiles/tacoma_stormcast.dir/DependInfo.cmake"
  "/root/repo/build/src/ft/CMakeFiles/tacoma_ft.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tacoma_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cash/CMakeFiles/tacoma_cash.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tacoma_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tacl/CMakeFiles/tacoma_tacl.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/tacoma_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tacoma_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tacoma_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/tacoma_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tacoma_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
