file(REMOVE_RECURSE
  "CMakeFiles/place_kernel_test.dir/place_kernel_test.cc.o"
  "CMakeFiles/place_kernel_test.dir/place_kernel_test.cc.o.d"
  "place_kernel_test"
  "place_kernel_test.pdb"
  "place_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/place_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
