# Empty compiler generated dependencies file for place_kernel_test.
# This may be replaced when dependencies are built.
