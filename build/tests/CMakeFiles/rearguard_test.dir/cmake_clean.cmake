file(REMOVE_RECURSE
  "CMakeFiles/rearguard_test.dir/rearguard_test.cc.o"
  "CMakeFiles/rearguard_test.dir/rearguard_test.cc.o.d"
  "rearguard_test"
  "rearguard_test.pdb"
  "rearguard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rearguard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
