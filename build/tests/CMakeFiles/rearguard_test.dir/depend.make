# Empty dependencies file for rearguard_test.
# This may be replaced when dependencies are built.
