file(REMOVE_RECURSE
  "CMakeFiles/receipts_test.dir/receipts_test.cc.o"
  "CMakeFiles/receipts_test.dir/receipts_test.cc.o.d"
  "receipts_test"
  "receipts_test.pdb"
  "receipts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receipts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
