# Empty dependencies file for receipts_test.
# This may be replaced when dependencies are built.
