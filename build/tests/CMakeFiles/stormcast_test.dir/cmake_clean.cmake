file(REMOVE_RECURSE
  "CMakeFiles/stormcast_test.dir/stormcast_test.cc.o"
  "CMakeFiles/stormcast_test.dir/stormcast_test.cc.o.d"
  "stormcast_test"
  "stormcast_test.pdb"
  "stormcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stormcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
