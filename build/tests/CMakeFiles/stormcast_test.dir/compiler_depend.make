# Empty compiler generated dependencies file for stormcast_test.
# This may be replaced when dependencies are built.
