file(REMOVE_RECURSE
  "CMakeFiles/system_agents_test.dir/system_agents_test.cc.o"
  "CMakeFiles/system_agents_test.dir/system_agents_test.cc.o.d"
  "system_agents_test"
  "system_agents_test.pdb"
  "system_agents_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_agents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
