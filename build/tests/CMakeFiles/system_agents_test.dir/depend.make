# Empty dependencies file for system_agents_test.
# This may be replaced when dependencies are built.
