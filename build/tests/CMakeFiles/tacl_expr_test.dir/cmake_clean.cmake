file(REMOVE_RECURSE
  "CMakeFiles/tacl_expr_test.dir/tacl_expr_test.cc.o"
  "CMakeFiles/tacl_expr_test.dir/tacl_expr_test.cc.o.d"
  "tacl_expr_test"
  "tacl_expr_test.pdb"
  "tacl_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacl_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
