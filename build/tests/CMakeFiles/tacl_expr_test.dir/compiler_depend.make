# Empty compiler generated dependencies file for tacl_expr_test.
# This may be replaced when dependencies are built.
