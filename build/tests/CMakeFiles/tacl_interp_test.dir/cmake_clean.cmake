file(REMOVE_RECURSE
  "CMakeFiles/tacl_interp_test.dir/tacl_interp_test.cc.o"
  "CMakeFiles/tacl_interp_test.dir/tacl_interp_test.cc.o.d"
  "tacl_interp_test"
  "tacl_interp_test.pdb"
  "tacl_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacl_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
