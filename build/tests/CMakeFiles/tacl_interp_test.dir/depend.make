# Empty dependencies file for tacl_interp_test.
# This may be replaced when dependencies are built.
