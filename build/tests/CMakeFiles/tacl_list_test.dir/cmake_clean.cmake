file(REMOVE_RECURSE
  "CMakeFiles/tacl_list_test.dir/tacl_list_test.cc.o"
  "CMakeFiles/tacl_list_test.dir/tacl_list_test.cc.o.d"
  "tacl_list_test"
  "tacl_list_test.pdb"
  "tacl_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacl_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
