# Empty dependencies file for tacl_list_test.
# This may be replaced when dependencies are built.
