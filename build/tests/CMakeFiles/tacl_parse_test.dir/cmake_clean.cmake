file(REMOVE_RECURSE
  "CMakeFiles/tacl_parse_test.dir/tacl_parse_test.cc.o"
  "CMakeFiles/tacl_parse_test.dir/tacl_parse_test.cc.o.d"
  "tacl_parse_test"
  "tacl_parse_test.pdb"
  "tacl_parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacl_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
