# Empty dependencies file for tacl_parse_test.
# This may be replaced when dependencies are built.
