# Empty compiler generated dependencies file for twophase_test.
# This may be replaced when dependencies are built.
