#!/usr/bin/env bash
# CI gate: warning-clean build + tests, then the same tests under ASan/UBSan
# and ThreadSanitizer.
#
# Usage:
#   ci/check.sh            # plain (-Werror), asan-ubsan, and tsan builds + ctest
#   ci/check.sh --no-tsan  # skip the ThreadSanitizer stage
#   ci/check.sh --tsan     # accepted for compatibility (tsan is now the default)
#
# Build trees live under build-ci/ so they never disturb the developer build/.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-2}"
CTEST_ARGS=(--output-on-failure --timeout 300)
RUN_TSAN=1
[[ "${1:-}" == "--no-tsan" ]] && RUN_TSAN=0

run_stage() {
  local name="$1"
  shift
  local dir="build-ci/${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . -DTACOMA_WERROR=ON "$@"
  echo "=== [${name}] build (-j${JOBS}) ==="
  cmake --build "${dir}" -j"${JOBS}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" "${CTEST_ARGS[@]}"
}

run_stage plain
run_stage asan-ubsan -DTACOMA_SANITIZE=address,undefined
if [[ "${RUN_TSAN}" == "1" ]]; then
  run_stage tsan -DTACOMA_SANITIZE=thread
fi

echo "=== all checks passed ==="
