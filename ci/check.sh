#!/usr/bin/env bash
# CI gate: warning-clean build + tests, then the same tests under ASan/UBSan
# and ThreadSanitizer.
#
# Usage:
#   ci/check.sh            # plain (-Werror), asan-ubsan, and tsan builds + ctest
#   ci/check.sh --no-tsan  # skip the ThreadSanitizer stage
#   ci/check.sh --tsan     # accepted for compatibility (tsan is now the default)
#
# Build trees live under build-ci/ so they never disturb the developer build/.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-2}"
CTEST_ARGS=(--output-on-failure --timeout 300)
RUN_TSAN=1
[[ "${1:-}" == "--no-tsan" ]] && RUN_TSAN=0

run_stage() {
  local name="$1"
  shift
  local dir="build-ci/${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${dir}" -S . -DTACOMA_WERROR=ON "$@"
  echo "=== [${name}] build (-j${JOBS}) ==="
  cmake --build "${dir}" -j"${JOBS}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" "${CTEST_ARGS[@]}"
}

# The storage/cabinet/crash-recovery suite gets an explicit focused run under
# each sanitizer: torn-write recovery walks byte buffers at the edge of
# truncation, exactly where ASan/UBSan earn their keep.
STORAGE_TESTS='DiskTest|FileDiskTest|DiskLogTest|FileCabinetTest|CabinetTest|CrashDiskTest|CrashPointSweepTest|KernelRecoveryTest'

run_stage plain

# clang-tidy stage (bugprone/performance/readability-container checks from the
# checked-in .clang-tidy).  Runs over the analyzer/admission surface using the
# plain tree's compile_commands.json; skipped with a notice when clang-tidy is
# not installed (the CI image may not carry it).  WarningsAsErrors is empty,
# so only hard errors (e.g. tidy-visible compile breakage) fail the stage.
if command -v clang-tidy > /dev/null 2>&1; then
  echo "=== [clang-tidy] src/tacl src/core ==="
  cmake -B build-ci/plain -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  clang-tidy -p build-ci/plain --quiet \
    src/tacl/analyze.cc src/core/admission.cc src/core/place.cc \
    src/core/bindings.cc
  echo "=== [clang-tidy] ok ==="
else
  echo "=== [clang-tidy] skipped: clang-tidy not installed ==="
fi

run_stage asan-ubsan -DTACOMA_SANITIZE=address,undefined
echo "=== [asan-ubsan] storage/cabinet focus ==="
ctest --test-dir build-ci/asan-ubsan "${CTEST_ARGS[@]}" -R "${STORAGE_TESTS}"
if [[ "${RUN_TSAN}" == "1" ]]; then
  run_stage tsan -DTACOMA_SANITIZE=thread
  echo "=== [tsan] storage/cabinet focus ==="
  ctest --test-dir build-ci/tsan "${CTEST_ARGS[@]}" -R "${STORAGE_TESTS}"
fi

# Metrics validation: the snapshot at $1 must contain every golden key in
# scope $2 (grep-only validation, no jq/python dependency).  Scope "core"
# stops at the `# scope:ft` marker — the ft.* keys only exist in snapshots
# from binaries that install the rear guard; scope "all" checks everything.
check_metrics() {
  local json="$1"
  local scope="${2:-core}"
  local missing=0
  while IFS= read -r key; do
    if [[ "${key}" == "# scope:ft" && "${scope}" == "core" ]]; then
      break
    fi
    [[ -z "${key}" || "${key}" == \#* ]] && continue
    if ! grep -q "\"${key}\"" "${json}"; then
      echo "metrics snapshot missing key: ${key}"
      missing=1
    fi
  done < ci/metrics_golden_keys.txt
  if [[ "${missing}" != "0" ]]; then
    echo "=== FAILED: ${json} does not match golden keys (scope ${scope}) ==="
    exit 1
  fi
}

# Observability smoke: one bench in smoke mode must emit a metrics snapshot
# containing every golden key.
echo "=== [metrics-smoke] bench_e11_reliable --smoke ==="
METRICS_JSON="build-ci/plain/e11_metrics.json"
./build-ci/plain/bench/bench_e11_reliable --smoke --metrics-out "${METRICS_JSON}" \
  > /dev/null
check_metrics "${METRICS_JSON}" core
echo "=== [metrics-smoke] ok ==="

# Perf smoke: a Release (-O2 -DNDEBUG) build runs the migration bench in smoke
# mode — exercising the code cache, CoW buffers, and zero-copy forwarding at
# the optimisation level the numbers in docs/performance.md are quoted at —
# and its snapshot must carry the code_cache.* counters.
echo "=== [release] configure ==="
cmake -B build-ci/release -S . -DTACOMA_WERROR=ON -DCMAKE_BUILD_TYPE=Release
echo "=== [release] build bench_e12_migration (-j${JOBS}) ==="
cmake --build build-ci/release -j"${JOBS}" --target bench_e12_migration
echo "=== [perf-smoke] bench_e12_migration --smoke ==="
E12_JSON="build-ci/release/e12_metrics.json"
./build-ci/release/bench/bench_e12_migration --smoke --metrics-out "${E12_JSON}" \
  > /dev/null
check_metrics "${E12_JSON}" core
echo "=== [perf-smoke] ok ==="

# Persistence smoke: the same Release tree runs the crash-atomic persistence
# bench — flush latency, WAL overhead, recovery with an armed disk — and its
# snapshot must carry the storage.* counters.
echo "=== [release] build bench_e13_persistence (-j${JOBS}) ==="
cmake --build build-ci/release -j"${JOBS}" --target bench_e13_persistence
echo "=== [perf-smoke] bench_e13_persistence --smoke ==="
E13_JSON="build-ci/release/e13_metrics.json"
./build-ci/release/bench/bench_e13_persistence --smoke --metrics-out "${E13_JSON}" \
  > /dev/null
check_metrics "${E13_JSON}" core
echo "=== [perf-smoke] e13 ok ==="

# Admission smoke: the analyze bench in smoke mode asserts the digest-keyed
# manifest cache gives ≥10× faster admission than cold analysis and that an
# enforce-mode policy table bounces an exfiltrating agent into its dead-letter
# contact.
echo "=== [release] build bench_e10_analyze (-j${JOBS}) ==="
cmake --build build-ci/release -j"${JOBS}" --target bench_e10_analyze
echo "=== [admission-smoke] bench_e10_analyze --smoke ==="
./build-ci/release/bench/bench_e10_analyze --smoke
echo "=== [admission-smoke] ok ==="

# VM smoke: the bytecode-VM bench gates the >=10x parse-heavy and >=2x
# builtin-heavy speedups over the tree-walker, asserts CODE compile counts
# stay flat across repeated 5-hop itineraries (warm digest hits skip parse
# and compile), and re-runs the E11-style lossy-ring soak under both engines
# demanding identical delivery.  Its snapshot must carry the vm.* counters.
echo "=== [release] build bench_e16_vm (-j${JOBS}) ==="
cmake --build build-ci/release -j"${JOBS}" --target bench_e16_vm
echo "=== [vm-smoke] bench_e16_vm --smoke ==="
E16_JSON="build-ci/release/e16_metrics.json"
./build-ci/release/bench/bench_e16_vm --smoke --metrics-out "${E16_JSON}"
check_metrics "${E16_JSON}" core
echo "=== [vm-smoke] ok ==="

# Telemetry smoke: the continuous-telemetry bench gates metering overhead,
# byte-identical sampler histories across two seeded runs, and a chaos soak
# whose injected invariant failure must leave a parseable flight record that
# attributes ≥95% of bytes-on-wire to per-agent ledger entries (the bench
# exits non-zero if any deterministic gate fails).
echo "=== [release] build bench_e15_telemetry (-j${JOBS}) ==="
cmake --build build-ci/release -j"${JOBS}" --target bench_e15_telemetry
echo "=== [telemetry-smoke] bench_e15_telemetry --smoke ==="
E15_JSON="build-ci/release/BENCH_E15_telemetry.json"
E15_FLIGHT="build-ci/release/BENCH_E15_flight.json"
./build-ci/release/bench/bench_e15_telemetry --smoke \
  --metrics-out "${E15_JSON}" --flight-out "${E15_FLIGHT}"
# Re-assert both artifacts parse (a truncated write must fail CI even though
# the bench validated the documents it generated in memory).
if command -v python3 > /dev/null 2>&1; then
  python3 - "${E15_JSON}" "${E15_FLIGHT}" << 'EOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        json.load(f)
EOF
else
  grep -q '"attribution_ratio"' "${E15_JSON}"
  grep -q '"reason"' "${E15_FLIGHT}"
fi
echo "=== [telemetry-smoke] ok ==="

# Bench smoke: the remaining retrofitted experiment benches run their reduced
# sweeps and drop headline-number artifacts for the perf trajectory.
echo "=== [release] build e1/e2/e5/e7 benches (-j${JOBS}) ==="
cmake --build build-ci/release -j"${JOBS}" --target \
  bench_e1_bandwidth bench_e2_flooding bench_e5_cash bench_e7_broker
for b in e1_bandwidth e2_flooding e5_cash e7_broker; do
  echo "=== [bench-smoke] bench_${b} --smoke ==="
  ./build-ci/release/bench/"bench_${b}" --smoke \
    --metrics-out "build-ci/release/BENCH_${b}.json" > /dev/null
done
echo "=== [bench-smoke] ok ==="

# Fault-tolerance smoke: rear guards complete every guarded itinerary in the
# E8 sweep, and the E14 partition-mode chaos storm resolves every agent
# exactly once (with stale incarnations quenched and the median relaunch-to-
# reactivation latency gated).  Both snapshots must carry the ft.* counters.
echo "=== [release] build bench_e8_rearguard bench_e14_ft (-j${JOBS}) ==="
cmake --build build-ci/release -j"${JOBS}" --target bench_e8_rearguard bench_e14_ft
echo "=== [ft-smoke] bench_e8_rearguard --smoke ==="
E8_JSON="build-ci/release/e8_metrics.json"
./build-ci/release/bench/bench_e8_rearguard --smoke --metrics-out "${E8_JSON}" \
  > /dev/null
check_metrics "${E8_JSON}" all
echo "=== [ft-smoke] bench_e14_ft --smoke (partition-mode chaos) ==="
E14_JSON="build-ci/release/e14_metrics.json"
./build-ci/release/bench/bench_e14_ft --smoke --metrics-out "${E14_JSON}" \
  > /dev/null
check_metrics "${E14_JSON}" all
echo "=== [ft-smoke] ok ==="

# Transport smoke: the E17 stack over real sockets — the conformance suite
# runs the same contract against the sim backend and TCP loopback, two
# tacoma_shell daemons complete a guarded multi-hop itinerary while
# ProcessChaos SIGKILLs and respawns the server peer (exactly-once asserted
# across the kill), and the RPC-vs-migration bench gates its K=16 sanity
# check.  The bench snapshot must carry the net.transport.* edge counters.
echo "=== [release] build tacoma_shell bench_e17_transport (-j${JOBS}) ==="
cmake --build build-ci/release -j"${JOBS}" --target \
  tacoma_shell bench_e17_transport transport_conformance_test
echo "=== [transport-smoke] loopback conformance (sim + tcp backends) ==="
timeout 120 ./build-ci/release/tests/transport_conformance_test
echo "=== [transport-smoke] two-daemon process-kill smoke ==="
timeout 150 ci/e17_daemon_smoke.sh build-ci/release
echo "=== [transport-smoke] bench_e17_transport --smoke ==="
E17_JSON="build-ci/release/e17_metrics.json"
timeout 300 ./build-ci/release/bench/bench_e17_transport --smoke \
  --metrics-out "${E17_JSON}" > /dev/null
check_metrics "${E17_JSON}" core
echo "=== [transport-smoke] ok ==="

echo "=== all checks passed ==="
