#!/usr/bin/env bash
# E17 daemon smoke: two tacoma_shell daemon processes — one kernel each —
# complete a multi-hop guarded itinerary over TCP loopback with the CodeCache
# on, while the client daemon SIGKILLs and respawns the server peer through
# the built-in ProcessChaos schedule (--chaos-spawn).  Gates:
#
#   1. the client exits 0 with an "EXACTLY_ONCE OK" verdict (every walker
#      resolved exactly once across the kill),
#   2. the chaos actually fired (CHAOS kills=1 respawns=1 — a run where all
#      walkers finished before the kill landed is vacuous and fails),
#   3. CODE stubs flowed (stubs=0 would mean the cache never engaged).
#
# Usage: ci/e17_daemon_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SHELL_BIN="${BUILD_DIR}/examples/tacoma_shell"
[[ -x "${SHELL_BIN}" ]] || { echo "missing ${SHELL_BIN}"; exit 2; }

STATE="$(mktemp -d /tmp/tacoma_e17.XXXXXX)"
trap 'rm -rf "${STATE}"' EXIT
mkdir -p "${STATE}/a" "${STATE}/b"

# Loopback ports, spread by pid so parallel CI jobs don't collide.
PORT_A=$((20000 + $$ % 20000))
PORT_B=$((PORT_A + 1))

SERVER_CMD="${SHELL_BIN} --daemon --sites a,b --me b \
  --listen 127.0.0.1:${PORT_B} --peer a=127.0.0.1:${PORT_A} \
  --state-dir ${STATE}/b --reliable --code-cache --run-ms 60000"

OUT="${STATE}/client.out"
set +e
timeout 90 "${SHELL_BIN}" --daemon --sites a,b --me a \
  --listen "127.0.0.1:${PORT_A}" --peer "b=127.0.0.1:${PORT_B}" \
  --state-dir "${STATE}/a" --reliable --code-cache \
  --launch 8 --launch-spread-ms 3000 --hops b,a,b,a \
  --run-ms 45000 --wait-done 8 --seed 1995 \
  --chaos-spawn "${SERVER_CMD}" --chaos-kills 1 | tee "${OUT}"
RC=${PIPESTATUS[0]}
set -e

if [[ "${RC}" != "0" ]]; then
  echo "=== FAILED: client daemon exited ${RC} ==="
  exit 1
fi
grep -q "EXACTLY_ONCE OK" "${OUT}" || { echo "=== FAILED: no OK verdict ==="; exit 1; }
grep -q "CHAOS kills=1 respawns=1" "${OUT}" \
  || { echo "=== FAILED: chaos never fired (vacuous run) ==="; exit 1; }
grep -q "EXACTLY_ONCE OK.* stubs=0 " "${OUT}" \
  && { echo "=== FAILED: CodeCache shipped no stubs ==="; exit 1; }
echo "=== e17 daemon smoke ok ==="
