// Agent mail: "an interactive mail system where messages are implemented by
// agents" (§6).
//
// Messages travel as TACL agents, deposit themselves into mailbox cabinets,
// and courier delivery receipts home.  Because a message IS an agent, it can
// carry rider code — the last message here runs a vacation auto-responder at
// the destination.
//
// Run: ./agent_mail
#include <cstdio>

#include "mail/mail.h"

int main() {
  using namespace tacoma;

  Kernel kernel;
  SiteId tromso = kernel.AddSite("tromso");
  SiteId ithaca = kernel.AddSite("ithaca");
  kernel.net().AddLink(tromso, ithaca, LinkParams{40 * kMillisecond, 500'000});

  mail::MailSystem mail(&kernel);
  mail.Install();

  (void)mail.Send(tromso, "dag", ithaca, "fred", "TACOMA status",
                  "The rexec agent works; agents now cross the Atlantic.");
  (void)mail.Send(tromso, "dag", ithaca, "robbert", "Horus transport",
                  "Third rexec implementation is nearly done.");
  // The message agent runs rider code after delivery: a vacation responder
  // that mails a reply back by meeting the local mailbox as a fresh agent.
  (void)mail.Send(tromso, "dag", ithaca, "fred", "ping",
                  "are you reading mail today?",
                  // Rider: note the query on a local bulletin cabinet.
                  "cab_append vacation PENDING \"[bc_get MAIL_FROM]: "
                  "[bc_get SUBJECT]\"");
  kernel.sim().Run();

  std::printf("--- fred's inbox at ithaca ---\n");
  for (const auto& m : mail.Inbox(ithaca, "fred")) {
    std::printf("%-8s from %s@%s: %s\n   %s\n", m.id.c_str(), m.from_user.c_str(),
                m.from_site.c_str(), m.subject.c_str(), m.body.c_str());
  }
  std::printf("\n--- robbert's inbox ---\n");
  for (const auto& m : mail.Inbox(ithaca, "robbert")) {
    std::printf("%-8s %s\n", m.id.c_str(), m.subject.c_str());
  }

  std::printf("\n--- dag's delivery receipts back at tromso ---\n");
  for (const auto& r : mail.Receipts(tromso, "dag")) {
    std::printf("delivered: %s\n", r.c_str());
  }

  std::printf("\n--- rider code ran at the destination ---\n");
  for (const auto& p :
       kernel.place(ithaca)->Cabinet("vacation").ListStrings("PENDING")) {
    std::printf("auto-responder queued: %s\n", p.c_str());
  }

  bool ok = mail.Inbox(ithaca, "fred").size() == 2 &&
            mail.Receipts(tromso, "dag").size() == 3;
  return ok ? 0 : 1;
}
