// Flooding: the paper's §2 worked example, live.
//
// A diffusion agent delivers a bulletin to every site of a grid.  Two ways:
//   1. visit-records (the paper's fix): each site remembers the message in a
//      site-local folder and clones only toward unvisited sites — the agent
//      population stays bounded;
//   2. naive cloning: clone to every neighbour, always — the population
//      explodes (bounded here only by a hop TTL).
//
// Run: ./flooding
#include <cstdio>

#include "core/kernel.h"
#include "sim/topology.h"

namespace {

struct Outcome {
  size_t reached = 0;
  uint64_t activations = 0;
  uint64_t transfers = 0;
};

Outcome Flood(bool naive) {
  using namespace tacoma;
  Kernel kernel;
  auto ids = BuildGrid(&kernel.net(), 4, 4);
  kernel.AdoptNetworkSites();
  kernel.sim().set_event_limit(100'000);

  Briefcase bc;
  bc.folder(kCodeFolder).PushBackString(
      "cab_append board NOTICE \"all hands: storm drill at noon\"");
  if (naive) {
    bc.SetString("MODE", "naive");
    bc.SetString("TTL", "8");
  }
  (void)kernel.place(ids[5])->Meet("diffusion", bc);
  kernel.sim().Run();

  Outcome out;
  out.transfers = kernel.stats().transfers_sent;
  for (SiteId s : ids) {
    Place* place = kernel.place(s);
    if (place->Cabinet("board").Size("NOTICE") > 0) {
      ++out.reached;
    }
    out.activations += place->stats().activations;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Flooding a 4x4 grid with one bulletin (paper S2's example)\n\n");

  Outcome smart = Flood(/*naive=*/false);
  std::printf("visit-records: reached %zu/16 sites using %llu agent activations "
              "and %llu transfers\n",
              smart.reached, (unsigned long long)smart.activations,
              (unsigned long long)smart.transfers);

  Outcome naive = Flood(/*naive=*/true);
  std::printf("naive cloning: reached %zu/16 sites using %llu agent activations "
              "and %llu transfers (TTL-bounded!)\n",
              naive.reached, (unsigned long long)naive.activations,
              (unsigned long long)naive.transfers);

  std::printf("\n\"If, instead, an agent also records its visit in a site-local\n"
              "folder, then an agent can simply terminate — rather than clone —\n"
              "when it finds itself at a site that has already been visited.\"\n");
  return smart.reached == 16 ? 0 : 1;
}
