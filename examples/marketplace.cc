// Marketplace: electronic commerce with agents (§3), end to end.
//
// Wallets hold ECUs (amount + unforgeable serial).  A purchase: the customer
// puts cash records in a briefcase and orders; the shop has the mint validate
// (retire + reissue) before serving; every step files a signed receipt with
// the notary.  Then two frauds: a double-spender (foiled by the mint) and a
// shop that keeps the money (convicted by the court).
//
// Run: ./marketplace
#include <cstdio>

#include "cash/exchange.h"
#include "cash/negotiate.h"

int main() {
  using namespace tacoma;
  using namespace tacoma::cash;

  Kernel kernel;
  SiteId customer = kernel.AddSite("customer");
  SiteId shop = kernel.AddSite("shop");
  SiteId bank = kernel.AddSite("bank");
  SiteId court = kernel.AddSite("court");
  for (SiteId a : {customer, shop, bank, court}) {
    for (SiteId b : {customer, shop, bank, court}) {
      if (a < b) {
        kernel.net().AddLink(a, b);
      }
    }
  }

  SignatureAuthority authority(2026);
  Mint mint(2026);
  Notary notary(&authority);
  InstallMintAgent(&kernel, bank, &mint, &authority);
  InstallNotaryAgent(&kernel, court, &notary);

  MarketConfig config;
  config.customer_site = customer;
  config.provider_site = shop;
  config.mint_site = bank;
  config.notary_site = court;
  Marketplace market(&kernel, &authority, &mint, &notary, config);
  market.FundCustomer(/*notes=*/30, /*denomination=*/5);
  std::printf("customer funded: %llu ECU in %zu notes\n\n",
              (unsigned long long)market.customer_wallet().Balance(),
              market.customer_wallet().count());

  auto report = [&](const char* title, const std::string& xid) {
    const ExchangeRecord* rec = market.record(xid);
    AuditReport audit = market.AuditExchange(xid);
    std::printf("%s\n", title);
    std::printf("  goods delivered: %s   payment collected: %s\n",
                rec->goods_delivered ? "yes" : "no",
                rec->payment_collected ? "yes" : "no");
    std::printf("  court verdict:   %s (%s)\n\n",
                std::string(VerdictName(audit.verdict)).c_str(),
                audit.explanation.c_str());
  };

  // 0. Haggle first — "use a service (perhaps after some negotiation)".
  NegotiationConfig haggle;
  haggle.customer_site = customer;
  haggle.provider_site = shop;
  haggle.ask = 80;      // Shop asks 80...
  haggle.floor = 45;    // ...would go as low as 45.
  haggle.budget = 60;   // Customer will pay at most 60.
  haggle.step = 10;
  Negotiator negotiator(&kernel, haggle);
  (void)negotiator.Start("haggle-1");
  kernel.sim().Run();
  const NegotiationRecord* deal = negotiator.record("haggle-1");
  std::printf("negotiation: ask 80, %d rounds of haggling -> %s at %llu ECU\n\n",
              deal->rounds, deal->agreed ? "DEAL" : "no deal",
              (unsigned long long)deal->price);
  uint64_t price = deal->agreed ? deal->price : 50;

  // 1. An honest purchase at the negotiated price.
  (void)market.StartExchange("order-1", price, CheatMode::kHonest);
  kernel.sim().Run();
  report("order-1: honest purchase at the negotiated price", "order-1");

  // 2. A double-spender: pays with copies of the notes spent in order-2a.
  (void)market.StartExchange("order-2a", 25, CheatMode::kCustomerDoubleSpends);
  kernel.sim().Run();
  (void)market.StartExchange("order-2b", 25, CheatMode::kCustomerDoubleSpends);
  kernel.sim().Run();
  report("order-2b: paying again with COPIES of order-2a's notes", "order-2b");
  std::printf("  (mint rejected %llu forged/spent presentations so far)\n\n",
              (unsigned long long)mint.stats().rejected);

  // 3. A crooked shop: takes the money, ships nothing.
  (void)market.StartExchange("order-3", 25, CheatMode::kProviderSkipsDelivery);
  kernel.sim().Run();
  report("order-3: the shop keeps the money and ships nothing", "order-3");

  std::printf("final balances: customer %llu ECU, shop %llu ECU, outstanding %llu\n",
              (unsigned long long)market.customer_wallet().Balance(),
              (unsigned long long)market.provider_wallet().Balance(),
              (unsigned long long)mint.Outstanding());

  bool ok = market.AuditExchange("order-1").verdict == Verdict::kClean &&
            market.AuditExchange("order-2b").verdict == Verdict::kAborted &&
            market.AuditExchange("order-3").verdict == Verdict::kProviderViolated;
  return ok ? 0 : 1;
}
