// Quickstart: the TACOMA metaphor in one page.
//
// "visit a place, use a service (perhaps after some negotiation), and then
// move on."  We build a two-site world, stock one site with data, and launch
// a TACL agent that travels there, filters the data locally, and carries
// only the relevant values home — no raw data crosses the network.
//
// Run: ./quickstart
#include <cstdio>

#include "core/kernel.h"

int main() {
  using namespace tacoma;

  // A kernel is the whole simulated world: simulator + network + one Place
  // (agent runtime) per site.  The content-addressed code cache makes repeat
  // transfers of the same CODE folder ship a 32-byte digest instead of the
  // source (docs/performance.md) — the round trip below shows it off.
  KernelOptions options;
  options.code_cache.enabled = true;
  Kernel kernel(options);
  SiteId office = kernel.AddSite("office");
  SiteId observatory = kernel.AddSite("observatory");
  kernel.net().AddLink(office, observatory,
                       LinkParams{5 * kMillisecond, 1'000'000});

  // Stock the observatory's site-local file cabinet with readings.
  FileCabinet& cabinet = kernel.place(observatory)->Cabinet("wx");
  for (int reading : {12, 31, 8, 45, 27, 3, 38}) {
    cabinet.AppendString("TEMPS", std::to_string(reading));
  }

  // Agents speak TACL (a small Tcl): the same source runs at every site, and
  // everything the agent remembers travels in its briefcase.  This agent is
  // phase-driven: the briefcase tells it whether it is outbound or home.
  const char* agent = R"tacl(
    if {[bc_has RESULT]} {
      # Phase 3: back home with the goods.
      log "high readings: [bc_list RESULT]"
      foreach r [bc_list RESULT] { cab_append report HIGH $r }
    } elseif {[site] eq "office"} {
      # Phase 1: head out.
      jump observatory
    } else {
      # Phase 2: filter at the data (this is the whole point).
      foreach t [cab_list wx TEMPS] {
        if {$t > 25} { bc_put RESULT $t }
      }
      jump office
    }
  )tacl";

  kernel.place(office)->set_agent_output(
      [](const std::string& line) { std::printf("[agent] %s\n", line.c_str()); });

  Status launched = kernel.LaunchAgent(office, agent);
  if (!launched.ok()) {
    std::printf("launch failed: %s\n", launched.ToString().c_str());
    return 1;
  }
  kernel.sim().Run();  // Run the world to quiescence.

  std::printf("\nround trip took %.1f ms of simulated time\n",
              static_cast<double>(kernel.sim().Now()) / kMillisecond);
  std::printf("bytes on the wire: %llu (the 7 raw readings stayed put)\n",
              (unsigned long long)kernel.net().stats().bytes_on_wire);
  const Kernel::CodeCacheStats& cc = kernel.code_cache_stats();
  std::printf("code cache saved %llu bytes (%llu full / %llu stub transfers):\n"
              "the agent's source crossed the wire once; the trip home shipped "
              "a digest\n",
              (unsigned long long)cc.bytes_saved,
              (unsigned long long)cc.full_sends,
              (unsigned long long)cc.stub_sends);

  auto collected = kernel.place(office)->Cabinet("report").ListStrings("HIGH");
  std::printf("office report now holds %zu high readings:", collected.size());
  for (const std::string& r : collected) {
    std::printf(" %s", r.c_str());
  }
  std::printf("\n");

  // tacoma_top, one shot: observability is an agent too (§2).  Meet the
  // resident `probe` agent and read the kernel's unified metrics and the
  // agent's journey back out of the briefcase.
  Briefcase top;
  top.SetString("WHAT", "all");
  if (kernel.place(office)->Meet("probe", top).ok()) {
    std::printf("\n--- tacoma_top (via the probe agent at %s, t=%s us) ---\n",
                top.GetString("PROBE_SITE").value_or("?").c_str(),
                top.GetString("PROBE_TIME_US").value_or("?").c_str());
    std::printf("%s", top.GetString("METRICS_TEXT").value_or("").c_str());
    std::printf("--- journey (from the TRACE folder the agent carried) ---\n%s",
                kernel.trace().Summary().c_str());
  }
  return collected.size() == 4 ? 0 : 1;  // 31, 45, 27, 38 exceed 25.
}
