// StormCast: the paper's flagship application (§6).
//
// A sensor field produces Arctic weather series; a filter agent tours the
// sensors, reduces the data in place, and a rule-based predictor at home
// decides whether a storm is coming.  The same prediction computed
// client/server style shows what the agent saved in bandwidth.
//
// Run: ./stormcast
#include <cstdio>

#include "stormcast/scenario.h"

int main() {
  using namespace tacoma;
  using namespace tacoma::stormcast;

  ScenarioOptions options;
  options.sensor_count = 8;
  options.samples_per_site = 168;  // One week of hourly readings.
  options.storm_events = 2;
  options.seed = 1995;
  options.topology = Topology::kStar;
  Scenario scenario(options);

  Thresholds thresholds;  // Alert: pressure < 980 hPa and wind > 20 m/s.

  std::printf("StormCast: %zu sensor stations, %zu hourly readings each\n",
              options.sensor_count, options.samples_per_site);
  std::printf("ground truth: %zu storm event(s) injected\n\n",
              scenario.field().events().size());

  CollectionResult agent = scenario.RunAgentCollection(thresholds);
  std::printf("agent collection:  storm=%s  alerting stations=%d  "
              "readings carried home=%d\n",
              agent.prediction.storm ? "YES" : "no",
              agent.prediction.alerting_stations, agent.prediction.matches_carried);
  std::printf("                   %llu bytes on wire, %.1f ms simulated\n\n",
              (unsigned long long)agent.bytes_on_wire,
              static_cast<double>(agent.duration) / kMillisecond);

  CollectionResult cs = scenario.RunClientServerCollection(thresholds);
  std::printf("client/server:     storm=%s  alerting stations=%d\n",
              cs.prediction.storm ? "YES" : "no", cs.prediction.alerting_stations);
  std::printf("                   %llu bytes on wire, %.1f ms simulated\n\n",
              (unsigned long long)cs.bytes_on_wire,
              static_cast<double>(cs.duration) / kMillisecond);

  std::printf("same verdict, %.1fx less bandwidth for the agent — \"an agent\n"
              "typically will filter or otherwise reduce the data it reads\".\n",
              static_cast<double>(cs.bytes_on_wire) /
                  static_cast<double>(std::max<uint64_t>(1, agent.bytes_on_wire)));

  bool agree = agent.completed && cs.completed &&
               agent.prediction.storm == cs.prediction.storm;
  return agree ? 0 : 1;
}
