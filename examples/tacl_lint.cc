// tacl_lint — offline static analysis for TACL agent scripts.
//
// Agent authors get the same checks a Place's admission pass applies, before
// their agent ever travels: parse errors, unknown commands, arity mismatches,
// unset variables, unreachable code, effect advisories, and the effect
// manifest a site would evaluate its admission policy against.
//
// Usage: tacl_lint [--strict] [--capabilities] [--manifest] [--json]
//                  [--disasm] [--policy rules.txt] [--builtin-only] file.tacl ...
//        tacl_lint -            (read one script from stdin)
//
// Exit status: 0 clean, 1 diagnostics at the failing severity (or a policy
// violation with --policy), 2 usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/place.h"
#include "tacl/analyze.h"
#include "tacl/vm/bytecode.h"
#include "tacl/vm/compiler.h"

namespace {

void PrintCapabilities(const tacoma::tacl::CapabilitySummary& caps) {
  auto print_set = [](const char* label, const std::set<std::string>& values) {
    std::printf("  %-18s", label);
    if (values.empty()) {
      std::printf(" (none)");
    }
    for (const std::string& v : values) {
      std::printf(" %s", v.c_str());
    }
    std::printf("\n");
  };
  print_set("briefcase folders:", caps.briefcase_folders);
  print_set("cabinets:", caps.cabinets);
  print_set("agents met:", caps.agents_met);
  print_set("hosts:", caps.hosts);
  if (caps.dynamic_targets) {
    std::printf("  (some targets are computed at run time; summary is a lower bound)\n");
  }
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      *out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

// One JSON object per file: name, diagnostics (with slug/severity/line), and
// the effect manifest.  Single line, stable field order, machine-diffable.
std::string ReportToJson(const std::string& name,
                         const tacoma::tacl::AnalysisReport& report) {
  std::string out = "{\"file\":";
  AppendJsonString(&out, name);
  out += ",\"diagnostics\":[";
  bool first = true;
  for (const auto& d : report.diagnostics) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"line\":" + std::to_string(d.line) + ",\"severity\":";
    AppendJsonString(&out, tacoma::tacl::SeverityName(d.severity));
    out += ",\"slug\":";
    AppendJsonString(&out, d.code);
    out += ",\"message\":";
    AppendJsonString(&out, d.message);
    out += "}";
  }
  out += "],\"manifest\":" + report.manifest.ToJson() + "}";
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tacl_lint [--strict] [--capabilities] [--manifest] "
               "[--json] [--disasm] [--policy rules.txt] [--builtin-only] file.tacl ... | -\n"
               "  --strict        warnings also fail the lint\n"
               "  --capabilities  print what each script touches\n"
               "  --manifest      print each script's EffectManifest as JSON\n"
               "  --json          print the full report (diagnostics + manifest) as JSON\n"
               "  --disasm        print each script's compiled bytecode listing\n"
               "  --policy FILE   evaluate an admission rules table; violations fail\n"
               "  --builtin-only  lint against the TACL standard library only\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tacoma;

  bool strict = false;
  bool capabilities = false;
  bool manifest = false;
  bool json = false;
  bool disasm = false;
  bool builtin_only = false;
  std::string policy_file;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--capabilities") == 0) {
      capabilities = true;
    } else if (std::strcmp(argv[i], "--manifest") == 0) {
      manifest = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--disasm") == 0) {
      disasm = true;
    } else if (std::strcmp(argv[i], "--policy") == 0) {
      if (i + 1 >= argc) {
        return Usage();
      }
      policy_file = argv[++i];
    } else if (std::strcmp(argv[i], "--builtin-only") == 0) {
      builtin_only = true;
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      return Usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    return Usage();
  }

  AdmissionRules rules;
  bool have_policy = false;
  if (!policy_file.empty()) {
    std::ifstream in(policy_file);
    if (!in) {
      std::fprintf(stderr, "tacl_lint: cannot open policy %s\n", policy_file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = AdmissionRules::Parse(buffer.str());
    if (!parsed.ok()) {
      std::fprintf(stderr, "tacl_lint: %s\n", parsed.status().message().c_str());
      return 2;
    }
    rules = *parsed;
    have_policy = true;
  }

  // The same command surface an agent sees at a plain site: TACL builtins
  // plus the agent primitives every Place binds.  --builtin-only drops the
  // primitives for linting pure-TACL library code.
  tacl::AnalyzerOptions options;
  options.signatures = tacl::BuiltinCommandSignatures();
  if (!builtin_only) {
    for (const auto& [name, sig] : AgentPrimitiveSignatures()) {
      options.signatures.emplace(name, sig);
    }
  }

  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
  size_t policy_violations = 0;
  for (const std::string& file : files) {
    std::string source;
    if (file == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      source = buffer.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "tacl_lint: cannot open %s\n", file.c_str());
        ++errors;
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    }

    const std::string display = file == "-" ? "<stdin>" : file;
    tacl::AnalysisReport report = tacl::Analyze(source, options);
    if (json) {
      std::printf("%s\n", ReportToJson(display, report).c_str());
    } else {
      std::string rendered = report.ToString(display);
      if (!rendered.empty()) {
        std::fputs(rendered.c_str(), stdout);
      }
    }
    errors += report.error_count();
    warnings += report.warning_count();
    notes += report.note_count();
    if (capabilities) {
      std::printf("%s: capabilities\n", file.c_str());
      PrintCapabilities(report.capabilities);
    }
    if (manifest && !json) {
      std::printf("%s: manifest %s\n", display.c_str(),
                  report.manifest.ToJson().c_str());
    }
    if (disasm) {
      // The same compile a place's digest-keyed unit cache would perform,
      // with builtin inlining on (a fresh interp's command surface).
      tacl::vm::CompileOptions copts;
      Status compile_error = OkStatus();
      auto unit = tacl::vm::Compile(source, copts, &compile_error);
      if (unit == nullptr) {
        std::printf("%s: disasm unavailable: %s\n", display.c_str(),
                    compile_error.message().c_str());
        ++errors;
      } else {
        std::printf("%s: disassembly\n%s", display.c_str(),
                    tacl::vm::Disassemble(*unit).c_str());
      }
    }
    if (have_policy) {
      AdmissionSummary summary = AdmissionSummary::FromReport(report);
      for (const std::string& violation : rules.Violations(summary)) {
        std::printf("%s: policy violation: %s\n", display.c_str(),
                    violation.c_str());
        ++policy_violations;
      }
    }
  }

  if (!json && errors + warnings + notes > 0) {
    std::printf("%zu error(s), %zu warning(s), %zu note(s)\n", errors, warnings,
                notes);
  }
  if (errors > 0 || (strict && warnings > 0) || policy_violations > 0) {
    return 1;
  }
  return 0;
}
