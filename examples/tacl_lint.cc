// tacl_lint — offline static analysis for TACL agent scripts.
//
// Agent authors get the same checks a Place's admission pass applies, before
// their agent ever travels: parse errors, unknown commands, arity mismatches,
// unset variables, unreachable code, and the capability summary a site would
// use to gate admission.
//
// Usage: tacl_lint [--strict] [--capabilities] [--builtin-only] file.tacl ...
//        tacl_lint -            (read one script from stdin)
//
// Exit status: 0 clean, 1 diagnostics at the failing severity, 2 usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/place.h"
#include "tacl/analyze.h"

namespace {

void PrintCapabilities(const tacoma::tacl::CapabilitySummary& caps) {
  auto print_set = [](const char* label, const std::set<std::string>& values) {
    std::printf("  %-18s", label);
    if (values.empty()) {
      std::printf(" (none)");
    }
    for (const std::string& v : values) {
      std::printf(" %s", v.c_str());
    }
    std::printf("\n");
  };
  print_set("briefcase folders:", caps.briefcase_folders);
  print_set("cabinets:", caps.cabinets);
  print_set("agents met:", caps.agents_met);
  print_set("hosts:", caps.hosts);
  if (caps.dynamic_targets) {
    std::printf("  (some targets are computed at run time; summary is a lower bound)\n");
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: tacl_lint [--strict] [--capabilities] [--builtin-only] "
               "file.tacl ... | -\n"
               "  --strict        warnings also fail the lint\n"
               "  --capabilities  print what each script touches\n"
               "  --builtin-only  lint against the TACL standard library only\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tacoma;

  bool strict = false;
  bool capabilities = false;
  bool builtin_only = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--capabilities") == 0) {
      capabilities = true;
    } else if (std::strcmp(argv[i], "--builtin-only") == 0) {
      builtin_only = true;
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      return Usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    return Usage();
  }

  // The same command surface an agent sees at a plain site: TACL builtins
  // plus the agent primitives every Place binds.  --builtin-only drops the
  // primitives for linting pure-TACL library code.
  tacl::AnalyzerOptions options;
  options.signatures = tacl::BuiltinCommandSignatures();
  if (!builtin_only) {
    for (const auto& [name, sig] : AgentPrimitiveSignatures()) {
      options.signatures.emplace(name, sig);
    }
  }

  size_t errors = 0;
  size_t warnings = 0;
  for (const std::string& file : files) {
    std::string source;
    if (file == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      source = buffer.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "tacl_lint: cannot open %s\n", file.c_str());
        ++errors;
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    }

    tacl::AnalysisReport report = tacl::Analyze(source, options);
    std::string rendered = report.ToString(file == "-" ? "<stdin>" : file);
    if (!rendered.empty()) {
      std::fputs(rendered.c_str(), stdout);
    }
    errors += report.error_count();
    warnings += report.warning_count();
    if (capabilities) {
      std::printf("%s: capabilities\n", file.c_str());
      PrintCapabilities(report.capabilities);
    }
  }

  if (errors + warnings > 0) {
    std::printf("%zu error(s), %zu warning(s)\n", errors, warnings);
  }
  return errors > 0 || (strict && warnings > 0) ? 1 : 0;
}
