// tacoma_shell — an interactive place.
//
// §2: "The CONTACT folder might contain the name of an agent that is a
// shell."  This example is that shell: a REPL bound to one site of a small
// world.  You type TACL; it runs as an agent activation with a persistent
// briefcase, so you can poke cabinets, meet system agents, and launch
// travellers by hand.
//
// Run interactively:   ./tacoma_shell
// Scripted demo:       ./tacoma_shell --demo   (also used when stdin is not a TTY)
//
// Daemon mode — one OS process per site, frames over TCP loopback:
//
//   ./tacoma_shell --daemon --sites a,b --me a --listen 127.0.0.1:7101
//       --peer b=127.0.0.1:7102 --state-dir /tmp/tac/a --reliable
//       --code-cache --launch 4 --hops b,a --run-ms 8000 --wait-done 4
//
// Every daemon must pass the same --sites list (in the same order) so SiteIds
// agree across processes.  --state-dir makes site disks real directories, so
// dedup journals, cabinets, and rear-guard tables survive a SIGKILL; restart
// the daemon with the same flags and it recovers.  With --launch N the daemon
// sends N ft-guarded walkers down --hops and exits 0 once each one resolved
// exactly once (printed as the EXACTLY_ONCE verdict); without it the daemon
// serves until --run-ms expires.
//
// Process-kill chaos: --chaos-spawn 'CMD' makes this daemon fork CMD (the
// victim peer, typically another tacoma_shell --daemon with a --state-dir),
// SIGKILL it on a seeded schedule, and respawn it with identical argv —
// --chaos-kills bounds the SIGKILLs.  The EXACTLY_ONCE verdict must hold
// across the kills; ci/e17_daemon_smoke.sh is the scripted version.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "ft/rearguard.h"
#include "net/proc_chaos.h"
#include "net/realtime.h"
#include "net/tcp_transport.h"
#include "sim/topology.h"
#include "storage/disk.h"
#include "util/log.h"

namespace {

using namespace tacoma;

// One long-lived activation context for the shell: the briefcase persists
// across commands, like a real session.
class Shell {
 public:
  Shell(Kernel* kernel, ft::RearGuard* guard, SiteId site)
      : kernel_(kernel), guard_(guard), site_(site) {
    kernel_->place(site_)->set_agent_output(
        [](const std::string& line) { std::printf("%s\n", line.c_str()); });
  }

  // Runs one command line; prints result or error.  Returns false on "exit".
  bool Execute(const std::string& line) {
    if (line == "exit" || line == "quit") {
      return false;
    }
    if (line.empty()) {
      return true;
    }
    if (line == "run") {
      // Drain the simulated world (deliver in-flight agents).
      size_t events = kernel_->sim().Run();
      std::printf("; %zu events, now=%llu us\n", events,
                  (unsigned long long)kernel_->sim().Now());
      return true;
    }
    if (line == "stats") {
      // The unified registry: kernel, network, place, and service metrics.
      std::printf("%s", kernel_->metrics().TextSnapshot().c_str());
      int64_t hits = kernel_->metrics().Value("code_cache.hits").value_or(0);
      int64_t misses = kernel_->metrics().Value("code_cache.misses").value_or(0);
      double rate = hits + misses > 0
                        ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0;
      std::printf("; code cache: %lld hits / %lld misses (%.0f%% hit rate), "
                  "%llu bytes saved on the wire\n",
                  (long long)hits, (long long)misses, rate,
                  (unsigned long long)kernel_->code_cache_stats().bytes_saved);
      const ft::RearGuard::Stats& ft = guard_->stats();
      const ft::CompletionRegistry::Stats& reg = guard_->registry().stats();
      std::printf("; ft: %zu guards live, %llu relaunches, %llu quenches, "
                  "%llu dead-letters, %llu of %llu agents resolved\n",
                  guard_->TotalGuards(), (unsigned long long)ft.relaunches,
                  (unsigned long long)(ft.quenches + reg.duplicates_quenched),
                  (unsigned long long)(ft.guard_deadletters + reg.deadletters),
                  (unsigned long long)reg.resolved,
                  (unsigned long long)reg.launches);
      return true;
    }
    if (line == "trace") {
      // Journey summary per trace id; `trace json` dumps Chrome-trace JSON
      // (paste into chrome://tracing or Perfetto).
      std::printf("%s", kernel_->trace().Summary().c_str());
      return true;
    }
    if (line == "trace json") {
      std::printf("%s\n", kernel_->trace().ChromeTraceJson().c_str());
      return true;
    }
    if (line == "top") {
      // The resource ledger's biggest spenders (metered cost, cost-descending).
      std::printf("%s", kernel_->accounts().TextTop(10).c_str());
      std::printf("; %zu accounts, totals: %llu steps, %llu bytes, %llu hops\n",
                  kernel_->accounts().size(),
                  (unsigned long long)kernel_->accounts().totals().eval_steps,
                  (unsigned long long)kernel_->accounts().totals().bytes_sent,
                  (unsigned long long)kernel_->accounts().totals().hops);
      return true;
    }
    if (line.rfind("account ", 0) == 0) {
      // Every incarnation row for one agent id.
      std::string agent = line.substr(8);
      auto rows = kernel_->accounts().ForAgent(agent);
      if (rows.empty()) {
        std::printf("no account for \"%s\"\n", agent.c_str());
        return true;
      }
      for (const auto& [key, acct] : rows) {
        std::printf("%s inc=%llu: %llu activations, %llu steps, %llu bytes, "
                    "%llu hops, %llu meets, %llu flushes, %llu ecu spent, "
                    "%llu ecu billed (cost %llu)\n",
                    key.agent.c_str(), (unsigned long long)key.incarnation,
                    (unsigned long long)acct.activations,
                    (unsigned long long)acct.eval_steps,
                    (unsigned long long)acct.bytes_sent,
                    (unsigned long long)acct.hops,
                    (unsigned long long)acct.meets,
                    (unsigned long long)acct.flushes,
                    (unsigned long long)acct.ecu_spent,
                    (unsigned long long)acct.ecu_billed,
                    (unsigned long long)acct.Cost());
      }
      return true;
    }
    // Evaluate in a persistent briefcase: wrap via ag_tacl semantics by hand.
    Status status = kernel_->place(site_)->RunAgentCode(line, briefcase_, "shell");
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    }
    return true;
  }

 private:
  Kernel* kernel_;
  ft::RearGuard* guard_;
  SiteId site_;
  Briefcase briefcase_;
};

int RunDemo(Kernel* kernel, Shell* shell) {
  std::printf("=== scripted demo (run with a TTY for the interactive shell) ===\n");
  const char* script[] = {
      "log \"hello from [site], neighbours: [cab_list system SITES]\"",
      "cab_append notes TODO {check the sensors}",
      "cab_append notes TODO {pay the data toll}",
      "log \"todo: [cab_list notes TODO]\"",
      // Launch a traveller by hand: push code, set routing folders, meet rexec.
      "bc_put CODE {cab_set visitors LAST [now_us]; log \"traveller reached [site]\"}",
      "bc_set HOST s1",
      "bc_set CONTACT ag_tacl",
      "meet rexec",
      "run",
      "log \"traveller delivered; wire carried [expr {[now_us] / 1000}] ms of traffic\"",
      "trace",
      "top",
      "stats",
  };
  for (const char* line : script) {
    std::printf("tacoma> %s\n", line);
    shell->Execute(line);
  }
  // Prove the traveller arrived.
  auto arrival = kernel->place(1)->Cabinet("visitors").GetSingleString("LAST");
  std::printf("=== traveller arrival recorded at s1: %s us ===\n",
              arrival.value_or("<missing>").c_str());
  return arrival.has_value() ? 0 : 1;
}

// --- Daemon mode -------------------------------------------------------------

struct DaemonConfig {
  std::vector<std::string> sites;        // Shared id space, same order everywhere.
  std::string me;                        // Which of `sites` this process hosts.
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;
  std::map<std::string, std::pair<std::string, uint16_t>> peers;  // name -> host:port
  std::string state_dir;                 // Empty: volatile MemDisk.
  bool reliable = false;
  bool code_cache = false;
  int launch = 0;                        // Guarded walkers to send (0 = serve only).
  uint64_t launch_spread_ms = 0;         // Stagger launches across this window.
  std::vector<std::string> hops;         // Walker itinerary (site names).
  uint64_t run_ms = 10'000;
  int wait_done = 0;                     // Exit once this many agents resolved.
  uint64_t seed = 1995;
  // Process-kill chaos: this daemon spawns the victim peer with `sh -c`,
  // SIGKILLs it on a seeded schedule, and respawns it (same argv, so a
  // --state-dir victim recovers its durable state).  Empty: no chaos.
  std::string chaos_spawn;
  uint64_t chaos_kills = 1;
};

std::vector<std::string> SplitCommas(const std::string& value) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= value.size()) {
    size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      comma = value.size();
    }
    if (comma > start) {
      out.push_back(value.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return out;
}

bool ParseHostPort(const std::string& value, std::string* host, uint16_t* port) {
  size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon + 1 >= value.size()) {
    return false;
  }
  *host = value.substr(0, colon);
  long p = std::strtol(value.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) {
    return false;
  }
  *port = static_cast<uint16_t>(p);
  return true;
}

bool ParseDaemonFlags(int argc, char** argv, DaemonConfig* config) {
  auto need = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--daemon") {
      continue;
    } else if (flag == "--sites" && need(i)) {
      config->sites = SplitCommas(argv[++i]);
    } else if (flag == "--me" && need(i)) {
      config->me = argv[++i];
    } else if (flag == "--listen" && need(i)) {
      if (!ParseHostPort(argv[++i], &config->listen_host,
                         &config->listen_port)) {
        std::fprintf(stderr, "bad --listen %s (want host:port)\n", argv[i]);
        return false;
      }
    } else if (flag == "--peer" && need(i)) {
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      std::string host;
      uint16_t port = 0;
      if (eq == std::string::npos ||
          !ParseHostPort(spec.substr(eq + 1), &host, &port)) {
        std::fprintf(stderr, "bad --peer %s (want name=host:port)\n",
                     spec.c_str());
        return false;
      }
      config->peers[spec.substr(0, eq)] = {host, port};
    } else if (flag == "--state-dir" && need(i)) {
      config->state_dir = argv[++i];
    } else if (flag == "--reliable") {
      config->reliable = true;
    } else if (flag == "--code-cache") {
      config->code_cache = true;
    } else if (flag == "--launch" && need(i)) {
      config->launch = std::atoi(argv[++i]);
    } else if (flag == "--launch-spread-ms" && need(i)) {
      config->launch_spread_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--hops" && need(i)) {
      config->hops = SplitCommas(argv[++i]);
    } else if (flag == "--run-ms" && need(i)) {
      config->run_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--wait-done" && need(i)) {
      config->wait_done = std::atoi(argv[++i]);
    } else if (flag == "--seed" && need(i)) {
      config->seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (flag == "--chaos-spawn" && need(i)) {
      config->chaos_spawn = argv[++i];
    } else if (flag == "--chaos-kills" && need(i)) {
      config->chaos_kills = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown daemon flag %s\n", flag.c_str());
      return false;
    }
  }
  if (config->sites.empty() || config->me.empty()) {
    std::fprintf(stderr, "--daemon needs --sites and --me\n");
    return false;
  }
  return true;
}

// The guarded walker: idempotent per-site work, one ft hop per itinerary
// entry, a registry outcome at the end (same idiom as the ft soak tests).
constexpr char kDaemonWalker[] = R"(
  cab_append t VISITS [site]
  if {[bc_len ITINERARY] > 0} {
    ft_jump [bc_pop ITINERARY]
  } else {
    ft_complete
  }
)";

int RunDaemon(const DaemonConfig& config) {
  KernelOptions options;
  options.seed = config.seed;
  options.cabinet_write_ahead = true;
  if (config.reliable) {
    options.reliability.mode = Reliability::kReliable;
  }
  options.code_cache.enabled = config.code_cache;
  if (!config.state_dir.empty()) {
    std::string dir = config.state_dir;
    options.disk_factory = [dir](SiteId, const std::string& name) {
      return std::make_unique<FileDisk>(dir + "/" + name);
    };
  }
  Kernel kernel(options);

  // Same sites, same order, in every process — ids must agree on the wire.
  SiteId my_site = kInvalidSite;
  std::vector<SiteId> ids;
  for (const std::string& name : config.sites) {
    SiteId id = name == config.me ? kernel.AddSite(name)
                                  : kernel.AddRemoteSite(name);
    if (name == config.me) {
      my_site = id;
    }
    ids.push_back(id);
  }
  if (my_site == kInvalidSite) {
    std::fprintf(stderr, "--me %s is not in --sites\n", config.me.c_str());
    return 2;
  }
  // Full-mesh links as topology metadata: frames travel over TCP, but hop
  // counts, SITES folders, and the rear guard's reachability checks still
  // read the sim network's map.
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      kernel.net().AddLink(ids[i], ids[j]);
    }
  }

  // Tuned for loopback latencies.  The lease must expire well inside the run
  // budget: an agent lost in flight between two sites leaves live guard
  // records on BOTH — each side's status ping sees the other's record and
  // stays quiet, and it is the lease that breaks the standoff by
  // dead-lettering the checkpoint home (exactly-once resolution, same
  // contract the sim soaks assert).
  ft::GuardOptions guard_options;
  guard_options.heartbeat = 100 * kMillisecond;
  guard_options.max_misses = 3;
  guard_options.max_relaunches = 8;
  guard_options.lease = 5 * kSecond;
  guard_options.completion_contact = "ft_done";
  ft::RearGuard guard(&kernel, guard_options);
  guard.Install();

  // Home-side completion contact: one printed DONE line per resolved agent.
  std::map<std::string, int> done;
  kernel.AddPlaceInitializer([&done](Place& place) {
    place.RegisterAgent("ft_done", [&done](Place&, Briefcase& bc) {
      std::string agent = bc.GetString("GUARD_AGENT").value_or("?");
      int count = ++done[agent];
      std::printf("DONE %s count=%d\n", agent.c_str(), count);
      std::fflush(stdout);
      return OkStatus();
    });
  });

  TcpTransportOptions tcp_options;
  tcp_options.listen_host = config.listen_host;
  tcp_options.listen_port = config.listen_port;
  TcpTransport tcp(tcp_options);
  Status listening = tcp.Listen();
  if (!listening.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", listening.ToString().c_str());
    return 2;
  }
  for (const auto& [name, endpoint] : config.peers) {
    auto site = kernel.net().FindSite(name);
    if (!site.has_value()) {
      std::fprintf(stderr, "--peer %s is not in --sites\n", name.c_str());
      return 2;
    }
    tcp.AddPeer(*site, endpoint.first, endpoint.second);
  }
  kernel.SetTransport(&tcp);

  std::printf("DAEMON site=%s id=%u port=%u pid=%d\n", config.me.c_str(),
              my_site, tcp.bound_port(), getpid());
  std::fflush(stdout);

  // Launches go through sim timers so --launch-spread-ms can stagger them
  // across a chaos window (a peer SIGKILLed mid-spread catches walkers at
  // every stage: queued, in flight, and mid-itinerary on the dead site).
  for (int i = 0; i < config.launch; ++i) {
    SimTime when = config.launch == 1
                       ? 0
                       : config.launch_spread_ms * kMillisecond *
                             static_cast<SimTime>(i) / (config.launch - 1);
    kernel.sim().At(when, [&guard, &config, my_site, i] {
      Briefcase bc;
      for (const std::string& hop : config.hops) {
        bc.folder("ITINERARY").PushBackString(hop);
      }
      Status launched = guard.LaunchGuarded(
          my_site, kDaemonWalker, std::move(bc), "ag" + std::to_string(i));
      if (!launched.ok()) {
        std::fprintf(stderr, "launch %d failed: %s\n", i,
                     launched.ToString().c_str());
      }
    });
  }

  RealtimePump pump(&kernel.sim(), &tcp);
  auto all_done = [&] {
    if (config.wait_done <= 0) {
      return false;
    }
    if (static_cast<int>(done.size()) < config.wait_done) {
      return false;
    }
    // Completion notes arrived for every agent; the registry verdict below
    // settles exactly-once.
    return true;
  };
  // With --chaos-spawn this daemon drives the ProcessChaos schedule from its
  // own pump loop: the victim peer is forked, SIGKILLed (no flush, no
  // goodbye), and respawned with identical argv while the walkers are in
  // flight.  Exactly-once then has to come from the durable state machinery.
  std::unique_ptr<ProcessChaos> chaos;
  if (!config.chaos_spawn.empty()) {
    ProcessChaos::Options chaos_options;
    chaos_options.seed = config.seed;
    chaos_options.max_kills = config.chaos_kills;
    chaos = std::make_unique<ProcessChaos>(
        [cmd = config.chaos_spawn]() -> pid_t {
          pid_t pid = fork();
          if (pid == 0) {
            // `exec` so the pid we SIGKILL is the daemon, not the shell.
            execl("/bin/sh", "sh", "-c", ("exec " + cmd).c_str(),
                  static_cast<char*>(nullptr));
            _exit(127);
          }
          return pid;
        },
        chaos_options);
    if (!chaos->Start()) {
      std::fprintf(stderr, "chaos victim failed to spawn\n");
      return 2;
    }
  }

  bool finished;
  if (chaos != nullptr) {
    finished = false;
    while (pump.elapsed_us() < config.run_ms * 1000) {
      pump.Tick(1);
      chaos->Tick();
      if (all_done()) {
        finished = true;
        break;
      }
    }
    chaos->Stop();
    std::printf("CHAOS kills=%llu respawns=%llu\n",
                (unsigned long long)chaos->report().kills,
                (unsigned long long)chaos->report().respawns);
    std::fflush(stdout);
  } else {
    finished = pump.RunFor(config.run_ms, all_done);
  }

  if (config.wait_done > 0) {
    Status verdict =
        guard.registry().CheckExactlyOnce(my_site, /*require_resolved=*/true);
    bool duplicates = false;
    for (const auto& [agent, count] : done) {
      if (count != 1) {
        duplicates = true;
        std::fprintf(stderr, "agent %s resolved %d times\n", agent.c_str(),
                     count);
      }
    }
    TransportStats net = tcp.transport_stats();
    const ft::RearGuard::Stats& ft_stats = guard.stats();
    const ft::CompletionRegistry::Stats& reg = guard.registry().stats();
    std::printf("EXACTLY_ONCE %s done=%zu/%d duplicates=%d registry=%s "
                "frames_sent=%llu frames_delivered=%llu reconnects=%llu "
                "relaunches=%llu quenches=%llu deadletters=%llu resolved=%llu "
                "stubs=%llu full=%llu\n",
                finished && verdict.ok() && !duplicates ? "OK" : "FAIL",
                done.size(), config.wait_done, duplicates ? 1 : 0,
                verdict.ok() ? "ok" : verdict.ToString().c_str(),
                (unsigned long long)net.frames_sent,
                (unsigned long long)net.frames_delivered,
                (unsigned long long)net.reconnects,
                (unsigned long long)ft_stats.relaunches,
                (unsigned long long)(ft_stats.quenches + reg.duplicates_quenched),
                (unsigned long long)(ft_stats.guard_deadletters + reg.deadletters),
                (unsigned long long)reg.resolved,
                (unsigned long long)kernel.code_cache_stats().stub_sends,
                (unsigned long long)kernel.code_cache_stats().full_sends);
    std::fflush(stdout);
    if (!(finished && verdict.ok() && !duplicates)) {
      // Post-mortem for the smoke harness: where each journey stalled.
      std::printf("--- trace summary:\n%s", kernel.trace().Summary().c_str());
      std::printf("--- guards left here: %zu, pending transfers: %zu\n",
                  guard.TotalGuards(), kernel.pending_transfers());
      std::fflush(stdout);
      return 1;
    }
    return 0;
  }
  const ft::RearGuard::Stats& ft_stats = guard.stats();
  TransportStats net = tcp.transport_stats();
  std::printf("DAEMON EXIT site=%s served_ms=%llu relaunches=%llu "
              "recovered=%llu deposits=%llu quenches=%llu guards_left=%zu "
              "frames_sent=%llu frames_delivered=%llu reconnects=%llu\n",
              config.me.c_str(), (unsigned long long)config.run_ms,
              (unsigned long long)ft_stats.relaunches,
              (unsigned long long)ft_stats.recovered_records,
              (unsigned long long)ft_stats.deposits,
              (unsigned long long)ft_stats.quenches,
              guard.TotalGuards(), (unsigned long long)net.frames_sent,
              (unsigned long long)net.frames_delivered,
              (unsigned long long)net.reconnects);
  return 0;
}

int RunShell(int argc, char** argv) {
  // Surface site warnings (admission analysis, failed deliveries) on the
  // console; the logger is off by default.
  SetLogLevel(LogLevel::kWarn);
  Kernel kernel;
  auto ids = BuildRing(&kernel.net(), 4);
  kernel.AdoptNetworkSites();
  // Rear guards on every site: hand-launched travellers can use ft_jump /
  // ft_complete, and `stats` reports the exactly-once machinery.
  ft::RearGuard guard(&kernel);
  guard.Install();
  Shell shell(&kernel, &guard, ids[0]);

  bool demo = (argc > 1 && std::strcmp(argv[1], "--demo") == 0) || !isatty(0);
  if (demo) {
    return RunDemo(&kernel, &shell);
  }

  std::printf("TACOMA shell at site \"%s\" (4-site ring).  Commands are TACL;\n"
              "extras: `run` drains the simulator, `stats` prints the metrics\n"
              "snapshot, `trace` summarizes agent journeys (`trace json` for\n"
              "Chrome-trace output), `top` ranks agents by metered resource\n"
              "cost, `account <agent>` itemizes one agent's ledger, `exit`\n"
              "leaves.\n",
              kernel.net().site_name(ids[0]).c_str());
  std::string line;
  for (;;) {
    std::printf("tacoma> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    if (!shell.Execute(line)) {
      break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--daemon") == 0) {
      SetLogLevel(LogLevel::kWarn);
      DaemonConfig config;
      if (!ParseDaemonFlags(argc, argv, &config)) {
        return 2;
      }
      return RunDaemon(config);
    }
  }
  return RunShell(argc, argv);
}
