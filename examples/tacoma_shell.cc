// tacoma_shell — an interactive place.
//
// §2: "The CONTACT folder might contain the name of an agent that is a
// shell."  This example is that shell: a REPL bound to one site of a small
// world.  You type TACL; it runs as an agent activation with a persistent
// briefcase, so you can poke cabinets, meet system agents, and launch
// travellers by hand.
//
// Run interactively:   ./tacoma_shell
// Scripted demo:       ./tacoma_shell --demo   (also used when stdin is not a TTY)
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/kernel.h"
#include "ft/rearguard.h"
#include "sim/topology.h"
#include "util/log.h"

namespace {

using namespace tacoma;

// One long-lived activation context for the shell: the briefcase persists
// across commands, like a real session.
class Shell {
 public:
  Shell(Kernel* kernel, ft::RearGuard* guard, SiteId site)
      : kernel_(kernel), guard_(guard), site_(site) {
    kernel_->place(site_)->set_agent_output(
        [](const std::string& line) { std::printf("%s\n", line.c_str()); });
  }

  // Runs one command line; prints result or error.  Returns false on "exit".
  bool Execute(const std::string& line) {
    if (line == "exit" || line == "quit") {
      return false;
    }
    if (line.empty()) {
      return true;
    }
    if (line == "run") {
      // Drain the simulated world (deliver in-flight agents).
      size_t events = kernel_->sim().Run();
      std::printf("; %zu events, now=%llu us\n", events,
                  (unsigned long long)kernel_->sim().Now());
      return true;
    }
    if (line == "stats") {
      // The unified registry: kernel, network, place, and service metrics.
      std::printf("%s", kernel_->metrics().TextSnapshot().c_str());
      int64_t hits = kernel_->metrics().Value("code_cache.hits").value_or(0);
      int64_t misses = kernel_->metrics().Value("code_cache.misses").value_or(0);
      double rate = hits + misses > 0
                        ? 100.0 * static_cast<double>(hits) /
                              static_cast<double>(hits + misses)
                        : 0.0;
      std::printf("; code cache: %lld hits / %lld misses (%.0f%% hit rate), "
                  "%llu bytes saved on the wire\n",
                  (long long)hits, (long long)misses, rate,
                  (unsigned long long)kernel_->code_cache_stats().bytes_saved);
      const ft::RearGuard::Stats& ft = guard_->stats();
      const ft::CompletionRegistry::Stats& reg = guard_->registry().stats();
      std::printf("; ft: %zu guards live, %llu relaunches, %llu quenches, "
                  "%llu dead-letters, %llu of %llu agents resolved\n",
                  guard_->TotalGuards(), (unsigned long long)ft.relaunches,
                  (unsigned long long)(ft.quenches + reg.duplicates_quenched),
                  (unsigned long long)(ft.guard_deadletters + reg.deadletters),
                  (unsigned long long)reg.resolved,
                  (unsigned long long)reg.launches);
      return true;
    }
    if (line == "trace") {
      // Journey summary per trace id; `trace json` dumps Chrome-trace JSON
      // (paste into chrome://tracing or Perfetto).
      std::printf("%s", kernel_->trace().Summary().c_str());
      return true;
    }
    if (line == "trace json") {
      std::printf("%s\n", kernel_->trace().ChromeTraceJson().c_str());
      return true;
    }
    if (line == "top") {
      // The resource ledger's biggest spenders (metered cost, cost-descending).
      std::printf("%s", kernel_->accounts().TextTop(10).c_str());
      std::printf("; %zu accounts, totals: %llu steps, %llu bytes, %llu hops\n",
                  kernel_->accounts().size(),
                  (unsigned long long)kernel_->accounts().totals().eval_steps,
                  (unsigned long long)kernel_->accounts().totals().bytes_sent,
                  (unsigned long long)kernel_->accounts().totals().hops);
      return true;
    }
    if (line.rfind("account ", 0) == 0) {
      // Every incarnation row for one agent id.
      std::string agent = line.substr(8);
      auto rows = kernel_->accounts().ForAgent(agent);
      if (rows.empty()) {
        std::printf("no account for \"%s\"\n", agent.c_str());
        return true;
      }
      for (const auto& [key, acct] : rows) {
        std::printf("%s inc=%llu: %llu activations, %llu steps, %llu bytes, "
                    "%llu hops, %llu meets, %llu flushes, %llu ecu spent, "
                    "%llu ecu billed (cost %llu)\n",
                    key.agent.c_str(), (unsigned long long)key.incarnation,
                    (unsigned long long)acct.activations,
                    (unsigned long long)acct.eval_steps,
                    (unsigned long long)acct.bytes_sent,
                    (unsigned long long)acct.hops,
                    (unsigned long long)acct.meets,
                    (unsigned long long)acct.flushes,
                    (unsigned long long)acct.ecu_spent,
                    (unsigned long long)acct.ecu_billed,
                    (unsigned long long)acct.Cost());
      }
      return true;
    }
    // Evaluate in a persistent briefcase: wrap via ag_tacl semantics by hand.
    Status status = kernel_->place(site_)->RunAgentCode(line, briefcase_, "shell");
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    }
    return true;
  }

 private:
  Kernel* kernel_;
  ft::RearGuard* guard_;
  SiteId site_;
  Briefcase briefcase_;
};

int RunDemo(Kernel* kernel, Shell* shell) {
  std::printf("=== scripted demo (run with a TTY for the interactive shell) ===\n");
  const char* script[] = {
      "log \"hello from [site], neighbours: [cab_list system SITES]\"",
      "cab_append notes TODO {check the sensors}",
      "cab_append notes TODO {pay the data toll}",
      "log \"todo: [cab_list notes TODO]\"",
      // Launch a traveller by hand: push code, set routing folders, meet rexec.
      "bc_put CODE {cab_set visitors LAST [now_us]; log \"traveller reached [site]\"}",
      "bc_set HOST s1",
      "bc_set CONTACT ag_tacl",
      "meet rexec",
      "run",
      "log \"traveller delivered; wire carried [expr {[now_us] / 1000}] ms of traffic\"",
      "trace",
      "top",
      "stats",
  };
  for (const char* line : script) {
    std::printf("tacoma> %s\n", line);
    shell->Execute(line);
  }
  // Prove the traveller arrived.
  auto arrival = kernel->place(1)->Cabinet("visitors").GetSingleString("LAST");
  std::printf("=== traveller arrival recorded at s1: %s us ===\n",
              arrival.value_or("<missing>").c_str());
  return arrival.has_value() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Surface site warnings (admission analysis, failed deliveries) on the
  // console; the logger is off by default.
  SetLogLevel(LogLevel::kWarn);
  Kernel kernel;
  auto ids = BuildRing(&kernel.net(), 4);
  kernel.AdoptNetworkSites();
  // Rear guards on every site: hand-launched travellers can use ft_jump /
  // ft_complete, and `stats` reports the exactly-once machinery.
  ft::RearGuard guard(&kernel);
  guard.Install();
  Shell shell(&kernel, &guard, ids[0]);

  bool demo = (argc > 1 && std::strcmp(argv[1], "--demo") == 0) || !isatty(0);
  if (demo) {
    return RunDemo(&kernel, &shell);
  }

  std::printf("TACOMA shell at site \"%s\" (4-site ring).  Commands are TACL;\n"
              "extras: `run` drains the simulator, `stats` prints the metrics\n"
              "snapshot, `trace` summarizes agent journeys (`trace json` for\n"
              "Chrome-trace output), `top` ranks agents by metered resource\n"
              "cost, `account <agent>` itemizes one agent's ledger, `exit`\n"
              "leaves.\n",
              kernel.net().site_name(ids[0]).c_str());
  std::string line;
  for (;;) {
    std::printf("tacoma> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    if (!shell.Execute(line)) {
      break;
    }
  }
  return 0;
}
