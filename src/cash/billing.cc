#include "cash/billing.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace tacoma::cash {

namespace {

// The briefcase folder pay/withdraw debit (see core/bindings.cc): one decimal
// string balance.
constexpr char kWalletFolder[] = "WALLET";

// Strict non-negative decimal parse; anything else reads as "no funds".
bool ParseBalance(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace

uint64_t PriceOf(const BillingPrices& prices, const ResourceAccount& usage) {
  uint64_t total = usage.activations * prices.per_activation +
                   usage.hops * prices.per_hop;
  if (prices.eval_steps_per_ecu > 0) {
    total += usage.eval_steps / prices.eval_steps_per_ecu;
  }
  if (prices.bytes_per_ecu > 0) {
    total += usage.bytes_sent / prices.bytes_per_ecu;
  }
  return total;
}

void InstallWalletBilling(Kernel* kernel, BillingPrices prices) {
  kernel->SetBillingHook([prices](const AccountKey& /*key*/,
                                  const ResourceAccount& usage,
                                  uint64_t already_billed,
                                  Briefcase* bc) -> BillingOutcome {
    BillingOutcome outcome;
    uint64_t due_total = PriceOf(prices, usage);
    if (due_total <= already_billed) {
      return outcome;  // Everything metered so far is already settled.
    }
    uint64_t due = due_total - already_billed;
    uint64_t balance = 0;
    auto held = bc->GetString(kWalletFolder);
    if (!held.has_value() || !ParseBalance(*held, &balance)) {
      // No wallet (or an unreadable one): nothing to collect.  The shortfall
      // still accrues, so freeloading is visible in the ledger.
      outcome.shortfall = due;
      return outcome;
    }
    uint64_t take = std::min(balance, due);
    bc->SetString(kWalletFolder, std::to_string(balance - take));
    outcome.billed = take;
    outcome.shortfall = due - take;
    return outcome;
  });
}

}  // namespace tacoma::cash
