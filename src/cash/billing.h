// Usage-based billing — the kernel meters, cash prices.
//
// The paper's §3 electronic currency gives agents a hard resource bound:
// "the amount of currency an agent carries limits the resources it can
// consume".  The account ledger (core/account.h) measures consumption; this
// module closes the loop by pricing the metered usage in ECUs and debiting
// the agent's briefcase WALLET at each activation boundary.  An agent that
// runs out of cash keeps running — TACOMA bills, it does not kill — but the
// uncollected remainder is recorded as account.billing_shortfall, which is
// what a stricter admission policy would key on.
//
// Layering: core cannot link cash, so the kernel only holds a BillingHook
// std::function (see Kernel::SetBillingHook); this module builds the standard
// one.
#ifndef TACOMA_CASH_BILLING_H_
#define TACOMA_CASH_BILLING_H_

#include <cstdint>

#include "core/kernel.h"

namespace tacoma::cash {

// Integer price list.  Chunked rates bill one ECU per `*_per_ecu` units
// (floor division, so an agent is never billed for a partial chunk); zero
// disables that resource's charge entirely.
struct BillingPrices {
  uint64_t per_activation = 0;       // ECUs per activation.
  uint64_t per_hop = 1;              // ECUs per agent-transfer hop.
  uint64_t eval_steps_per_ecu = 10'000;  // 1 ECU per this many TACL steps.
  uint64_t bytes_per_ecu = 4'096;        // 1 ECU per this many wire bytes.
};

// Total ECU price of cumulative `usage` under `prices`.
uint64_t PriceOf(const BillingPrices& prices, const ResourceAccount& usage);

// Installs the standard WALLET-debiting hook on `kernel`: at each
// (non-departed) activation end, price the agent's cumulative usage, subtract
// what previous settlements collected, and debit the difference from the
// briefcase's WALLET folder.  An underfunded wallet is drained to zero and
// the remainder reported as shortfall.
void InstallWalletBilling(Kernel* kernel, BillingPrices prices = {});

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_BILLING_H_
