#include "cash/court.h"

namespace tacoma::cash {

std::string_view VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kNoContract:
      return "NO_CONTRACT";
    case Verdict::kAborted:
      return "ABORTED";
    case Verdict::kClean:
      return "CLEAN";
    case Verdict::kCustomerViolated:
      return "CUSTOMER_VIOLATED";
    case Verdict::kProviderViolated:
      return "PROVIDER_VIOLATED";
  }
  return "UNKNOWN";
}

AuditReport Audit(const SignatureAuthority& authority,
                  const std::vector<Receipt>& receipts,
                  const std::string& exchange_id) {
  AuditReport report;
  std::string customer;
  std::string provider;

  for (const Receipt& r : receipts) {
    if (r.exchange_id != exchange_id) {
      continue;
    }
    ++report.receipts_considered;
    if (!VerifyReceipt(authority, r)) {
      ++report.receipts_rejected;
      continue;
    }
    switch (r.kind) {
      case ReceiptKind::kOffer:
        report.offer = true;
        customer = r.actor;
        break;
      case ReceiptKind::kAccept:
        report.accept = true;
        provider = r.actor;
        break;
      case ReceiptKind::kPay:
        // The customer's own claim; not proof by itself.
        break;
      case ReceiptKind::kValidated:
        // Only the mint's word proves payment.
        if (r.actor == kMintPrincipal) {
          report.paid = true;
        }
        break;
      case ReceiptKind::kDeliver:
        // Must come from the party that accepted the contract (when known).
        if (provider.empty() || r.actor == provider) {
          report.delivered = true;
        }
        break;
      case ReceiptKind::kAck:
        if (customer.empty() || r.actor == customer) {
          report.acked = true;
        }
        break;
    }
  }

  if (!report.offer || !report.accept) {
    report.verdict = Verdict::kNoContract;
    report.explanation = "no offer/accept pair on record";
    return report;
  }
  if (report.paid && !report.delivered) {
    report.verdict = Verdict::kProviderViolated;
    report.explanation = "mint confirms payment but no delivery was documented";
    return report;
  }
  if (report.delivered && !report.paid) {
    report.verdict = Verdict::kCustomerViolated;
    report.explanation = "delivery documented but the mint never saw payment";
    return report;
  }
  if (!report.paid && !report.delivered) {
    report.verdict = Verdict::kAborted;
    report.explanation = "contract formed but neither side performed";
    return report;
  }
  report.verdict = Verdict::kClean;
  report.explanation = "payment validated and delivery documented";
  return report;
}

}  // namespace tacoma::cash
