// The court — audits documented actions on request (§3).
//
// "This precludes the obvious two-step protocols, because as long as
// electronic cash is untraceable either party might cheat the other. ...
// Our solution was to employ the threat of audits."
//
// The court replays the receipt record for an exchange and decides whether a
// contract was violated and by whom.  Trust model:
//   - a kValidated receipt signed by the mint is proof the provider was paid
//     (the mint is trusted and payee-blind);
//   - a notarized kDeliver receipt is proof of delivery (documenting the
//     action at the notary is the protocol's protection for the provider);
//   - unsigned or forged receipts are discarded before judgment.
#ifndef TACOMA_CASH_COURT_H_
#define TACOMA_CASH_COURT_H_

#include <string>
#include <vector>

#include "cash/receipts.h"

namespace tacoma::cash {

enum class Verdict {
  kNoContract,        // No offer+accept pair: nothing to enforce.
  kAborted,           // Contract formed, neither payment nor delivery: clean abort.
  kClean,             // Paid and delivered.
  kCustomerViolated,  // Delivered but never paid.
  kProviderViolated,  // Paid but never delivered.
};

std::string_view VerdictName(Verdict verdict);

struct AuditReport {
  Verdict verdict = Verdict::kNoContract;
  std::string explanation;
  bool offer = false;
  bool accept = false;
  bool paid = false;       // Mint-signed VALIDATED receipt present.
  bool delivered = false;  // Provider's notarized DELIVER receipt present.
  bool acked = false;      // Customer confirmed the goods.
  size_t receipts_considered = 0;
  size_t receipts_rejected = 0;  // Failed signature verification.
};

// Replays the receipts for `exchange_id` and issues a verdict.
AuditReport Audit(const SignatureAuthority& authority,
                  const std::vector<Receipt>& receipts, const std::string& exchange_id);

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_COURT_H_
