#include "cash/ecu.h"

namespace tacoma::cash {

void Ecu::Encode(Encoder* enc) const {
  enc->PutU64(amount);
  enc->PutBytes(serial);
}

Result<Ecu> Ecu::Decode(Decoder* dec) {
  Ecu out;
  if (!dec->GetU64(&out.amount) || !dec->GetBytes(&out.serial)) {
    return DataLossError("truncated ECU record");
  }
  return out;
}

Bytes Ecu::Serialize() const {
  Encoder enc;
  Encode(&enc);
  return enc.Take();
}

Result<Ecu> Ecu::Deserialize(BytesView data) {
  Decoder dec(data);
  auto ecu = Decode(&dec);
  if (!ecu.ok()) {
    return ecu.status();
  }
  if (!dec.Done()) {
    return DataLossError("trailing bytes after ECU record");
  }
  return ecu;
}

Bytes EncodeEcus(const std::vector<Ecu>& ecus) {
  Encoder enc;
  enc.PutVarint(ecus.size());
  for (const Ecu& e : ecus) {
    e.Encode(&enc);
  }
  return enc.Take();
}

Result<std::vector<Ecu>> DecodeEcus(BytesView data) {
  Decoder dec(data);
  uint64_t count = 0;
  if (!dec.GetVarint(&count)) {
    return DataLossError("bad ECU count");
  }
  std::vector<Ecu> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    auto ecu = Ecu::Decode(&dec);
    if (!ecu.ok()) {
      return ecu.status();
    }
    out.push_back(std::move(ecu).value());
  }
  if (!dec.Done()) {
    return DataLossError("trailing bytes after ECU list");
  }
  return out;
}

uint64_t TotalAmount(const std::vector<Ecu>& ecus) {
  uint64_t total = 0;
  for (const Ecu& e : ecus) {
    total += e.amount;
  }
  return total;
}

}  // namespace tacoma::cash
