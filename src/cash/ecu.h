// Electronic cash (§3).
//
// "The solution we adopted was to implement each unit of electronic cash
// (ECU) as a record containing an amount and a large random number.  Only
// certain of these random numbers appear on the records for valid ECUs."
//
// An Ecu is that record: the amount plus a 256-bit serial drawn from the
// mint's DRBG.  Holding the record IS holding the money — transfers move
// records inside briefcases, with no ledger tying payer to payee
// (untraceability, after Chaum).
#ifndef TACOMA_CASH_ECU_H_
#define TACOMA_CASH_ECU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serial/encoder.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma::cash {

struct Ecu {
  uint64_t amount = 0;  // In the smallest currency unit.
  Bytes serial;         // 32 bytes from the mint's DRBG.

  // Stable identifier for sets/logs (hex of the serial).
  std::string SerialHex() const { return HexEncode(serial); }

  void Encode(Encoder* enc) const;
  static Result<Ecu> Decode(Decoder* dec);
  Bytes Serialize() const;
  static Result<Ecu> Deserialize(BytesView data);

  friend bool operator==(const Ecu& a, const Ecu& b) {
    return a.amount == b.amount && a.serial == b.serial;
  }
};

// Folder payload helpers: a folder element per ECU.
Bytes EncodeEcus(const std::vector<Ecu>& ecus);
Result<std::vector<Ecu>> DecodeEcus(BytesView data);

// Sum of amounts (no overflow guard: amounts are test-scale).
uint64_t TotalAmount(const std::vector<Ecu>& ecus);

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_ECU_H_
