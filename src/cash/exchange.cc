#include "cash/exchange.h"

#include "crypto/sha256.h"
#include "tacl/list.h"
#include "util/log.h"

namespace tacoma::cash {

Marketplace::Marketplace(Kernel* kernel, SignatureAuthority* authority, Mint* mint,
                         Notary* notary, MarketConfig config)
    : kernel_(kernel),
      authority_(authority),
      mint_(mint),
      notary_(notary),
      config_(config) {
  authority_->Enroll(config_.customer_principal);
  authority_->Enroll(config_.provider_principal);
  authority_->Enroll(kMintPrincipal);
  mint_->RegisterMetrics(&kernel_->metrics());
  notary_->RegisterMetrics(&kernel_->metrics());
  InstallAgents();
}

void Marketplace::FundCustomer(size_t notes, uint64_t denomination) {
  for (size_t i = 0; i < notes; ++i) {
    customer_wallet_.Add(mint_->Issue(denomination));
  }
}

void Marketplace::InstallAgents() {
  kernel_->AddPlaceInitializer([this](Place& place) {
    if (place.site() == config_.provider_site) {
      place.RegisterAgent("shop", [this](Place& at, Briefcase& bc) {
        return OnOrder(at, bc);
      });
      place.RegisterAgent("shop_validation", [this](Place& at, Briefcase& bc) {
        return OnValidation(at, bc);
      });
    }
    if (place.site() == config_.customer_site) {
      place.RegisterAgent("buyer", [this](Place& at, Briefcase& bc) {
        return OnGoods(at, bc);
      });
    }
  });
}

void Marketplace::FileReceipt(SiteId from, const Receipt& receipt) {
  Briefcase bc;
  bc.SetString("OP", "file");
  bc.folder("RECEIPT").PushBack(receipt.Serialize());
  Status sent = kernel_->TransferAgent(from, config_.notary_site, "notary", bc);
  if (!sent.ok()) {
    TLOG_WARN << "receipt filing failed: " << sent.ToString();
  }
}

Status Marketplace::StartExchange(const std::string& xid, uint64_t price,
                                  CheatMode cheat) {
  if (records_.contains(xid)) {
    return AlreadyExistsError("exchange id \"" + xid + "\" already used");
  }
  ExchangeRecord rec;
  rec.xid = xid;
  rec.price = price;
  rec.cheat = cheat;
  rec.started = kernel_->sim().Now();
  rec.settled = rec.started;
  records_[xid] = rec;

  const std::string goods = "goods-for-" + xid;
  const std::string goods_digest = DigestToHex(Sha256::Hash(goods));

  // Step 1: the customer documents its offer.
  FileReceipt(config_.customer_site,
              MakeReceipt(authority_, xid, ReceiptKind::kOffer,
                          config_.customer_principal, config_.provider_principal,
                          price, goods_digest, kernel_->sim().Now()));

  // Step 2: order (with payment unless cheating) travels to the shop.
  Briefcase order;
  order.SetString("XID", xid);
  order.SetString("PRICE", std::to_string(price));
  order.SetString("GOODS", goods_digest);

  if (cheat != CheatMode::kCustomerSkipsPayment) {
    Bytes cash_payload;
    if (cheat == CheatMode::kCustomerDoubleSpends && spent_cash_copy_.has_value()) {
      // Spend a copy of already-spent records — "copy is a cheap operation".
      cash_payload = *spent_cash_copy_;
    } else {
      auto notes = customer_wallet_.Withdraw(price);
      if (!notes.ok()) {
        records_[xid].aborted = true;
        return notes.status();
      }
      cash_payload = EncodeEcus(*notes);
      if (cheat == CheatMode::kCustomerDoubleSpends) {
        spent_cash_copy_ = cash_payload;  // Keep a copy to re-spend later.
      }
    }
    order.folder(kCashFolder).PushBack(cash_payload);
    FileReceipt(config_.customer_site,
                MakeReceipt(authority_, xid, ReceiptKind::kPay,
                            config_.customer_principal, config_.provider_principal,
                            price, DigestToHex(Sha256::Hash(cash_payload)),
                            kernel_->sim().Now()));
  }

  return kernel_->TransferAgent(config_.customer_site, config_.provider_site, "shop",
                                order);
}

Status Marketplace::OnOrder(Place& place, Briefcase& bc) {
  auto xid = bc.GetString("XID");
  if (!xid.has_value()) {
    return InvalidArgumentError("shop: order without XID");
  }
  auto it = records_.find(*xid);
  if (it == records_.end()) {
    return NotFoundError("shop: unknown exchange " + *xid);
  }
  ExchangeRecord& rec = it->second;
  rec.settled = kernel_->sim().Now();

  // Document acceptance.
  FileReceipt(config_.provider_site,
              MakeReceipt(authority_, *xid, ReceiptKind::kAccept,
                          config_.provider_principal, config_.customer_principal,
                          rec.price, bc.GetString("GOODS").value_or(""),
                          kernel_->sim().Now()));

  const Folder* cash = bc.Find(kCashFolder);
  if (cash == nullptr || cash->empty()) {
    if (config_.policy == ProviderPolicy::kTrusting) {
      // Deliver on trust; the audit trail is the protection.
      Deliver(rec);
      return OkStatus();
    }
    rec.aborted = true;
    return OkStatus();  // Validate-first: refuse service, nothing lost.
  }

  // A trusting provider ships immediately and banks the cash afterwards —
  // precisely the behaviour §3 warns about: copied ECUs cost it the goods.
  if (config_.policy == ProviderPolicy::kTrusting &&
      rec.cheat != CheatMode::kProviderSkipsDelivery) {
    Deliver(rec);
  }

  // Send the cash to the mint for validation, reply to shop_validation.
  Briefcase request;
  request.SetString("TARGET", "mint");
  request.SetString("REPLY_HOST", place.name());
  request.SetString("REPLY_CONTACT", "shop_validation");
  request.SetString("OP", "validate");
  request.SetString("XID", *xid);
  request.folder("ECUS").PushBack(*cash->Front());
  return kernel_->TransferAgent(place.site(), config_.mint_site, "relay", request);
}

Status Marketplace::OnValidation(Place& place, Briefcase& bc) {
  (void)place;
  auto xid = bc.GetString("XID");
  if (!xid.has_value()) {
    return InvalidArgumentError("shop_validation: reply without XID");
  }
  auto it = records_.find(*xid);
  if (it == records_.end()) {
    return NotFoundError("shop_validation: unknown exchange " + *xid);
  }
  ExchangeRecord& rec = it->second;
  rec.settled = kernel_->sim().Now();

  if (bc.GetString("STATUS").value_or("") != "ok") {
    // Forged or double-spent cash: refuse service.
    rec.aborted = true;
    return OkStatus();
  }

  // Bank the fresh notes.
  const Folder* ecus = bc.Find("ECUS");
  if (ecus != nullptr && !ecus->empty()) {
    auto fresh = DecodeEcus(*ecus->Front());
    if (fresh.ok()) {
      provider_wallet_.Add(*fresh);
      rec.payment_collected = true;
    }
  }

  // File the mint's proof-of-payment receipt.
  const Folder* mint_receipt = bc.Find("MINT_RECEIPT");
  if (mint_receipt != nullptr && !mint_receipt->empty()) {
    auto receipt = Receipt::Deserialize(*mint_receipt->Front());
    if (receipt.ok()) {
      FileReceipt(config_.provider_site, *receipt);
    }
  }

  if (rec.cheat == CheatMode::kProviderSkipsDelivery) {
    return OkStatus();  // Keep the money; the audit will catch this.
  }
  if (!rec.goods_delivered) {  // Trusting providers already shipped.
    Deliver(rec);
  }
  return OkStatus();
}

void Marketplace::Deliver(ExchangeRecord& rec) {
  rec.goods_delivered = true;
  rec.settled = kernel_->sim().Now();
  const std::string goods = "goods-for-" + rec.xid;
  const std::string goods_digest = DigestToHex(Sha256::Hash(goods));

  FileReceipt(config_.provider_site,
              MakeReceipt(authority_, rec.xid, ReceiptKind::kDeliver,
                          config_.provider_principal, config_.customer_principal,
                          rec.price, goods_digest, kernel_->sim().Now()));

  Briefcase shipment;
  shipment.SetString("XID", rec.xid);
  shipment.SetString("GOODS", goods);
  Status sent = kernel_->TransferAgent(config_.provider_site, config_.customer_site,
                                       "buyer", shipment);
  if (!sent.ok()) {
    TLOG_WARN << "delivery transfer failed: " << sent.ToString();
  }
}

Status Marketplace::OnGoods(Place& place, Briefcase& bc) {
  (void)place;
  auto xid = bc.GetString("XID");
  if (!xid.has_value()) {
    return InvalidArgumentError("buyer: shipment without XID");
  }
  auto it = records_.find(*xid);
  if (it == records_.end()) {
    return NotFoundError("buyer: unknown exchange " + *xid);
  }
  ExchangeRecord& rec = it->second;
  rec.goods_received = true;
  rec.settled = kernel_->sim().Now();

  FileReceipt(config_.customer_site,
              MakeReceipt(authority_, *xid, ReceiptKind::kAck,
                          config_.customer_principal, config_.provider_principal,
                          rec.price,
                          DigestToHex(Sha256::Hash(bc.GetString("GOODS").value_or(""))),
                          kernel_->sim().Now()));
  return OkStatus();
}

const ExchangeRecord* Marketplace::record(const std::string& xid) const {
  auto it = records_.find(xid);
  return it == records_.end() ? nullptr : &it->second;
}

AuditReport Marketplace::AuditExchange(const std::string& xid) const {
  return Audit(*authority_, notary_->Lookup(xid), xid);
}

}  // namespace tacoma::cash
