// The audited exchange protocol (§3).
//
// "It must not be possible to obtain a service without paying for it or to
// pay without obtaining the service."  The paper rejects transactions and
// adopts documented actions + the threat of audits.  This engine runs that
// protocol between a customer and a provider on different sites:
//
//   customer                     provider                  mint        notary
//   --------                     --------                  ----        ------
//   OFFER receipt ------------------------------------------------------> file
//   ORDER + ECUs in briefcase --> ACCEPT receipt ------------------------> file
//                                 validate ECUs  ---------> retire+reissue
//                                 (mint-signed VALIDATED receipt) -------> file
//                                 DELIVER receipt ----------------------> file
//   ACK receipt <--- goods ------ deliver
//       `--------------------------------------------------------------> file
//
// Cheat models exercise every arm of the court's decision table; the
// double-spend model replays previously spent ECU records, which the mint
// rejects ("an attempt by an agent to spend retired or copied ECUs will be
// foiled").
#ifndef TACOMA_CASH_EXCHANGE_H_
#define TACOMA_CASH_EXCHANGE_H_

#include <map>
#include <optional>
#include <string>

#include "cash/court.h"
#include "cash/mint.h"
#include "cash/notary.h"
#include "cash/wallet.h"
#include "core/kernel.h"

namespace tacoma::cash {

enum class CheatMode {
  kHonest,
  kCustomerSkipsPayment,   // Order without cash.
  kProviderSkipsDelivery,  // Take the money, ship nothing.
  kCustomerDoubleSpends,   // Pay with copies of already-spent records.
};

enum class ProviderPolicy {
  kValidateFirst,  // Never deliver before the mint confirms payment (§3's rule).
  kTrusting,       // Deliver on order receipt (before/without validation);
                   // rely on audits for redress.  Copied ECUs cost it goods.
};

struct MarketConfig {
  SiteId customer_site = 0;
  SiteId provider_site = 0;
  SiteId mint_site = 0;
  SiteId notary_site = 0;
  ProviderPolicy policy = ProviderPolicy::kValidateFirst;
  std::string customer_principal = "customer";
  std::string provider_principal = "provider";
};

// Outcome of one exchange, filled in as simulated events fire.
struct ExchangeRecord {
  std::string xid;
  uint64_t price = 0;
  CheatMode cheat = CheatMode::kHonest;
  bool goods_delivered = false;    // Provider shipped goods.
  bool goods_received = false;     // Customer got them.
  bool payment_collected = false;  // Provider holds mint-validated funds.
  bool aborted = false;            // Provider refused (no/invalid payment).
  SimTime started = 0;
  SimTime settled = 0;             // Time of the terminal event seen so far.
};

class Marketplace {
 public:
  Marketplace(Kernel* kernel, SignatureAuthority* authority, Mint* mint,
              Notary* notary, MarketConfig config);

  // Funds the customer with `notes` ECUs of `denomination` each, fresh from
  // the mint.
  void FundCustomer(size_t notes, uint64_t denomination);

  // Starts an exchange; drive kernel->sim().Run() (or RunUntil) to complete
  // it.  `xid` must be unique.
  Status StartExchange(const std::string& xid, uint64_t price, CheatMode cheat);

  const ExchangeRecord* record(const std::string& xid) const;
  Wallet& customer_wallet() { return customer_wallet_; }
  Wallet& provider_wallet() { return provider_wallet_; }

  // Court convenience: audits an exchange against the notary's record.
  AuditReport AuditExchange(const std::string& xid) const;

 private:
  void InstallAgents();
  // Files `receipt` with the notary via an agent transfer from `from`.
  void FileReceipt(SiteId from, const Receipt& receipt);

  Status OnOrder(Place& place, Briefcase& bc);       // "shop" at provider site.
  Status OnValidation(Place& place, Briefcase& bc);  // "shop_validation".
  Status OnGoods(Place& place, Briefcase& bc);       // "buyer" at customer site.

  void Deliver(ExchangeRecord& rec);

  Kernel* kernel_;
  SignatureAuthority* authority_;
  Mint* mint_;
  Notary* notary_;
  MarketConfig config_;
  Wallet customer_wallet_;
  Wallet provider_wallet_;
  std::map<std::string, ExchangeRecord> records_;
  // For the double-spend cheat: a copy of the last cash payload spent.
  std::optional<Bytes> spent_cash_copy_;
};

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_EXCHANGE_H_
