#include "cash/mint.h"

#include "cash/receipts.h"
#include "core/kernel.h"
#include "crypto/sha256.h"
#include "serial/encoder.h"
#include "tacl/list.h"

namespace tacoma::cash {

Mint::Mint(uint64_t seed)
    : drbg_([seed] {
        Encoder enc;
        enc.PutString("tacoma-mint");
        enc.PutU64(seed);
        return enc.Take();
      }()) {}

Bytes Mint::FreshSerial() {
  Bytes serial;
  drbg_.Generate(32, &serial);
  return serial;
}

Ecu Mint::Issue(uint64_t amount) {
  Ecu ecu;
  ecu.amount = amount;
  ecu.serial = FreshSerial();
  valid_.emplace(ecu.SerialHex(), amount);
  outstanding_ += amount;
  ++stats_.issued;
  return ecu;
}

Result<Ecu> Mint::Validate(const Ecu& ecu) {
  auto it = valid_.find(ecu.SerialHex());
  if (it == valid_.end() || it->second != ecu.amount) {
    ++stats_.rejected;
    return PermissionDeniedError("ECU is forged, retired, or already spent");
  }
  valid_.erase(it);
  outstanding_ -= ecu.amount;
  ++stats_.retired;
  ++stats_.validated;
  return Issue(ecu.amount);
}

Result<std::vector<Ecu>> Mint::Exchange(const std::vector<Ecu>& in,
                                        const std::vector<uint64_t>& out_amounts) {
  uint64_t in_total = TotalAmount(in);
  uint64_t out_total = 0;
  for (uint64_t a : out_amounts) {
    out_total += a;
  }
  if (in_total != out_total) {
    return InvalidArgumentError("exchange amounts do not balance");
  }
  // Validate all inputs first (all-or-nothing): check before retiring any, so
  // a bad note in the batch doesn't destroy the good ones.
  for (const Ecu& e : in) {
    auto it = valid_.find(e.SerialHex());
    if (it == valid_.end() || it->second != e.amount) {
      ++stats_.rejected;
      return PermissionDeniedError("batch contains a forged or spent ECU");
    }
  }
  for (const Ecu& e : in) {
    valid_.erase(e.SerialHex());
    outstanding_ -= e.amount;
    ++stats_.retired;
    ++stats_.validated;
  }
  std::vector<Ecu> out;
  out.reserve(out_amounts.size());
  for (uint64_t a : out_amounts) {
    out.push_back(Issue(a));
  }
  return out;
}

bool Mint::IsValid(const Ecu& ecu) const {
  auto it = valid_.find(ecu.SerialHex());
  return it != valid_.end() && it->second == ecu.amount;
}

void Mint::RegisterMetrics(MetricsRegistry* registry, const std::string& prefix) {
  registry->AddProbe(prefix + "issued", [this] { return stats_.issued; });
  registry->AddProbe(prefix + "validated", [this] { return stats_.validated; });
  registry->AddProbe(prefix + "rejected", [this] { return stats_.rejected; });
  registry->AddProbe(prefix + "retired", [this] { return stats_.retired; });
  registry->AddProbe(prefix + "outstanding", [this] { return outstanding_; });
}

void InstallMintAgent(Kernel* kernel, uint32_t site, Mint* mint,
                      SignatureAuthority* authority) {
  kernel->AddPlaceInitializer([site, mint, authority](Place& place) {
    if (place.site() != site) {
      return;
    }
    place.RegisterAgent("mint", [mint, authority](Place& at, Briefcase& bc) -> Status {
      auto op = bc.GetString("OP");
      if (!op.has_value()) {
        bc.SetString("STATUS", "missing OP folder");
        return InvalidArgumentError("mint: missing OP folder");
      }

      if (*op == "issue") {
        auto amount_str = bc.GetString("AMOUNT");
        auto amount = amount_str ? tacl::ParseInt(*amount_str) : std::nullopt;
        if (!amount.has_value() || *amount <= 0) {
          bc.SetString("STATUS", "bad AMOUNT");
          return InvalidArgumentError("mint: bad AMOUNT");
        }
        Ecu ecu = mint->Issue(static_cast<uint64_t>(*amount));
        bc.folder("ECUS").Clear();
        bc.folder("ECUS").PushBack(EncodeEcus({ecu}));
        bc.SetString("STATUS", "ok");
        return OkStatus();
      }

      if (*op == "validate") {
        const Folder* ecus_folder = bc.Find("ECUS");
        if (ecus_folder == nullptr || ecus_folder->empty()) {
          bc.SetString("STATUS", "missing ECUS folder");
          return InvalidArgumentError("mint: missing ECUS folder");
        }
        auto ecus = DecodeEcus(*ecus_folder->Front());
        if (!ecus.ok()) {
          bc.SetString("STATUS", "corrupt ECUS payload");
          return ecus.status();
        }
        std::vector<Ecu> fresh;
        fresh.reserve(ecus->size());
        for (const Ecu& e : *ecus) {
          auto v = mint->Validate(e);
          if (!v.ok()) {
            bc.SetString("STATUS", std::string(v.status().message()));
            return v.status();
          }
          fresh.push_back(std::move(v).value());
        }
        // Proof-of-payment receipt for audited exchanges: signed by the mint,
        // tied to the exchange id, blind to who presented the notes.
        auto xid = bc.GetString("XID");
        if (authority != nullptr && xid.has_value()) {
          std::string digest = DigestToHex(Sha256::Hash(EncodeEcus(*ecus)));
          Receipt receipt = MakeReceipt(authority, *xid, ReceiptKind::kValidated,
                                        kMintPrincipal, "", TotalAmount(*ecus), digest,
                                        at.kernel()->sim().Now());
          bc.folder("MINT_RECEIPT").Clear();
          bc.folder("MINT_RECEIPT").PushBack(receipt.Serialize());
        }
        bc.folder("ECUS").Clear();
        bc.folder("ECUS").PushBack(EncodeEcus(fresh));
        bc.SetString("STATUS", "ok");
        return OkStatus();
      }

      if (*op == "exchange") {
        const Folder* ecus_folder = bc.Find("ECUS");
        const Folder* amounts = bc.Find("AMOUNT");
        if (ecus_folder == nullptr || ecus_folder->empty() || amounts == nullptr) {
          bc.SetString("STATUS", "missing ECUS or AMOUNT folder");
          return InvalidArgumentError("mint: missing ECUS or AMOUNT folder");
        }
        auto ecus = DecodeEcus(*ecus_folder->Front());
        if (!ecus.ok()) {
          bc.SetString("STATUS", "corrupt ECUS payload");
          return ecus.status();
        }
        std::vector<uint64_t> out_amounts;
        for (const std::string& a : amounts->AsStrings()) {
          auto v = tacl::ParseInt(a);
          if (!v.has_value() || *v <= 0) {
            bc.SetString("STATUS", "bad denomination");
            return InvalidArgumentError("mint: bad denomination " + a);
          }
          out_amounts.push_back(static_cast<uint64_t>(*v));
        }
        auto exchanged = mint->Exchange(*ecus, out_amounts);
        if (!exchanged.ok()) {
          bc.SetString("STATUS", std::string(exchanged.status().message()));
          return exchanged.status();
        }
        bc.folder("ECUS").Clear();
        bc.folder("ECUS").PushBack(EncodeEcus(*exchanged));
        bc.SetString("STATUS", "ok");
        return OkStatus();
      }

      bc.SetString("STATUS", "unknown OP");
      return InvalidArgumentError("mint: unknown OP \"" + *op + "\"");
    });
  });
}

}  // namespace tacoma::cash
