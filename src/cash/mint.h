// The mint / validation agent (§3).
//
// "A trusted validation agent is employed.  This agent can check whether a
// record it is shown corresponds to a valid ECU.  If it is valid, then a
// record for an equivalent ECU is returned, but this record has a new random
// number (effectively retiring an old bill and replacing it by a new one).
// An attempt by an agent to spend retired or copied ECUs will be foiled if a
// validation agent is always consulted before any service is rendered.
// Notice that using a validation agent supports our untraceability
// requirement, since the validation agent does not require knowledge of the
// source or destination of a transfer."
//
// The Mint tracks only the set of currently-valid serials — not who holds
// them.  Validate() is therefore payee-blind by construction; tests assert
// this structurally (no principal appears anywhere in mint state).
#ifndef TACOMA_CASH_MINT_H_
#define TACOMA_CASH_MINT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cash/ecu.h"
#include "crypto/authority.h"
#include "crypto/hmac.h"
#include "util/metrics.h"
#include "util/status.h"

namespace tacoma {
class Kernel;
}  // namespace tacoma

namespace tacoma::cash {

class Mint {
 public:
  struct Stats {
    uint64_t issued = 0;
    uint64_t validated = 0;
    uint64_t rejected = 0;      // Invalid / already-spent serials presented.
    uint64_t retired = 0;
  };

  explicit Mint(uint64_t seed);

  // Mints a fresh ECU (monetary policy is the caller's problem).
  Ecu Issue(uint64_t amount);

  // The §3 operation: retire the presented ECU and hand back an equivalent
  // one with a fresh serial.  Fails on unknown, forged, or already-retired
  // serials — the double-spend check.
  Result<Ecu> Validate(const Ecu& ecu);

  // Validates a batch and re-issues in the requested denominations (which
  // must sum to the batch total) — how agents make change.
  Result<std::vector<Ecu>> Exchange(const std::vector<Ecu>& in,
                                    const std::vector<uint64_t>& out_amounts);

  // Non-mutating check (used by audits; ordinary commerce uses Validate).
  bool IsValid(const Ecu& ecu) const;

  // Total value of valid outstanding ECUs (conservation invariant).
  uint64_t Outstanding() const { return outstanding_; }
  const Stats& stats() const { return stats_; }

  // Registers pull-style probes over the stats (mint.issued, ...).  The mint
  // must outlive every snapshot call on the registry.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix = "mint.");

 private:
  Bytes FreshSerial();

  HmacDrbg drbg_;
  // serial-hex -> amount for every currently-valid ECU.
  std::unordered_map<std::string, uint64_t> valid_;
  uint64_t outstanding_ = 0;
  Stats stats_;
};

// Installs the mint as resident agent "mint" at `site` (re-installed across
// site restarts; the Mint object itself lives outside the place, surviving
// crashes like a disk does).
//
// Meet protocol (folders):
//   OP      "issue" | "validate" | "exchange"
//   AMOUNT  for issue: the amount; for exchange: one element per denomination
//   ECUS    EncodeEcus payload (input for validate/exchange; output always)
//   XID     optional exchange id: successful validations then also produce a
//           mint-signed VALIDATED receipt in MINT_RECEIPT (proof of payment
//           for audits) when an authority was supplied
//   STATUS  reply: "ok" or an error message
void InstallMintAgent(Kernel* kernel, uint32_t site, Mint* mint,
                      SignatureAuthority* authority = nullptr);

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_MINT_H_
