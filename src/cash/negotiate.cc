#include "cash/negotiate.h"

#include "tacl/list.h"

namespace tacoma::cash {

Negotiator::Negotiator(Kernel* kernel, NegotiationConfig config)
    : kernel_(kernel), config_(config) {
  Negotiator* self = this;
  kernel_->AddPlaceInitializer([self](Place& place) {
    if (place.site() == self->config_.provider_site) {
      place.RegisterAgent("haggle", [self](Place& at, Briefcase& bc) {
        return self->OnBid(at, bc);
      });
    }
    if (place.site() == self->config_.customer_site) {
      place.RegisterAgent("haggle_reply", [self](Place& at, Briefcase& bc) {
        return self->OnCounter(at, bc);
      });
    }
  });
}

Status Negotiator::Start(const std::string& nid) {
  if (records_.contains(nid)) {
    return AlreadyExistsError("negotiation \"" + nid + "\" already exists");
  }
  NegotiationRecord rec;
  rec.nid = nid;
  rec.started = kernel_->sim().Now();
  records_[nid] = rec;

  // Opening bid: half the ask, capped by budget.
  uint64_t bid = std::min(config_.budget, config_.ask / 2);
  Briefcase opener;
  opener.SetString("NID", nid);
  opener.SetString("BID", std::to_string(bid));
  opener.SetString("ROUND", "1");
  return kernel_->TransferAgent(config_.customer_site, config_.provider_site,
                                "haggle", opener);
}

void Negotiator::Close(NegotiationRecord& rec, bool agreed, uint64_t price) {
  rec.settled = true;
  rec.agreed = agreed;
  rec.price = price;
  rec.finished = kernel_->sim().Now();
}

Status Negotiator::OnBid(Place& place, Briefcase& bc) {
  auto nid = bc.GetString("NID").value_or("");
  auto it = records_.find(nid);
  if (it == records_.end()) {
    return NotFoundError("haggle: unknown negotiation " + nid);
  }
  NegotiationRecord& rec = it->second;
  uint64_t bid = static_cast<uint64_t>(
      tacl::ParseInt(bc.GetString("BID").value_or("0")).value_or(0));
  int round = static_cast<int>(
      tacl::ParseInt(bc.GetString("ROUND").value_or("1")).value_or(1));
  rec.rounds = round;

  // The provider concedes `step` per round, never below its floor.
  uint64_t concession = config_.step * static_cast<uint64_t>(round - 1);
  uint64_t counter = config_.ask > concession
                         ? std::max(config_.floor, config_.ask - concession)
                         : config_.floor;

  if (bid >= counter) {
    // Deal: split the remaining difference.
    Close(rec, true, (bid + counter) / 2);
    Briefcase accept;
    accept.SetString("NID", nid);
    accept.SetString("OUTCOME", "accepted");
    accept.SetString("PRICE", std::to_string(rec.price));
    return kernel_->TransferAgent(place.site(), config_.customer_site,
                                  "haggle_reply", accept);
  }
  if (round >= config_.max_rounds ||
      (counter == config_.floor && bid >= config_.budget)) {
    // Both sides at their limits with no crossing: walk away.
    Close(rec, false, 0);
    Briefcase reject;
    reject.SetString("NID", nid);
    reject.SetString("OUTCOME", "rejected");
    return kernel_->TransferAgent(place.site(), config_.customer_site,
                                  "haggle_reply", reject);
  }

  Briefcase counter_msg;
  counter_msg.SetString("NID", nid);
  counter_msg.SetString("OUTCOME", "counter");
  counter_msg.SetString("COUNTER", std::to_string(counter));
  counter_msg.SetString("ROUND", std::to_string(round));
  return kernel_->TransferAgent(place.site(), config_.customer_site, "haggle_reply",
                                counter_msg);
}

Status Negotiator::OnCounter(Place& place, Briefcase& bc) {
  auto nid = bc.GetString("NID").value_or("");
  auto it = records_.find(nid);
  if (it == records_.end()) {
    return NotFoundError("haggle_reply: unknown negotiation " + nid);
  }
  NegotiationRecord& rec = it->second;
  auto outcome = bc.GetString("OUTCOME").value_or("");

  if (outcome == "accepted") {
    // Already closed provider-side; record mirrored fields for the customer.
    rec.settled = true;
    return OkStatus();
  }
  if (outcome == "rejected") {
    rec.settled = true;
    return OkStatus();
  }

  // Counter received: raise the bid by a step (capped at budget) and go again.
  int round = static_cast<int>(
      tacl::ParseInt(bc.GetString("ROUND").value_or("1")).value_or(1));
  uint64_t opening = std::min(config_.budget, config_.ask / 2);
  uint64_t bid =
      std::min(config_.budget, opening + config_.step * static_cast<uint64_t>(round));

  Briefcase next;
  next.SetString("NID", nid);
  next.SetString("BID", std::to_string(bid));
  next.SetString("ROUND", std::to_string(round + 1));
  return kernel_->TransferAgent(place.site(), config_.provider_site, "haggle", next);
}

const NegotiationRecord* Negotiator::record(const std::string& nid) const {
  auto it = records_.find(nid);
  return it == records_.end() ? nullptr : &it->second;
}

}  // namespace tacoma::cash
