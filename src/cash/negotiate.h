// Price negotiation between agents (§1).
//
// "Agents implement a computational metaphor that is analogous to how most
// people conduct business in their daily lives: visit a place, use a service
// (perhaps after some negotiation), and then move on."
//
// An alternating-concessions protocol over agent transfers: the customer
// opens low, the provider counters from its ask, both concede a step per
// round, and the deal closes at the midpoint once the bid crosses the
// counter.  Private limits (the customer's budget, the provider's floor)
// never appear in any message — only bids and counters travel.
#ifndef TACOMA_CASH_NEGOTIATE_H_
#define TACOMA_CASH_NEGOTIATE_H_

#include <map>
#include <string>

#include "core/kernel.h"

namespace tacoma::cash {

struct NegotiationConfig {
  SiteId customer_site = 0;
  SiteId provider_site = 0;
  uint64_t ask = 100;     // Provider's opening price (public).
  uint64_t floor = 60;    // Provider's secret minimum.
  uint64_t budget = 80;   // Customer's secret maximum.
  uint64_t step = 10;     // Concession per round, both sides.
  int max_rounds = 16;
};

struct NegotiationRecord {
  std::string nid;
  bool settled = false;   // Terminal state reached.
  bool agreed = false;
  uint64_t price = 0;     // Meaningful when agreed.
  int rounds = 0;         // Bid/counter exchanges.
  SimTime started = 0;
  SimTime finished = 0;
};

class Negotiator {
 public:
  Negotiator(Kernel* kernel, NegotiationConfig config);

  // Opens negotiation `nid`; run the simulator to completion.
  Status Start(const std::string& nid);

  const NegotiationRecord* record(const std::string& nid) const;

 private:
  Status OnBid(Place& place, Briefcase& bc);      // "haggle" at provider site.
  Status OnCounter(Place& place, Briefcase& bc);  // "haggle_reply" at customer.
  void Close(NegotiationRecord& rec, bool agreed, uint64_t price);

  Kernel* kernel_;
  NegotiationConfig config_;
  std::map<std::string, NegotiationRecord> records_;
};

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_NEGOTIATE_H_
