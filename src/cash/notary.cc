#include "cash/notary.h"

#include "core/kernel.h"

namespace tacoma::cash {

Status Notary::File(const Receipt& receipt) {
  if (!VerifyReceipt(*authority_, receipt)) {
    ++stats_.rejected;
    return PermissionDeniedError("receipt signature did not verify");
  }
  filed_[receipt.exchange_id].push_back(receipt);
  ++stats_.filed;
  return OkStatus();
}

std::vector<Receipt> Notary::Lookup(const std::string& exchange_id) const {
  auto it = filed_.find(exchange_id);
  if (it == filed_.end()) {
    return {};
  }
  return it->second;
}

void Notary::RegisterMetrics(MetricsRegistry* registry,
                             const std::string& prefix) {
  registry->AddProbe(prefix + "filed", [this] { return stats_.filed; });
  registry->AddProbe(prefix + "rejected", [this] { return stats_.rejected; });
}

void InstallNotaryAgent(Kernel* kernel, uint32_t site, Notary* notary) {
  kernel->AddPlaceInitializer([site, notary](Place& place) {
    if (place.site() != site) {
      return;
    }
    place.RegisterAgent("notary", [notary](Place&, Briefcase& bc) -> Status {
      auto op = bc.GetString("OP");
      if (!op.has_value()) {
        bc.SetString("STATUS", "missing OP folder");
        return InvalidArgumentError("notary: missing OP folder");
      }
      if (*op == "file") {
        Folder* receipts = bc.Find("RECEIPT");
        if (receipts == nullptr || receipts->empty()) {
          bc.SetString("STATUS", "missing RECEIPT folder");
          return InvalidArgumentError("notary: missing RECEIPT folder");
        }
        // File every receipt in the folder; stop on the first bad one.
        for (const SharedBytes& element : *receipts) {
          auto receipt = Receipt::Deserialize(element);
          if (!receipt.ok()) {
            bc.SetString("STATUS", "malformed receipt");
            return receipt.status();
          }
          Status filed = notary->File(*receipt);
          if (!filed.ok()) {
            bc.SetString("STATUS", std::string(filed.message()));
            return filed;
          }
        }
        bc.SetString("STATUS", "ok");
        return OkStatus();
      }
      if (*op == "fetch") {
        auto xid = bc.GetString("XID");
        if (!xid.has_value()) {
          bc.SetString("STATUS", "missing XID folder");
          return InvalidArgumentError("notary: missing XID folder");
        }
        Folder& out = bc.folder("RECEIPTS");
        out.Clear();
        for (const Receipt& r : notary->Lookup(*xid)) {
          out.PushBack(r.Serialize());
        }
        bc.SetString("STATUS", "ok");
        return OkStatus();
      }
      bc.SetString("STATUS", "unknown OP");
      return InvalidArgumentError("notary: unknown OP \"" + *op + "\"");
    });
  });
}

}  // namespace tacoma::cash
