// The notary agent — §3's "third agent" that holds documented actions.
//
// Receipts are filed with the notary as exchanges proceed; the court fetches
// them during an audit.  The notary verifies each signature on filing, so a
// forged receipt never enters the record.
#ifndef TACOMA_CASH_NOTARY_H_
#define TACOMA_CASH_NOTARY_H_

#include <map>
#include <string>
#include <vector>

#include "cash/receipts.h"
#include "util/metrics.h"
#include "util/status.h"

namespace tacoma {
class Kernel;
}  // namespace tacoma

namespace tacoma::cash {

class Notary {
 public:
  struct Stats {
    uint64_t filed = 0;
    uint64_t rejected = 0;  // Bad signature / malformed.
  };

  explicit Notary(const SignatureAuthority* authority) : authority_(authority) {}

  // Verifies and stores a receipt.
  Status File(const Receipt& receipt);

  // All receipts filed under an exchange id.
  std::vector<Receipt> Lookup(const std::string& exchange_id) const;

  const Stats& stats() const { return stats_; }

  // Registers pull-style probes over the stats (notary.filed, ...).  The
  // notary must outlive every snapshot call on the registry.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix = "notary.");

 private:
  const SignatureAuthority* authority_;
  std::map<std::string, std::vector<Receipt>> filed_;
  Stats stats_;
};

// Installs resident agent "notary" at `site`.
//
// Meet protocol (folders):
//   OP       "file" | "fetch"
//   RECEIPT  serialized receipt (file)
//   XID      exchange id (fetch)
//   RECEIPTS reply for fetch: one element per receipt
//   STATUS   "ok" or an error message
void InstallNotaryAgent(Kernel* kernel, uint32_t site, Notary* notary);

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_NOTARY_H_
