#include "cash/receipts.h"

namespace tacoma::cash {

std::string_view ReceiptKindName(ReceiptKind kind) {
  switch (kind) {
    case ReceiptKind::kOffer:
      return "OFFER";
    case ReceiptKind::kAccept:
      return "ACCEPT";
    case ReceiptKind::kPay:
      return "PAY";
    case ReceiptKind::kValidated:
      return "VALIDATED";
    case ReceiptKind::kDeliver:
      return "DELIVER";
    case ReceiptKind::kAck:
      return "ACK";
  }
  return "UNKNOWN";
}

Bytes Receipt::SignedPayload() const {
  Encoder enc;
  enc.PutString(exchange_id);
  enc.PutU8(static_cast<uint8_t>(kind));
  enc.PutString(actor);
  enc.PutString(counterparty);
  enc.PutU64(amount);
  enc.PutString(detail);
  enc.PutU64(time_us);
  return enc.Take();
}

Bytes Receipt::Serialize() const {
  Encoder enc;
  enc.PutString(exchange_id);
  enc.PutU8(static_cast<uint8_t>(kind));
  enc.PutString(actor);
  enc.PutString(counterparty);
  enc.PutU64(amount);
  enc.PutString(detail);
  enc.PutU64(time_us);
  enc.PutBytes(signature.Serialize());
  return enc.Take();
}

Result<Receipt> Receipt::Deserialize(BytesView data) {
  Decoder dec(data);
  Receipt r;
  uint8_t kind = 0;
  Bytes sig;
  if (!dec.GetString(&r.exchange_id) || !dec.GetU8(&kind) || !dec.GetString(&r.actor) ||
      !dec.GetString(&r.counterparty) || !dec.GetU64(&r.amount) ||
      !dec.GetString(&r.detail) || !dec.GetU64(&r.time_us) || !dec.GetBytes(&sig) ||
      !dec.Done()) {
    return DataLossError("malformed receipt");
  }
  if (kind < 1 || kind > 6) {
    return DataLossError("unknown receipt kind");
  }
  r.kind = static_cast<ReceiptKind>(kind);
  auto signature = Signature::Deserialize(sig);
  if (!signature.ok()) {
    return signature.status();
  }
  r.signature = std::move(signature).value();
  return r;
}

Receipt MakeReceipt(SignatureAuthority* authority, std::string exchange_id,
                    ReceiptKind kind, std::string actor, std::string counterparty,
                    uint64_t amount, std::string detail, uint64_t time_us) {
  Receipt r;
  r.exchange_id = std::move(exchange_id);
  r.kind = kind;
  r.actor = std::move(actor);
  r.counterparty = std::move(counterparty);
  r.amount = amount;
  r.detail = std::move(detail);
  r.time_us = time_us;
  r.signature = authority->Sign(r.actor, r.SignedPayload());
  return r;
}

bool VerifyReceipt(const SignatureAuthority& authority, const Receipt& receipt) {
  if (receipt.signature.principal != receipt.actor) {
    return false;  // Signed by someone other than the claimed actor.
  }
  return authority.Verify(receipt.signature, receipt.SignedPayload());
}

}  // namespace tacoma::cash
