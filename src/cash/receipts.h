// Receipts — the "documented actions" of §3's audit scheme.
//
// "Participants document their actions so that a third party (a court, in
// real life) can perform an audit to find violations of a contract.  An
// aggrieved agent requests an audit."
//
// Every step of an exchange produces a Receipt signed by the acting
// principal; receipts are filed with a notary agent (the "third agent" the
// paper mentions) and replayed by the court on request.
#ifndef TACOMA_CASH_RECEIPTS_H_
#define TACOMA_CASH_RECEIPTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/authority.h"
#include "serial/encoder.h"
#include "util/status.h"

namespace tacoma::cash {

// The trusted principal name the mint signs with.  Courts treat kValidated
// receipts as proof of payment only when signed by this principal.
inline constexpr char kMintPrincipal[] = "mint";

enum class ReceiptKind : uint8_t {
  kOffer = 1,      // Customer: I offer to buy <detail> for <amount>.
  kAccept = 2,     // Provider: I accept the offer.
  kPay = 3,        // Customer: I handed over ECUs with digests <detail>.
  kValidated = 4,  // Mint: I retired+reissued <amount> worth of ECUs for this exchange.
  kDeliver = 5,    // Provider: I delivered goods with digest <detail>.
  kAck = 6,        // Customer: I received goods with digest <detail>.
};

std::string_view ReceiptKindName(ReceiptKind kind);

struct Receipt {
  std::string exchange_id;
  ReceiptKind kind = ReceiptKind::kOffer;
  std::string actor;         // Signing principal.
  std::string counterparty;  // The other side (informational).
  uint64_t amount = 0;
  std::string detail;        // Goods digest, ECU digests, ...
  uint64_t time_us = 0;      // Simulated time of the action.
  Signature signature;       // By `actor` over the canonical payload.

  // Canonical bytes covered by the signature.
  Bytes SignedPayload() const;

  Bytes Serialize() const;
  static Result<Receipt> Deserialize(BytesView data);
};

// Builds and signs a receipt on behalf of `actor`.
Receipt MakeReceipt(SignatureAuthority* authority, std::string exchange_id,
                    ReceiptKind kind, std::string actor, std::string counterparty,
                    uint64_t amount, std::string detail, uint64_t time_us);

// Verifies the signature binds `actor` to the payload.
bool VerifyReceipt(const SignatureAuthority& authority, const Receipt& receipt);

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_RECEIPTS_H_
