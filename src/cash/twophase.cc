#include "cash/twophase.h"

#include "util/log.h"

namespace tacoma::cash {

TwoPhaseExchange::TwoPhaseExchange(Kernel* kernel, TwoPhaseConfig config)
    : kernel_(kernel), config_(config) {
  InstallAgents();
}

void TwoPhaseExchange::FundCustomer(std::vector<Ecu> notes) {
  customer_wallet_.Add(notes);
}

void TwoPhaseExchange::InstallAgents() {
  kernel_->AddPlaceInitializer([this](Place& place) {
    if (place.site() == config_.coordinator_site) {
      place.RegisterAgent("txn_coord", [this](Place& at, Briefcase& bc) {
        return OnCoordinator(at, bc);
      });
    }
    if (place.site() == config_.customer_site) {
      place.RegisterAgent("txn_customer", [this](Place& at, Briefcase& bc) {
        return OnCustomer(at, bc);
      });
    }
    if (place.site() == config_.provider_site) {
      place.RegisterAgent("txn_provider", [this](Place& at, Briefcase& bc) {
        return OnProvider(at, bc);
      });
    }
  });
}

Status TwoPhaseExchange::Send(SiteId from, SiteId to, const std::string& contact,
                              Briefcase bc) {
  return kernel_->TransferAgent(from, to, contact, bc);
}

Status TwoPhaseExchange::Start(const std::string& xid, uint64_t price) {
  if (records_.contains(xid)) {
    return AlreadyExistsError("transaction \"" + xid + "\" already exists");
  }
  TxnRecord rec;
  rec.xid = xid;
  rec.price = price;
  rec.started = kernel_->sim().Now();
  rec.settled = rec.started;
  records_[xid] = rec;

  Briefcase begin;
  begin.SetString("MSG", "begin");
  begin.SetString("XID", xid);
  begin.SetString("PRICE", std::to_string(price));
  return Send(config_.customer_site, config_.coordinator_site, "txn_coord", begin);
}

Status TwoPhaseExchange::OnCoordinator(Place& place, Briefcase& bc) {
  auto msg = bc.GetString("MSG").value_or("");
  auto xid = bc.GetString("XID").value_or("");
  auto it = records_.find(xid);
  if (it == records_.end()) {
    return NotFoundError("txn_coord: unknown transaction " + xid);
  }
  TxnRecord& rec = it->second;
  rec.settled = kernel_->sim().Now();

  if (msg == "begin") {
    rec.state = TxnState::kPreparing;
    Briefcase prepare;
    prepare.SetString("MSG", "prepare");
    prepare.SetString("XID", xid);
    prepare.SetString("PRICE", std::to_string(rec.price));
    TACOMA_RETURN_IF_ERROR(
        Send(place.site(), config_.customer_site, "txn_customer", prepare));
    return Send(place.site(), config_.provider_site, "txn_provider", prepare);
  }

  if (msg == "vote") {
    bool yes = bc.GetString("VOTE").value_or("no") == "yes";
    if (!yes) {
      rec.state = TxnState::kAborted;
      Briefcase abort_msg;
      abort_msg.SetString("MSG", "abort");
      abort_msg.SetString("XID", xid);
      (void)Send(place.site(), config_.customer_site, "txn_customer", abort_msg);
      (void)Send(place.site(), config_.provider_site, "txn_provider", abort_msg);
      return OkStatus();
    }
    if (++rec.votes < 2) {
      return OkStatus();  // Waiting for the other vote.
    }
    rec.state = TxnState::kCommitted;
    Briefcase commit;
    commit.SetString("MSG", "commit");
    commit.SetString("XID", xid);
    TACOMA_RETURN_IF_ERROR(
        Send(place.site(), config_.customer_site, "txn_customer", commit));
    return Send(place.site(), config_.provider_site, "txn_provider", commit);
  }

  if (msg == "ack") {
    if (++rec.acks >= 2) {
      rec.state = TxnState::kDone;
    }
    return OkStatus();
  }

  return InvalidArgumentError("txn_coord: unknown message \"" + msg + "\"");
}

Status TwoPhaseExchange::OnCustomer(Place& place, Briefcase& bc) {
  auto msg = bc.GetString("MSG").value_or("");
  auto xid = bc.GetString("XID").value_or("");
  auto it = records_.find(xid);
  if (it == records_.end()) {
    return NotFoundError("txn_customer: unknown transaction " + xid);
  }
  TxnRecord& rec = it->second;

  if (msg == "prepare") {
    // Escrow the cash and vote.
    auto notes = customer_wallet_.Withdraw(rec.price);
    Briefcase vote;
    vote.SetString("MSG", "vote");
    vote.SetString("XID", xid);
    vote.SetString("VOTE", notes.ok() ? "yes" : "no");
    if (notes.ok()) {
      escrow_[xid] = std::move(notes).value();
    }
    return Send(place.site(), config_.coordinator_site, "txn_coord", vote);
  }

  if (msg == "commit") {
    // Ship the escrowed cash to the provider.
    auto escrowed = escrow_.find(xid);
    if (escrowed != escrow_.end()) {
      Briefcase cash;
      cash.SetString("MSG", "cash");
      cash.SetString("XID", xid);
      cash.folder(kCashFolder).PushBack(EncodeEcus(escrowed->second));
      escrow_.erase(escrowed);
      TACOMA_RETURN_IF_ERROR(
          Send(place.site(), config_.provider_site, "txn_provider", cash));
    }
    Briefcase ack;
    ack.SetString("MSG", "ack");
    ack.SetString("XID", xid);
    return Send(place.site(), config_.coordinator_site, "txn_coord", ack);
  }

  if (msg == "abort") {
    auto escrowed = escrow_.find(xid);
    if (escrowed != escrow_.end()) {
      customer_wallet_.Add(escrowed->second);
      escrow_.erase(escrowed);
    }
    return OkStatus();
  }

  if (msg == "goods") {
    rec.goods_transferred = true;
    rec.settled = kernel_->sim().Now();
    return OkStatus();
  }

  return InvalidArgumentError("txn_customer: unknown message \"" + msg + "\"");
}

Status TwoPhaseExchange::OnProvider(Place& place, Briefcase& bc) {
  auto msg = bc.GetString("MSG").value_or("");
  auto xid = bc.GetString("XID").value_or("");
  auto it = records_.find(xid);
  if (it == records_.end()) {
    return NotFoundError("txn_provider: unknown transaction " + xid);
  }
  TxnRecord& rec = it->second;

  if (msg == "prepare") {
    Briefcase vote;
    vote.SetString("MSG", "vote");
    vote.SetString("XID", xid);
    vote.SetString("VOTE", "yes");  // Goods are always in stock here.
    return Send(place.site(), config_.coordinator_site, "txn_coord", vote);
  }

  if (msg == "commit") {
    // Ship the goods to the customer.
    Briefcase goods;
    goods.SetString("MSG", "goods");
    goods.SetString("XID", xid);
    goods.SetString("GOODS", "goods-for-" + xid);
    TACOMA_RETURN_IF_ERROR(
        Send(place.site(), config_.customer_site, "txn_customer", goods));
    Briefcase ack;
    ack.SetString("MSG", "ack");
    ack.SetString("XID", xid);
    return Send(place.site(), config_.coordinator_site, "txn_coord", ack);
  }

  if (msg == "abort") {
    return OkStatus();
  }

  if (msg == "cash") {
    const Folder* cash = bc.Find(kCashFolder);
    if (cash != nullptr && !cash->empty()) {
      auto notes = DecodeEcus(*cash->Front());
      if (notes.ok()) {
        provider_wallet_.Add(*notes);
        rec.cash_transferred = true;
        rec.settled = kernel_->sim().Now();
      }
    }
    return OkStatus();
  }

  return InvalidArgumentError("txn_provider: unknown message \"" + msg + "\"");
}

const TxnRecord* TwoPhaseExchange::record(const std::string& xid) const {
  auto it = records_.find(xid);
  return it == records_.end() ? nullptr : &it->second;
}

}  // namespace tacoma::cash
