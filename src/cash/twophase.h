// Two-phase-commit exchange — the baseline the paper REJECTED (§3):
//
// "What would seem to be required is support for transactions ... We rejected
// adding support for transactions to our system for two reasons: (1) Having
// such a mechanism would impact performance and would be effective only if it
// were trusted.  (2) Such a mechanism would be alien to the computer
// illiterate."
//
// Benchmark E6 compares this coordinator-based protocol against the audited
// exchange on messages, critical-path latency, and behaviour when the
// coordinator fails mid-protocol (2PC blocks; the audit protocol has no such
// single point of trust).
//
// Protocol: BEGIN -> coordinator; PREPARE to both parties; each escrows its
// side (cash / goods) and votes; coordinator decides; on COMMIT the parties
// exchange escrows directly and ACK; on ABORT escrows are released.
#ifndef TACOMA_CASH_TWOPHASE_H_
#define TACOMA_CASH_TWOPHASE_H_

#include <map>
#include <string>
#include <vector>

#include "cash/wallet.h"
#include "core/kernel.h"

namespace tacoma::cash {

struct TwoPhaseConfig {
  SiteId customer_site = 0;
  SiteId provider_site = 0;
  SiteId coordinator_site = 0;
};

enum class TxnState { kBegun, kPreparing, kCommitted, kAborted, kDone };

struct TxnRecord {
  std::string xid;
  uint64_t price = 0;
  TxnState state = TxnState::kBegun;
  int votes = 0;
  bool cash_transferred = false;
  bool goods_transferred = false;
  int acks = 0;
  SimTime started = 0;
  SimTime settled = 0;
};

class TwoPhaseExchange {
 public:
  TwoPhaseExchange(Kernel* kernel, TwoPhaseConfig config);

  void FundCustomer(std::vector<Ecu> notes);

  // Begins a transaction; run the simulator to completion.
  Status Start(const std::string& xid, uint64_t price);

  const TxnRecord* record(const std::string& xid) const;
  Wallet& customer_wallet() { return customer_wallet_; }
  Wallet& provider_wallet() { return provider_wallet_; }

 private:
  void InstallAgents();
  Status Send(SiteId from, SiteId to, const std::string& contact, Briefcase bc);

  Status OnCoordinator(Place& place, Briefcase& bc);
  Status OnCustomer(Place& place, Briefcase& bc);
  Status OnProvider(Place& place, Briefcase& bc);

  Kernel* kernel_;
  TwoPhaseConfig config_;
  Wallet customer_wallet_;
  Wallet provider_wallet_;
  std::map<std::string, TxnRecord> records_;
  // Escrowed cash per transaction (withdrawn at PREPARE).
  std::map<std::string, std::vector<Ecu>> escrow_;
};

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_TWOPHASE_H_
