#include "cash/wallet.h"

#include <algorithm>

namespace tacoma::cash {

void Wallet::Add(const std::vector<Ecu>& ecus) {
  for (const Ecu& e : ecus) {
    ecus_.push_back(e);
  }
}

uint64_t Wallet::Balance() const { return TotalAmount(ecus_); }

Result<std::vector<Ecu>> Wallet::Withdraw(uint64_t amount) {
  if (amount == 0) {
    return std::vector<Ecu>{};
  }
  if (Balance() < amount) {
    return FailedPreconditionError("insufficient funds");
  }
  // Greedy: largest notes first, skipping any that overshoot.  This finds an
  // exact subset whenever one exists for "canonical" denomination systems;
  // for pathological mixes the caller breaks a note at the mint.
  std::vector<size_t> order(ecus_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [this](size_t a, size_t b) { return ecus_[a].amount > ecus_[b].amount; });

  uint64_t remaining = amount;
  std::vector<size_t> picked;
  for (size_t i : order) {
    if (ecus_[i].amount <= remaining) {
      picked.push_back(i);
      remaining -= ecus_[i].amount;
      if (remaining == 0) {
        break;
      }
    }
  }
  if (remaining != 0) {
    return FailedPreconditionError(
        "no exact subset of held denominations; make change at the mint");
  }
  std::vector<Ecu> out;
  out.reserve(picked.size());
  // Erase from highest index down so earlier indices stay valid.
  std::sort(picked.begin(), picked.end());
  for (size_t k = picked.size(); k > 0; --k) {
    size_t i = picked[k - 1];
    out.push_back(std::move(ecus_[i]));
    ecus_.erase(ecus_.begin() + static_cast<long>(i));
  }
  return out;
}

Status Wallet::PayInto(Briefcase* bc, uint64_t amount) {
  auto notes = Withdraw(amount);
  if (!notes.ok()) {
    return notes.status();
  }
  bc->folder(kCashFolder).PushBack(EncodeEcus(*notes));
  return OkStatus();
}

Result<uint64_t> Wallet::CollectFrom(Briefcase* bc) {
  Folder* cash = bc->Find(kCashFolder);
  if (cash == nullptr) {
    return NotFoundError("no CASH folder in briefcase");
  }
  uint64_t received = 0;
  while (auto element = cash->PopFront()) {
    auto notes = DecodeEcus(*element);
    if (!notes.ok()) {
      return notes.status();
    }
    received += TotalAmount(*notes);
    Add(*notes);
  }
  bc->Remove(kCashFolder);
  return received;
}

}  // namespace tacoma::cash
