// Wallet — an agent's ECU holdings.
//
// "Each agent stores records for the ECUs it owns.  An agent transfers funds
// by placing these records in a briefcase that is then passed to the intended
// recipient of those funds." (§3)
#ifndef TACOMA_CASH_WALLET_H_
#define TACOMA_CASH_WALLET_H_

#include <vector>

#include "cash/ecu.h"
#include "core/briefcase.h"
#include "util/status.h"

namespace tacoma::cash {

// Folder name used for cash inside briefcases.
inline constexpr char kCashFolder[] = "CASH";

class Wallet {
 public:
  Wallet() = default;

  void Add(Ecu ecu) { ecus_.push_back(std::move(ecu)); }
  void Add(const std::vector<Ecu>& ecus);

  uint64_t Balance() const;
  size_t count() const { return ecus_.size(); }
  const std::vector<Ecu>& ecus() const { return ecus_; }

  // Removes ECUs summing exactly to `amount` (greedy over subsets of the
  // held denominations).  Fails without change-making if no exact subset
  // exists — use Mint::Exchange to break a note first.
  Result<std::vector<Ecu>> Withdraw(uint64_t amount);

  // Moves `amount` into the CASH folder of `bc` (the paper's transfer: cash
  // records ride in briefcases).
  Status PayInto(Briefcase* bc, uint64_t amount);

  // Takes every ECU out of the CASH folder of `bc` into this wallet.
  // Returns the amount received.
  Result<uint64_t> CollectFrom(Briefcase* bc);

 private:
  std::vector<Ecu> ecus_;
};

}  // namespace tacoma::cash

#endif  // TACOMA_CASH_WALLET_H_
