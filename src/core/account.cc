#include "core/account.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/briefcase.h"
#include "util/json.h"

namespace tacoma {

namespace {

// The rear guard stamps every deposit/relaunch with a monotonic incarnation
// in this folder (see ft/rearguard.h); unguarded agents are incarnation 0.
constexpr char kIncarnationFolder[] = "GUARD_INC";

uint64_t IncarnationOf(const Briefcase& bc) {
  auto inc = bc.GetString(kIncarnationFolder);
  if (!inc.has_value() || inc->empty()) {
    return 0;
  }
  char* end = nullptr;
  uint64_t value = std::strtoull(inc->c_str(), &end, 10);
  return end != nullptr && *end == '\0' ? value : 0;
}

void AppendAccountJson(std::string* out, const ResourceAccount& a) {
  *out += "{\"activations\":" + std::to_string(a.activations) +
          ",\"eval_steps\":" + std::to_string(a.eval_steps) +
          ",\"bytes_sent\":" + std::to_string(a.bytes_sent) +
          ",\"hops\":" + std::to_string(a.hops) +
          ",\"meets\":" + std::to_string(a.meets) +
          ",\"flushes\":" + std::to_string(a.flushes) +
          ",\"ecu_spent\":" + std::to_string(a.ecu_spent) +
          ",\"ecu_billed\":" + std::to_string(a.ecu_billed) +
          ",\"cost\":" + std::to_string(a.Cost()) + "}";
}

}  // namespace

AccountKey AccountKeyFor(const Briefcase& bc) {
  return AccountKey{bc.GetString("AGENT").value_or("agent"), IncarnationOf(bc)};
}

AccountKey AccountKeyFor(const std::string& agent_id, const Briefcase& bc) {
  return AccountKey{agent_id, IncarnationOf(bc)};
}

AccountLedger::AccountLedger(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

ResourceAccount& AccountLedger::Touch(const AccountKey& key) {
  auto [it, inserted] = accounts_.try_emplace(key);
  if (inserted && accounts_.size() > capacity_) {
    // Evict the cheapest OTHER account.  The fresh entry is still at cost 0
    // and would otherwise always be the victim — erasing and re-inserting it
    // would leave the table one past its bound forever.
    EvictCheapest(key);
  }
  return it->second;
}

void AccountLedger::EvictCheapest(const AccountKey& keep) {
  auto victim = accounts_.end();
  uint64_t victim_cost = 0;
  for (auto it = accounts_.begin(); it != accounts_.end(); ++it) {
    if (it->first == keep) {
      continue;
    }
    if (victim == accounts_.end() || it->second.Cost() < victim_cost) {
      victim = it;
      victim_cost = it->second.Cost();
    }
  }
  if (victim != accounts_.end()) {
    accounts_.erase(victim);
    ++evictions_;
  }
}

void AccountLedger::ChargeActivation(const AccountKey& key, uint64_t eval_steps) {
  ResourceAccount& a = Touch(key);
  ++a.activations;
  a.eval_steps += eval_steps;
  ++totals_.activations;
  totals_.eval_steps += eval_steps;
}

void AccountLedger::ChargeBytes(const AccountKey& key, uint64_t bytes,
                                uint64_t hops) {
  ResourceAccount& a = Touch(key);
  a.bytes_sent += bytes;
  a.hops += hops;
  totals_.bytes_sent += bytes;
  totals_.hops += hops;
}

void AccountLedger::ChargeMeet(const AccountKey& key) {
  ++Touch(key).meets;
  ++totals_.meets;
}

void AccountLedger::ChargeFlush(const AccountKey& key) {
  ++Touch(key).flushes;
  ++totals_.flushes;
}

void AccountLedger::ChargeSpend(const AccountKey& key, uint64_t ecus) {
  Touch(key).ecu_spent += ecus;
  totals_.ecu_spent += ecus;
}

void AccountLedger::ChargeBilled(const AccountKey& key, uint64_t ecus,
                                 uint64_t shortfall) {
  Touch(key).ecu_billed += ecus;
  totals_.ecu_billed += ecus;
  billing_shortfall_ += shortfall;
}

const ResourceAccount* AccountLedger::Find(const AccountKey& key) const {
  auto it = accounts_.find(key);
  return it == accounts_.end() ? nullptr : &it->second;
}

std::vector<std::pair<AccountKey, ResourceAccount>> AccountLedger::ForAgent(
    const std::string& agent) const {
  std::vector<std::pair<AccountKey, ResourceAccount>> rows;
  for (auto it = accounts_.lower_bound(AccountKey{agent, 0});
       it != accounts_.end() && it->first.agent == agent; ++it) {
    rows.push_back(*it);
  }
  return rows;
}

std::vector<std::pair<AccountKey, ResourceAccount>> AccountLedger::TopK(
    size_t k) const {
  std::vector<std::pair<AccountKey, ResourceAccount>> rows(accounts_.begin(),
                                                           accounts_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    uint64_t ca = a.second.Cost();
    uint64_t cb = b.second.Cost();
    return ca != cb ? ca > cb : a.first < b.first;
  });
  if (rows.size() > k) {
    rows.resize(k);
  }
  return rows;
}

std::string AccountLedger::JsonSnapshot(size_t top_k) const {
  std::string out = "{\"entries\":" + std::to_string(accounts_.size()) +
                    ",\"evictions\":" + std::to_string(evictions_) +
                    ",\"billing_shortfall\":" + std::to_string(billing_shortfall_) +
                    ",\"totals\":";
  AppendAccountJson(&out, totals_);
  out += ",\"top\":[";
  bool first = true;
  for (const auto& [key, account] : TopK(top_k)) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"agent\":\"" + JsonEscape(key.agent) +
           "\",\"incarnation\":" + std::to_string(key.incarnation) + ",\"usage\":";
    AppendAccountJson(&out, account);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string AccountLedger::TextTop(size_t k) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-24s %-4s %10s %8s %10s %5s %6s %7s %6s %6s\n",
                "agent", "inc", "cost", "activ", "steps", "hops", "meets",
                "bytes", "flush", "ecu");
  std::string out = buf;
  for (const auto& [key, a] : TopK(k)) {
    std::snprintf(buf, sizeof(buf),
                  "%-24s %-4llu %10llu %8llu %10llu %5llu %6llu %7llu %6llu %6llu\n",
                  key.agent.c_str(), (unsigned long long)key.incarnation,
                  (unsigned long long)a.Cost(), (unsigned long long)a.activations,
                  (unsigned long long)a.eval_steps, (unsigned long long)a.hops,
                  (unsigned long long)a.meets, (unsigned long long)a.bytes_sent,
                  (unsigned long long)a.flushes,
                  (unsigned long long)(a.ecu_spent + a.ecu_billed));
    out += buf;
  }
  return out;
}

}  // namespace tacoma
