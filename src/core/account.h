// Per-agent resource accounting.
//
// The paper's §3 answers "who pays for an agent's resource consumption?"
// with electronic cash, but paying requires metering first.  The
// AccountLedger is the kernel's meter: one account per (agent id,
// incarnation), charged at the kernel's choke points —
//   - Place::RunAgentCode    activations + TACL eval steps (the
//                            deterministic stand-in for CPU time);
//   - Kernel::TransferAgent  hops, plus bytes-on-wire for the accepted frame
//                            (frame size × planned route length, so multi-hop
//                            routes bill every link the frame will traverse);
//   - the retry loop / control frames   retransmissions, acks, nacks and
//                            NeedCode traffic bill the transfer's agent;
//   - transfer accept        arrival meets;
//   - cab_flush              cabinet flush operations;
//   - pay / withdraw         ECU spend.
// Incarnations come from the rear guard's GUARD_INC folder, so a relaunched
// agent's consumption is ledgered separately from its lost predecessor's.
//
// The ledger is kernel-owned (it survives site crashes, like StorageStats)
// and bounded: past `capacity` accounts, the cheapest account is evicted
// into the totals (which are exact regardless of eviction).
#ifndef TACOMA_CORE_ACCOUNT_H_
#define TACOMA_CORE_ACCOUNT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tacoma {

class Briefcase;

struct AccountKey {
  std::string agent;
  uint64_t incarnation = 0;

  bool operator<(const AccountKey& o) const {
    return agent != o.agent ? agent < o.agent : incarnation < o.incarnation;
  }
  bool operator==(const AccountKey& o) const {
    return agent == o.agent && incarnation == o.incarnation;
  }
};

// The ledger key for a briefcase: AGENT folder (default "agent") plus the
// rear guard's GUARD_INC incarnation (0 when unguarded).  The overload with
// an explicit agent id serves activation paths where the runtime knows the
// agent better than the briefcase does.
AccountKey AccountKeyFor(const Briefcase& bc);
AccountKey AccountKeyFor(const std::string& agent_id, const Briefcase& bc);

struct ResourceAccount {
  uint64_t activations = 0;
  uint64_t eval_steps = 0;   // TACL commands executed (deterministic CPU).
  uint64_t bytes_sent = 0;   // Frame bytes × links, charged at the sender.
  uint64_t hops = 0;         // Agent transfers initiated.
  uint64_t meets = 0;        // Arrival dispatches at receivers.
  uint64_t flushes = 0;      // Agent-initiated cabinet flushes.
  uint64_t ecu_spent = 0;    // pay/withdraw debits.
  uint64_t ecu_billed = 0;   // Collected by the billing hook.

  // One scalar "metered cost" for top-K ranking and the shell's `top`
  // command: steps and bytes at unit weight, structural operations at a
  // fixed premium, ECU motion weighted heaviest (it is already money).
  uint64_t Cost() const {
    return eval_steps + bytes_sent + 10 * (activations + meets + flushes) +
           50 * hops + 100 * (ecu_spent + ecu_billed);
  }
};

class AccountLedger {
 public:
  explicit AccountLedger(size_t capacity = 4096);

  void ChargeActivation(const AccountKey& key, uint64_t eval_steps);
  // `bytes` is already multiplied by the route length; `hops` is 1 for a
  // fresh transfer, 0 for retransmissions/control frames.
  void ChargeBytes(const AccountKey& key, uint64_t bytes, uint64_t hops);
  void ChargeMeet(const AccountKey& key);
  void ChargeFlush(const AccountKey& key);
  void ChargeSpend(const AccountKey& key, uint64_t ecus);
  void ChargeBilled(const AccountKey& key, uint64_t ecus, uint64_t shortfall);

  // Null when the account was never charged (or was evicted).
  const ResourceAccount* Find(const AccountKey& key) const;
  // Every incarnation row for one agent, incarnation-ascending.
  std::vector<std::pair<AccountKey, ResourceAccount>> ForAgent(
      const std::string& agent) const;
  // Top k accounts by Cost() descending; ties broken by key ascending so the
  // ordering is deterministic.
  std::vector<std::pair<AccountKey, ResourceAccount>> TopK(size_t k) const;

  // Exact aggregate across all accounts, evicted ones included.
  const ResourceAccount& totals() const { return totals_; }
  size_t size() const { return accounts_.size(); }
  uint64_t evictions() const { return evictions_; }
  uint64_t billing_shortfall() const { return billing_shortfall_; }

  // {"entries":N,"evictions":N,"totals":{...},"top":[{...},...]} — sorted,
  // deterministic, agent names JSON-escaped.
  std::string JsonSnapshot(size_t top_k) const;
  // Fixed-width table of the top k accounts (the shell's `top` command).
  std::string TextTop(size_t k) const;

 private:
  ResourceAccount& Touch(const AccountKey& key);
  // Evicts the cheapest account other than `keep` (the entry being charged).
  void EvictCheapest(const AccountKey& keep);

  size_t capacity_;
  std::map<AccountKey, ResourceAccount> accounts_;
  ResourceAccount totals_;
  uint64_t evictions_ = 0;
  uint64_t billing_shortfall_ = 0;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_ACCOUNT_H_
