#include "core/admission.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "tacl/list.h"

namespace tacoma {

AdmissionSummary AdmissionSummary::FromReport(const tacl::AnalysisReport& report) {
  AdmissionSummary summary;
  summary.errors = report.error_count();
  summary.first_error = report.FirstError();
  for (const tacl::Diagnostic& d : report.diagnostics) {
    summary.slugs.insert(d.code);
  }
  summary.manifest = report.manifest;
  return summary;
}

namespace {

std::vector<std::string> SplitWhitespace(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) {
      tokens.emplace_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

Status DirectiveError(size_t line, const std::string& message) {
  return InvalidArgumentError("policy line " + std::to_string(line) + ": " +
                              message);
}

Result<int64_t> ParseCeiling(const std::string& token, size_t line) {
  if (token == "unlimited") {
    return static_cast<int64_t>(-1);
  }
  auto value = tacl::ParseInt(token);
  if (!value.has_value() || *value < 0) {
    return DirectiveError(line, "expected a non-negative count or \"unlimited\", got \"" +
                                    token + "\"");
  }
  return *value;
}

}  // namespace

Result<AdmissionRules> AdmissionRules::Parse(std::string_view text) {
  AdmissionRules rules;
  size_t line_no = 0;
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    ++line_no;
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) {
      continue;
    }
    const std::string& head = tokens[0];
    if (head == "mode") {
      if (tokens.size() != 2) {
        return DirectiveError(line_no, "mode takes exactly one of off|warn|enforce");
      }
      if (tokens[1] == "off") {
        rules.mode = Mode::kOff;
      } else if (tokens[1] == "warn") {
        rules.mode = Mode::kWarn;
      } else if (tokens[1] == "enforce") {
        rules.mode = Mode::kEnforce;
      } else {
        return DirectiveError(line_no, "unknown mode \"" + tokens[1] + "\"");
      }
    } else if (head == "max") {
      if (tokens.size() != 3) {
        return DirectiveError(line_no, "max takes a dimension and a ceiling");
      }
      TACOMA_ASSIGN_OR_RETURN(int64_t ceiling, ParseCeiling(tokens[2], line_no));
      if (tokens[1] == "hops") {
        rules.max_hops = ceiling;
      } else if (tokens[1] == "clones") {
        rules.max_clones = ceiling;
      } else if (tokens[1] == "spend") {
        rules.max_spend = ceiling;
      } else {
        return DirectiveError(line_no,
                              "unknown max dimension \"" + tokens[1] + "\"");
      }
    } else if (head == "deny" || head == "allow") {
      const bool deny = head == "deny";
      if (tokens.size() < 2) {
        return DirectiveError(line_no, head + " needs a subject");
      }
      const std::string& what = tokens[1];
      auto rest_into = [&](std::set<std::string>* target) -> Status {
        if (tokens.size() < 3) {
          return DirectiveError(line_no, head + " " + what + " needs at least one name");
        }
        for (size_t i = 2; i < tokens.size(); ++i) {
          target->insert(tokens[i]);
        }
        return OkStatus();
      };
      if (what == "errors") {
        if (tokens.size() != 2) {
          return DirectiveError(line_no, head + " errors takes no operands");
        }
        rules.deny_errors = deny;
      } else if (what == "dynamic-targets") {
        if (tokens.size() != 2) {
          return DirectiveError(line_no, head + " dynamic-targets takes no operands");
        }
        rules.deny_dynamic_targets = deny;
      } else if (what == "slug" && deny) {
        TACOMA_RETURN_IF_ERROR(rest_into(&rules.deny_slugs));
      } else if (what == "host") {
        TACOMA_RETURN_IF_ERROR(
            rest_into(deny ? &rules.deny_hosts : &rules.allow_hosts));
      } else if (what == "cabinet" && deny) {
        TACOMA_RETURN_IF_ERROR(rest_into(&rules.deny_cabinets));
      } else if (what == "folder" && deny) {
        TACOMA_RETURN_IF_ERROR(rest_into(&rules.deny_folders));
      } else {
        return DirectiveError(line_no,
                              "unknown directive \"" + head + " " + what + "\"");
      }
    } else {
      return DirectiveError(line_no, "unknown directive \"" + head + "\"");
    }
  }
  return rules;
}

std::vector<std::string> AdmissionRules::Violations(
    const AdmissionSummary& summary) const {
  std::vector<std::string> violations;
  if (mode == Mode::kOff) {
    return violations;
  }
  if (deny_errors && summary.errors > 0) {
    violations.push_back("static analysis failed: " + summary.first_error);
  }
  for (const std::string& slug : deny_slugs) {
    if (summary.slugs.contains(slug)) {
      violations.push_back("denied effect class [" + slug + "] present");
    }
  }
  const tacl::EffectManifest& m = summary.manifest;
  if (deny_dynamic_targets && m.dynamic_targets) {
    violations.push_back("script computes effect targets at run time");
  }
  auto check_ceiling = [&violations](int64_t ceiling, int64_t bound,
                                     const char* what) {
    if (ceiling < 0) {
      return;
    }
    if (bound == tacl::kUnboundedEffect || bound > ceiling) {
      violations.push_back(std::string(what) + " bound " +
                           tacl::EffectBoundToString(bound) +
                           " exceeds ceiling " + std::to_string(ceiling));
    }
  };
  check_ceiling(max_hops, m.hop_bound, "hop");
  check_ceiling(max_clones, m.clone_bound, "clone");
  check_ceiling(max_spend, m.spend_bound, "spend");
  for (const std::string& host : m.hosts) {
    if (deny_hosts.contains(host)) {
      violations.push_back("host \"" + host + "\" is denied");
    } else if (!allow_hosts.empty() && !allow_hosts.contains(host)) {
      violations.push_back("host \"" + host + "\" is not in the allow list");
    }
  }
  auto check_names = [&violations](const std::set<std::string>& denied,
                                   const std::set<std::string>& read,
                                   const std::set<std::string>& written,
                                   const char* what) {
    for (const std::string& name : denied) {
      if (read.contains(name) || written.contains(name)) {
        violations.push_back(std::string(what) + " \"" + name + "\" is denied");
      }
    }
  };
  check_names(deny_cabinets, m.cabinets_read, m.cabinets_written, "cabinet");
  check_names(deny_folders, m.folders_read, m.folders_written, "folder");
  return violations;
}

}  // namespace tacoma
