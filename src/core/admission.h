// Declarative admission policy for agent code.
//
// A place never executes a CODE folder blindly: before activation the script
// is statically analyzed (tacl/analyze.h) and the resulting EffectManifest is
// checked against the site's AdmissionRules — a small allow/deny table over
// effect classes plus spend/hop ceilings.  The analysis result is wrapped in
// an AdmissionSummary and cached kernel-wide, keyed by the SHA-256 digest of
// the code (plus a fingerprint of the command surface it was analyzed
// against), so a returning or much-cloned agent is admitted without
// re-parsing.
#ifndef TACOMA_CORE_ADMISSION_H_
#define TACOMA_CORE_ADMISSION_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tacl/analyze.h"
#include "util/status.h"

namespace tacoma {

// Everything admission needs from a static analysis, small enough to cache:
// the error count and first error (for deny-errors mode), the set of
// diagnostic slugs seen, and the effect manifest.
struct AdmissionSummary {
  size_t errors = 0;
  std::string first_error;
  std::set<std::string> slugs;  // Diagnostic codes present in the report.
  tacl::EffectManifest manifest;

  static AdmissionSummary FromReport(const tacl::AnalysisReport& report);
};

// A site's admission policy.  Parsed from a line-oriented table (one
// directive per line, `#` comments):
//
//   mode off|warn|enforce
//   deny errors            # reject scripts whose analysis found errors
//   allow errors
//   deny slug <slug>...    # e.g. deny slug exfiltration-risk unbounded-spend
//   deny dynamic-targets   # reject scripts with computed effect operands
//   max hops <N|unlimited>
//   max clones <N|unlimited>
//   max spend <N|unlimited>
//   deny host <host>...
//   allow host <host>...   # when non-empty, static hosts must all be listed
//   deny cabinet <name>...
//   deny folder <name>...
//
// Host/cabinet/folder rules match the *static* name sets; scripts that
// compute targets at run time carry dynamic_targets=true, so an airtight
// policy combines them with `deny dynamic-targets`.
struct AdmissionRules {
  enum class Mode {
    kOff,      // No analysis at admission.
    kWarn,     // Analyze, log violations, admit anyway.
    kEnforce,  // Reject agents whose manifest violates the table.
  };

  Mode mode = Mode::kWarn;
  bool deny_errors = true;
  std::set<std::string> deny_slugs;
  bool deny_dynamic_targets = false;
  int64_t max_hops = -1;    // -1 = no ceiling (note: distinct from ⊤!).
  int64_t max_clones = -1;  // Ceilings compare against manifest bounds; a
  int64_t max_spend = -1;   // bound of ⊤ violates any finite ceiling.
  std::set<std::string> allow_hosts;  // Empty = any host.
  std::set<std::string> deny_hosts;
  std::set<std::string> deny_cabinets;
  std::set<std::string> deny_folders;

  static Result<AdmissionRules> Parse(std::string_view text);

  // Human-readable violation descriptions; empty means admissible.
  std::vector<std::string> Violations(const AdmissionSummary& summary) const;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_ADMISSION_H_
