// TACL bindings for the agent primitives.
//
// Each agent activation gets a fresh interpreter with these commands bound to
// its Activation: briefcase access (bc_*), site-local cabinet access (cab_*),
// the meet operation, and movement sugar built on the system agents.
//
// Movement note: TACOMA moves an agent by shipping its briefcase; the local
// activation keeps running after `move`/`jump` (the paper: A continues once
// rexec terminates the meet).  To keep the model honest, briefcase and meet
// primitives fail after departure — the state has left the building.
#include "core/kernel.h"
#include "core/place.h"
#include "tacl/list.h"

namespace tacoma {

const tacl::SignatureTable& AgentPrimitiveSignatures() {
  // Keep in lockstep with the Register calls below: same names, and arity
  // bounds matching each lambda's argv check (commands that ignore argv are
  // declared zero-argument — extra operands are author mistakes).
  static const tacl::SignatureTable* table = new tacl::SignatureTable{
      {"bc_put", {2, 2}},     {"bc_push", {2, 2}},    {"bc_pop", {1, 1}},
      {"bc_pop_back", {1, 1}}, {"bc_peek", {1, 1}},   {"bc_get", {1, 1}},
      {"bc_set", {2, 2}},     {"bc_len", {1, 1}},     {"bc_list", {1, 1}},
      {"bc_has", {1, 1}},     {"bc_clear", {1, 1}},   {"bc_folders", {0, 0}},
      {"cab_append", {3, 3}}, {"cab_set", {3, 3}},    {"cab_get", {3, 3}},
      {"cab_list", {2, 2}},   {"cab_len", {2, 2}},    {"cab_contains", {3, 3}},
      {"cab_erase", {2, 2}},  {"cab_folders", {1, 1}}, {"cab_flush", {1, 1}},
      {"meet", {1, 2}},       {"move", {1, 2}},       {"jump", {1, 1}},
      {"clone", {1, 1}},      {"send", {3, 3}},       {"site", {0, 0}},
      {"agent_id", {0, 0}},   {"self_code", {0, 0}},  {"now_us", {0, 0}},
      {"agents", {0, 0}},     {"log", {1, 1}},        {"detach", {2, 2}},
      {"rng_uniform", {1, 1}}, {"pay", {2, 2}},       {"withdraw", {1, 1}},
  };
  return *table;
}

tacl::AnalyzerOptions AgentAnalyzerOptions(const tacl::Interp& interp) {
  static const tacl::SignatureTable* merged = [] {
    auto* table = new tacl::SignatureTable(tacl::BuiltinCommandSignatures());
    for (const auto& [name, sig] : AgentPrimitiveSignatures()) {
      table->emplace(name, sig);
    }
    return table;
  }();
  tacl::AnalyzerOptions options;
  options.signatures = *merged;
  for (std::string& name : interp.CommandNames()) {
    options.known_commands.insert(std::move(name));
  }
  return options;
}

void BindAgentPrimitives(tacl::Interp* interp, Activation* activation) {
  using tacl::Error;
  using tacl::Interp;
  using tacl::Ok;
  using tacl::Outcome;

  auto guard = [activation]() -> std::optional<Outcome> {
    if (activation->departed) {
      return Error("agent has departed this site");
    }
    return std::nullopt;
  };

  auto wrong_args = [](const std::string& usage) {
    return Error("wrong # args: should be \"" + usage + "\"");
  };

  // Runtime effect monitor (see tacl::EffectRecord and Place::RunAgentCode).
  // Effects are recorded per *attempt*, after the arity check and before the
  // operation — mirroring exactly what the static analyzer models: the
  // operand names of each primitive, not the internal folder traffic the
  // primitive causes.  `activation->effects` is read at call time because the
  // place arms the monitor after binding.
  auto fx_folder_read = [activation](const std::string& name) {
    if (auto* fx = activation->effects) {
      fx->folders_read.insert(name);
    }
  };
  auto fx_folder_write = [activation](const std::string& name) {
    if (auto* fx = activation->effects) {
      fx->folders_written.insert(name);
    }
  };
  auto fx_cab_read = [activation](const std::string& name) {
    if (auto* fx = activation->effects) {
      fx->cabinets_read.insert(name);
    }
  };
  auto fx_cab_write = [activation](const std::string& name) {
    if (auto* fx = activation->effects) {
      fx->cabinets_written.insert(name);
    }
  };
  auto fx_host = [activation](const std::string& name) {
    if (auto* fx = activation->effects) {
      fx->hosts.insert(name);
    }
  };
  auto fx_agent = [activation](const std::string& name) {
    if (auto* fx = activation->effects) {
      fx->agents_met.insert(name);
    }
  };

  // --- Briefcase -------------------------------------------------------------

  interp->Register("bc_put", [activation, guard, wrong_args, fx_folder_write](
                                 Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 3) {
      return wrong_args("bc_put folder value");
    }
    fx_folder_write(argv[1]);
    activation->briefcase->folder(argv[1]).PushBackString(argv[2]);
    return Ok();
  });

  interp->Register("bc_push", [activation, guard, wrong_args, fx_folder_write](
                                  Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 3) {
      return wrong_args("bc_push folder value");
    }
    fx_folder_write(argv[1]);
    activation->briefcase->folder(argv[1]).PushFrontString(argv[2]);
    return Ok();
  });

  interp->Register("bc_pop", [activation, guard, wrong_args, fx_folder_read,
                              fx_folder_write](
                                 Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("bc_pop folder");
    }
    fx_folder_read(argv[1]);
    fx_folder_write(argv[1]);
    Folder* f = activation->briefcase->Find(argv[1]);
    if (f == nullptr || f->empty()) {
      return Error("folder \"" + argv[1] + "\" is empty");
    }
    return Ok(*f->PopFrontString());
  });

  interp->Register("bc_pop_back", [activation, guard, wrong_args, fx_folder_read,
                                   fx_folder_write](
                                      Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("bc_pop_back folder");
    }
    fx_folder_read(argv[1]);
    fx_folder_write(argv[1]);
    Folder* f = activation->briefcase->Find(argv[1]);
    if (f == nullptr || f->empty()) {
      return Error("folder \"" + argv[1] + "\" is empty");
    }
    return Ok(*f->PopBackString());
  });

  interp->Register("bc_peek", [activation, guard, wrong_args, fx_folder_read](
                                  Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("bc_peek folder");
    }
    fx_folder_read(argv[1]);
    const Folder* f = activation->briefcase->Find(argv[1]);
    if (f == nullptr || f->empty()) {
      return Error("folder \"" + argv[1] + "\" is empty");
    }
    return Ok(*f->FrontString());
  });

  interp->Register("bc_get", [activation, guard, wrong_args, fx_folder_read](
                                 Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("bc_get folder");
    }
    fx_folder_read(argv[1]);
    auto v = activation->briefcase->GetString(argv[1]);
    if (!v.has_value()) {
      return Error("folder \"" + argv[1] + "\" is empty");
    }
    return Ok(*v);
  });

  interp->Register("bc_set", [activation, guard, wrong_args, fx_folder_write](
                                 Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 3) {
      return wrong_args("bc_set folder value");
    }
    fx_folder_write(argv[1]);
    activation->briefcase->SetString(argv[1], argv[2]);
    return Ok();
  });

  interp->Register("bc_len", [activation, guard, wrong_args, fx_folder_read](
                                 Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("bc_len folder");
    }
    fx_folder_read(argv[1]);
    const Folder* f = activation->briefcase->Find(argv[1]);
    return Ok(std::to_string(f == nullptr ? 0 : f->size()));
  });

  interp->Register("bc_list", [activation, guard, wrong_args, fx_folder_read](
                                  Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("bc_list folder");
    }
    fx_folder_read(argv[1]);
    const Folder* f = activation->briefcase->Find(argv[1]);
    if (f == nullptr) {
      return Ok("");
    }
    return Ok(tacl::FormatList(f->AsStrings()));
  });

  interp->Register("bc_has", [activation, guard, wrong_args, fx_folder_read](
                                 Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("bc_has folder");
    }
    fx_folder_read(argv[1]);
    return Ok(activation->briefcase->Has(argv[1]) ? "1" : "0");
  });

  interp->Register("bc_clear", [activation, guard, wrong_args, fx_folder_write](
                                   Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("bc_clear folder");
    }
    fx_folder_write(argv[1]);
    activation->briefcase->Remove(argv[1]);
    return Ok();
  });

  interp->Register("bc_folders", [activation, guard](
                                     Interp&, const std::vector<std::string>&) {
    if (auto g = guard()) {
      return *g;
    }
    return Ok(tacl::FormatList(activation->briefcase->FolderNames()));
  });

  // --- File cabinets -------------------------------------------------------------

  interp->Register("cab_append", [activation, wrong_args, fx_cab_write](
                                     Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 4) {
      return wrong_args("cab_append cabinet folder value");
    }
    fx_cab_write(argv[1]);
    activation->place->Cabinet(argv[1]).AppendString(argv[2], argv[3]);
    return Ok();
  });

  interp->Register("cab_set", [activation, wrong_args, fx_cab_write](
                                  Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 4) {
      return wrong_args("cab_set cabinet folder value");
    }
    fx_cab_write(argv[1]);
    activation->place->Cabinet(argv[1]).SetString(argv[2], argv[3]);
    return Ok();
  });

  interp->Register("cab_get", [activation, wrong_args, fx_cab_read](
                                  Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 4) {
      return wrong_args("cab_get cabinet folder index");
    }
    fx_cab_read(argv[1]);
    auto index = tacl::ParseInt(argv[3]);
    if (!index.has_value() || *index < 0) {
      return Error("bad index \"" + argv[3] + "\"");
    }
    auto v = activation->place->Cabinet(argv[1]).Get(argv[2],
                                                     static_cast<size_t>(*index));
    if (!v.has_value()) {
      return Error("no element " + argv[3] + " in " + argv[1] + "/" + argv[2]);
    }
    return Ok(ToString(*v));
  });

  interp->Register("cab_list", [activation, wrong_args, fx_cab_read](
                                   Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 3) {
      return wrong_args("cab_list cabinet folder");
    }
    fx_cab_read(argv[1]);
    return Ok(tacl::FormatList(activation->place->Cabinet(argv[1]).ListStrings(argv[2])));
  });

  interp->Register("cab_len", [activation, wrong_args, fx_cab_read](
                                  Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 3) {
      return wrong_args("cab_len cabinet folder");
    }
    fx_cab_read(argv[1]);
    return Ok(std::to_string(activation->place->Cabinet(argv[1]).Size(argv[2])));
  });

  interp->Register("cab_contains", [activation, wrong_args, fx_cab_read](
                                       Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 4) {
      return wrong_args("cab_contains cabinet folder value");
    }
    fx_cab_read(argv[1]);
    return Ok(activation->place->Cabinet(argv[1]).ContainsString(argv[2], argv[3])
                  ? "1"
                  : "0");
  });

  interp->Register("cab_erase", [activation, wrong_args, fx_cab_write](
                                    Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 3) {
      return wrong_args("cab_erase cabinet folder");
    }
    fx_cab_write(argv[1]);
    return Ok(activation->place->Cabinet(argv[1]).EraseFolder(argv[2]) ? "1" : "0");
  });

  interp->Register("cab_folders", [activation, wrong_args, fx_cab_read](
                                      Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 2) {
      return wrong_args("cab_folders cabinet");
    }
    fx_cab_read(argv[1]);
    return Ok(tacl::FormatList(activation->place->Cabinet(argv[1]).FolderNames()));
  });

  interp->Register("cab_flush", [activation, wrong_args, fx_cab_write](
                                    Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 2) {
      return wrong_args("cab_flush cabinet");
    }
    fx_cab_write(argv[1]);
    Status s = activation->place->Cabinet(argv[1]).Flush();
    if (!s.ok()) {
      return Error(s.ToString());
    }
    if (Kernel* k = activation->place->kernel(); k->accounting_enabled()) {
      k->accounts().ChargeFlush(
          AccountKeyFor(activation->agent_id, *activation->briefcase));
    }
    return Ok();
  });

  // --- Meet and movement ------------------------------------------------------------

  // meet agent ?folderList? — "meet B with bc" (§2).  With no folder list
  // the whole current briefcase is the argument list.  With one, only the
  // named folders travel (the paper's briefcase-as-argument-list: "each
  // folder containing the value of one argument"); on return, everything in
  // the sub-briefcase — including folders the met agent added — merges back.
  interp->Register("meet", [activation, guard, wrong_args, fx_agent,
                            fx_folder_read, fx_folder_write](
                               Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2 && argv.size() != 3) {
      return wrong_args("meet agent ?folderList?");
    }
    fx_agent(argv[1]);
    if (argv.size() == 2) {
      Status s = activation->place->Meet(argv[1], *activation->briefcase);
      if (!s.ok()) {
        return Error("meet " + argv[1] + ": " + s.ToString());
      }
      return Ok();
    }

    auto names = tacl::ParseList(argv[2]);
    if (!names.ok()) {
      return Error("meet: bad folder list: " + std::string(names.status().message()));
    }
    for (const std::string& name : *names) {
      fx_folder_read(name);
      fx_folder_write(name);
    }
    Briefcase& main = *activation->briefcase;
    Briefcase args_bc;
    for (const std::string& name : *names) {
      args_bc.Adopt(main, name);  // Missing folders simply aren't passed.
    }
    Status s = activation->place->Meet(argv[1], args_bc);
    // Merge everything back whether or not the meet succeeded — the caller
    // must not lose its folders to a failed meet.
    for (const std::string& name : args_bc.FolderNames()) {
      main.Adopt(args_bc, name);
    }
    if (!s.ok()) {
      return Error("meet " + argv[1] + ": " + s.ToString());
    }
    return Ok();
  });

  // move host ?contact? — ship the briefcase via rexec; this activation's
  // state is gone afterwards.
  interp->Register("move", [activation, guard, wrong_args, fx_host](
                               Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2 && argv.size() != 3) {
      return wrong_args("move host ?contact?");
    }
    fx_host(argv[1]);
    if (auto* fx = activation->effects) {
      ++fx->hops;
    }
    Briefcase& bc = *activation->briefcase;
    bc.SetString(kHostFolder, argv[1]);
    bc.SetString(kContactFolder, argv.size() == 3 ? argv[2] : "ag_tacl");
    Status s = activation->place->Meet("rexec", bc);
    if (!s.ok()) {
      bc.Remove(kHostFolder);
      bc.Remove(kContactFolder);
      return Error("move: " + s.ToString());
    }
    activation->departed = true;
    return Outcome{tacl::Code::kReturn, ""};
  });

  // jump host — push this activation's own code back into CODE and move, so
  // the same program restarts at the destination (the classic TACOMA
  // itinerary pattern: briefcase state decides the phase).
  interp->Register("jump", [activation, guard, wrong_args, fx_host](
                               Interp& in, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("jump host");
    }
    fx_host(argv[1]);
    if (auto* fx = activation->effects) {
      ++fx->hops;
    }
    Briefcase& bc = *activation->briefcase;
    bc.folder(kCodeFolder).PushFrontString(activation->code);
    bc.SetString(kHostFolder, argv[1]);
    bc.SetString(kContactFolder, "ag_tacl");
    Status s = activation->place->Meet("rexec", bc);
    if (!s.ok()) {
      bc.folder(kCodeFolder).PopFront();
      bc.Remove(kHostFolder);
      bc.Remove(kContactFolder);
      return Error("jump: " + s.ToString());
    }
    activation->departed = true;
    (void)in;
    return Outcome{tacl::Code::kReturn, ""};
  });

  // clone host — send a copy of this agent (code + briefcase) to `host`;
  // the local activation continues.
  interp->Register("clone", [activation, guard, wrong_args, fx_host](
                                Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("clone host");
    }
    fx_host(argv[1]);
    if (auto* fx = activation->effects) {
      ++fx->clones;
    }
    Kernel* kernel = activation->place->kernel();
    auto destination = kernel->net().FindSite(argv[1]);
    if (!destination.has_value()) {
      return Error("clone: unknown site \"" + argv[1] + "\"");
    }
    Briefcase copy = *activation->briefcase;
    copy.folder(kCodeFolder).PushFrontString(activation->code);
    // clone ships directly (no rexec hop), so honor the same RELIABLE /
    // DEADLETTER briefcase folders rexec would.
    auto transfer_options = TransferOptionsFromBriefcase(copy);
    if (!transfer_options.ok()) {
      return Error("clone: " + transfer_options.status().message());
    }
    Status s = kernel->TransferAgent(activation->place->site(), *destination, "ag_tacl",
                                     copy, *transfer_options);
    if (!s.ok()) {
      return Error("clone: " + s.ToString());
    }
    return Ok();
  });

  // send host agent folder — courier sugar: ship one briefcase folder to a
  // named agent on another site.
  interp->Register("send", [activation, guard, wrong_args, fx_host, fx_agent,
                            fx_folder_read](
                               Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 4) {
      return wrong_args("send host agent folder");
    }
    fx_host(argv[1]);
    fx_agent(argv[2]);
    fx_folder_read(argv[3]);
    Briefcase& bc = *activation->briefcase;
    bc.SetString(kHostFolder, argv[1]);
    bc.SetString(kContactFolder, argv[2]);
    bc.SetString("FOLDER", argv[3]);
    Status s = activation->place->Meet("courier", bc);
    bc.Remove(kHostFolder);
    bc.Remove(kContactFolder);
    bc.Remove("FOLDER");
    if (!s.ok()) {
      return Error("send: " + s.ToString());
    }
    return Ok();
  });

  // --- Introspection ------------------------------------------------------------------

  interp->Register("site", [activation](Interp&, const std::vector<std::string>&) {
    return Ok(activation->place->name());
  });

  interp->Register("agent_id", [activation](Interp&, const std::vector<std::string>&) {
    return Ok(activation->agent_id);
  });

  interp->Register("self_code", [activation](Interp&, const std::vector<std::string>&) {
    return Ok(activation->code);
  });

  interp->Register("now_us", [activation](Interp&, const std::vector<std::string>&) {
    return Ok(std::to_string(activation->place->kernel()->sim().Now()));
  });

  interp->Register("agents", [activation](Interp&, const std::vector<std::string>&) {
    return Ok(tacl::FormatList(activation->place->AgentNames()));
  });

  interp->Register("log", [activation, wrong_args](
                              Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 2) {
      return wrong_args("log message");
    }
    activation->place->EmitAgentOutput(argv[1]);
    return Ok();
  });

  // detach delay_us script — schedule `script` to run later as a fresh
  // activation at this place, with a snapshot of the current briefcase.
  // This is how "B may continue executing concurrently with A" after
  // terminating a meet (§2): the meet returns now; the continuation runs as
  // its own event.  The continuation dies with the place (generation check).
  interp->Register("detach", [activation, wrong_args](
                                 Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 3) {
      return wrong_args("detach delay_us script");
    }
    auto delay = tacl::ParseInt(argv[1]);
    if (!delay.has_value() || *delay < 0) {
      return Error("bad delay \"" + argv[1] + "\"");
    }
    Place* place = activation->place;
    Kernel* kernel = place->kernel();
    SiteId site = place->site();
    uint64_t generation = place->generation();
    std::string script = argv[2];
    std::string agent_id = activation->agent_id + ".detached";
    SharedBytes snapshot = activation->briefcase->Serialize();
    kernel->sim().After(static_cast<SimTime>(*delay),
                        [kernel, site, generation, script, agent_id, snapshot] {
                          if (!kernel->PlaceAlive(site, generation)) {
                            return;  // The place died; so did its agents.
                          }
                          auto bc = Briefcase::Deserialize(snapshot);
                          if (!bc.ok()) {
                            return;
                          }
                          Briefcase briefcase = std::move(bc).value();
                          (void)kernel->place(site)->RunAgentCode(script, briefcase,
                                                                  agent_id);
                        });
    return Ok();
  });

  interp->Register("rng_uniform", [activation, wrong_args](
                                      Interp&, const std::vector<std::string>& argv) {
    if (argv.size() != 2) {
      return wrong_args("rng_uniform bound");
    }
    auto bound = tacl::ParseInt(argv[1]);
    if (!bound.has_value() || *bound <= 0) {
      return Error("bad bound \"" + argv[1] + "\"");
    }
    return Ok(std::to_string(
        activation->place->rng().Uniform(static_cast<uint64_t>(*bound))));
  });

  // --- ECU spending -------------------------------------------------------------
  //
  // The briefcase's WALLET folder holds the agent's spendable balance (an
  // integer of ECUs).  `pay amount payee` debits it and records the transfer
  // in SPENT; `withdraw amount` debits and returns the amount (cash in hand).
  // Both are the spend events the analyzer bounds: the amount operand is what
  // static analysis reads, so the effect record logs the same quantity.

  // Successful debits are also metered in the kernel's resource ledger: ECU
  // spend is a resource like bytes or steps, and the flight recorder's top-K
  // should surface an agent burning cash as readily as one flooding the wire.
  auto charge_spend = [activation](int64_t amount) {
    if (Kernel* k = activation->place->kernel(); k->accounting_enabled()) {
      k->accounts().ChargeSpend(
          AccountKeyFor(activation->agent_id, *activation->briefcase),
          static_cast<uint64_t>(amount));
    }
  };

  auto debit_wallet = [activation](int64_t amount) -> Result<int64_t> {
    auto balance_str = activation->briefcase->GetString("WALLET");
    if (!balance_str.has_value()) {
      return FailedPreconditionError("no WALLET folder in briefcase");
    }
    auto balance = tacl::ParseInt(*balance_str);
    if (!balance.has_value()) {
      return FailedPreconditionError("WALLET holds a non-numeric balance");
    }
    if (*balance < amount) {
      return FailedPreconditionError("insufficient funds: balance " +
                                     *balance_str + ", need " +
                                     std::to_string(amount));
    }
    int64_t remaining = *balance - amount;
    activation->briefcase->SetString("WALLET", std::to_string(remaining));
    return remaining;
  };

  interp->Register("pay", [activation, guard, wrong_args, debit_wallet,
                           charge_spend](
                              Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 3) {
      return wrong_args("pay amount payee");
    }
    auto amount = tacl::ParseInt(argv[1]);
    if (!amount.has_value() || *amount <= 0) {
      return Error("bad amount \"" + argv[1] + "\"");
    }
    if (auto* fx = activation->effects) {
      fx->spend += *amount;
    }
    auto remaining = debit_wallet(*amount);
    if (!remaining.ok()) {
      return Error("pay: " + remaining.status().message());
    }
    charge_spend(*amount);
    activation->briefcase->folder("SPENT").PushBackString(argv[2] + " " + argv[1]);
    return Ok(std::to_string(*remaining));
  });

  interp->Register("withdraw", [activation, guard, wrong_args, debit_wallet,
                                charge_spend](
                                   Interp&, const std::vector<std::string>& argv) {
    if (auto g = guard()) {
      return *g;
    }
    if (argv.size() != 2) {
      return wrong_args("withdraw amount");
    }
    auto amount = tacl::ParseInt(argv[1]);
    if (!amount.has_value() || *amount <= 0) {
      return Error("bad amount \"" + argv[1] + "\"");
    }
    if (auto* fx = activation->effects) {
      fx->spend += *amount;
    }
    auto remaining = debit_wallet(*amount);
    if (!remaining.ok()) {
      return Error("withdraw: " + remaining.status().message());
    }
    charge_spend(*amount);
    return Ok(argv[1]);
  });
}

}  // namespace tacoma
