#include "core/briefcase.h"

namespace tacoma {
namespace {

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

const Folder* Briefcase::Find(const std::string& name) const {
  auto it = folders_.find(name);
  return it == folders_.end() ? nullptr : &it->second;
}

Folder* Briefcase::Find(const std::string& name) {
  auto it = folders_.find(name);
  return it == folders_.end() ? nullptr : &it->second;
}

std::vector<std::string> Briefcase::FolderNames() const {
  std::vector<std::string> names;
  names.reserve(folders_.size());
  for (const auto& [name, f] : folders_) {
    names.push_back(name);
  }
  return names;
}

void Briefcase::SetString(const std::string& name, std::string_view value) {
  Folder& f = folders_[name];
  f.Clear();
  f.PushBackString(value);
}

std::optional<std::string> Briefcase::GetString(const std::string& name) const {
  const Folder* f = Find(name);
  if (f == nullptr) {
    return std::nullopt;
  }
  return f->FrontString();
}

bool Briefcase::Adopt(Briefcase& from, const std::string& name) {
  auto it = from.folders_.find(name);
  if (it == from.folders_.end()) {
    return false;
  }
  folders_[name] = std::move(it->second);
  from.folders_.erase(it);
  return true;
}

void Briefcase::Encode(Encoder* enc) const {
  enc->PutVarint(folders_.size());
  for (const auto& [name, f] : folders_) {
    enc->PutString(name);
    f.Encode(enc);
  }
}

Result<Briefcase> Briefcase::Decode(Decoder* dec) {
  uint64_t count = 0;
  if (!dec->GetVarint(&count)) {
    return DataLossError("briefcase: bad folder count");
  }
  Briefcase out;
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (!dec->GetString(&name)) {
      return DataLossError("briefcase: truncated folder name");
    }
    auto f = Folder::Decode(dec);
    if (!f.ok()) {
      return f.status();
    }
    out.folders_[name] = std::move(f).value();
  }
  return out;
}

Bytes Briefcase::Serialize() const {
  Encoder enc;
  enc.Reserve(ByteSize());
  Encode(&enc);
  return enc.Take();
}

namespace {

Result<Briefcase> DecodeWhole(Decoder* dec) {
  auto bc = Briefcase::Decode(dec);
  if (!bc.ok()) {
    return bc.status();
  }
  if (!dec->Done()) {
    return DataLossError("briefcase: trailing bytes");
  }
  return bc;
}

}  // namespace

Result<Briefcase> Briefcase::Deserialize(BytesView data) {
  Decoder dec(data.data(), data.size());
  return DecodeWhole(&dec);
}

Result<Briefcase> Briefcase::Deserialize(const SharedBytes& data) {
  Decoder dec(data);
  return DecodeWhole(&dec);
}

size_t Briefcase::ByteSize() const {
  size_t total = VarintSize(folders_.size());
  for (const auto& [name, f] : folders_) {
    total += VarintSize(name.size()) + name.size() + f.ByteSize();
  }
  return total;
}

}  // namespace tacoma
