// Briefcase — the collection of named folders that accompanies an agent (§2).
//
// "The meet operation is analogous to a procedure call, and the specified
// briefcase is analogous to an argument list (with each folder containing the
// value of one argument)."
//
// The briefcase is the ONLY state that travels when an agent moves: TACOMA
// restarts agent code at each site rather than migrating interpreter stacks,
// so everything an agent needs to remember must be in here.
#ifndef TACOMA_CORE_BRIEFCASE_H_
#define TACOMA_CORE_BRIEFCASE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/folder.h"

namespace tacoma {

// Well-known folder names from the paper.
inline constexpr char kCodeFolder[] = "CODE";
inline constexpr char kHostFolder[] = "HOST";
inline constexpr char kContactFolder[] = "CONTACT";
inline constexpr char kSitesFolder[] = "SITES";

class Briefcase {
 public:
  Briefcase() = default;

  // Returns the named folder, creating it when absent.
  Folder& folder(const std::string& name) { return folders_[name]; }
  // Returns the named folder or nullptr.
  const Folder* Find(const std::string& name) const;
  Folder* Find(const std::string& name);

  bool Has(const std::string& name) const { return folders_.contains(name); }
  bool Remove(const std::string& name) { return folders_.erase(name) > 0; }
  void Clear() { folders_.clear(); }

  std::vector<std::string> FolderNames() const;
  size_t folder_count() const { return folders_.size(); }

  // Single-value conveniences: a folder holding exactly one string element is
  // the idiom for scalar "arguments" (e.g. HOST, CONTACT).
  void SetString(const std::string& name, std::string_view value);
  std::optional<std::string> GetString(const std::string& name) const;

  // Moves `name` from `from` into this briefcase (overwrites).  Returns false
  // if `from` has no such folder.
  bool Adopt(Briefcase& from, const std::string& name);

  // --- Wire format ----------------------------------------------------------

  Bytes Serialize() const;
  static Result<Briefcase> Deserialize(BytesView data);
  // Exact match for plain buffers (Bytes converts to BytesView and
  // SharedBytes alike, which would otherwise be ambiguous).
  static Result<Briefcase> Deserialize(const Bytes& data) {
    return Deserialize(BytesView(data));
  }
  // Deserializing from a shared frame keeps folder elements as views into
  // the frame's allocation (zero-copy receive).
  static Result<Briefcase> Deserialize(const SharedBytes& data);
  void Encode(Encoder* enc) const;
  static Result<Briefcase> Decode(Decoder* dec);
  size_t ByteSize() const;

  friend bool operator==(const Briefcase& a, const Briefcase& b) {
    return a.folders_ == b.folders_;
  }

 private:
  std::map<std::string, Folder> folders_;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_BRIEFCASE_H_
