#include "core/cabinet.h"

#include <algorithm>

#include "serial/encoder.h"

namespace tacoma {

// --- Primitive mutations (shared by public ops and log replay) ------------------

void FileCabinet::ApplyAppend(const std::string& folder, Bytes element) {
  FolderData& f = folders_[folder];
  f.index[ToString(element)] += 1;
  f.elements.push_back(std::move(element));
}

void FileCabinet::ApplySet(const std::string& folder, Bytes element) {
  FolderData& f = folders_[folder];
  f.elements.clear();
  f.index.clear();
  f.index[ToString(element)] = 1;
  f.elements.push_back(std::move(element));
}

bool FileCabinet::ApplyEraseFolder(const std::string& folder) {
  return folders_.erase(folder) > 0;
}

bool FileCabinet::ApplyEraseElement(const std::string& folder, const Bytes& element) {
  auto it = folders_.find(folder);
  if (it == folders_.end()) {
    return false;
  }
  auto& elements = it->second.elements;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (elements[i] == element) {
      auto idx = it->second.index.find(ToString(element));
      if (idx != it->second.index.end() && --idx->second == 0) {
        it->second.index.erase(idx);
      }
      elements.erase(elements.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

void FileCabinet::LogOp(Op op, const std::string& folder, const Bytes& element) {
  ++mutations_;
  if (log_ == nullptr || !write_ahead_) {
    return;
  }
  ++mutations_since_compact_;
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(op));
  enc.PutString(folder);
  enc.PutBytes(element);
  Status appended = log_->Append(enc.buffer());
  if (!appended.ok()) {
    // The mutation still applies in memory, but it is not durable: remember
    // the first failure (sticky) and surface it from the next Flush().
    if (storage_stats_ != nullptr) {
      ++storage_stats_->wal_append_errors;
    }
    if (wal_error_.ok()) {
      wal_error_ = std::move(appended);
    }
  }
}

void FileCabinet::MaybeAutoCompact() {
  if (log_ == nullptr || !write_ahead_ || compaction_threshold_ == 0 ||
      mutations_since_compact_ < compaction_threshold_) {
    return;
  }
  if (storage_stats_ != nullptr) {
    ++storage_stats_->autocompactions;
  }
  Status compacted = log_->Compact(Serialize());
  // Nothing is lost on failure — the write-ahead records are still in the
  // log, recovery just replays more of them.  Reset the counter either way
  // so a failing disk is retried a full threshold later, not every mutation.
  mutations_since_compact_ = 0;
  (void)compacted;
}

// --- Public operations -----------------------------------------------------------

void FileCabinet::Append(const std::string& folder, Bytes element) {
  LogOp(Op::kAppend, folder, element);
  ApplyAppend(folder, std::move(element));
  MaybeAutoCompact();
}

void FileCabinet::AppendString(const std::string& folder, std::string_view element) {
  Append(folder, ToBytes(element));
}

void FileCabinet::Set(const std::string& folder, Bytes element) {
  LogOp(Op::kSet, folder, element);
  ApplySet(folder, std::move(element));
  MaybeAutoCompact();
}

void FileCabinet::SetString(const std::string& folder, std::string_view element) {
  Set(folder, ToBytes(element));
}

bool FileCabinet::Contains(const std::string& folder, const Bytes& element) const {
  auto it = folders_.find(folder);
  if (it == folders_.end()) {
    return false;
  }
  return it->second.index.contains(ToString(element));
}

bool FileCabinet::ContainsString(const std::string& folder,
                                 std::string_view element) const {
  return Contains(folder, ToBytes(element));
}

std::vector<Bytes> FileCabinet::List(const std::string& folder) const {
  auto it = folders_.find(folder);
  if (it == folders_.end()) {
    return {};
  }
  return it->second.elements;
}

std::vector<std::string> FileCabinet::ListStrings(const std::string& folder) const {
  std::vector<std::string> out;
  auto it = folders_.find(folder);
  if (it == folders_.end()) {
    return out;
  }
  out.reserve(it->second.elements.size());
  for (const Bytes& e : it->second.elements) {
    out.push_back(ToString(e));
  }
  return out;
}

std::optional<Bytes> FileCabinet::Get(const std::string& folder, size_t index) const {
  auto it = folders_.find(folder);
  if (it == folders_.end() || index >= it->second.elements.size()) {
    return std::nullopt;
  }
  return it->second.elements[index];
}

std::optional<std::string> FileCabinet::GetSingleString(const std::string& folder) const {
  auto e = Get(folder, 0);
  if (!e.has_value()) {
    return std::nullopt;
  }
  return ToString(*e);
}

size_t FileCabinet::Size(const std::string& folder) const {
  auto it = folders_.find(folder);
  return it == folders_.end() ? 0 : it->second.elements.size();
}

bool FileCabinet::HasFolder(const std::string& folder) const {
  return folders_.contains(folder);
}

bool FileCabinet::EraseFolder(const std::string& folder) {
  LogOp(Op::kEraseFolder, folder, Bytes());
  bool erased = ApplyEraseFolder(folder);
  MaybeAutoCompact();
  return erased;
}

bool FileCabinet::EraseElement(const std::string& folder, const Bytes& element) {
  LogOp(Op::kEraseElement, folder, element);
  bool erased = ApplyEraseElement(folder, element);
  MaybeAutoCompact();
  return erased;
}

std::vector<std::string> FileCabinet::FolderNames() const {
  std::vector<std::string> names;
  names.reserve(folders_.size());
  for (const auto& [name, f] : folders_) {
    names.push_back(name);
  }
  return names;
}

// --- Persistence --------------------------------------------------------------------

void FileCabinet::AttachStorage(std::unique_ptr<DiskLog> log, bool write_ahead) {
  log_ = std::move(log);
  write_ahead_ = write_ahead;
}

Status FileCabinet::Flush() {
  if (log_ == nullptr) {
    return FailedPreconditionError("cabinet " + name_ + " has no storage attached");
  }
  TACOMA_RETURN_IF_ERROR(log_->Compact(Serialize()));
  mutations_since_compact_ = 0;
  if (!wal_error_.ok()) {
    // The compaction just made the full state durable again, but write-ahead
    // records were lost in the interim: a crash inside that window would have
    // dropped mutations.  Report the window once, then clear it.
    Status window = std::move(wal_error_);
    wal_error_ = OkStatus();
    return DataLossError("cabinet " + name_ +
                         ": write-ahead appends failed since last flush "
                         "(state is durable again as of this flush): " +
                         window.ToString());
  }
  return OkStatus();
}

Status FileCabinet::Recover() {
  if (log_ == nullptr) {
    return FailedPreconditionError("cabinet " + name_ + " has no storage attached");
  }
  auto contents = log_->Load();
  if (!contents.ok()) {
    return contents.status();
  }
  folders_.clear();
  if (!contents->snapshot.empty()) {
    TACOMA_RETURN_IF_ERROR(RestoreFrom(contents->snapshot));
  }
  for (const Bytes& record : contents->records) {
    TACOMA_RETURN_IF_ERROR(Replay(record));
  }
  wal_error_ = OkStatus();
  mutations_since_compact_ = contents->records.size();
  if (storage_stats_ != nullptr) {
    ++storage_stats_->recoveries;
    storage_stats_->torn_tails += contents->truncated_tail ? 1 : 0;
    storage_stats_->records_replayed += contents->records.size();
    storage_stats_->stale_records_dropped += contents->stale_records_dropped;
  }
  return OkStatus();
}

Status FileCabinet::Replay(const Bytes& record) {
  Decoder dec(record);
  uint8_t op = 0;
  std::string folder;
  Bytes element;
  if (!dec.GetU8(&op) || !dec.GetString(&folder) || !dec.GetBytes(&element)) {
    return DataLossError("cabinet " + name_ + ": corrupt log record");
  }
  switch (static_cast<Op>(op)) {
    case Op::kAppend:
      ApplyAppend(folder, std::move(element));
      return OkStatus();
    case Op::kSet:
      ApplySet(folder, std::move(element));
      return OkStatus();
    case Op::kEraseFolder:
      ApplyEraseFolder(folder);
      return OkStatus();
    case Op::kEraseElement:
      ApplyEraseElement(folder, element);
      return OkStatus();
  }
  return DataLossError("cabinet " + name_ + ": unknown log op");
}

Bytes FileCabinet::Serialize() const {
  Encoder enc;
  enc.PutVarint(folders_.size());
  // Deterministic order: sort names (unordered_map iteration order is not).
  std::vector<std::string> names = FolderNames();
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const FolderData& f = folders_.at(name);
    enc.PutString(name);
    enc.PutVarint(f.elements.size());
    for (const Bytes& e : f.elements) {
      enc.PutBytes(e);
    }
  }
  return enc.Take();
}

Status FileCabinet::RestoreFrom(const Bytes& data) {
  Decoder dec(data);
  uint64_t folder_count = 0;
  if (!dec.GetVarint(&folder_count)) {
    return DataLossError("cabinet " + name_ + ": bad folder count");
  }
  folders_.clear();
  for (uint64_t i = 0; i < folder_count; ++i) {
    std::string fname;
    uint64_t elem_count = 0;
    if (!dec.GetString(&fname) || !dec.GetVarint(&elem_count)) {
      return DataLossError("cabinet " + name_ + ": truncated folder");
    }
    for (uint64_t k = 0; k < elem_count; ++k) {
      Bytes e;
      if (!dec.GetBytes(&e)) {
        return DataLossError("cabinet " + name_ + ": truncated element");
      }
      ApplyAppend(fname, std::move(e));
    }
  }
  return OkStatus();
}

}  // namespace tacoma
