// FileCabinet — site-local grouped folders (§2).
//
// "File cabinets support the same operations as briefcases, but ... since it
// is rare to move a file cabinet from site to site, file cabinets can be
// implemented using techniques that optimize access times even if this
// increases the cost of moving the file cabinet."
//
// Concretely: cabinet folders keep a hash index over their elements, so
// membership tests (the hot operation in the paper's flooding example —
// "has this site been visited?") are O(1) instead of a folder's linear scan.
// Benchmark E3 measures exactly this trade-off.
//
// Permanence (§6: "file cabinets can be flushed to disk when permanence is
// required") is explicit: Flush() snapshots to the attached DiskLog.  With
// write-ahead mode on, every mutation is also logged, which the rear-guard
// fault-tolerance machinery uses for checkpoints.
#ifndef TACOMA_CORE_CABINET_H_
#define TACOMA_CORE_CABINET_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/disk_log.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

class FileCabinet {
 public:
  explicit FileCabinet(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- Folder operations ----------------------------------------------------

  void Append(const std::string& folder, Bytes element);
  void AppendString(const std::string& folder, std::string_view element);
  // Replaces the folder's contents with the single element.
  void Set(const std::string& folder, Bytes element);
  void SetString(const std::string& folder, std::string_view element);

  // O(1) membership test via the hash index.
  bool Contains(const std::string& folder, const Bytes& element) const;
  bool ContainsString(const std::string& folder, std::string_view element) const;

  std::vector<Bytes> List(const std::string& folder) const;
  std::vector<std::string> ListStrings(const std::string& folder) const;
  std::optional<Bytes> Get(const std::string& folder, size_t index) const;
  std::optional<std::string> GetSingleString(const std::string& folder) const;
  size_t Size(const std::string& folder) const;
  bool HasFolder(const std::string& folder) const;
  bool EraseFolder(const std::string& folder);
  // Removes the first element equal to `element`; false if absent.
  bool EraseElement(const std::string& folder, const Bytes& element);
  std::vector<std::string> FolderNames() const;

  // --- Persistence -------------------------------------------------------------

  // Attaches backing storage.  `write_ahead` logs every mutation so that the
  // cabinet survives a crash without explicit flushes (used for rear-guard
  // checkpoints); otherwise only Flush() makes state durable.
  void AttachStorage(std::unique_ptr<DiskLog> log, bool write_ahead = false);
  bool HasStorage() const { return log_ != nullptr; }

  // Storage-layer accounting sink (owned by the kernel, shared across
  // cabinets).  Recoveries, replayed records, torn tails, and lost WAL
  // appends are counted into it.
  void set_storage_stats(StorageStats* stats) { storage_stats_ = stats; }
  // With write-ahead logging, compact (snapshot + clear the log) once this
  // many mutations accumulate since the last compaction (0 = only explicit
  // Flush).  Bounds how much log a recovery has to replay.
  void set_compaction_threshold(uint64_t mutations) {
    compaction_threshold_ = mutations;
  }

  // Snapshots the full cabinet to storage.  If any write-ahead append failed
  // since the last flush, that loss is surfaced here (after compacting, so
  // the returned error means "state is durable again now, but there was a
  // window in which it was not").
  Status Flush();
  // Rebuilds in-memory state from storage (snapshot + logged mutations).
  Status Recover();

  // First write-ahead append failure since the last successful Flush().
  // Mutations are applied in memory regardless; this records that they were
  // not made durable.
  const Status& wal_error() const { return wal_error_; }

  // --- Whole-cabinet serialization (used by Flush and by tests) ------------------

  Bytes Serialize() const;
  Status RestoreFrom(const Bytes& data);

  uint64_t mutations() const { return mutations_; }

 private:
  struct FolderData {
    std::vector<Bytes> elements;
    // Exact element -> occurrence count: O(1) membership with no confirming
    // scan (the access-time structure the paper permits cabinets).
    std::unordered_map<std::string, uint32_t> index;
  };

  enum class Op : uint8_t { kAppend = 1, kSet = 2, kEraseFolder = 3, kEraseElement = 4 };

  void ApplyAppend(const std::string& folder, Bytes element);
  void ApplySet(const std::string& folder, Bytes element);
  bool ApplyEraseFolder(const std::string& folder);
  bool ApplyEraseElement(const std::string& folder, const Bytes& element);
  void LogOp(Op op, const std::string& folder, const Bytes& element);
  // Compacts when the write-ahead log has grown past the threshold.  Called
  // after a mutation is applied, so the snapshot includes it.
  void MaybeAutoCompact();
  Status Replay(const Bytes& record);

  std::string name_;
  std::unordered_map<std::string, FolderData> folders_;
  std::unique_ptr<DiskLog> log_;
  bool write_ahead_ = false;
  uint64_t mutations_ = 0;
  uint64_t mutations_since_compact_ = 0;
  uint64_t compaction_threshold_ = 0;
  Status wal_error_;
  StorageStats* storage_stats_ = nullptr;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_CABINET_H_
