// FileCabinet — site-local grouped folders (§2).
//
// "File cabinets support the same operations as briefcases, but ... since it
// is rare to move a file cabinet from site to site, file cabinets can be
// implemented using techniques that optimize access times even if this
// increases the cost of moving the file cabinet."
//
// Concretely: cabinet folders keep a hash index over their elements, so
// membership tests (the hot operation in the paper's flooding example —
// "has this site been visited?") are O(1) instead of a folder's linear scan.
// Benchmark E3 measures exactly this trade-off.
//
// Permanence (§6: "file cabinets can be flushed to disk when permanence is
// required") is explicit: Flush() snapshots to the attached DiskLog.  With
// write-ahead mode on, every mutation is also logged, which the rear-guard
// fault-tolerance machinery uses for checkpoints.
#ifndef TACOMA_CORE_CABINET_H_
#define TACOMA_CORE_CABINET_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/disk_log.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

class FileCabinet {
 public:
  explicit FileCabinet(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- Folder operations ----------------------------------------------------

  void Append(const std::string& folder, Bytes element);
  void AppendString(const std::string& folder, std::string_view element);
  // Replaces the folder's contents with the single element.
  void Set(const std::string& folder, Bytes element);
  void SetString(const std::string& folder, std::string_view element);

  // O(1) membership test via the hash index.
  bool Contains(const std::string& folder, const Bytes& element) const;
  bool ContainsString(const std::string& folder, std::string_view element) const;

  std::vector<Bytes> List(const std::string& folder) const;
  std::vector<std::string> ListStrings(const std::string& folder) const;
  std::optional<Bytes> Get(const std::string& folder, size_t index) const;
  std::optional<std::string> GetSingleString(const std::string& folder) const;
  size_t Size(const std::string& folder) const;
  bool HasFolder(const std::string& folder) const;
  bool EraseFolder(const std::string& folder);
  // Removes the first element equal to `element`; false if absent.
  bool EraseElement(const std::string& folder, const Bytes& element);
  std::vector<std::string> FolderNames() const;

  // --- Persistence -------------------------------------------------------------

  // Attaches backing storage.  `write_ahead` logs every mutation so that the
  // cabinet survives a crash without explicit flushes (used for rear-guard
  // checkpoints); otherwise only Flush() makes state durable.
  void AttachStorage(std::unique_ptr<DiskLog> log, bool write_ahead = false);
  bool HasStorage() const { return log_ != nullptr; }

  // Snapshots the full cabinet to storage.
  Status Flush();
  // Rebuilds in-memory state from storage (snapshot + logged mutations).
  Status Recover();

  // --- Whole-cabinet serialization (used by Flush and by tests) ------------------

  Bytes Serialize() const;
  Status RestoreFrom(const Bytes& data);

  uint64_t mutations() const { return mutations_; }

 private:
  struct FolderData {
    std::vector<Bytes> elements;
    // Exact element -> occurrence count: O(1) membership with no confirming
    // scan (the access-time structure the paper permits cabinets).
    std::unordered_map<std::string, uint32_t> index;
  };

  enum class Op : uint8_t { kAppend = 1, kSet = 2, kEraseFolder = 3, kEraseElement = 4 };

  void ApplyAppend(const std::string& folder, Bytes element);
  void ApplySet(const std::string& folder, Bytes element);
  bool ApplyEraseFolder(const std::string& folder);
  bool ApplyEraseElement(const std::string& folder, const Bytes& element);
  void LogOp(Op op, const std::string& folder, const Bytes& element);
  Status Replay(const Bytes& record);

  std::string name_;
  std::unordered_map<std::string, FolderData> folders_;
  std::unique_ptr<DiskLog> log_;
  bool write_ahead_ = false;
  uint64_t mutations_ = 0;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_CABINET_H_
