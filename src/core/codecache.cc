#include "core/codecache.h"

#include "crypto/sha256.h"
#include "serial/encoder.h"

namespace tacoma {

CodeCache::CodeCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), units_(capacity_) {}

std::string CodeCache::DigestOf(const Folder& code) {
  Encoder enc;
  code.Encode(&enc);
  return DigestToHex(Sha256::Hash(enc.buffer()));
}

void CodeCache::Put(const std::string& digest_hex, Folder code, SharedBytes encoded) {
  auto it = entries_.find(digest_hex);
  if (it != entries_.end()) {
    it->second.code = std::move(code);
    it->second.encoded = std::move(encoded);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(digest_hex);
  entries_[digest_hex] = Entry{std::move(code), std::move(encoded), lru_.begin()};
  ++stats_.inserts;
  EvictToCapacity();
}

const Folder* CodeCache::Get(const std::string& digest_hex) {
  auto it = entries_.find(digest_hex);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (DigestToHex(Sha256::Hash(it->second.encoded)) != digest_hex) {
    ++stats_.digest_mismatches;
    ++stats_.misses;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++stats_.hits;
  return &it->second.code;
}

void CodeCache::set_capacity(size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
  EvictToCapacity();
}

std::shared_ptr<const tacl::vm::CompiledUnit> CodeCache::GetUnit(
    const std::string& digest_hex) {
  if (auto* unit = units_.Get(digest_hex)) {
    ++unit_stats_.hits;
    return *unit;
  }
  ++unit_stats_.misses;
  return nullptr;
}

void CodeCache::PutUnit(const std::string& digest_hex,
                        std::shared_ptr<const tacl::vm::CompiledUnit> unit) {
  ++unit_stats_.inserts;
  units_.Put(digest_hex, std::move(unit));
}

void CodeCache::ClearUnits() { units_.Clear(); }

void CodeCache::EvictToCapacity() {
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace tacoma
