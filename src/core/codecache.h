// Content-addressed CODE cache (per Place).
//
// The paper's §2 requires folders to be "cheap to move", and for interpreted
// agents the CODE folder dwarfs the rest of the briefcase — yet it is the
// one part of an itinerary that rarely changes hop to hop.  Each Place keeps
// a small LRU cache of CODE-folder contents keyed by the SHA-256 digest of
// the folder's wire encoding.  Senders that believe the destination holds a
// digest ship a 32-byte stub instead of the source; receivers reconstruct
// the folder from this cache (see Kernel's transfer protocol and
// docs/performance.md).
//
// The cache is volatile site state: it dies with the Place on a crash, and
// the kernel invalidates every sender's beliefs about the site through the
// network's RestartHook.
#ifndef TACOMA_CORE_CODECACHE_H_
#define TACOMA_CORE_CODECACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "core/folder.h"
#include "tacl/vm/bytecode.h"
#include "util/bytes.h"
#include "util/lru.h"

namespace tacoma {

class CodeCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    // Get() found the key but the entry's content no longer hashed to it —
    // the entry is dropped and the lookup reported as a miss, so a corrupt
    // cache can never substitute wrong code for a stub.
    uint64_t digest_mismatches = 0;
  };

  explicit CodeCache(size_t capacity = 64);

  // Computes the cache key for a CODE folder: hex SHA-256 of its encoding.
  static std::string DigestOf(const Folder& code);

  // Inserts `code` (with its wire encoding, shared not copied) under
  // `digest_hex`, evicting the least-recently-used entry when full.  The
  // digest is taken on trust here — Get() verifies it — so tests can plant
  // corrupt entries and the kernel can insert without re-hashing.
  void Put(const std::string& digest_hex, Folder code, SharedBytes encoded);

  // Returns the cached folder and refreshes its LRU position, or nullptr on
  // miss.  Verifies the entry still hashes to its key; a mismatch evicts the
  // entry and counts as a miss (digest_mismatches).
  const Folder* Get(const std::string& digest_hex);

  bool Contains(const std::string& digest_hex) const {
    return entries_.contains(digest_hex);
  }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity);
  const Stats& stats() const { return stats_; }

  // --- Compiled-unit side cache -----------------------------------------------
  //
  // Warm hops skip the parse too: alongside the folder bytes, the place keeps
  // the CODE's compiled bytecode unit under the same SHA-256 digest key.  A
  // unit is immutable and interp-independent (inlining mismatches are caught
  // at run time by the interp's builtin epoch), so one compile serves every
  // later activation of the same code at this place.  Volatile like the rest
  // of the cache, and cleared whenever the place's command surface changes.

  struct UnitStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;  // LRU pressure on the unit side cache.
  };

  // Returns the cached unit (refreshing its LRU position) or nullptr.
  std::shared_ptr<const tacl::vm::CompiledUnit> GetUnit(const std::string& digest_hex);
  void PutUnit(const std::string& digest_hex,
               std::shared_ptr<const tacl::vm::CompiledUnit> unit);
  void ClearUnits();
  UnitStats unit_stats() const {
    UnitStats s = unit_stats_;
    s.evictions = units_.evictions();
    return s;
  }

 private:
  struct Entry {
    Folder code;
    SharedBytes encoded;  // The folder's wire encoding (what was hashed).
    std::list<std::string>::iterator lru_it;
  };

  void EvictToCapacity();

  size_t capacity_;
  std::list<std::string> lru_;  // Front = most recently used.
  std::map<std::string, Entry> entries_;
  Stats stats_;
  LruMap<std::shared_ptr<const tacl::vm::CompiledUnit>> units_;
  UnitStats unit_stats_;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_CODECACHE_H_
