// Flight recorder — the kernel's black box.
//
// When something goes wrong (a chaos invariant breaks, an error is logged, or
// a caller asks explicitly), the kernel freezes its observable state into one
// JSON document: the reason, the metrics snapshot, the tail of the trace
// buffer, the sampler's recent history, and the top-K resource ledger.  The
// dump is atomic (written to "<path>.tmp" and renamed) so a crash mid-dump
// never leaves a truncated artifact where CI expects parseable JSON.
//
// Everything in the record derives from simulated time and seeded
// randomness, so for a fixed seed the same failure produces a byte-identical
// black box — a flight record diff between two runs IS the nondeterminism.
#include <cstdio>

#include "core/kernel.h"
#include "sim/chaos.h"
#include "util/json.h"
#include "util/log.h"

namespace tacoma {

std::string Kernel::FlightRecordJson(const std::string& reason) const {
  const TelemetryOptions& t = options_.telemetry;
  std::string out = "{\"reason\":\"" + JsonEscape(reason) + "\"";
  out += ",\"sim_time_us\":" + std::to_string(sim_.Now());
  out += ",\"seed\":" + std::to_string(options_.seed);
  out += ",\"dumps\":" + std::to_string(flight_dumps_);
  out += ",\"accounts\":" + accounts_.JsonSnapshot(t.flight_top_k);
  out += ",\"sampler\":" + sampler_.JsonHistory(t.flight_series_tail);
  out += ",\"metrics\":" + metrics_.JsonSnapshot();
  out += ",\"trace\":{\"recorded\":" + std::to_string(trace_.recorded()) +
         ",\"dropped\":" + std::to_string(trace_.dropped()) + ",\"events\":[";
  const std::deque<TraceEvent>& events = trace_.events();
  size_t start = 0;
  if (t.flight_trace_tail > 0 && events.size() > t.flight_trace_tail) {
    start = events.size() - t.flight_trace_tail;
  }
  for (size_t i = start; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (i > start) {
      out += ',';
    }
    out += "{\"trace\":" + std::to_string(ev.trace_id) +
           ",\"span\":" + std::to_string(ev.span_id) +
           ",\"hop\":" + std::to_string(ev.hop) + ",\"name\":\"" +
           JsonEscape(ev.name) + "\",\"site\":\"" + JsonEscape(ev.site) +
           "\",\"ts\":" + std::to_string(ev.ts) + ",\"detail\":\"" +
           JsonEscape(ev.detail) + "\"}";
  }
  out += "]}}";
  return out;
}

Status Kernel::DumpFlightRecord(const std::string& path, const std::string& reason) {
  // Re-entrancy: assembling or writing a dump may itself TLOG_ERROR (which,
  // with flight_on_log_error, would recurse right back in here).  One dump at
  // a time; nested triggers are dropped, not queued.
  if (flight_dumping_) {
    return OkStatus();
  }
  const std::string target =
      path.empty() ? options_.telemetry.flight_path : path;
  if (target.empty()) {
    ++flight_dump_errors_;
    return InvalidArgumentError("no flight-record path configured");
  }
  flight_dumping_ = true;
  const std::string doc = FlightRecordJson(reason);
  const std::string tmp = target + ".tmp";
  Status result = OkStatus();
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    result = InternalError("flight record: cannot open " + tmp);
  } else {
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    int closed = std::fclose(f);
    if (written != doc.size() || closed != 0) {
      result = InternalError("flight record: short write to " + tmp);
      std::remove(tmp.c_str());
    } else if (std::rename(tmp.c_str(), target.c_str()) != 0) {
      result = InternalError("flight record: cannot rename " + tmp);
      std::remove(tmp.c_str());
    }
  }
  if (result.ok()) {
    ++flight_dumps_;
    flight_last_dump_us_ = sim_.Now();
  } else {
    ++flight_dump_errors_;
  }
  flight_dumping_ = false;
  return result;
}

void Kernel::AttachFlightRecorder(ChaosHarness* harness, const std::string& path) {
  if (!path.empty()) {
    // Remember the override so later triggers (log hook, explicit dumps with
    // an empty path) target the same artifact.
    options_.telemetry.flight_path = path;
  }
  const std::string target = options_.telemetry.flight_path;
  if (harness != nullptr) {
    harness->SetViolationHook([this, target](const std::string& violation) {
      (void)DumpFlightRecord(target, "chaos.violation: " + violation);
    });
  }
  if (options_.telemetry.flight_on_log_error && log_hook_id_ == 0 &&
      !target.empty()) {
    log_hook_id_ = SetLogErrorHook([this, target](const std::string& message) {
      (void)DumpFlightRecord(target, "log.error: " + message);
    });
  }
}

}  // namespace tacoma
