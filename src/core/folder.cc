#include "core/folder.h"

namespace tacoma {
namespace {

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

std::optional<SharedBytes> Folder::PopFront() {
  if (elements_.empty()) {
    return std::nullopt;
  }
  SharedBytes out = std::move(elements_.front());
  elements_.pop_front();
  return out;
}

std::optional<SharedBytes> Folder::PopBack() {
  if (elements_.empty()) {
    return std::nullopt;
  }
  SharedBytes out = std::move(elements_.back());
  elements_.pop_back();
  return out;
}

std::optional<std::string> Folder::PopFrontString() {
  auto b = PopFront();
  if (!b.has_value()) {
    return std::nullopt;
  }
  return ToString(*b);
}

std::optional<std::string> Folder::PopBackString() {
  auto b = PopBack();
  if (!b.has_value()) {
    return std::nullopt;
  }
  return ToString(*b);
}

std::optional<std::string> Folder::FrontString() const {
  if (elements_.empty()) {
    return std::nullopt;
  }
  return ToString(elements_.front());
}

std::vector<std::string> Folder::AsStrings() const {
  std::vector<std::string> out;
  out.reserve(elements_.size());
  for (const SharedBytes& e : elements_) {
    out.push_back(ToString(e));
  }
  return out;
}

bool Folder::ContainsString(std::string_view s) const {
  for (const SharedBytes& e : elements_) {
    if (e.StringView() == s) {
      return true;
    }
  }
  return false;
}

void Folder::Encode(Encoder* enc) const {
  enc->Reserve(ByteSize());
  enc->PutVarint(elements_.size());
  for (const SharedBytes& e : elements_) {
    enc->PutBytes(e);
  }
}

Result<Folder> Folder::Decode(Decoder* dec) {
  uint64_t count = 0;
  if (!dec->GetVarint(&count)) {
    return DataLossError("folder: bad element count");
  }
  Folder out;
  for (uint64_t i = 0; i < count; ++i) {
    SharedBytes e;
    if (!dec->GetSharedBytes(&e)) {
      return DataLossError("folder: truncated element");
    }
    out.PushBack(std::move(e));
  }
  return out;
}

size_t Folder::ByteSize() const {
  size_t total = VarintSize(elements_.size());
  for (const SharedBytes& e : elements_) {
    total += VarintSize(e.size()) + e.size();
  }
  return total;
}

}  // namespace tacoma
