// Folder — the paper's fundamental data abstraction (§2).
//
// "A folder is a list of elements, each of which is an uninterpreted sequence
// of bits.  Because it is a list, it can be treated as a stack or a queue."
//
// Folders must be cheap to move between sites, so the in-memory form is a
// plain deque of byte strings and the wire form is a flat length-prefixed
// stream with no index structures (the paper calls this requirement out
// explicitly).  Site-local FileCabinets make the opposite trade-off.
//
// Elements are SharedBytes: copying a folder (briefcase copies on every
// rexec/diffusion hop, trace stamping, checkpointing) shares the payload
// bytes instead of deep-copying them, and a folder decoded from a shared
// frame views the frame's allocation directly.  Elements are immutable once
// pushed — mutation means pop + push, as the stack/queue model already
// dictates.
#ifndef TACOMA_CORE_FOLDER_H_
#define TACOMA_CORE_FOLDER_H_

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serial/encoder.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

class Folder {
 public:
  Folder() = default;

  // --- Stack / queue operations ------------------------------------------------

  void PushBack(SharedBytes element) { elements_.push_back(std::move(element)); }
  void PushFront(SharedBytes element) { elements_.push_front(std::move(element)); }
  void PushBack(Bytes element) { elements_.push_back(SharedBytes(std::move(element))); }
  void PushFront(Bytes element) {
    elements_.push_front(SharedBytes(std::move(element)));
  }
  std::optional<SharedBytes> PopFront();
  std::optional<SharedBytes> PopBack();
  const SharedBytes* Front() const {
    return elements_.empty() ? nullptr : &elements_.front();
  }
  const SharedBytes* Back() const {
    return elements_.empty() ? nullptr : &elements_.back();
  }

  // --- Inspection -----------------------------------------------------------------

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const SharedBytes& At(size_t i) const { return elements_[i]; }
  void Clear() { elements_.clear(); }

  auto begin() const { return elements_.begin(); }
  auto end() const { return elements_.end(); }

  // --- String conveniences (agents mostly traffic in text) -----------------------------

  void PushBackString(std::string_view s) { PushBack(ToBytes(s)); }
  void PushFrontString(std::string_view s) { PushFront(ToBytes(s)); }
  std::optional<std::string> PopFrontString();
  std::optional<std::string> PopBackString();
  // First element as a string, or nullopt when empty.
  std::optional<std::string> FrontString() const;
  std::vector<std::string> AsStrings() const;
  // True if any element equals `s` byte-for-byte (linear scan; folders are
  // deliberately unindexed).
  bool ContainsString(std::string_view s) const;

  // --- Wire format ----------------------------------------------------------------------

  void Encode(Encoder* enc) const;
  static Result<Folder> Decode(Decoder* dec);
  // Exact serialized size.
  size_t ByteSize() const;

  friend bool operator==(const Folder& a, const Folder& b) {
    return a.elements_ == b.elements_;
  }

 private:
  std::deque<SharedBytes> elements_;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_FOLDER_H_
