#include "core/kernel.h"

#include <algorithm>
#include <cstdlib>

#include "crypto/sha256.h"
#include "serial/encoder.h"
#include "util/log.h"

namespace tacoma {

namespace {

// Transfer frame kinds.  Every inter-site payload starts with one of these;
// anything else is a malformed transfer.
constexpr uint8_t kFrameData = 1;
constexpr uint8_t kFrameAck = 2;
constexpr uint8_t kFrameNack = 3;
// Receiver-to-sender: "your CODE_DIGEST stub missed my cache, send the full
// source" (carries only the transfer id).
constexpr uint8_t kFrameNeedCode = 4;

// DATA frame flags.
constexpr uint8_t kFlagWantAck = 1 << 0;  // Receiver must ack/nack.
constexpr uint8_t kFlagDedup = 1 << 1;    // Receiver records id for dedup.
// The CODE folder travels as a 32-byte SHA-256 digest (inserted between the
// contact string and the briefcase) instead of source; the briefcase that
// follows has no CODE folder.
constexpr uint8_t kFlagCodeStub = 1 << 2;

// Site-disk file holding the journaled dedup window: a flat sequence of
// (u32 sender, u64 transfer id) records.
constexpr char kDedupJournalFile[] = "xfer.dedup";

}  // namespace

CodeCacheOptions DefaultCodeCacheOptions() {
  CodeCacheOptions options;
  if (const char* env = std::getenv("TACOMA_CODE_CACHE")) {
    std::string value(env);
    options.enabled = value == "on" || value == "1" || value == "true";
  }
  return options;
}

const char* ToString(Reliability mode) {
  switch (mode) {
    case Reliability::kOff:
      return "off";
    case Reliability::kAtMostOnce:
      return "at-most-once";
    case Reliability::kReliable:
      return "reliable";
  }
  return "?";
}

std::optional<Reliability> ParseReliability(const std::string& value) {
  if (value == "off" || value == "none" || value == "0") {
    return Reliability::kOff;
  }
  if (value == "atmostonce" || value == "at-most-once" || value == "at_most_once") {
    return Reliability::kAtMostOnce;
  }
  if (value == "reliable" || value == "on" || value == "1") {
    return Reliability::kReliable;
  }
  return std::nullopt;
}

Result<TransferOptions> TransferOptionsFromBriefcase(const Briefcase& bc) {
  TransferOptions options;
  if (auto reliable = bc.GetString("RELIABLE")) {
    auto mode = ParseReliability(*reliable);
    if (!mode.has_value()) {
      return InvalidArgumentError("unknown RELIABLE mode \"" + *reliable +
                                  "\" (want off, at-most-once, or reliable)");
    }
    options.mode = mode;
  }
  if (auto dead_letter = bc.GetString("DEADLETTER")) {
    options.dead_letter = *dead_letter;
  }
  return options;
}

std::vector<std::string> DefaultSampledMetrics() {
  return {"kernel.transfers_sent",
          "kernel.transfers_delivered",
          "kernel.pending_transfers",
          "net.bytes_on_wire",
          "net.messages_lost",
          "place.activations",
          "place.meets",
          "account.bytes_sent",
          "account.eval_steps",
          "kernel.transfer_delivery_us.p99"};
}

Kernel::Kernel(KernelOptions options)
    : options_(options),
      net_(&sim_),
      rng_(options.seed),
      trace_(options.trace_capacity),
      accounts_(options.telemetry.ledger_capacity),
      sampler_(&metrics_, SamplerOptions{options.telemetry.sample_capacity}) {
  net_.set_loss_seed(rng_.Next());
  RegisterKernelMetrics();
  const std::vector<std::string>& tracked =
      options_.telemetry.sampled_metrics.empty()
          ? DefaultSampledMetrics()
          : options_.telemetry.sampled_metrics;
  for (const std::string& name : tracked) {
    sampler_.Track(name);
  }
  if (options_.telemetry.flight_on_log_error &&
      !options_.telemetry.flight_path.empty()) {
    log_hook_id_ = SetLogErrorHook([this](const std::string& message) {
      (void)DumpFlightRecord(options_.telemetry.flight_path,
                             "log.error: " + message);
    });
  }
  // Keep every place's site-local SITES folder (§2) in sync with topology.
  net_.SetTopologyHook([this](SiteId a, SiteId b) {
    for (SiteId site : {a, b}) {
      if (site < places_.size() && places_[site] != nullptr) {
        PopulateSitesFolder(*places_[site]);
      }
    }
  });
}

Kernel::~Kernel() {
  if (log_hook_id_ != 0) {
    ClearLogErrorHook(log_hook_id_);
  }
}

void Kernel::ScheduleSampling(SimTime until) {
  SimTime interval = options_.telemetry.sample_interval;
  if (interval == 0) {
    return;
  }
  // Pre-queued like the chaos schedule: a bounded set of ticks, so a
  // Simulator::Run after the horizon still drains the queue.
  for (SimTime t = sim_.Now() + interval; t <= until; t += interval) {
    sim_.At(t, [this] { SampleNow(); });
  }
}

void Kernel::ChargeWire(const AccountKey& key, SiteId from, SiteId to,
                        size_t frame_bytes, uint64_t hops) {
  if (!options_.telemetry.accounting) {
    return;
  }
  // Bill the whole planned route: the network counts bytes per link
  // traversed, so a 2-hop relay costs its agent twice the frame.  Routes can
  // change while the frame is in flight; bench_e15 gates the resulting
  // attribution error at ≤5% of bytes-on-wire.
  uint64_t links = static_cast<uint64_t>(
      std::max<size_t>(1, net_.HopCount(from, to).value_or(1)));
  accounts_.ChargeBytes(key, static_cast<uint64_t>(frame_bytes) * links, hops);
}

void Kernel::BillActivation(const AccountKey& key, Briefcase* bc) {
  if (!billing_ || !options_.telemetry.accounting) {
    return;
  }
  const ResourceAccount* account = accounts_.Find(key);
  if (account == nullptr) {
    return;
  }
  BillingOutcome outcome = billing_(key, *account, account->ecu_billed, bc);
  if (outcome.billed > 0 || outcome.shortfall > 0) {
    accounts_.ChargeBilled(key, outcome.billed, outcome.shortfall);
  }
}

void Kernel::RegisterKernelMetrics() {
  // The kernel's own transfer accounting, re-registered as pull-style probes
  // (the Stats struct stays the in-process API; the registry is the export).
  metrics_.AddProbe("kernel.transfers_sent", [this] { return stats_.transfers_sent; });
  metrics_.AddProbe("kernel.transfers_delivered",
                    [this] { return stats_.transfers_delivered; });
  metrics_.AddProbe("kernel.transfers_rejected",
                    [this] { return stats_.transfers_rejected; });
  metrics_.AddProbe("kernel.meets_failed_on_arrival",
                    [this] { return stats_.meets_failed_on_arrival; });
  metrics_.AddProbe("kernel.transfers_reliable",
                    [this] { return stats_.transfers_reliable; });
  metrics_.AddProbe("kernel.transfers_acked", [this] { return stats_.transfers_acked; });
  metrics_.AddProbe("kernel.transfers_nacked",
                    [this] { return stats_.transfers_nacked; });
  metrics_.AddProbe("kernel.transfers_expired",
                    [this] { return stats_.transfers_expired; });
  metrics_.AddProbe("kernel.transfers_abandoned",
                    [this] { return stats_.transfers_abandoned; });
  metrics_.AddProbe("kernel.retries_sent", [this] { return stats_.retries_sent; });
  metrics_.AddProbe("kernel.duplicates_suppressed",
                    [this] { return stats_.duplicates_suppressed; });
  metrics_.AddProbe("kernel.acks_sent", [this] { return stats_.acks_sent; });
  metrics_.AddProbe("kernel.nacks_sent", [this] { return stats_.nacks_sent; });
  metrics_.AddProbe("kernel.dead_letters_delivered",
                    [this] { return stats_.dead_letters_delivered; });
  metrics_.AddProbe("kernel.dead_letters_dropped",
                    [this] { return stats_.dead_letters_dropped; });
  metrics_.AddProbe("kernel.pending_transfers",
                    [this] { return static_cast<uint64_t>(pending_.size()); });

  // Network accounting.
  metrics_.AddProbe("net.messages_sent", [this] { return net_.stats().messages_sent; });
  metrics_.AddProbe("net.messages_delivered",
                    [this] { return net_.stats().messages_delivered; });
  metrics_.AddProbe("net.messages_dropped",
                    [this] { return net_.stats().messages_dropped; });
  metrics_.AddProbe("net.messages_lost", [this] { return net_.stats().messages_lost; });
  metrics_.AddProbe("net.link_traversals",
                    [this] { return net_.stats().link_traversals; });
  metrics_.AddProbe("net.bytes_on_wire", [this] { return net_.stats().bytes_on_wire; });

  // Transport-edge accounting (net/transport.h).  Under the sim backend
  // these mirror the message counters (connection counters stay zero);
  // under the TCP backend they count real sockets and wire bytes.
  metrics_.AddProbe("net.transport.frames_sent",
                    [this] { return transport_->transport_stats().frames_sent; });
  metrics_.AddProbe("net.transport.frames_delivered", [this] {
    return transport_->transport_stats().frames_delivered;
  });
  metrics_.AddProbe("net.transport.frames_dropped", [this] {
    return transport_->transport_stats().frames_dropped;
  });
  metrics_.AddProbe("net.transport.sends_rejected", [this] {
    return transport_->transport_stats().sends_rejected;
  });
  metrics_.AddProbe("net.transport.bytes_sent",
                    [this] { return transport_->transport_stats().bytes_sent; });
  metrics_.AddProbe("net.transport.bytes_received", [this] {
    return transport_->transport_stats().bytes_received;
  });
  metrics_.AddProbe("net.transport.connects",
                    [this] { return transport_->transport_stats().connects; });
  metrics_.AddProbe("net.transport.accepts",
                    [this] { return transport_->transport_stats().accepts; });
  metrics_.AddProbe("net.transport.disconnects",
                    [this] { return transport_->transport_stats().disconnects; });
  metrics_.AddProbe("net.transport.reconnects",
                    [this] { return transport_->transport_stats().reconnects; });

  // Per-place stats summed over live places (a crashed place's counters die
  // with it, like every other volatile state at the site).
  auto sum_places = [this](uint64_t Place::Stats::* field) {
    uint64_t total = 0;
    for (const auto& place : places_) {
      if (place != nullptr) {
        total += place->stats().*field;
      }
    }
    return total;
  };
  metrics_.AddProbe("place.meets",
                    [sum_places] { return sum_places(&Place::Stats::meets); });
  metrics_.AddProbe("place.failed_meets",
                    [sum_places] { return sum_places(&Place::Stats::failed_meets); });
  metrics_.AddProbe("place.activations",
                    [sum_places] { return sum_places(&Place::Stats::activations); });
  metrics_.AddProbe("place.failed_activations", [sum_places] {
    return sum_places(&Place::Stats::failed_activations);
  });
  metrics_.AddProbe("place.rejected_agents",
                    [sum_places] { return sum_places(&Place::Stats::rejected_agents); });
  metrics_.AddProbe("place.interp_steps",
                    [sum_places] { return sum_places(&Place::Stats::interp_steps); });
  metrics_.AddProbe("place.arrival_meet_failures", [sum_places] {
    return sum_places(&Place::Stats::arrival_meet_failures);
  });
  metrics_.AddProbe("place.admission_checks", [sum_places] {
    return sum_places(&Place::Stats::admission_checks);
  });
  metrics_.AddProbe("place.admission_policy_violations", [sum_places] {
    return sum_places(&Place::Stats::admission_policy_violations);
  });

  // Runtime-vs-static effect drift (the analyzer's continuous soundness
  // check) and the kernel-wide admission-summary cache.
  metrics_.AddProbe("tacl.manifest_violations", [sum_places] {
    return sum_places(&Place::Stats::manifest_violations);
  });
  metrics_.AddProbe("tacl.manifest_violations_static", [sum_places] {
    return sum_places(&Place::Stats::manifest_violations_static);
  });
  metrics_.AddProbe("tacl.manifest_cache_hits",
                    [this] { return admission_stats_.hits; });
  metrics_.AddProbe("tacl.manifest_cache_misses",
                    [this] { return admission_stats_.misses; });
  metrics_.AddProbe("tacl.manifest_cache_entries", [this] {
    return static_cast<uint64_t>(admission_cache_.size());
  });

  // Content-addressed CODE cache.  Registered unconditionally so snapshots
  // keep a stable key set whether or not the cache is enabled (all zero when
  // off).  Sender-side counters come from the kernel; receiver-side cache
  // health is summed over live places (a crashed place's cache — and its
  // counters — die with it, which is the point of the restart invalidation).
  metrics_.AddProbe("code_cache.stub_sends", [this] { return code_stats_.stub_sends; });
  metrics_.AddProbe("code_cache.full_sends", [this] { return code_stats_.full_sends; });
  metrics_.AddProbe("code_cache.bytes_saved", [this] { return code_stats_.bytes_saved; });
  metrics_.AddProbe("code_cache.need_code_sent",
                    [this] { return code_stats_.need_code_sent; });
  metrics_.AddProbe("code_cache.full_resends",
                    [this] { return code_stats_.full_resends; });
  metrics_.AddProbe("code_cache.invalidations",
                    [this] { return code_stats_.invalidations; });
  auto sum_caches = [this](uint64_t CodeCache::Stats::* field) {
    uint64_t total = 0;
    for (const auto& place : places_) {
      if (place != nullptr) {
        total += place->code_cache().stats().*field;
      }
    }
    return total;
  };
  metrics_.AddProbe("code_cache.hits",
                    [sum_caches] { return sum_caches(&CodeCache::Stats::hits); });
  metrics_.AddProbe("code_cache.misses",
                    [sum_caches] { return sum_caches(&CodeCache::Stats::misses); });
  metrics_.AddProbe("code_cache.evictions",
                    [sum_caches] { return sum_caches(&CodeCache::Stats::evictions); });
  metrics_.AddProbe("code_cache.digest_mismatches", [sum_caches] {
    return sum_caches(&CodeCache::Stats::digest_mismatches);
  });
  metrics_.AddProbe("code_cache.entries", [this] {
    uint64_t total = 0;
    for (const auto& place : places_) {
      if (place != nullptr) {
        total += place->code_cache().size();
      }
    }
    return total;
  });

  // Bytecode-VM counters (registered unconditionally, like every probe: all
  // zero when TACOMA_TACL_VM=0 routes evaluation through the tree-walker).
  // Per-activation interpreter stats are folded into Place::Stats after each
  // activation; the digest-keyed compiled-unit cache is summed live.
  metrics_.AddProbe("vm.compiles",
                    [sum_places] { return sum_places(&Place::Stats::vm_compiles); });
  metrics_.AddProbe("vm.unit_cache_hits", [sum_places] {
    return sum_places(&Place::Stats::vm_unit_cache_hits);
  });
  metrics_.AddProbe("vm.unit_cache_evictions", [sum_places] {
    return sum_places(&Place::Stats::vm_unit_cache_evictions);
  });
  metrics_.AddProbe("vm.dispatches",
                    [sum_places] { return sum_places(&Place::Stats::vm_dispatches); });
  metrics_.AddProbe("vm.invokes",
                    [sum_places] { return sum_places(&Place::Stats::vm_invokes); });
  metrics_.AddProbe("vm.shimmers",
                    [sum_places] { return sum_places(&Place::Stats::vm_shimmers); });
  metrics_.AddProbe("vm.stmt_fallbacks", [sum_places] {
    return sum_places(&Place::Stats::vm_stmt_fallbacks);
  });
  metrics_.AddProbe("tacl.parse_cache_evictions", [sum_places] {
    return sum_places(&Place::Stats::tacl_parse_cache_evictions);
  });
  auto sum_unit_caches = [this](uint64_t CodeCache::UnitStats::* field) {
    uint64_t total = 0;
    for (const auto& place : places_) {
      if (place != nullptr) {
        total += place->code_cache().unit_stats().*field;
      }
    }
    return total;
  };
  metrics_.AddProbe("vm.code_cache_unit_hits", [sum_unit_caches] {
    return sum_unit_caches(&CodeCache::UnitStats::hits);
  });
  metrics_.AddProbe("vm.code_cache_unit_misses", [sum_unit_caches] {
    return sum_unit_caches(&CodeCache::UnitStats::misses);
  });

  // Storage-layer durability accounting (see docs/persistence.md).  The
  // StorageStats struct is kernel-owned, so the counters survive the site
  // crashes whose recoveries they count.
  metrics_.AddProbe("storage.recoveries", [this] { return storage_stats_.recoveries; });
  metrics_.AddProbe("storage.torn_tails", [this] { return storage_stats_.torn_tails; });
  metrics_.AddProbe("storage.records_replayed",
                    [this] { return storage_stats_.records_replayed; });
  metrics_.AddProbe("storage.stale_records_dropped",
                    [this] { return storage_stats_.stale_records_dropped; });
  metrics_.AddProbe("storage.wal_append_errors",
                    [this] { return storage_stats_.wal_append_errors; });
  metrics_.AddProbe("storage.autocompactions",
                    [this] { return storage_stats_.autocompactions; });

  // The trace buffer's own health.
  metrics_.AddProbe("trace.events_recorded", [this] { return trace_.recorded(); });
  metrics_.AddProbe("trace.events_dropped", [this] { return trace_.dropped(); });

  // Per-agent resource accounting (core/account.h).  Registered
  // unconditionally so snapshots keep a stable key set; all zero when
  // telemetry.accounting is off.
  metrics_.AddProbe("account.agents",
                    [this] { return static_cast<uint64_t>(accounts_.size()); });
  metrics_.AddProbe("account.evictions", [this] { return accounts_.evictions(); });
  metrics_.AddProbe("account.activations",
                    [this] { return accounts_.totals().activations; });
  metrics_.AddProbe("account.eval_steps",
                    [this] { return accounts_.totals().eval_steps; });
  metrics_.AddProbe("account.bytes_sent",
                    [this] { return accounts_.totals().bytes_sent; });
  metrics_.AddProbe("account.hops", [this] { return accounts_.totals().hops; });
  metrics_.AddProbe("account.meets", [this] { return accounts_.totals().meets; });
  metrics_.AddProbe("account.flushes", [this] { return accounts_.totals().flushes; });
  metrics_.AddProbe("account.ecu_spent",
                    [this] { return accounts_.totals().ecu_spent; });
  metrics_.AddProbe("account.ecu_billed",
                    [this] { return accounts_.totals().ecu_billed; });
  metrics_.AddProbe("account.billing_shortfall",
                    [this] { return accounts_.billing_shortfall(); });

  // The sampler's and flight recorder's own health.
  metrics_.AddProbe("sampler.samples", [this] { return sampler_.samples_taken(); });
  metrics_.AddProbe("sampler.series", [this] {
    return static_cast<uint64_t>(sampler_.series().size());
  });
  metrics_.AddProbe("sampler.points_dropped",
                    [this] { return sampler_.points_dropped(); });
  metrics_.AddProbe("flight.dumps", [this] { return flight_dumps_; });
  metrics_.AddProbe("flight.dump_errors", [this] { return flight_dump_errors_; });
  metrics_.AddProbe("flight.last_dump_us",
                    [this] { return static_cast<uint64_t>(flight_last_dump_us_); });

  // Sim-time distributions.
  ack_rtt_us_ = &metrics_.AddHistogram("kernel.transfer_ack_rtt_us",
                                       SimTimeBucketsUs());
  delivery_us_ = &metrics_.AddHistogram("kernel.transfer_delivery_us",
                                        SimTimeBucketsUs());
}

void Kernel::TraceTransferEvent(const PendingTransfer& transfer, const char* name,
                                const std::string& detail) {
  if (!options_.trace_enabled) {
    return;
  }
  TraceEvent ev;
  ev.trace_id = transfer.trace.trace_id;
  ev.span_id = transfer.trace.span_id;
  ev.hop = transfer.trace.hop;
  ev.name = name;
  ev.site = net_.site_name(transfer.from);
  ev.site_id = transfer.from;
  ev.ts = sim_.Now();
  ev.detail = detail;
  trace_.Record(std::move(ev));
}

SiteId Kernel::AddSite(const std::string& name) {
  SiteId id = net_.AddSite(name);
  CreatePlace(id);
  return id;
}

SiteId Kernel::AddRemoteSite(const std::string& name) {
  SiteId id = net_.AddSite(name);
  while (places_.size() <= id) {
    places_.push_back(nullptr);  // No Place here: the site lives elsewhere.
  }
  remote_sites_.insert(id);
  // A transport-level reconnect means the remote process may have restarted
  // (its volatile CodeCache gone): drop every local belief about it.  The
  // NeedCode miss path self-heals even without this; the hook just avoids
  // the wasted stub round trip.
  transport_->SetRestartHook(id,
                             [this](SiteId s) { InvalidateCodeBeliefsAbout(s); });
  return id;
}

void Kernel::SetTransport(Transport* transport) {
  transport_ = transport != nullptr ? transport : &net_;
  // Re-register everything the old transport held: delivery handlers for
  // hosted sites, restart hooks for hosted and remote sites.
  for (SiteId site = 0; site < places_.size(); ++site) {
    if (places_[site] == nullptr) {
      continue;
    }
    transport_->SetHandler(site,
                           [this, site](SiteId from, const SharedBytes& payload) {
                             HandleDelivery(site, from, payload);
                           });
    transport_->SetRestartHook(site,
                               [this](SiteId s) { InvalidateCodeBeliefsAbout(s); });
  }
  for (SiteId site : remote_sites_) {
    transport_->SetRestartHook(site,
                               [this](SiteId s) { InvalidateCodeBeliefsAbout(s); });
  }
}

void Kernel::AdoptNetworkSites() {
  for (SiteId id = 0; id < net_.site_count(); ++id) {
    if (id >= places_.size() || places_[id] == nullptr) {
      CreatePlace(id);
    } else {
      // Topology may have grown since creation: refresh neighbour folders.
      PopulateSitesFolder(*places_[id]);
    }
  }
}

Place* Kernel::place(SiteId site) {
  if (site >= places_.size()) {
    return nullptr;
  }
  return places_[site].get();
}

bool Kernel::PlaceAlive(SiteId site, uint64_t generation) {
  Place* p = place(site);
  return p != nullptr && p->generation() == generation;
}

Disk& Kernel::disk(SiteId site) {
  while (disks_.size() <= site) {
    SiteId id = static_cast<SiteId>(disks_.size());
    std::unique_ptr<Disk> base;
    if (options_.disk_factory) {
      base = options_.disk_factory(
          id, id < net_.site_count() ? net_.site_name(id) : std::string());
    }
    if (base == nullptr) {
      base = std::make_unique<MemDisk>();
    }
    disks_.push_back(std::make_unique<SiteDisk>(std::move(base)));
  }
  return disks_[site]->crash;
}

void Kernel::ArmDiskCrash(SiteId site, uint64_t ops_from_now, double tear_fraction) {
  disk(site);  // Ensure the disk exists.
  disks_[site]->crash.Arm(ops_from_now, tear_fraction);
}

std::shared_ptr<const AdmissionSummary> Kernel::LookupAdmission(
    const std::string& key) {
  auto it = admission_cache_.find(key);
  if (it == admission_cache_.end()) {
    ++admission_stats_.misses;
    return nullptr;
  }
  ++admission_stats_.hits;
  // LRU touch: move the key to the back of the recency order.
  auto pos = std::find(admission_order_.begin(), admission_order_.end(), key);
  if (pos != admission_order_.end()) {
    admission_order_.erase(pos);
  }
  admission_order_.push_back(key);
  return it->second;
}

void Kernel::StoreAdmission(const std::string& key,
                            std::shared_ptr<const AdmissionSummary> summary) {
  if (options_.admission_cache_capacity == 0) {
    return;
  }
  while (admission_cache_.size() >= options_.admission_cache_capacity &&
         !admission_order_.empty()) {
    admission_cache_.erase(admission_order_.front());
    admission_order_.pop_front();
    ++admission_stats_.evictions;
  }
  if (admission_cache_.emplace(key, std::move(summary)).second) {
    admission_order_.push_back(key);
  }
}

void Kernel::AddPlaceInitializer(std::function<void(Place&)> init) {
  for (auto& place : places_) {
    if (place != nullptr) {
      init(*place);
    }
  }
  place_initializers_.push_back(std::move(init));
}

void Kernel::CreatePlace(SiteId site) {
  while (places_.size() <= site) {
    places_.push_back(nullptr);
  }
  disk(site);  // Ensure the disk exists.
  auto place = std::make_unique<Place>(this, site, net_.site_name(site));
  place->set_step_limit(options_.step_limit);
  place->set_admission_policy(options_.admission_policy);
  if (options_.admission_rules.has_value()) {
    place->set_admission_rules(*options_.admission_rules);
  }
  place->set_effect_monitor(options_.effect_monitor);
  place->set_code_cache_capacity(options_.code_cache.capacity);
  InstallSystemAgents(*place);
  PopulateSitesFolder(*place);
  place->RecoverCabinets();
  for (const auto& init : place_initializers_) {
    init(*place);
  }
  places_[site] = std::move(place);
  if (options_.reliability.durable_dedup) {
    LoadDedupJournal(site);
  }

  transport_->SetHandler(site,
                         [this, site](SiteId from, const SharedBytes& payload) {
                           HandleDelivery(site, from, payload);
                         });
  // A restart means the site's volatile CodeCache was lost: every sender's
  // beliefs about what this site holds are stale and must be dropped before
  // the first post-restart stub would miss.
  transport_->SetRestartHook(site,
                             [this](SiteId s) { InvalidateCodeBeliefsAbout(s); });
}

void Kernel::PopulateSitesFolder(Place& place) {
  // The paper's flooding example (§2) assumes a site-local SITES folder naming
  // adjacent sites; the kernel maintains it in the "system" cabinet.
  FileCabinet& cab = place.Cabinet("system");
  cab.EraseFolder(kSitesFolder);
  for (SiteId n : net_.Neighbors(place.site())) {
    cab.AppendString(kSitesFolder, net_.site_name(n));
  }
}

void Kernel::CrashSite(SiteId site) {
  if (site >= places_.size() || places_[site] == nullptr) {
    return;  // Unknown, already down, or remote (no Place here to kill).
  }
  net_.CrashSite(site);
  places_[site].reset();  // Volatile state gone; disk_ survives.
  // Sender-side retry state lived at this site: abandon its pending
  // transfers.  (Their queued retry ticks become no-ops.)
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.from == site) {
      ++stats_.transfers_abandoned;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // The in-memory dedup window is volatile too; durable_dedup reloads it
  // from the disk journal on restart.
  dedup_.erase(site);
  // Code-cache beliefs held BY this site (sender-side) are volatile state
  // here, like the pending table; beliefs ABOUT this site held elsewhere are
  // invalidated by the restart hook when it comes back.
  known_code_.erase(site);
  for (auto it = stub_sends_.begin(); it != stub_sends_.end();) {
    it = it->second.from == site ? stub_sends_.erase(it) : std::next(it);
  }
}

void Kernel::RestartSite(SiteId site) {
  if (site >= net_.site_count() || remote_sites_.count(site) != 0) {
    return;  // Remote sites restart in their own process, not here.
  }
  if (places_[site] != nullptr) {
    return;  // Already up.
  }
  if (site < disks_.size()) {
    // Remount the disk: a crashed/armed fault injector is cleared, the bytes
    // that landed before the fault stay exactly as they are — recovery below
    // has to cope with whatever torn state the crash left.
    disks_[site]->crash.Reset();
  }
  net_.RestartSite(site);
  CreatePlace(site);
}

// --- Reliable transport ---------------------------------------------------------

SimTime Kernel::Jittered(SimTime base) {
  double jitter = options_.reliability.retry_jitter;
  if (jitter <= 0) {
    return base;
  }
  double factor = 1.0 + jitter * (2.0 * rng_.UniformDouble() - 1.0);
  return std::max<SimTime>(1, static_cast<SimTime>(static_cast<double>(base) * factor));
}

void Kernel::ScheduleRetry(uint64_t id, SimTime delay) {
  sim_.After(delay, [this, id] { RetryTick(id); });
}

void Kernel::RetryTick(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;  // Acked, nacked, or abandoned since this tick was scheduled.
  }
  PendingTransfer& t = it->second;
  const ReliabilityOptions& r = options_.reliability;
  bool out_of_attempts = r.max_attempts > 0 && t.attempts >= r.max_attempts;
  bool past_deadline = r.deadline > 0 && sim_.Now() >= t.first_sent + r.deadline;
  if (out_of_attempts || past_deadline) {
    ++stats_.transfers_expired;
    const char* why = out_of_attempts ? "retry attempts exhausted" : "deadline passed";
    // Detach the entry before dead-lettering: Meet runs the dead-letter
    // contact synchronously, and whatever that agent does (including new
    // reliable transfers) must not see or mutate this half-erased entry.
    PendingTransfer expired = std::move(it->second);
    pending_.erase(it);
    TraceTransferEvent(expired, "transfer.expire", why);
    DeadLetter(expired, why);
    return;
  }
  ++t.attempts;
  const uint64_t attempt = t.attempts;
  // A send refused right now (destination down, no route) still consumes an
  // attempt; the next backoff may find the site restarted or a link restored.
  Status sent = transport_->Send(t.from, t.to, t.frame);
  // Send can deliver synchronously, in which case the receiver's ack rides
  // the same call stack back through HandleAck and erases this entry — the
  // reference above is dangling now.  Re-find before touching anything.
  it = pending_.find(id);
  if (it == pending_.end()) {
    return;  // Acked (or nacked) inside the synchronous send.
  }
  PendingTransfer& live = it->second;
  if (sent.ok()) {
    ++stats_.transfers_sent;
    ++stats_.retries_sent;
    // Retries re-bill the wire bytes but not the hop: the agent committed to
    // one logical move, however many retransmissions it takes.
    ChargeWire(live.account, live.from, live.to, live.frame.size(), 0);
    // A retransmitted stub saves the same bytes again (the full frame is what
    // a cache-less kernel would have retried).
    if (!live.full_frame.empty() && live.full_frame.size() > live.frame.size()) {
      code_stats_.bytes_saved += live.full_frame.size() - live.frame.size();
    }
    TraceTransferEvent(live, "transfer.retry", "attempt " + std::to_string(attempt));
  }
  live.backoff = std::min(
      r.retry_max, static_cast<SimTime>(static_cast<double>(live.backoff) *
                                        std::max(1.0, r.retry_multiplier)));
  ScheduleRetry(id, Jittered(live.backoff));
}

void Kernel::DeadLetter(const PendingTransfer& transfer, const std::string& reason) {
  if (transfer.dead_letter.empty()) {
    return;  // Nobody designated: the expiry/nack counters tell the story.
  }
  Place* origin = place(transfer.from);
  auto bc = Briefcase::Deserialize(transfer.briefcase);
  if (origin == nullptr || !bc.ok()) {
    ++stats_.dead_letters_dropped;
    return;
  }
  Briefcase briefcase = std::move(bc).value();
  briefcase.SetString("DEADLETTER_REASON", reason);
  briefcase.SetString("DEADLETTER_HOST", net_.site_name(transfer.to));
  briefcase.SetString("DEADLETTER_CONTACT", transfer.contact);
  TraceTransferEvent(transfer, "transfer.deadletter", reason);
  Status met = origin->Meet(transfer.dead_letter, briefcase);
  if (met.ok()) {
    ++stats_.dead_letters_delivered;
  } else {
    ++stats_.dead_letters_dropped;
    TLOG_WARN << "site " << origin->name() << ": dead-letter contact \""
              << transfer.dead_letter << "\" refused return of transfer to "
              << net_.site_name(transfer.to) << ": " << met.ToString();
  }
}

bool Kernel::Seen(SiteId to, SiteId from, uint64_t id) const {
  auto site_it = dedup_.find(to);
  if (site_it == dedup_.end()) {
    return false;
  }
  auto peer_it = site_it->second.find(from);
  if (peer_it == site_it->second.end()) {
    return false;
  }
  return peer_it->second.seen.contains(id);
}

void Kernel::RecordSeen(SiteId to, SiteId from, uint64_t id) {
  DedupWindow& window = dedup_[to][from];
  if (window.seen.contains(id)) {
    return;
  }
  window.seen.insert(id);
  window.order.push_back(id);
  size_t cap = options_.reliability.dedup_window;
  while (cap > 0 && window.order.size() > cap) {
    window.seen.erase(window.order.front());
    window.order.pop_front();
  }
  if (options_.reliability.durable_dedup) {
    AppendDedupJournal(to, from, id);
  }
}

void Kernel::AppendDedupJournal(SiteId to, SiteId from, uint64_t id) {
  Encoder enc;
  enc.PutU32(from);
  enc.PutU64(id);
  (void)disk(to).Append(kDedupJournalFile, enc.Take());
}

void Kernel::LoadDedupJournal(SiteId site) {
  Disk& d = disk(site);
  if (!d.Exists(kDedupJournalFile)) {
    return;
  }
  auto data = d.Read(kDedupJournalFile);
  if (!data.ok()) {
    return;
  }
  Decoder dec(*data);
  uint32_t from = 0;
  uint64_t id = 0;
  while (dec.GetU32(&from) && dec.GetU64(&id)) {
    DedupWindow& window = dedup_[site][from];
    if (window.seen.insert(id).second) {
      window.order.push_back(id);
      size_t cap = options_.reliability.dedup_window;
      while (cap > 0 && window.order.size() > cap) {
        window.seen.erase(window.order.front());
        window.order.pop_front();
      }
    }
  }
  // Compact: rewrite the journal with just the retained windows so repeated
  // crash/restart cycles don't replay an ever-growing file.
  Encoder enc;
  for (const auto& [sender, window] : dedup_[site]) {
    for (uint64_t kept : window.order) {
      enc.PutU32(sender);
      enc.PutU64(kept);
    }
  }
  (void)d.Write(kDedupJournalFile, enc.Take());
}

Status Kernel::TransferAgent(SiteId from, SiteId to, const std::string& contact,
                             const Briefcase& bc) {
  return TransferAgent(from, to, contact, bc, TransferOptions{});
}

Status Kernel::TransferAgent(SiteId from, SiteId to, const std::string& contact,
                             const Briefcase& bc,
                             const TransferOptions& transfer_options) {
  // Guard nonexistent site ids here rather than relying on what the network
  // happens to do with them.
  if (from >= net_.site_count() || to >= net_.site_count()) {
    ++stats_.transfers_rejected;
    return NotFoundError("transfer references unknown site id " +
                         std::to_string(from >= net_.site_count() ? from : to));
  }
  Reliability mode = transfer_options.mode.value_or(options_.reliability.mode);
  uint64_t id = ++next_transfer_id_;
  // Ledger key for everything this transfer puts on the wire (the first
  // send, retries, control frames it provokes): the travelling agent pays.
  AccountKey account;
  if (options_.telemetry.accounting) {
    account = AccountKeyFor(bc);
  }
  uint8_t flags = 0;
  if (mode == Reliability::kAtMostOnce) {
    flags = kFlagDedup;
  } else if (mode == Reliability::kReliable) {
    flags = kFlagDedup | kFlagWantAck;
  }

  // Journey tracing: this transfer is one hop (one span).  The briefcase's
  // existing TRACE folder is the parent context from the hop that brought the
  // sending agent here (rexec chains, diffusion/courier fan-out, rearguard
  // relaunches all inherit it by copying the briefcase); without one this
  // send starts a fresh trace.
  TraceContext span;
  const Briefcase* to_ship = &bc;
  Briefcase stamped;
  if (options_.trace_enabled) {
    auto parent = TraceContext::FromBriefcase(bc);
    span.trace_id = parent.has_value() ? parent->trace_id : ++next_trace_id_;
    span.span_id = ++next_span_id_;
    span.hop = parent.has_value() ? parent->hop + 1 : 1;
    span.sent_ts = sim_.Now();
    stamped = bc;
    span.Stamp(&stamped);
    to_ship = &stamped;
    TraceEvent ev;
    ev.trace_id = span.trace_id;
    ev.span_id = span.span_id;
    ev.parent_span_id = parent.has_value() ? parent->span_id : 0;
    ev.hop = span.hop;
    ev.name = "transfer.send";
    ev.site = net_.site_name(from);
    ev.site_id = from;
    ev.ts = sim_.Now();
    ev.detail = contact + "@" + net_.site_name(to) + " " + ToString(mode);
    trace_.Record(std::move(ev));
  }

  Encoder enc;
  enc.PutU8(kFrameData);
  enc.PutU64(id);
  enc.PutU8(flags);
  enc.PutString(contact);
  to_ship->Encode(&enc);
  SharedBytes full_frame = enc.TakeShared();
  SharedBytes frame = full_frame;

  // With the cache enabled and a CODE folder aboard, ship a 32-byte digest
  // stub whenever the destination is believed to hold this code; otherwise
  // ship the source and optimistically record that the destination (and our
  // own cache, for return trips) now holds it.  A misprediction costs one
  // NeedCode round trip, never a lost transfer.
  std::string code_digest;
  if (const Folder* code = to_ship->Find(kCodeFolder);
      options_.code_cache.enabled && code != nullptr && !code->empty()) {
    Encoder code_enc;
    code->Encode(&code_enc);
    SharedBytes code_encoded = code_enc.TakeShared();
    Digest digest = Sha256::Hash(code_encoded);
    std::string digest_hex = DigestToHex(digest);
    std::set<std::string>& known = known_code_[from][to];
    if (known.contains(digest_hex)) {
      Briefcase stripped = *to_ship;  // Folder payloads are shared, not copied.
      stripped.Remove(kCodeFolder);
      Encoder stub_enc;
      stub_enc.PutU8(kFrameData);
      stub_enc.PutU64(id);
      stub_enc.PutU8(flags | kFlagCodeStub);
      stub_enc.PutString(contact);
      stub_enc.PutBytes(DigestToBytes(digest));
      stripped.Encode(&stub_enc);
      frame = stub_enc.TakeShared();
      code_digest = std::move(digest_hex);
      ++code_stats_.stub_sends;
    } else {
      ++code_stats_.full_sends;
      known.insert(digest_hex);
      if (Place* origin = place(from)) {
        origin->code_cache().Put(digest_hex, *code, std::move(code_encoded));
      }
    }
  }
  const bool stubbed = !code_digest.empty();

  Status sent = transport_->Send(from, to, frame);
  if (sent.ok() && stubbed && full_frame.size() > frame.size()) {
    code_stats_.bytes_saved += full_frame.size() - frame.size();
  }
  if (mode != Reliability::kReliable) {
    if (!sent.ok()) {
      ++stats_.transfers_rejected;
      return sent;
    }
    ++stats_.transfers_sent;
    ChargeWire(account, from, to, frame.size(), 1);
    if (stubbed) {
      // No pending entry will exist for this id, so keep the full frame
      // around (bounded) in case the receiver answers NeedCode.
      RememberStubSend(id, StubSend{from, to, full_frame, code_digest, account});
    }
    return OkStatus();
  }

  // Reliable: even a send the network refuses right now (destination down,
  // partition) is accepted and queued — the retry loop rides out the outage
  // or dead-letters the briefcase when the budget runs dry.
  if (sent.ok()) {
    ++stats_.transfers_sent;
    ChargeWire(account, from, to, frame.size(), 1);
  } else if (options_.telemetry.accounting) {
    // Queued but not on the wire yet: the hop is committed, the bytes are
    // charged by whichever retry the network accepts.
    accounts_.ChargeBytes(account, 0, 1);
  }
  ++stats_.transfers_reliable;
  PendingTransfer t;
  t.from = from;
  t.to = to;
  t.contact = contact;
  t.dead_letter = transfer_options.dead_letter;
  t.frame = std::move(frame);
  t.briefcase = to_ship->Serialize();
  if (stubbed) {
    t.full_frame = std::move(full_frame);
    t.code_digest = std::move(code_digest);
  }
  t.attempts = 1;
  t.first_sent = sim_.Now();
  t.trace = span;
  t.account = account;
  t.backoff = options_.reliability.retry_initial;
  pending_.emplace(id, std::move(t));
  ScheduleRetry(id, Jittered(options_.reliability.retry_initial));
  return OkStatus();
}

void Kernel::RememberStubSend(uint64_t id, StubSend record) {
  stub_sends_[id] = std::move(record);
  stub_send_order_.push_back(id);
  while (stub_sends_.size() > options_.code_cache.stub_record_capacity &&
         !stub_send_order_.empty()) {
    stub_sends_.erase(stub_send_order_.front());
    stub_send_order_.pop_front();
  }
}

void Kernel::InvalidateCodeBeliefsAbout(SiteId site) {
  for (auto& [sender, per_dest] : known_code_) {
    auto it = per_dest.find(site);
    if (it != per_dest.end()) {
      code_stats_.invalidations += it->second.size();
      per_dest.erase(it);
    }
  }
}

void Kernel::SendControl(uint8_t kind, SiteId from_site, SiteId to_site, uint64_t id,
                         const std::string& reason, const AccountKey* bill) {
  Encoder enc;
  enc.PutU8(kind);
  enc.PutU64(id);
  if (kind == kFrameNack) {
    enc.PutString(reason);
  }
  // Best effort: a lost ack is repaired by the sender's retry + our dedup
  // window; a lost nack by retry + repeated nack; a lost NeedCode by retry +
  // repeated miss.
  SharedBytes frame = enc.TakeShared();
  Status sent = transport_->Send(from_site, to_site, frame);
  if (sent.ok() && bill != nullptr) {
    // Control traffic is overhead the travelling agent provoked; it pays for
    // the acks/nacks/NeedCode its transfer generates, but no extra hop.
    ChargeWire(*bill, from_site, to_site, frame.size(), 0);
  }
  if (kind == kFrameAck) {
    ++stats_.acks_sent;
  } else if (kind == kFrameNack) {
    ++stats_.nacks_sent;
  } else if (kind == kFrameNeedCode) {
    ++code_stats_.need_code_sent;
  }
}

void Kernel::HandleDelivery(SiteId to, SiteId from, const SharedBytes& payload) {
  Place* destination = place(to);
  if (destination == nullptr) {
    ++stats_.meets_failed_on_arrival;
    return;
  }
  Decoder dec(payload);
  uint8_t kind = 0;
  if (!dec.GetU8(&kind)) {
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name() << ": empty transfer frame";
    return;
  }
  switch (kind) {
    case kFrameData:
      HandleData(to, from, destination, &dec);
      return;
    case kFrameAck:
      HandleAck(to, &dec);
      return;
    case kFrameNack:
      HandleNack(to, &dec);
      return;
    case kFrameNeedCode:
      HandleNeedCode(to, from, &dec);
      return;
    default:
      ++stats_.meets_failed_on_arrival;
      TLOG_WARN << "site " << destination->name()
                << ": malformed agent transfer (unknown frame kind "
                << static_cast<int>(kind) << ")";
  }
}

void Kernel::HandleData(SiteId to, SiteId from, Place* destination, Decoder* dec) {
  uint64_t id = 0;
  uint8_t flags = 0;
  std::string contact;
  if (!dec->GetU64(&id) || !dec->GetU8(&flags) || !dec->GetString(&contact)) {
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name() << ": malformed agent transfer";
    return;
  }
  const bool stub = (flags & kFlagCodeStub) != 0;
  SharedBytes digest_raw;
  if (stub && (!dec->GetSharedBytes(&digest_raw) ||
               digest_raw.size() != std::tuple_size_v<Digest>)) {
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name()
              << ": malformed CODE_DIGEST stub in transfer";
    return;
  }
  auto bc = Briefcase::Decode(dec);
  if (!bc.ok()) {
    // The frame is corrupt: no ack/nack (the sender's retransmission carries
    // an intact copy).
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name()
              << ": corrupt briefcase in transfer: " << bc.status().ToString();
    return;
  }
  bool want_ack = (flags & kFlagWantAck) != 0;
  // Everything the receiving side puts back on the wire for this transfer
  // (ack, nack, NeedCode) is billed to the travelling agent's account.
  AccountKey arrival_key;
  if (options_.telemetry.accounting) {
    arrival_key = AccountKeyFor(*bc);
  }
  std::optional<TraceContext> span;
  if (options_.trace_enabled) {
    span = TraceContext::FromBriefcase(*bc);
  }
  auto record_arrival = [&](const char* name, const std::string& detail) {
    if (!span.has_value()) {
      return;
    }
    TraceEvent ev;
    ev.trace_id = span->trace_id;
    ev.span_id = span->span_id;
    ev.hop = span->hop;
    ev.name = name;
    ev.site = destination->name();
    ev.site_id = to;
    ev.ts = sim_.Now();
    ev.detail = detail;
    trace_.Record(std::move(ev));
  };
  bool dedup = (flags & kFlagDedup) != 0;
  if (dedup && Seen(to, from, id)) {
    // Retransmission of a transfer that already activated (its ack was
    // lost).  Suppress the duplicate but re-ack so the sender stops.
    ++stats_.duplicates_suppressed;
    record_arrival("transfer.dup", "duplicate suppressed");
    if (want_ack) {
      SendControl(kFrameAck, to, from, id, "", &arrival_key);
    }
    return;
  }
  Briefcase briefcase = std::move(bc).value();
  if (stub) {
    // Reconstruct the CODE folder from the local content store.  A miss (or
    // a corrupt entry, which Get treats as a miss) is NOT a delivery: ask the
    // sender for the source and let its resend — carrying full CODE — be the
    // transfer.  Nothing is recorded as seen, so that resend is processed
    // normally rather than suppressed.
    Digest digest;
    std::copy(digest_raw.begin(), digest_raw.end(), digest.begin());
    std::string digest_hex = DigestToHex(digest);
    const Folder* cached = destination->code_cache().Get(digest_hex);
    if (cached == nullptr) {
      record_arrival("code.cache_miss", digest_hex.substr(0, 12));
      SendControl(kFrameNeedCode, to, from, id, "", &arrival_key);
      return;
    }
    record_arrival("code.cache_hit", digest_hex.substr(0, 12));
    briefcase.folder(kCodeFolder) = *cached;  // CoW: element payloads shared.
  } else if (options_.code_cache.enabled) {
    // Full CODE arrived: remember it so future stubs for this digest hit, and
    // note that the sender evidently holds this code too — the return trip
    // can be stubbed without a warm-up miss.
    if (const Folder* code = briefcase.Find(kCodeFolder);
        code != nullptr && !code->empty()) {
      Encoder code_enc;
      code->Encode(&code_enc);
      SharedBytes code_encoded = code_enc.TakeShared();
      std::string digest_hex = DigestToHex(Sha256::Hash(code_encoded));
      destination->code_cache().Put(digest_hex, *code, std::move(code_encoded));
      known_code_[to][from].insert(digest_hex);
    }
  }
  ++stats_.transfers_delivered;
  if (span.has_value() && sim_.Now() >= span->sent_ts) {
    delivery_us_->Observe(sim_.Now() - span->sent_ts);
  }
  // Record provenance for agents that care where they came from.
  briefcase.SetString("FROM", net_.site_name(from));
  // Dispatch is recorded before the meet runs so the buffer stays in causal
  // order: a child transfer.send from inside the meet follows its parent's
  // meet.dispatch.
  record_arrival("meet.dispatch", contact);
  if (options_.telemetry.accounting) {
    accounts_.ChargeMeet(arrival_key);
  }
  Status met = destination->Meet(contact, briefcase);
  if (!met.ok()) {
    record_arrival("meet.fail", met.ToString());
    ++stats_.meets_failed_on_arrival;
    destination->RecordArrivalMeetFailure();
    TLOG_WARN << "site " << destination->name() << ": arrival meet with \"" << contact
              << "\" from " << net_.site_name(from) << " failed: " << met.ToString();
    // Structural refusals — no such contact, admission rejection, malformed
    // briefcase contents — bounce the briefcase back to the sender's
    // dead-letter contact.  A runtime error inside the agent is still a
    // successful dispatch and acks normally.
    bool structural = met.code() == StatusCode::kNotFound ||
                      met.code() == StatusCode::kPermissionDenied ||
                      met.code() == StatusCode::kInvalidArgument;
    if (want_ack && structural) {
      // Deliberately NOT recorded as seen: if this nack is lost, the sender's
      // retransmission must be re-processed and re-nacked, not re-acked as a
      // duplicate of a successful activation.
      SendControl(kFrameNack, to, from, id, met.ToString(), &arrival_key);
      return;
    }
  }
  if (dedup) {
    RecordSeen(to, from, id);
  }
  if (want_ack) {
    SendControl(kFrameAck, to, from, id, "", &arrival_key);
  }
}

void Kernel::HandleAck(SiteId to, Decoder* dec) {
  uint64_t id = 0;
  if (!dec->GetU64(&id)) {
    return;
  }
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.from != to) {
    return;  // Duplicate ack, or the origin crashed and abandoned the entry.
  }
  ++stats_.transfers_acked;
  ack_rtt_us_->Observe(sim_.Now() - it->second.first_sent);
  TraceTransferEvent(it->second, "transfer.ack",
                     "rtt " + std::to_string(sim_.Now() - it->second.first_sent) + "us");
  pending_.erase(it);
}

void Kernel::HandleNack(SiteId to, Decoder* dec) {
  uint64_t id = 0;
  std::string reason;
  if (!dec->GetU64(&id) || !dec->GetString(&reason)) {
    return;
  }
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.from != to) {
    return;
  }
  ++stats_.transfers_nacked;
  TraceTransferEvent(it->second, "transfer.nack", reason);
  DeadLetter(it->second, reason);
  pending_.erase(it);
}

void Kernel::HandleNeedCode(SiteId to, SiteId /*from*/, Decoder* dec) {
  uint64_t id = 0;
  if (!dec->GetU64(&id)) {
    return;
  }
  // The miss retracts our belief that the receiver holds the digest, and the
  // transfer falls back to its full-source frame.  Reliable transfers keep
  // that fallback in the pending table; fire-and-forget ones in the bounded
  // stub-send records.
  auto it = pending_.find(id);
  if (it != pending_.end() && it->second.from == to) {
    PendingTransfer& t = it->second;
    if (t.full_frame.empty()) {
      return;  // An earlier NeedCode already swapped this transfer to full.
    }
    known_code_[t.from][t.to].erase(t.code_digest);
    t.frame = std::move(t.full_frame);
    t.full_frame = SharedBytes();
    t.code_digest.clear();
    TraceTransferEvent(t, "transfer.needcode", "resending full source");
    Status sent = transport_->Send(t.from, t.to, t.frame);
    if (sent.ok()) {
      ++stats_.transfers_sent;
      ++code_stats_.full_resends;
      ChargeWire(t.account, t.from, t.to, t.frame.size(), 0);
    }
    // The retry loop stays scheduled; from here on it retries the full frame.
    return;
  }
  auto sit = stub_sends_.find(id);
  if (sit == stub_sends_.end() || sit->second.from != to) {
    // Record evicted, or the origin crashed: the transfer is lost, which is
    // no worse than what fire-and-forget already allows.
    return;
  }
  StubSend record = std::move(sit->second);
  stub_sends_.erase(sit);
  known_code_[record.from][record.to].erase(record.code_digest);
  Status sent = transport_->Send(record.from, record.to, record.full_frame);
  if (sent.ok()) {
    ++stats_.transfers_sent;
    ++code_stats_.full_resends;
    ChargeWire(record.account, record.from, record.to, record.full_frame.size(), 0);
  }
}

Status Kernel::LaunchAgent(SiteId site, const std::string& code, Briefcase bc) {
  Place* destination = place(site);
  if (destination == nullptr) {
    return UnavailableError("site is down");
  }
  bc.folder(kCodeFolder).Clear();
  bc.folder(kCodeFolder).PushBackString(code);
  // A launch is a journey's hop zero: give the activation a trace id so every
  // transfer it makes chains under one trace.  (A briefcase that already
  // carries TRACE — e.g. a rearguard relaunch — keeps its journey.)
  if (options_.trace_enabled && !TraceContext::FromBriefcase(bc).has_value()) {
    TraceContext root;
    root.trace_id = ++next_trace_id_;
    root.span_id = ++next_span_id_;
    root.hop = 0;
    root.sent_ts = sim_.Now();
    root.Stamp(&bc);
    TraceEvent ev;
    ev.trace_id = root.trace_id;
    ev.span_id = root.span_id;
    ev.name = "agent.launch";
    ev.site = destination->name();
    ev.site_id = site;
    ev.ts = sim_.Now();
    ev.detail = bc.GetString("AGENT").value_or("agent");
    trace_.Record(std::move(ev));
  }
  return destination->Meet("ag_tacl", bc);
}

}  // namespace tacoma
