#include "core/kernel.h"

#include <algorithm>

#include "serial/encoder.h"
#include "util/log.h"

namespace tacoma {

namespace {

// Transfer frame kinds.  Every inter-site payload starts with one of these;
// anything else is a malformed transfer.
constexpr uint8_t kFrameData = 1;
constexpr uint8_t kFrameAck = 2;
constexpr uint8_t kFrameNack = 3;

// DATA frame flags.
constexpr uint8_t kFlagWantAck = 1 << 0;  // Receiver must ack/nack.
constexpr uint8_t kFlagDedup = 1 << 1;    // Receiver records id for dedup.

// Site-disk file holding the journaled dedup window: a flat sequence of
// (u32 sender, u64 transfer id) records.
constexpr char kDedupJournalFile[] = "xfer.dedup";

}  // namespace

const char* ToString(Reliability mode) {
  switch (mode) {
    case Reliability::kOff:
      return "off";
    case Reliability::kAtMostOnce:
      return "at-most-once";
    case Reliability::kReliable:
      return "reliable";
  }
  return "?";
}

std::optional<Reliability> ParseReliability(const std::string& value) {
  if (value == "off" || value == "none" || value == "0") {
    return Reliability::kOff;
  }
  if (value == "atmostonce" || value == "at-most-once" || value == "at_most_once") {
    return Reliability::kAtMostOnce;
  }
  if (value == "reliable" || value == "on" || value == "1") {
    return Reliability::kReliable;
  }
  return std::nullopt;
}

Result<TransferOptions> TransferOptionsFromBriefcase(const Briefcase& bc) {
  TransferOptions options;
  if (auto reliable = bc.GetString("RELIABLE")) {
    auto mode = ParseReliability(*reliable);
    if (!mode.has_value()) {
      return InvalidArgumentError("unknown RELIABLE mode \"" + *reliable +
                                  "\" (want off, at-most-once, or reliable)");
    }
    options.mode = mode;
  }
  if (auto dead_letter = bc.GetString("DEADLETTER")) {
    options.dead_letter = *dead_letter;
  }
  return options;
}

Kernel::Kernel(KernelOptions options)
    : options_(options), net_(&sim_), rng_(options.seed) {
  net_.set_loss_seed(rng_.Next());
  // Keep every place's site-local SITES folder (§2) in sync with topology.
  net_.SetTopologyHook([this](SiteId a, SiteId b) {
    for (SiteId site : {a, b}) {
      if (site < places_.size() && places_[site] != nullptr) {
        PopulateSitesFolder(*places_[site]);
      }
    }
  });
}

Kernel::~Kernel() = default;

SiteId Kernel::AddSite(const std::string& name) {
  SiteId id = net_.AddSite(name);
  CreatePlace(id);
  return id;
}

void Kernel::AdoptNetworkSites() {
  for (SiteId id = 0; id < net_.site_count(); ++id) {
    if (id >= places_.size() || places_[id] == nullptr) {
      CreatePlace(id);
    } else {
      // Topology may have grown since creation: refresh neighbour folders.
      PopulateSitesFolder(*places_[id]);
    }
  }
}

Place* Kernel::place(SiteId site) {
  if (site >= places_.size()) {
    return nullptr;
  }
  return places_[site].get();
}

bool Kernel::PlaceAlive(SiteId site, uint64_t generation) {
  Place* p = place(site);
  return p != nullptr && p->generation() == generation;
}

MemDisk& Kernel::disk(SiteId site) {
  while (disks_.size() <= site) {
    disks_.push_back(std::make_unique<MemDisk>());
  }
  return *disks_[site];
}

void Kernel::AddPlaceInitializer(std::function<void(Place&)> init) {
  for (auto& place : places_) {
    if (place != nullptr) {
      init(*place);
    }
  }
  place_initializers_.push_back(std::move(init));
}

void Kernel::CreatePlace(SiteId site) {
  while (places_.size() <= site) {
    places_.push_back(nullptr);
  }
  disk(site);  // Ensure the disk exists.
  auto place = std::make_unique<Place>(this, site, net_.site_name(site));
  place->set_step_limit(options_.step_limit);
  place->set_admission_policy(options_.admission_policy);
  InstallSystemAgents(*place);
  PopulateSitesFolder(*place);
  place->RecoverCabinets();
  for (const auto& init : place_initializers_) {
    init(*place);
  }
  places_[site] = std::move(place);
  if (options_.reliability.durable_dedup) {
    LoadDedupJournal(site);
  }

  net_.SetHandler(site, [this, site](SiteId from, const Bytes& payload) {
    HandleDelivery(site, from, payload);
  });
  net_.SetRestartHook(site, [](SiteId) {});
}

void Kernel::PopulateSitesFolder(Place& place) {
  // The paper's flooding example (§2) assumes a site-local SITES folder naming
  // adjacent sites; the kernel maintains it in the "system" cabinet.
  FileCabinet& cab = place.Cabinet("system");
  cab.EraseFolder(kSitesFolder);
  for (SiteId n : net_.Neighbors(place.site())) {
    cab.AppendString(kSitesFolder, net_.site_name(n));
  }
}

void Kernel::CrashSite(SiteId site) {
  if (site >= places_.size() || places_[site] == nullptr) {
    return;
  }
  net_.CrashSite(site);
  places_[site].reset();  // Volatile state gone; disk_ survives.
  // Sender-side retry state lived at this site: abandon its pending
  // transfers.  (Their queued retry ticks become no-ops.)
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.from == site) {
      ++stats_.transfers_abandoned;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  // The in-memory dedup window is volatile too; durable_dedup reloads it
  // from the disk journal on restart.
  dedup_.erase(site);
}

void Kernel::RestartSite(SiteId site) {
  if (site >= net_.site_count()) {
    return;
  }
  if (places_[site] != nullptr) {
    return;  // Already up.
  }
  net_.RestartSite(site);
  CreatePlace(site);
}

// --- Reliable transport ---------------------------------------------------------

SimTime Kernel::Jittered(SimTime base) {
  double jitter = options_.reliability.retry_jitter;
  if (jitter <= 0) {
    return base;
  }
  double factor = 1.0 + jitter * (2.0 * rng_.UniformDouble() - 1.0);
  return std::max<SimTime>(1, static_cast<SimTime>(static_cast<double>(base) * factor));
}

void Kernel::ScheduleRetry(uint64_t id, SimTime delay) {
  sim_.After(delay, [this, id] { RetryTick(id); });
}

void Kernel::RetryTick(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;  // Acked, nacked, or abandoned since this tick was scheduled.
  }
  PendingTransfer& t = it->second;
  const ReliabilityOptions& r = options_.reliability;
  bool out_of_attempts = r.max_attempts > 0 && t.attempts >= r.max_attempts;
  bool past_deadline = r.deadline > 0 && sim_.Now() >= t.first_sent + r.deadline;
  if (out_of_attempts || past_deadline) {
    ++stats_.transfers_expired;
    DeadLetter(t, out_of_attempts ? "retry attempts exhausted" : "deadline passed");
    pending_.erase(it);
    return;
  }
  ++t.attempts;
  // A send refused right now (destination down, no route) still consumes an
  // attempt; the next backoff may find the site restarted or a link restored.
  Status sent = net_.Send(t.from, t.to, t.frame);
  if (sent.ok()) {
    ++stats_.transfers_sent;
    ++stats_.retries_sent;
  }
  t.backoff = std::min(
      r.retry_max, static_cast<SimTime>(static_cast<double>(t.backoff) *
                                        std::max(1.0, r.retry_multiplier)));
  ScheduleRetry(id, Jittered(t.backoff));
}

void Kernel::DeadLetter(const PendingTransfer& transfer, const std::string& reason) {
  if (transfer.dead_letter.empty()) {
    return;  // Nobody designated: the expiry/nack counters tell the story.
  }
  Place* origin = place(transfer.from);
  auto bc = Briefcase::Deserialize(transfer.briefcase);
  if (origin == nullptr || !bc.ok()) {
    ++stats_.dead_letters_dropped;
    return;
  }
  Briefcase briefcase = std::move(bc).value();
  briefcase.SetString("DEADLETTER_REASON", reason);
  briefcase.SetString("DEADLETTER_HOST", net_.site_name(transfer.to));
  briefcase.SetString("DEADLETTER_CONTACT", transfer.contact);
  Status met = origin->Meet(transfer.dead_letter, briefcase);
  if (met.ok()) {
    ++stats_.dead_letters_delivered;
  } else {
    ++stats_.dead_letters_dropped;
    TLOG_WARN << "site " << origin->name() << ": dead-letter contact \""
              << transfer.dead_letter << "\" refused return of transfer to "
              << net_.site_name(transfer.to) << ": " << met.ToString();
  }
}

bool Kernel::SeenOrRecord(SiteId to, SiteId from, uint64_t id) {
  DedupWindow& window = dedup_[to][from];
  if (window.seen.contains(id)) {
    return true;
  }
  window.seen.insert(id);
  window.order.push_back(id);
  size_t cap = options_.reliability.dedup_window;
  while (cap > 0 && window.order.size() > cap) {
    window.seen.erase(window.order.front());
    window.order.pop_front();
  }
  if (options_.reliability.durable_dedup) {
    AppendDedupJournal(to, from, id);
  }
  return false;
}

void Kernel::AppendDedupJournal(SiteId to, SiteId from, uint64_t id) {
  Encoder enc;
  enc.PutU32(from);
  enc.PutU64(id);
  (void)disk(to).Append(kDedupJournalFile, enc.Take());
}

void Kernel::LoadDedupJournal(SiteId site) {
  MemDisk& d = disk(site);
  if (!d.Exists(kDedupJournalFile)) {
    return;
  }
  auto data = d.Read(kDedupJournalFile);
  if (!data.ok()) {
    return;
  }
  Decoder dec(*data);
  uint32_t from = 0;
  uint64_t id = 0;
  while (dec.GetU32(&from) && dec.GetU64(&id)) {
    DedupWindow& window = dedup_[site][from];
    if (window.seen.insert(id).second) {
      window.order.push_back(id);
      size_t cap = options_.reliability.dedup_window;
      while (cap > 0 && window.order.size() > cap) {
        window.seen.erase(window.order.front());
        window.order.pop_front();
      }
    }
  }
  // Compact: rewrite the journal with just the retained windows so repeated
  // crash/restart cycles don't replay an ever-growing file.
  Encoder enc;
  for (const auto& [sender, window] : dedup_[site]) {
    for (uint64_t kept : window.order) {
      enc.PutU32(sender);
      enc.PutU64(kept);
    }
  }
  (void)d.Write(kDedupJournalFile, enc.Take());
}

Status Kernel::TransferAgent(SiteId from, SiteId to, const std::string& contact,
                             const Briefcase& bc) {
  return TransferAgent(from, to, contact, bc, TransferOptions{});
}

Status Kernel::TransferAgent(SiteId from, SiteId to, const std::string& contact,
                             const Briefcase& bc,
                             const TransferOptions& transfer_options) {
  // Guard nonexistent site ids here rather than relying on what the network
  // happens to do with them.
  if (from >= net_.site_count() || to >= net_.site_count()) {
    ++stats_.transfers_rejected;
    return NotFoundError("transfer references unknown site id " +
                         std::to_string(from >= net_.site_count() ? from : to));
  }
  Reliability mode = transfer_options.mode.value_or(options_.reliability.mode);
  uint64_t id = ++next_transfer_id_;
  uint8_t flags = 0;
  if (mode == Reliability::kAtMostOnce) {
    flags = kFlagDedup;
  } else if (mode == Reliability::kReliable) {
    flags = kFlagDedup | kFlagWantAck;
  }

  Encoder enc;
  enc.PutU8(kFrameData);
  enc.PutU64(id);
  enc.PutU8(flags);
  enc.PutString(contact);
  bc.Encode(&enc);
  Bytes frame = enc.Take();

  Status sent = net_.Send(from, to, frame);
  if (mode != Reliability::kReliable) {
    if (!sent.ok()) {
      ++stats_.transfers_rejected;
      return sent;
    }
    ++stats_.transfers_sent;
    return OkStatus();
  }

  // Reliable: even a send the network refuses right now (destination down,
  // partition) is accepted and queued — the retry loop rides out the outage
  // or dead-letters the briefcase when the budget runs dry.
  if (sent.ok()) {
    ++stats_.transfers_sent;
  }
  ++stats_.transfers_reliable;
  PendingTransfer t;
  t.from = from;
  t.to = to;
  t.contact = contact;
  t.dead_letter = transfer_options.dead_letter;
  t.frame = std::move(frame);
  t.briefcase = bc.Serialize();
  t.attempts = 1;
  t.first_sent = sim_.Now();
  t.backoff = options_.reliability.retry_initial;
  pending_.emplace(id, std::move(t));
  ScheduleRetry(id, Jittered(options_.reliability.retry_initial));
  return OkStatus();
}

void Kernel::SendControl(uint8_t kind, SiteId from_site, SiteId to_site, uint64_t id,
                         const std::string& reason) {
  Encoder enc;
  enc.PutU8(kind);
  enc.PutU64(id);
  if (kind == kFrameNack) {
    enc.PutString(reason);
  }
  // Best effort: a lost ack is repaired by the sender's retry + our dedup
  // window; a lost nack by retry + repeated nack.
  (void)net_.Send(from_site, to_site, enc.Take());
  if (kind == kFrameAck) {
    ++stats_.acks_sent;
  } else {
    ++stats_.nacks_sent;
  }
}

void Kernel::HandleDelivery(SiteId to, SiteId from, const Bytes& payload) {
  Place* destination = place(to);
  if (destination == nullptr) {
    ++stats_.meets_failed_on_arrival;
    return;
  }
  Decoder dec(payload);
  uint8_t kind = 0;
  if (!dec.GetU8(&kind)) {
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name() << ": empty transfer frame";
    return;
  }
  switch (kind) {
    case kFrameData:
      HandleData(to, from, destination, &dec);
      return;
    case kFrameAck:
      HandleAck(to, &dec);
      return;
    case kFrameNack:
      HandleNack(to, &dec);
      return;
    default:
      ++stats_.meets_failed_on_arrival;
      TLOG_WARN << "site " << destination->name()
                << ": malformed agent transfer (unknown frame kind "
                << static_cast<int>(kind) << ")";
  }
}

void Kernel::HandleData(SiteId to, SiteId from, Place* destination, Decoder* dec) {
  uint64_t id = 0;
  uint8_t flags = 0;
  std::string contact;
  if (!dec->GetU64(&id) || !dec->GetU8(&flags) || !dec->GetString(&contact)) {
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name() << ": malformed agent transfer";
    return;
  }
  auto bc = Briefcase::Decode(dec);
  if (!bc.ok()) {
    // The frame is corrupt: no ack/nack (the sender's retransmission carries
    // an intact copy).
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name()
              << ": corrupt briefcase in transfer: " << bc.status().ToString();
    return;
  }
  bool want_ack = (flags & kFlagWantAck) != 0;
  if ((flags & kFlagDedup) != 0 && SeenOrRecord(to, from, id)) {
    // Retransmission of a transfer that already activated (its ack was
    // lost).  Suppress the duplicate but re-ack so the sender stops.
    ++stats_.duplicates_suppressed;
    if (want_ack) {
      SendControl(kFrameAck, to, from, id, "");
    }
    return;
  }
  ++stats_.transfers_delivered;
  Briefcase briefcase = std::move(bc).value();
  // Record provenance for agents that care where they came from.
  briefcase.SetString("FROM", net_.site_name(from));
  Status met = destination->Meet(contact, briefcase);
  if (!met.ok()) {
    ++stats_.meets_failed_on_arrival;
    destination->RecordArrivalMeetFailure();
    TLOG_WARN << "site " << destination->name() << ": arrival meet with \"" << contact
              << "\" from " << net_.site_name(from) << " failed: " << met.ToString();
    // Structural refusals — no such contact, admission rejection, malformed
    // briefcase contents — bounce the briefcase back to the sender's
    // dead-letter contact.  A runtime error inside the agent is still a
    // successful dispatch and acks normally.
    bool structural = met.code() == StatusCode::kNotFound ||
                      met.code() == StatusCode::kPermissionDenied ||
                      met.code() == StatusCode::kInvalidArgument;
    if (want_ack && structural) {
      SendControl(kFrameNack, to, from, id, met.ToString());
      return;
    }
  }
  if (want_ack) {
    SendControl(kFrameAck, to, from, id, "");
  }
}

void Kernel::HandleAck(SiteId to, Decoder* dec) {
  uint64_t id = 0;
  if (!dec->GetU64(&id)) {
    return;
  }
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.from != to) {
    return;  // Duplicate ack, or the origin crashed and abandoned the entry.
  }
  ++stats_.transfers_acked;
  pending_.erase(it);
}

void Kernel::HandleNack(SiteId to, Decoder* dec) {
  uint64_t id = 0;
  std::string reason;
  if (!dec->GetU64(&id) || !dec->GetString(&reason)) {
    return;
  }
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.from != to) {
    return;
  }
  ++stats_.transfers_nacked;
  DeadLetter(it->second, reason);
  pending_.erase(it);
}

Status Kernel::LaunchAgent(SiteId site, const std::string& code, Briefcase bc) {
  Place* destination = place(site);
  if (destination == nullptr) {
    return UnavailableError("site is down");
  }
  bc.folder(kCodeFolder).Clear();
  bc.folder(kCodeFolder).PushBackString(code);
  return destination->Meet("ag_tacl", bc);
}

}  // namespace tacoma
