#include "core/kernel.h"

#include "serial/encoder.h"
#include "util/log.h"

namespace tacoma {

Kernel::Kernel(KernelOptions options)
    : options_(options), net_(&sim_), rng_(options.seed) {
  // Keep every place's site-local SITES folder (§2) in sync with topology.
  net_.SetTopologyHook([this](SiteId a, SiteId b) {
    for (SiteId site : {a, b}) {
      if (site < places_.size() && places_[site] != nullptr) {
        PopulateSitesFolder(*places_[site]);
      }
    }
  });
}

Kernel::~Kernel() = default;

SiteId Kernel::AddSite(const std::string& name) {
  SiteId id = net_.AddSite(name);
  CreatePlace(id);
  return id;
}

void Kernel::AdoptNetworkSites() {
  for (SiteId id = 0; id < net_.site_count(); ++id) {
    if (id >= places_.size() || places_[id] == nullptr) {
      CreatePlace(id);
    } else {
      // Topology may have grown since creation: refresh neighbour folders.
      PopulateSitesFolder(*places_[id]);
    }
  }
}

Place* Kernel::place(SiteId site) {
  if (site >= places_.size()) {
    return nullptr;
  }
  return places_[site].get();
}

bool Kernel::PlaceAlive(SiteId site, uint64_t generation) {
  Place* p = place(site);
  return p != nullptr && p->generation() == generation;
}

MemDisk& Kernel::disk(SiteId site) {
  while (disks_.size() <= site) {
    disks_.push_back(std::make_unique<MemDisk>());
  }
  return *disks_[site];
}

void Kernel::AddPlaceInitializer(std::function<void(Place&)> init) {
  for (auto& place : places_) {
    if (place != nullptr) {
      init(*place);
    }
  }
  place_initializers_.push_back(std::move(init));
}

void Kernel::CreatePlace(SiteId site) {
  while (places_.size() <= site) {
    places_.push_back(nullptr);
  }
  disk(site);  // Ensure the disk exists.
  auto place = std::make_unique<Place>(this, site, net_.site_name(site));
  place->set_step_limit(options_.step_limit);
  place->set_admission_policy(options_.admission_policy);
  InstallSystemAgents(*place);
  PopulateSitesFolder(*place);
  place->RecoverCabinets();
  for (const auto& init : place_initializers_) {
    init(*place);
  }
  places_[site] = std::move(place);

  net_.SetHandler(site, [this, site](SiteId from, const Bytes& payload) {
    HandleDelivery(site, from, payload);
  });
  net_.SetRestartHook(site, [](SiteId) {});
}

void Kernel::PopulateSitesFolder(Place& place) {
  // The paper's flooding example (§2) assumes a site-local SITES folder naming
  // adjacent sites; the kernel maintains it in the "system" cabinet.
  FileCabinet& cab = place.Cabinet("system");
  cab.EraseFolder(kSitesFolder);
  for (SiteId n : net_.Neighbors(place.site())) {
    cab.AppendString(kSitesFolder, net_.site_name(n));
  }
}

void Kernel::CrashSite(SiteId site) {
  if (site >= places_.size() || places_[site] == nullptr) {
    return;
  }
  net_.CrashSite(site);
  places_[site].reset();  // Volatile state gone; disk_ survives.
}

void Kernel::RestartSite(SiteId site) {
  if (site >= net_.site_count()) {
    return;
  }
  if (places_[site] != nullptr) {
    return;  // Already up.
  }
  net_.RestartSite(site);
  CreatePlace(site);
}

Status Kernel::TransferAgent(SiteId from, SiteId to, const std::string& contact,
                             const Briefcase& bc) {
  Encoder enc;
  enc.PutString(contact);
  bc.Encode(&enc);
  Status sent = net_.Send(from, to, enc.Take());
  if (!sent.ok()) {
    ++stats_.transfers_rejected;
    return sent;
  }
  ++stats_.transfers_sent;
  return OkStatus();
}

void Kernel::HandleDelivery(SiteId to, SiteId from, const Bytes& payload) {
  Place* destination = place(to);
  if (destination == nullptr) {
    ++stats_.meets_failed_on_arrival;
    return;
  }
  Decoder dec(payload);
  std::string contact;
  if (!dec.GetString(&contact)) {
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name() << ": malformed agent transfer";
    return;
  }
  auto bc = Briefcase::Decode(&dec);
  if (!bc.ok()) {
    ++stats_.meets_failed_on_arrival;
    TLOG_WARN << "site " << destination->name()
              << ": corrupt briefcase in transfer: " << bc.status().ToString();
    return;
  }
  ++stats_.transfers_delivered;
  Briefcase briefcase = std::move(bc).value();
  // Record provenance for agents that care where they came from.
  briefcase.SetString("FROM", net_.site_name(from));
  Status met = destination->Meet(contact, briefcase);
  if (!met.ok()) {
    ++stats_.meets_failed_on_arrival;
    TLOG_DEBUG << "site " << destination->name() << ": arrival meet with \"" << contact
               << "\" failed: " << met.ToString();
  }
}

Status Kernel::LaunchAgent(SiteId site, const std::string& code, Briefcase bc) {
  Place* destination = place(site);
  if (destination == nullptr) {
    return UnavailableError("site is down");
  }
  bc.folder(kCodeFolder).Clear();
  bc.folder(kCodeFolder).PushBackString(code);
  return destination->Meet("ag_tacl", bc);
}

}  // namespace tacoma
