// Kernel — binds Places to the simulated network.
//
// The kernel is the "operating system" layer of this reproduction: it owns
// the simulator, the network, the per-site disks (which survive site
// crashes), and one Place per up site.  Its single inter-site primitive is
// the agent transfer — {contact agent, briefcase} — which is exactly the
// paper's model: all communication is an agent going somewhere and meeting
// someone.
#ifndef TACOMA_CORE_KERNEL_H_
#define TACOMA_CORE_KERNEL_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/account.h"
#include "core/place.h"
#include "core/trace.h"
#include "net/transport.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/crash_disk.h"
#include "storage/disk.h"
#include "storage/disk_log.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/sampler.h"

namespace tacoma {

class ChaosHarness;
class Decoder;

// Delivery discipline for agent transfers (the end-to-end argument applied to
// the paper's §5 failure story: retransmission and duplicate suppression live
// in the kernel, under the transfer primitive, not in every agent).
//   kOff        fire-and-forget: the transfer can be silently lost in flight
//               (the paper's prototype semantics).
//   kAtMostOnce transfers carry ids and receivers suppress duplicates, but
//               nobody retries: a transfer activates zero or one times.
//   kReliable   receivers ack successful dispatch and nack structural
//               rejection; senders retry unacked transfers with exponential
//               backoff; dedup makes activation at-most-once even when an ack
//               is lost; refused/expired transfers return to a dead-letter
//               contact at the origin site.
enum class Reliability { kOff, kAtMostOnce, kReliable };

const char* ToString(Reliability mode);
// Accepts "off"/"none"/"0", "atmostonce"/"at-most-once", "reliable"/"on"/"1".
std::optional<Reliability> ParseReliability(const std::string& value);

struct ReliabilityOptions {
  Reliability mode = Reliability::kOff;
  // Retransmission schedule: attempt k is re-sent after
  // min(retry_max, retry_initial * retry_multiplier^(k-1)), jittered by
  // ±retry_jitter (drawn from the kernel Rng, so runs stay deterministic).
  SimTime retry_initial = 30 * kMillisecond;
  double retry_multiplier = 2.0;
  SimTime retry_max = 2 * kSecond;
  double retry_jitter = 0.2;
  // Budget: a transfer expires after max_attempts transmissions (0 = no
  // attempt cap) or once `deadline` has passed since the first send (0 = no
  // deadline).  Expired transfers go to the dead-letter contact.
  int max_attempts = 8;
  SimTime deadline = 0;
  // Per-sender window of transfer ids each receiver remembers for duplicate
  // suppression.
  size_t dedup_window = 512;
  // Journal the dedup window to the site's crash-surviving disk so a
  // restarted site still suppresses retries of transfers it activated before
  // the crash.
  bool durable_dedup = true;
};

// Content-addressed CODE caching (see core/codecache.h, docs/performance.md).
// When enabled, a transfer whose destination is believed to already hold the
// CODE folder's SHA-256 digest ships a 32-byte stub instead of the source;
// a receiver-side cache miss answers with a NeedCode control frame and the
// sender falls back to the full source, so delivery semantics are unchanged
// — only bytes-on-wire shrink.  Disabled, the kernel's wire behaviour is
// byte-identical to a cache-less build.
struct CodeCacheOptions {
  bool enabled = false;
  // LRU entries per Place (receiver-side content store).
  size_t capacity = 64;
  // Sender-side records kept for answering NeedCode on fire-and-forget /
  // at-most-once stub sends (reliable sends keep theirs in the pending
  // table).  Oldest records are dropped when full; a NeedCode for a dropped
  // record is ignored, which loses no more than fire-and-forget already may.
  size_t stub_record_capacity = 1024;
};

// The built-in default honours TACOMA_CODE_CACHE: "on"/"1"/"true" enables
// the cache; anything else (or unset) leaves it off.
CodeCacheOptions DefaultCodeCacheOptions();

// Continuous telemetry: per-agent resource accounting (core/account.h), the
// time-series sampler (util/sampler.h), and the flight recorder.  All three
// derive only from simulated time, so for a fixed seed two runs produce
// byte-identical ledgers, histories, and flight records.
struct TelemetryOptions {
  // Meter per-agent consumption at the kernel choke points.  Cheap (a map
  // touch per charge; bench_e15 gates the overhead at ≤5% on the E1
  // workload) and on by default, like tracing.
  bool accounting = true;
  // Bounded account table; the cheapest account is evicted past this
  // (totals stay exact).
  size_t ledger_capacity = 4096;

  // Sampler cadence for Kernel::ScheduleSampling (SampleNow works always).
  SimTime sample_interval = 10 * kMillisecond;
  // Ring entries retained per series.
  size_t sample_capacity = 240;
  // Metric names to track ("<name>" scalar or "<histogram>.p99"); empty
  // selects DefaultSampledMetrics().
  std::vector<std::string> sampled_metrics;

  // When non-empty: the flight recorder's dump target.  A chaos invariant
  // violation (via AttachFlightRecorder) or — with flight_on_log_error — any
  // TLOG_ERROR line triggers an atomic dump here; DumpFlightRecord always
  // works explicitly.
  std::string flight_path;
  bool flight_on_log_error = false;
  // Last N trace events included in a flight record.
  size_t flight_trace_tail = 256;
  // Ledger accounts and sampler points per series included.
  size_t flight_top_k = 10;
  size_t flight_series_tail = 32;
};

// The default series set: transfer flow, wire pressure, agent activity, the
// metered account totals, and the delivery-latency tail.
std::vector<std::string> DefaultSampledMetrics();

// Outcome of one billing settlement (cash/billing.h provides the standard
// WALLET-debiting hook; anything with this shape can be installed).
struct BillingOutcome {
  uint64_t billed = 0;     // ECUs actually collected.
  uint64_t shortfall = 0;  // ECUs due but not covered by the wallet.
};
// Called at the end of a (non-departed) activation with the agent's
// cumulative metered usage and what was already billed; the hook prices the
// difference and debits the briefcase.
using BillingHook = std::function<BillingOutcome(
    const AccountKey&, const ResourceAccount&, uint64_t already_billed,
    Briefcase*)>;

struct KernelOptions {
  uint64_t seed = 42;
  // Per-activation TACL command budget (0 = unlimited).
  uint64_t step_limit = 5'000'000;
  // Write-ahead logging for cabinets (durable without explicit flushes).
  bool cabinet_write_ahead = false;
  // With write-ahead cabinets: compact (snapshot + clear the log) once this
  // many mutations accumulate since the last compaction (0 = only explicit
  // Flush).  Bounds how long recovery after a crash takes; bench_e13
  // measures the trade-off.
  uint64_t cabinet_compaction_threshold = 0;
  // What every Place does with agent CODE that fails static admission
  // analysis (see tacl/analyze.h): run it anyway, warn, or reject it before
  // the interpreter sees it.
  AdmissionPolicy admission_policy = AdmissionPolicy::kWarn;
  // Full declarative admission policy table (core/admission.h).  When set it
  // wins over `admission_policy`; the enum remains as the simple façade.
  std::optional<AdmissionRules> admission_rules;
  // Record every admitted activation's actual effects and count departures
  // from its static manifest (tacl.manifest_violations).
  bool effect_monitor = true;
  // Kernel-wide cache of admission analyses, keyed by CODE digest + command
  // fingerprint.  Shared by all places and kept across RestartSite.
  size_t admission_cache_capacity = 4096;
  // Default delivery discipline for every TransferAgent call.
  ReliabilityOptions reliability;
  // Journey tracing: stamp a TRACE folder on every launch and transfer and
  // record span events into the kernel's TraceBuffer (see core/trace.h).
  bool trace_enabled = true;
  // Bounded trace buffer size; oldest events are evicted when full.
  size_t trace_capacity = 8192;
  // Migration-payload optimisation (stub CODE transfers).
  CodeCacheOptions code_cache = DefaultCodeCacheOptions();
  // Continuous telemetry (accounting, sampler, flight recorder).
  TelemetryOptions telemetry;
  // Backing store for each site's crash-surviving disk.  Default (unset):
  // an in-memory MemDisk, right for single-process sims where "crash" means
  // CrashSite.  A daemon passes a factory returning FileDisk so dedup
  // journals, cabinets, and rear-guard state survive the OS process being
  // SIGKILLed.  Called once per site, lazily.
  std::function<std::unique_ptr<Disk>(SiteId site, const std::string& name)>
      disk_factory;
};

// Per-transfer overrides for TransferAgent.
struct TransferOptions {
  // Overrides KernelOptions::reliability.mode for this transfer.
  std::optional<Reliability> mode;
  // Resident contact at the ORIGIN site that receives the briefcase back
  // (with DEADLETTER_REASON / DEADLETTER_HOST / DEADLETTER_CONTACT folders
  // added) when the receiver nacks or the retry budget expires.  Empty: the
  // briefcase is dropped and only counted.
  std::string dead_letter;
};

// Reads the agent-facing delivery preference out of a briefcase: a RELIABLE
// folder ("off"/"at-most-once"/"reliable") and a DEADLETTER folder (contact
// at the sending site).  An unparsable RELIABLE value is an error, not a
// silent downgrade.  Used by rexec/courier and the TACL movement bindings;
// both folders stay in the briefcase so the preference travels with the
// agent.
Result<TransferOptions> TransferOptionsFromBriefcase(const Briefcase& bc);

class Kernel {
 public:
  explicit Kernel(KernelOptions options = {});
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  struct Stats {
    uint64_t transfers_sent = 0;       // Accepted transmissions (retries included).
    uint64_t transfers_delivered = 0;  // Arrived and dispatched (duplicates excluded).
    uint64_t transfers_rejected = 0;   // Send refused up front.
    uint64_t meets_failed_on_arrival = 0;

    // Reliable-transport accounting.  Every transfer accepted in kReliable
    // mode ends in exactly one of: acked, nacked, expired, abandoned — or is
    // still pending (Kernel::pending_transfers()).
    uint64_t transfers_reliable = 0;   // Accepted reliable-mode transfers.
    uint64_t transfers_acked = 0;      // Receiver confirmed dispatch.
    uint64_t transfers_nacked = 0;     // Receiver refused (contact/admission).
    uint64_t transfers_expired = 0;    // Retry budget exhausted.
    uint64_t transfers_abandoned = 0;  // Origin site crashed with retries pending.
    uint64_t retries_sent = 0;         // Retransmissions accepted by the net.
    uint64_t duplicates_suppressed = 0;  // Dedup window hits at receivers.
    uint64_t acks_sent = 0;
    uint64_t nacks_sent = 0;
    uint64_t dead_letters_delivered = 0;  // Returned briefcases met their contact.
    uint64_t dead_letters_dropped = 0;    // Designated contact unreachable.
  };

  // Accounting for the kernel-wide admission-summary cache.  Content
  // addressed (CODE digest + command-surface fingerprint), so entries stay
  // valid across RestartSite; a place whose command surface changes gets a
  // new fingerprint, which strands — not corrupts — old entries.
  struct AdmissionCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  // Sender/receiver accounting for the content-addressed CODE cache (the
  // receiver-side content store's own hit/miss/eviction counters live in
  // each Place's CodeCache).  All zero while the cache is disabled.
  struct CodeCacheStats {
    uint64_t stub_sends = 0;      // Transfers shipped with a CODE_DIGEST stub.
    uint64_t full_sends = 0;      // Transfers that shipped full CODE (cache on).
    uint64_t bytes_saved = 0;     // Frame-size delta, full vs stub, per accepted send.
    uint64_t need_code_sent = 0;  // Receiver misses answered with NeedCode.
    uint64_t full_resends = 0;    // NeedCode recoveries re-sent with full source.
    uint64_t invalidations = 0;   // Sender beliefs dropped via the restart hook.
  };

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }

  // The transport frames actually travel over.  Defaults to the sim network;
  // a daemon swaps in a TcpTransport via SetTransport.  The sim Network
  // stays either way as the topology/metadata model (site names, SITES
  // folders, hop counts for billing).
  Transport& transport() { return *transport_; }
  // Re-points frame traffic (sends, delivery handlers, restart hooks) at
  // `transport`; nullptr restores the sim network.  Call before or after
  // adding sites — existing places are re-registered on the new transport.
  void SetTransport(Transport* transport);

  // --- Sites ------------------------------------------------------------------

  // Creates a network site plus its Place and disk.
  SiteId AddSite(const std::string& name);
  // Registers a site hosted by ANOTHER process (daemon mode): it gets a
  // SiteId and a name in the shared id space but no Place, no disk, and no
  // delivery handler here — frames to it leave through the transport's peer
  // table.  Every daemon must add the same sites in the same order so ids
  // agree across processes.  A restart hook is installed so a transport-level
  // reconnect drops stale CodeCache beliefs about the remote site.
  SiteId AddRemoteSite(const std::string& name);
  // True when `site` was added with AddRemoteSite.
  bool IsRemoteSite(SiteId site) const { return remote_sites_.count(site) != 0; }
  // Creates Places for sites added directly on the network (topology
  // builders); call once after building a topology.
  void AdoptNetworkSites();

  // The Place for an up site; nullptr while the site is down.
  Place* place(SiteId site);
  // True when the place at `site` is up and still the same incarnation —
  // the check timers must make before dereferencing a captured place.
  bool PlaceAlive(SiteId site, uint64_t generation);
  // Disk contents survive crashes.  Every site disk is a CrashDisk over a
  // MemDisk, so fault injection (ArmDiskCrash, the ChaosHarness) can make
  // persistence fail mid-flush; unarmed it is transparent.
  Disk& disk(SiteId site);
  size_t site_count() const { return net_.site_count(); }

  // Applied to every Place now and on every future (re)creation — modules
  // use this to install their resident service agents.
  void AddPlaceInitializer(std::function<void(Place&)> init);

  // --- Failure injection -----------------------------------------------------------

  // Kills the site: volatile Place state is lost; disk survives.
  void CrashSite(SiteId site);
  // Brings the site back with a fresh Place; flushed cabinets are recovered
  // and place initializers re-run.  A crashed/armed site disk is reset
  // (remounted) first, keeping exactly the bytes that landed before the
  // fault.
  void RestartSite(SiteId site);
  // Arms the site's disk to fail `ops_from_now` mutating operations later
  // (torn writes/partial appends keep `tear_fraction` of the payload), so a
  // subsequent CrashSite lands mid-flush.  See storage/crash_disk.h.
  void ArmDiskCrash(SiteId site, uint64_t ops_from_now, double tear_fraction = 0.5);

  // --- Agent movement -----------------------------------------------------------------

  // Ships `bc` to site `to`, where resident `contact` is met with it.
  // Asynchronous: delivery happens in simulated time.  What a loss in flight
  // means depends on the reliability mode (KernelOptions::reliability, or the
  // per-transfer override): fire-and-forget transfers vanish; reliable
  // transfers are retried until acked, nacked, or out of budget.
  Status TransferAgent(SiteId from, SiteId to, const std::string& contact,
                       const Briefcase& bc);
  Status TransferAgent(SiteId from, SiteId to, const std::string& contact,
                       const Briefcase& bc, const TransferOptions& transfer_options);

  // Reliable transfers awaiting ack/nack/expiry.
  size_t pending_transfers() const { return pending_.size(); }

  // Convenience: run `code` as an activation at `site` right now (puts CODE
  // into the briefcase and meets ag_tacl).
  Status LaunchAgent(SiteId site, const std::string& code, Briefcase bc = Briefcase());

  // --- Admission-summary cache (used by Place::Admit) -------------------------

  // Returns the cached analysis summary for `key`, or nullptr (LRU-touching
  // on hit).
  std::shared_ptr<const AdmissionSummary> LookupAdmission(const std::string& key);
  void StoreAdmission(const std::string& key,
                      std::shared_ptr<const AdmissionSummary> summary);

  const Stats& stats() const { return stats_; }
  const AdmissionCacheStats& admission_cache_stats() const {
    return admission_stats_;
  }
  const CodeCacheStats& code_cache_stats() const { return code_stats_; }
  // Storage-layer accounting (cabinet recoveries, replayed records, torn
  // tails, lost WAL appends).  Kernel-owned so it survives site crashes;
  // exported as the storage.* metrics.
  StorageStats& storage_stats() { return storage_stats_; }
  const StorageStats& storage_stats() const { return storage_stats_; }
  const KernelOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

  // --- Observability ----------------------------------------------------------

  // The per-kernel journey trace (see core/trace.h); the `probe` system agent
  // and the shell's `trace` command read from here.
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  // The unified registry.  The kernel pre-registers probes over its own
  // Stats, the network stats, the aggregated per-place stats, and the trace
  // buffer; services (mail, rearguard, brokers, ...) add theirs on Install.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // --- Continuous telemetry ---------------------------------------------------

  // The per-agent resource ledger (kernel-owned: survives site crashes).
  AccountLedger& accounts() { return accounts_; }
  const AccountLedger& accounts() const { return accounts_; }
  bool accounting_enabled() const { return options_.telemetry.accounting; }
  // Charges `frame_bytes` × the current route length from `from` to `to`
  // (plus `hops` agent-transfer hops) to `key`.  No-op with accounting off.
  void ChargeWire(const AccountKey& key, SiteId from, SiteId to,
                  size_t frame_bytes, uint64_t hops);
  // Settles an activation's metered usage against its briefcase WALLET via
  // the installed billing hook (cash/billing.h); unset = metering only.
  void SetBillingHook(BillingHook hook) { billing_ = std::move(hook); }
  void BillActivation(const AccountKey& key, Briefcase* bc);

  // The time-series sampler over this kernel's registry.
  TimeSeriesSampler& sampler() { return sampler_; }
  const TimeSeriesSampler& sampler() const { return sampler_; }
  // Takes one reading now.
  void SampleNow() { sampler_.Sample(sim_.Now()); }
  // Pre-queues sampler ticks every telemetry.sample_interval up to (and
  // including) `until`, like the chaos harness pre-generates its schedule —
  // bounded, so Simulator::Run still drains.  Call before running.
  void ScheduleSampling(SimTime until);

  // Flight recorder (flight_recorder.cc): assembles reason, sim time, the
  // metrics snapshot, the last N trace events, sampler tails, and the top-K
  // account ledger into one JSON document...
  std::string FlightRecordJson(const std::string& reason) const;
  // ...and atomically persists it (written to "<path>.tmp", then renamed).
  // Counted in flight.dumps / flight.dump_errors.
  Status DumpFlightRecord(const std::string& path, const std::string& reason);
  // Wires the harness's invariant violations to DumpFlightRecord, so every
  // soak failure leaves a post-mortem artifact at `path` (empty: the
  // telemetry.flight_path option).  Also installs the TLOG_ERROR trigger
  // when telemetry.flight_on_log_error is set.
  void AttachFlightRecorder(ChaosHarness* harness, const std::string& path = "");
  uint64_t flight_dumps() const { return flight_dumps_; }

 private:
  // Sender-side record of an unacked reliable transfer.  Lives "at" the
  // origin site: CrashSite(from) abandons it.
  struct PendingTransfer {
    SiteId from = 0;
    SiteId to = 0;
    std::string contact;
    std::string dead_letter;
    SharedBytes frame;      // Encoded DATA frame, retransmitted verbatim.
    SharedBytes briefcase;  // Serialized briefcase, for dead-letter returns.
    // While `frame` is a CODE_DIGEST stub: the full-source frame to fall
    // back to on NeedCode, and the digest whose belief that miss retracts.
    SharedBytes full_frame;
    std::string code_digest;
    int attempts = 0;   // Transmissions so far (accepted or not).
    SimTime first_sent = 0;
    SimTime backoff = 0;  // Wait before the next retransmission.
    TraceContext trace;   // Span of this transfer (zeroed when tracing is off).
    AccountKey account;   // Ledger key retransmissions are charged to.
  };
  // Sender-side NeedCode recovery record for a stubbed transfer that has no
  // pending entry (fire-and-forget / at-most-once).  Bounded FIFO.
  struct StubSend {
    SiteId from = 0;
    SiteId to = 0;
    SharedBytes full_frame;
    std::string code_digest;
    AccountKey account;  // Ledger key a NeedCode full resend is charged to.
  };
  // Receiver-side per-sender window of recently activated transfer ids.
  struct DedupWindow {
    std::deque<uint64_t> order;
    std::set<uint64_t> seen;
  };
  // A site's persistent storage: the base Disk holds the bytes (a MemDisk
  // surviving sim crashes, or a FileDisk surviving process kills — see
  // KernelOptions::disk_factory); the CrashDisk in front of it is the
  // fault-injection point.
  struct SiteDisk {
    explicit SiteDisk(std::unique_ptr<Disk> base_disk)
        : base(std::move(base_disk)), crash(base.get()) {}
    std::unique_ptr<Disk> base;
    CrashDisk crash;
  };

  void CreatePlace(SiteId site);
  void HandleDelivery(SiteId to, SiteId from, const SharedBytes& payload);
  void HandleData(SiteId to, SiteId from, Place* destination, Decoder* dec);
  void HandleAck(SiteId to, Decoder* dec);
  void HandleNack(SiteId to, Decoder* dec);
  // Receiver missed a stub's digest: fall back to the full-source frame and
  // retract the belief that `from` holds the digest.
  void HandleNeedCode(SiteId to, SiteId from, Decoder* dec);
  // Restart hook: a rebooted site lost its CodeCache, so every sender's
  // beliefs about it are stale.
  void InvalidateCodeBeliefsAbout(SiteId site);
  void RememberStubSend(uint64_t id, StubSend record);
  // `bill` (when non-null, accounting on) is the ledger key the control
  // frame's wire bytes are charged to — the agent whose transfer provoked it.
  void SendControl(uint8_t kind, SiteId from_site, SiteId to_site, uint64_t id,
                   const std::string& reason, const AccountKey* bill = nullptr);
  void ScheduleRetry(uint64_t id, SimTime delay);
  void RetryTick(uint64_t id);
  SimTime Jittered(SimTime base);
  // Returns the briefcase of a failed transfer to its dead-letter contact.
  void DeadLetter(const PendingTransfer& transfer, const std::string& reason);
  // True if (from, id) was already activated (and acked) at `to`.
  bool Seen(SiteId to, SiteId from, uint64_t id) const;
  // Records (from, id) so later retransmissions are suppressed as duplicates.
  void RecordSeen(SiteId to, SiteId from, uint64_t id);
  void AppendDedupJournal(SiteId to, SiteId from, uint64_t id);
  void LoadDedupJournal(SiteId site);
  // Installs ag_tacl, rexec, courier, diffusion, probe (system_agents.cc).
  void InstallSystemAgents(Place& place);
  // Populates the site-local SITES folder with this site's neighbours.
  void PopulateSitesFolder(Place& place);
  // Registers the kernel/network/place/trace probes with metrics_.
  void RegisterKernelMetrics();
  // Records a span event for a pending reliable transfer (no-op untraced).
  void TraceTransferEvent(const PendingTransfer& transfer, const char* name,
                          const std::string& detail);

  KernelOptions options_;
  Simulator sim_;
  Network net_;
  // Where frames go (and delivery handlers register).  &net_ by default;
  // SetTransport swaps in a real socket backend.
  Transport* transport_ = &net_;
  std::set<SiteId> remote_sites_;  // Sites hosted by other processes.
  Rng rng_;
  std::vector<std::unique_ptr<Place>> places_;    // Indexed by SiteId; null when down.
  std::vector<std::unique_ptr<SiteDisk>> disks_;  // Indexed by SiteId; survives crashes.
  std::vector<std::function<void(Place&)>> place_initializers_;
  uint64_t next_transfer_id_ = 0;
  uint64_t next_trace_id_ = 0;
  uint64_t next_span_id_ = 0;
  std::map<uint64_t, PendingTransfer> pending_;
  std::map<SiteId, std::map<SiteId, DedupWindow>> dedup_;  // Keyed receiver, sender.
  // Sender belief: known_code_[sender][dest] holds the CODE digests the
  // sender believes `dest` has cached.  Optimistic (recorded on full send,
  // and on receive for the reverse direction); corrected by NeedCode and
  // wiped by crash/restart.
  std::map<SiteId, std::map<SiteId, std::set<std::string>>> known_code_;
  std::map<uint64_t, StubSend> stub_sends_;  // Keyed by transfer id.
  std::deque<uint64_t> stub_send_order_;
  // Admission-summary cache: map + LRU order (front = least recent).
  std::map<std::string, std::shared_ptr<const AdmissionSummary>> admission_cache_;
  std::deque<std::string> admission_order_;
  AdmissionCacheStats admission_stats_;
  Stats stats_;
  CodeCacheStats code_stats_;
  StorageStats storage_stats_;
  TraceBuffer trace_;
  MetricsRegistry metrics_;
  Histogram* ack_rtt_us_ = nullptr;       // kernel.transfer_ack_rtt_us.
  Histogram* delivery_us_ = nullptr;      // kernel.transfer_delivery_us.
  AccountLedger accounts_;
  BillingHook billing_;
  TimeSeriesSampler sampler_;
  // Flight-recorder state (flight_recorder.cc).
  uint64_t flight_dumps_ = 0;
  uint64_t flight_dump_errors_ = 0;
  SimTime flight_last_dump_us_ = 0;
  bool flight_dumping_ = false;  // Re-entrancy guard (a dump may TLOG_ERROR).
  int log_hook_id_ = 0;          // Registration for the TLOG_ERROR trigger.
};

}  // namespace tacoma

#endif  // TACOMA_CORE_KERNEL_H_
