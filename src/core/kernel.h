// Kernel — binds Places to the simulated network.
//
// The kernel is the "operating system" layer of this reproduction: it owns
// the simulator, the network, the per-site disks (which survive site
// crashes), and one Place per up site.  Its single inter-site primitive is
// the agent transfer — {contact agent, briefcase} — which is exactly the
// paper's model: all communication is an agent going somewhere and meeting
// someone.
#ifndef TACOMA_CORE_KERNEL_H_
#define TACOMA_CORE_KERNEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/place.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/disk.h"
#include "util/rng.h"

namespace tacoma {

struct KernelOptions {
  uint64_t seed = 42;
  // Per-activation TACL command budget (0 = unlimited).
  uint64_t step_limit = 5'000'000;
  // Write-ahead logging for cabinets (durable without explicit flushes).
  bool cabinet_write_ahead = false;
  // What every Place does with agent CODE that fails static admission
  // analysis (see tacl/analyze.h): run it anyway, warn, or reject it before
  // the interpreter sees it.
  AdmissionPolicy admission_policy = AdmissionPolicy::kWarn;
};

class Kernel {
 public:
  explicit Kernel(KernelOptions options = {});
  ~Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  struct Stats {
    uint64_t transfers_sent = 0;
    uint64_t transfers_delivered = 0;
    uint64_t transfers_rejected = 0;   // Send refused up front.
    uint64_t meets_failed_on_arrival = 0;
  };

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }

  // --- Sites ------------------------------------------------------------------

  // Creates a network site plus its Place and disk.
  SiteId AddSite(const std::string& name);
  // Creates Places for sites added directly on the network (topology
  // builders); call once after building a topology.
  void AdoptNetworkSites();

  // The Place for an up site; nullptr while the site is down.
  Place* place(SiteId site);
  // True when the place at `site` is up and still the same incarnation —
  // the check timers must make before dereferencing a captured place.
  bool PlaceAlive(SiteId site, uint64_t generation);
  // Disk contents survive crashes.
  MemDisk& disk(SiteId site);
  size_t site_count() const { return net_.site_count(); }

  // Applied to every Place now and on every future (re)creation — modules
  // use this to install their resident service agents.
  void AddPlaceInitializer(std::function<void(Place&)> init);

  // --- Failure injection -----------------------------------------------------------

  // Kills the site: volatile Place state is lost; disk survives.
  void CrashSite(SiteId site);
  // Brings the site back with a fresh Place; flushed cabinets are recovered
  // and place initializers re-run.
  void RestartSite(SiteId site);

  // --- Agent movement -----------------------------------------------------------------

  // Ships `bc` to site `to`, where resident `contact` is met with it.
  // Asynchronous: delivery happens in simulated time and can be lost to
  // failures in flight.
  Status TransferAgent(SiteId from, SiteId to, const std::string& contact,
                       const Briefcase& bc);

  // Convenience: run `code` as an activation at `site` right now (puts CODE
  // into the briefcase and meets ag_tacl).
  Status LaunchAgent(SiteId site, const std::string& code, Briefcase bc = Briefcase());

  const Stats& stats() const { return stats_; }
  const KernelOptions& options() const { return options_; }
  Rng& rng() { return rng_; }

 private:
  void CreatePlace(SiteId site);
  void HandleDelivery(SiteId to, SiteId from, const Bytes& payload);
  // Installs ag_tacl, rexec, courier, diffusion (system_agents.cc).
  void InstallSystemAgents(Place& place);
  // Populates the site-local SITES folder with this site's neighbours.
  void PopulateSitesFolder(Place& place);

  KernelOptions options_;
  Simulator sim_;
  Network net_;
  Rng rng_;
  std::vector<std::unique_ptr<Place>> places_;    // Indexed by SiteId; null when down.
  std::vector<std::unique_ptr<MemDisk>> disks_;   // Indexed by SiteId; survives crashes.
  std::vector<std::function<void(Place&)>> place_initializers_;
  Stats stats_;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_KERNEL_H_
