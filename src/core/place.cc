#include "core/place.h"

#include <algorithm>

#include "core/kernel.h"
#include "core/trace.h"
#include "crypto/sha256.h"
#include "util/log.h"

namespace tacoma {

namespace {
constexpr int kMaxMeetDepth = 64;
uint64_t g_place_generation = 0;
}  // namespace

Place::Place(Kernel* kernel, SiteId site, std::string name)
    : kernel_(kernel),
      site_(site),
      name_(std::move(name)),
      generation_(++g_place_generation),
      rng_(kernel->rng().Next()) {}

void Place::RegisterAgent(const std::string& agent, MeetHandler handler) {
  residents_[agent] = std::move(handler);
}

void Place::RegisterTaclAgent(const std::string& agent, const std::string& script) {
  RegisterAgent(agent, [script, agent](Place& place, Briefcase& bc) {
    return place.RunAgentCode(script, bc, agent);
  });
}

bool Place::HasAgent(const std::string& agent) const {
  return residents_.contains(agent);
}

bool Place::RemoveAgent(const std::string& agent) {
  return residents_.erase(agent) > 0;
}

std::vector<std::string> Place::AgentNames() const {
  std::vector<std::string> names;
  names.reserve(residents_.size());
  for (const auto& [name, handler] : residents_) {
    names.push_back(name);
  }
  return names;
}

Status Place::Meet(const std::string& agent, Briefcase& bc) {
  auto it = residents_.find(agent);
  if (it == residents_.end()) {
    ++stats_.failed_meets;
    return NotFoundError("no agent \"" + agent + "\" at site " + name_);
  }
  if (meet_depth_ >= kMaxMeetDepth) {
    ++stats_.failed_meets;
    return ResourceExhaustedError("meet recursion too deep at site " + name_);
  }
  ++stats_.meets;
  ++meet_depth_;
  // Copy the handler: the resident may be replaced or removed during the meet
  // (e.g. an agent that re-registers itself), which would invalidate `it`.
  MeetHandler handler = it->second;
  Status status = handler(*this, bc);
  --meet_depth_;
  if (!status.ok()) {
    ++stats_.failed_meets;
  }
  return status;
}

FileCabinet& Place::Cabinet(const std::string& cabinet) {
  auto it = cabinets_.find(cabinet);
  if (it != cabinets_.end()) {
    return *it->second;
  }
  auto fresh = std::make_unique<FileCabinet>(cabinet);
  fresh->AttachStorage(
      std::make_unique<DiskLog>(&kernel_->disk(site_), "cab." + cabinet),
      kernel_->options().cabinet_write_ahead);
  fresh->set_storage_stats(&kernel_->storage_stats());
  fresh->set_compaction_threshold(kernel_->options().cabinet_compaction_threshold);
  FileCabinet& ref = *fresh;
  cabinets_.emplace(cabinet, std::move(fresh));
  return ref;
}

bool Place::HasCabinet(const std::string& cabinet) const {
  return cabinets_.contains(cabinet);
}

std::vector<std::string> Place::CabinetNames() const {
  std::vector<std::string> names;
  names.reserve(cabinets_.size());
  for (const auto& [name, cab] : cabinets_) {
    names.push_back(name);
  }
  return names;
}

void Place::RecoverCabinets() {
  // Cabinet storage files are named "cab.<name>.snap" / "cab.<name>.log"; a
  // "cab.<name>.snap.tmp" is an in-flight compaction a crash abandoned — not
  // a cabinet of its own, and superseded by whatever the .snap holds.
  for (const std::string& file : kernel_->disk(site_).List()) {
    if (file.rfind("cab.", 0) != 0 || file.ends_with(".tmp")) {
      continue;
    }
    size_t dot = file.rfind('.');
    if (dot == std::string::npos || dot <= 4) {
      continue;
    }
    std::string cabinet = file.substr(4, dot - 4);
    if (cabinets_.contains(cabinet)) {
      continue;
    }
    FileCabinet& cab = Cabinet(cabinet);
    Status recovered = cab.Recover();
    if (!recovered.ok()) {
      TLOG_WARN << "site " << name_ << ": cabinet " << cabinet
                << " recovery failed: " << recovered.ToString();
    }
  }
}

void Place::EmitAgentOutput(const std::string& line) {
  if (agent_output_) {
    agent_output_(line);
  } else {
    TLOG_INFO << "[" << name_ << "] " << line;
  }
}

AdmissionPolicy Place::admission_policy() const {
  switch (admission_rules_.mode) {
    case AdmissionRules::Mode::kOff:
      return AdmissionPolicy::kOff;
    case AdmissionRules::Mode::kWarn:
      return AdmissionPolicy::kWarn;
    case AdmissionRules::Mode::kEnforce:
      return AdmissionPolicy::kReject;
  }
  return AdmissionPolicy::kWarn;
}

void Place::set_admission_policy(AdmissionPolicy policy) {
  AdmissionRules rules;  // deny_errors=true, nothing else denied.
  switch (policy) {
    case AdmissionPolicy::kOff:
      rules.mode = AdmissionRules::Mode::kOff;
      break;
    case AdmissionPolicy::kWarn:
      rules.mode = AdmissionRules::Mode::kWarn;
      break;
    case AdmissionPolicy::kReject:
      rules.mode = AdmissionRules::Mode::kEnforce;
      break;
  }
  admission_rules_ = std::move(rules);
}

const std::string& Place::CommandFingerprint(const tacl::Interp& interp) {
  if (cmd_fingerprint_.empty()) {
    std::vector<std::string> names = interp.CommandNames();
    std::sort(names.begin(), names.end());
    Sha256 hasher;
    for (const std::string& name : names) {
      hasher.Update(name);
      hasher.Update(std::string_view("\n", 1));
    }
    cmd_fingerprint_ = DigestToHex(hasher.Finish()).substr(0, 16);
  }
  return cmd_fingerprint_;
}

std::shared_ptr<const AdmissionSummary> Place::Admit(const tacl::Interp& interp,
                                                     const std::string& code) {
  const std::string key =
      DigestToHex(Sha256::Hash(code)) + "/" + CommandFingerprint(interp);
  if (auto cached = kernel_->LookupAdmission(key)) {
    return cached;
  }
  tacl::AnalysisReport report = tacl::Analyze(code, AgentAnalyzerOptions(interp));
  auto summary = std::make_shared<const AdmissionSummary>(
      AdmissionSummary::FromReport(report));
  kernel_->StoreAdmission(key, summary);
  return summary;
}

Place::AdmissionDecision Place::CheckAdmission(const std::string& code) {
  AdmissionDecision decision;
  if (!cmd_fingerprint_.empty()) {
    // Fast path: the command surface is fingerprinted, so a cache hit skips
    // building the throwaway interpreter entirely.
    const std::string key =
        DigestToHex(Sha256::Hash(code)) + "/" + cmd_fingerprint_;
    if (auto cached = kernel_->LookupAdmission(key)) {
      decision.summary = std::move(cached);
      decision.violations = admission_rules_.Violations(*decision.summary);
      return decision;
    }
  }
  Activation scratch;
  Briefcase empty;
  scratch.place = this;
  scratch.briefcase = &empty;
  tacl::Interp interp;
  BindAgentPrimitives(&interp, &scratch);
  for (const Binder& binder : binders_) {
    binder(&interp, &scratch);
  }
  decision.summary = Admit(interp, code);
  decision.violations = admission_rules_.Violations(*decision.summary);
  return decision;
}

tacl::AnalysisReport Place::AnalyzeAgentCode(const std::string& code) {
  // Build a throwaway interpreter exactly like RunAgentCode would, so the
  // analysis sees every command an activation here could call.  Nothing is
  // evaluated: the bound closures are never invoked.
  Activation scratch;
  Briefcase empty;
  scratch.place = this;
  scratch.briefcase = &empty;
  tacl::Interp interp;
  BindAgentPrimitives(&interp, &scratch);
  for (const Binder& binder : binders_) {
    binder(&interp, &scratch);
  }
  return tacl::Analyze(code, AgentAnalyzerOptions(interp));
}

Status Place::RunAgentCode(const std::string& code, Briefcase& bc,
                           const std::string& agent_id) {
  ++stats_.activations;

  // Journey tracing: an activation whose briefcase carries trace context is
  // one more event on that journey's current span (the hop that brought the
  // agent here, or its launch).
  if (kernel_->options().trace_enabled) {
    if (auto ctx = TraceContext::FromBriefcase(bc)) {
      TraceEvent ev;
      ev.trace_id = ctx->trace_id;
      ev.span_id = ctx->span_id;
      ev.hop = ctx->hop;
      ev.name = "agent.activate";
      ev.site = name_;
      ev.site_id = site_;
      ev.ts = kernel_->sim().Now();
      ev.detail = agent_id;
      kernel_->trace().Record(std::move(ev));
    }
  }

  Activation activation;
  activation.place = this;
  activation.briefcase = &bc;
  activation.code = code;
  activation.agent_id = agent_id;

  tacl::Interp interp;
  interp.set_step_limit(step_limit_);
  interp.set_context(&activation);
  interp.set_output([this](const std::string& line) { EmitAgentOutput(line); });
  BindAgentPrimitives(&interp, &activation);
  for (const Binder& binder : binders_) {
    binder(&interp, &activation);
  }

  std::shared_ptr<const AdmissionSummary> summary;
  if (admission_rules_.mode != AdmissionRules::Mode::kOff) {
    summary = Admit(interp, code);
    ++stats_.admission_checks;
    std::vector<std::string> violations = admission_rules_.Violations(*summary);
    if (!violations.empty()) {
      stats_.admission_policy_violations += violations.size();
      if (admission_rules_.mode == AdmissionRules::Mode::kEnforce) {
        ++stats_.failed_activations;
        ++stats_.rejected_agents;
        return PermissionDeniedError("agent " + agent_id + " rejected at " + name_ +
                                     " by admission analysis: " + violations.front());
      }
      TLOG_WARN << "site " << name_ << ": agent " << agent_id
                << " violates admission policy (mode=warn): " << violations.front();
    }
  }

  // Soundness cross-check: record what the activation actually does and
  // compare against what the analyzer said it could do.
  tacl::EffectRecord record;
  if (effect_monitor_ && summary != nullptr) {
    activation.effects = &record;
  }

  tacl::Outcome out;
  if (interp.vm_enabled()) {
    // Digest-keyed compiled-unit fast path: the same CODE activated again at
    // this place (a warm hop, a resident TACL agent met repeatedly) skips
    // both the parse and the compile.  The key is the same SHA-256 digest
    // admission uses, so one string hash serves both caches.
    const std::string digest = DigestToHex(Sha256::Hash(code));
    std::shared_ptr<const tacl::vm::CompiledUnit> unit = code_cache_.GetUnit(digest);
    if (unit == nullptr) {
      Status compile_error = OkStatus();
      unit = interp.CompileUnit(code, &compile_error);
      if (unit == nullptr) {
        // Same shape Eval would have produced for the unparsable script.
        out = tacl::Error("parse error: " + compile_error.message());
      } else {
        code_cache_.PutUnit(digest, unit);
      }
    }
    if (unit != nullptr) {
      out = interp.RunUnit(unit);
    }
  } else {
    out = interp.Eval(code);
  }
  stats_.interp_steps += interp.steps();
  const tacl::Interp::VmStats vm = interp.vm_stats();
  stats_.vm_compiles += vm.compiles;
  stats_.vm_unit_cache_hits += vm.unit_cache_hits;
  stats_.vm_unit_cache_evictions += vm.unit_cache_evictions;
  stats_.vm_dispatches += vm.dispatches;
  stats_.vm_invokes += vm.invokes;
  stats_.vm_shimmers += vm.shimmers;
  stats_.vm_stmt_fallbacks += vm.stmt_fallbacks;
  stats_.tacl_parse_cache_evictions += interp.parse_cache_evictions();

  if (kernel_->accounting_enabled()) {
    // The activation boundary is the metering point: one activation plus
    // however many interpreter steps it burned.  Billing settles here too,
    // but only for agents still present — a departed agent's WALLET is
    // already encoded in the frame that carried it away, and its next
    // activation settles there.
    AccountKey key = AccountKeyFor(agent_id, bc);
    kernel_->accounts().ChargeActivation(key, interp.steps());
    if (!activation.departed) {
      kernel_->BillActivation(key, &bc);
    }
  }

  if (activation.effects != nullptr) {
    std::vector<std::string> drift =
        tacl::ManifestViolations(summary->manifest, record);
    stats_.manifest_violations += drift.size();
    if (!summary->manifest.dynamic_targets && !drift.empty()) {
      // The manifest claimed to be exact; drift here is an analyzer bug.
      stats_.manifest_violations_static += drift.size();
      TLOG_WARN << "site " << name_ << ": agent " << agent_id
                << " escaped its static manifest: " << drift.front();
    }
  }

  if (out.code == tacl::Code::kError) {
    ++stats_.failed_activations;
    return InternalError("agent " + agent_id + " at " + name_ + ": " + out.value);
  }
  return OkStatus();
}

}  // namespace tacoma
