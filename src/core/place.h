// Place — the per-site agent runtime.
//
// In the paper's prototype "each site runs a Tcl interpreter, which provides
// the place where agents execute" (§6).  A Place hosts:
//   - the registry of resident agents (system agents like rexec plus any
//     service agents registered by applications) and the `meet` dispatcher;
//   - the site's file cabinets;
//   - agent activations: a fresh TACL interpreter is created per activation,
//     the agent primitives are bound to it, and the agent's CODE is evaluated.
//
// Everything volatile at a site dies with the Place when the kernel crashes
// the site; cabinets flushed to disk are recovered into the next incarnation.
#ifndef TACOMA_CORE_PLACE_H_
#define TACOMA_CORE_PLACE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/admission.h"
#include "core/briefcase.h"
#include "core/cabinet.h"
#include "core/codecache.h"
#include "sim/network.h"
#include "tacl/analyze.h"
#include "tacl/interp.h"
#include "util/rng.h"
#include "util/status.h"

namespace tacoma {

class Kernel;
class Place;

// Legacy three-state admission knob, kept as a convenience façade over the
// declarative AdmissionRules table (core/admission.h):
//   kOff    run everything, analyze nothing (the pre-verifier behaviour);
//   kWarn   analyze and log violations, but admit (default: visibility first);
//   kReject refuse activations whose analysis found errors.
enum class AdmissionPolicy { kOff, kWarn, kReject };

// A resident agent's meet handler: receives the briefcase (in/out, like an
// argument list) and may use the Place freely.  "meet B with bc" runs this
// synchronously; B continuing concurrently afterwards is expressed by the
// handler scheduling follow-up work on the kernel's simulator.
using MeetHandler = std::function<Status(Place&, Briefcase&)>;

// Context for one agent activation (one evaluation of a CODE folder).
struct Activation {
  Place* place = nullptr;
  Briefcase* briefcase = nullptr;
  std::string code;          // The source being executed (for self_code).
  std::string agent_id;
  bool departed = false;     // Set once the agent has moved away.
  // When the runtime effect monitor is on, the agent primitives record the
  // operand names and counts of every effectful call here (see
  // tacl::EffectRecord); the place cross-checks the record against the static
  // manifest after evaluation.  Null = monitoring off for this activation.
  tacl::EffectRecord* effects = nullptr;
};

class Place {
 public:
  struct Stats {
    uint64_t meets = 0;
    uint64_t failed_meets = 0;
    uint64_t activations = 0;
    uint64_t failed_activations = 0;
    uint64_t rejected_agents = 0;  // Refused by admission analysis.
    uint64_t interp_steps = 0;
    // Transfers that arrived here but whose meet was refused (missing
    // contact, admission rejection, malformed briefcase).
    uint64_t arrival_meet_failures = 0;
    uint64_t admission_checks = 0;  // Activations evaluated against the rules.
    // Policy-table violations seen at admission (counted in warn mode too).
    uint64_t admission_policy_violations = 0;
    // Runtime effects outside the static manifest.  The _static variant counts
    // only activations whose manifest had dynamic_targets=false — those are
    // analyzer soundness bugs, and the chaos soak asserts the counter is zero.
    uint64_t manifest_violations = 0;
    uint64_t manifest_violations_static = 0;
    // Bytecode-VM counters, aggregated from each activation interpreter after
    // it runs (tacl::Interp::VmStats) plus the place's digest-keyed unit cache.
    uint64_t vm_compiles = 0;
    uint64_t vm_unit_cache_hits = 0;       // Per-interp (script-text keyed).
    uint64_t vm_unit_cache_evictions = 0;
    uint64_t vm_dispatches = 0;
    uint64_t vm_invokes = 0;
    uint64_t vm_shimmers = 0;
    uint64_t vm_stmt_fallbacks = 0;
    uint64_t tacl_parse_cache_evictions = 0;
  };

  Place(Kernel* kernel, SiteId site, std::string name);
  Place(const Place&) = delete;
  Place& operator=(const Place&) = delete;

  SiteId site() const { return site_; }
  const std::string& name() const { return name_; }
  Kernel* kernel() { return kernel_; }

  // Monotonically increasing across Place incarnations at a site.  Timer
  // callbacks capture (site, generation) and check both before touching the
  // place, so events scheduled by a pre-crash incarnation become no-ops.
  uint64_t generation() const { return generation_; }

  // --- Resident agents ----------------------------------------------------------

  void RegisterAgent(const std::string& agent, MeetHandler handler);
  // Registers a resident agent implemented in TACL.  On each meet the script
  // runs as an activation against the meeting briefcase.
  void RegisterTaclAgent(const std::string& agent, const std::string& script);
  bool HasAgent(const std::string& agent) const;
  bool RemoveAgent(const std::string& agent);
  std::vector<std::string> AgentNames() const;

  // --- The meet operation (§2) -----------------------------------------------------

  // Executes agent `agent` at this site with briefcase `bc`.  Synchronous;
  // returns when the met agent terminates the meet.
  Status Meet(const std::string& agent, Briefcase& bc);

  // --- File cabinets ------------------------------------------------------------------

  // Returns the named cabinet, creating it (with storage attached) if needed.
  FileCabinet& Cabinet(const std::string& name);
  bool HasCabinet(const std::string& name) const;
  std::vector<std::string> CabinetNames() const;
  // Recreates cabinets found on this site's disk (called after a restart).
  void RecoverCabinets();

  // --- Agent activations -----------------------------------------------------------------

  // Runs `code` as an agent activation with briefcase `bc`.
  Status RunAgentCode(const std::string& code, Briefcase& bc, const std::string& agent_id);

  // Per-activation command step budget (0 = unlimited).
  void set_step_limit(uint64_t limit) { step_limit_ = limit; }

  // --- Admission (static analysis of incoming CODE) ---------------------------------

  // Every activation's source is analyzed against the commands actually bound
  // at this place before it runs; the rules table decides what the resulting
  // manifest means (core/admission.h).
  const AdmissionRules& admission_rules() const { return admission_rules_; }
  void set_admission_rules(AdmissionRules rules) {
    admission_rules_ = std::move(rules);
  }

  // Legacy façade over the rules table.  kOff/kWarn/kReject map onto
  // mode=off/warn/enforce with deny_errors=true and nothing else denied,
  // preserving the original "reject on analysis errors" semantics.
  AdmissionPolicy admission_policy() const;
  void set_admission_policy(AdmissionPolicy policy);

  // Runtime effect monitor: when on, every admitted activation's actual
  // effects are recorded and cross-checked against its static manifest.
  void set_effect_monitor(bool on) { effect_monitor_ = on; }
  bool effect_monitor() const { return effect_monitor_; }

  // The admission decision for `code` at this place: the cached-or-computed
  // analysis summary plus any rules violations.  Does not count stats or
  // reject anything — RunAgentCode applies the policy; this is the
  // reproducible query form (bench, tools, tests).
  struct AdmissionDecision {
    std::shared_ptr<const AdmissionSummary> summary;
    std::vector<std::string> violations;
  };
  AdmissionDecision CheckAdmission(const std::string& code);

  // Analyzes `code` exactly as the admission check would (builtins + agent
  // primitives + every command the place's binders register), without
  // running it.  Useful for pre-flight checks and tests.
  tacl::AnalysisReport AnalyzeAgentCode(const std::string& code);

  // Extension hook: modules (cash, scheduling, fault tolerance) add binders
  // that register extra TACL commands for every activation at this place.
  using Binder = std::function<void(tacl::Interp*, Activation*)>;
  void AddBinder(Binder binder) {
    binders_.push_back(std::move(binder));
    // The command surface changed, so cached summaries keyed under the old
    // fingerprint no longer describe this place's analysis environment, and
    // cached compiled units were built against the old surface.
    cmd_fingerprint_.clear();
    code_cache_.ClearUnits();
  }

  // Where `log`/`puts` output from agents goes.
  void set_agent_output(std::function<void(const std::string&)> sink) {
    agent_output_ = std::move(sink);
  }
  void EmitAgentOutput(const std::string& line);

  const Stats& stats() const { return stats_; }
  // Called by the kernel when a transfer's arrival meet fails at this place.
  void RecordArrivalMeetFailure() { ++stats_.arrival_meet_failures; }
  Rng& rng() { return rng_; }

  // --- Content-addressed CODE cache (see core/codecache.h) --------------------------

  // Volatile like every other Place state: a crash empties it, which is why
  // the kernel invalidates sender-side beliefs about this site on restart.
  CodeCache& code_cache() { return code_cache_; }
  const CodeCache& code_cache() const { return code_cache_; }
  void set_code_cache_capacity(size_t capacity) { code_cache_.set_capacity(capacity); }

 private:
  // Returns the cached-or-computed analysis summary for `code`.  The cache
  // lives in the kernel, keyed by SHA-256 CODE digest + a fingerprint of this
  // place's command surface: identical code admitted at different places (or
  // at this site after a RestartSite) reuses one analysis, and a binder added
  // later changes the fingerprint, which invalidates stale summaries the same
  // way restart invalidates CodeCache beliefs.
  std::shared_ptr<const AdmissionSummary> Admit(const tacl::Interp& interp,
                                                const std::string& code);
  // Digest of the sorted command names `interp` exposes (lazily computed;
  // cleared by AddBinder).
  const std::string& CommandFingerprint(const tacl::Interp& interp);

  Kernel* kernel_;
  SiteId site_;
  std::string name_;
  std::map<std::string, MeetHandler> residents_;
  std::map<std::string, std::unique_ptr<FileCabinet>> cabinets_;
  std::function<void(const std::string&)> agent_output_;
  std::vector<Binder> binders_;
  uint64_t step_limit_ = 5'000'000;
  AdmissionRules admission_rules_;  // Default: mode=warn, deny errors.
  bool effect_monitor_ = true;
  std::string cmd_fingerprint_;
  uint64_t generation_ = 0;
  int meet_depth_ = 0;
  Stats stats_;
  CodeCache code_cache_;
  Rng rng_;
};

// Binds the agent primitives (bc_*, cab_*, meet, move, clone, send, ...) into
// `interp` for the given activation.  Defined in bindings.cc.
void BindAgentPrimitives(tacl::Interp* interp, Activation* activation);

// Arity signatures for everything BindAgentPrimitives registers, for the
// static analyzer.  Kept next to the registrations in bindings.cc.
const tacl::SignatureTable& AgentPrimitiveSignatures();

// Analyzer options matching an activation interpreter at admission time:
// builtin + agent-primitive signatures, plus existence of every command
// `interp` has registered (module binders included).
tacl::AnalyzerOptions AgentAnalyzerOptions(const tacl::Interp& interp);

}  // namespace tacoma

#endif  // TACOMA_CORE_PLACE_H_
