// The system agents (§2): ag_tacl, rexec, courier, diffusion.
//
// "Surprisingly, no additional abstractions are required ...  Services for
// agents — communication, synchronization, and so on — are provided directly
// by other agents."  These four are installed at every place by the kernel;
// everything else (brokers, mints, guards) is registered the same way by the
// higher-level libraries.
#include "core/kernel.h"
#include "core/place.h"
#include "crypto/sha256.h"
#include "util/log.h"

namespace tacoma {
namespace {

// ag_tacl: "pops a Tcl procedure from the CODE folder and executes that
// procedure" (§6).  Popping is deliberate — an agent that wants to keep
// moving pushes its continuation back into CODE before meeting rexec.
Status AgTacl(Place& place, Briefcase& bc) {
  Folder* code_folder = bc.Find(kCodeFolder);
  if (code_folder == nullptr || code_folder->empty()) {
    return InvalidArgumentError("ag_tacl: no CODE folder in briefcase");
  }
  std::string code = *code_folder->PopFrontString();
  if (code_folder->empty()) {
    bc.Remove(kCodeFolder);
  }
  std::string agent_id = bc.GetString("AGENT").value_or("agent");
  return place.RunAgentCode(code, bc, agent_id);
}

// rexec: "expects to find two folders in the briefcase ...: a HOST folder
// names the site where execution is to be moved and a CONTACT folder names
// the agent to be executed at that site" (§2).
Status Rexec(Place& place, Briefcase& bc) {
  auto host = bc.GetString(kHostFolder);
  if (!host.has_value()) {
    return InvalidArgumentError("rexec: no HOST folder in briefcase");
  }
  auto contact = bc.GetString(kContactFolder);
  if (!contact.has_value()) {
    return InvalidArgumentError("rexec: no CONTACT folder in briefcase");
  }
  Kernel* kernel = place.kernel();
  auto destination = kernel->net().FindSite(*host);
  if (!destination.has_value()) {
    return NotFoundError("rexec: unknown site \"" + *host + "\"");
  }
  auto transfer_options = TransferOptionsFromBriefcase(bc);
  if (!transfer_options.ok()) {
    return InvalidArgumentError("rexec: " + transfer_options.status().message());
  }
  // HOST/CONTACT are routing arguments, not agent state; strip them before
  // the briefcase travels.
  Briefcase shipped = bc;
  shipped.Remove(kHostFolder);
  shipped.Remove(kContactFolder);
  return kernel->TransferAgent(place.site(), *destination, *contact, shipped,
                               *transfer_options);
}

// courier: "transfers a folder to a specified agent on a specified machine"
// (§2) — agents communicate without meeting on a common machine.
Status Courier(Place& place, Briefcase& bc) {
  auto host = bc.GetString(kHostFolder);
  auto contact = bc.GetString(kContactFolder);
  auto folder_name = bc.GetString("FOLDER");
  if (!host || !contact || !folder_name) {
    return InvalidArgumentError("courier: needs HOST, CONTACT and FOLDER folders");
  }
  Folder* payload = bc.Find(*folder_name);
  if (payload == nullptr) {
    return InvalidArgumentError("courier: briefcase has no folder \"" + *folder_name +
                                "\"");
  }
  Kernel* kernel = place.kernel();
  auto destination = kernel->net().FindSite(*host);
  if (!destination.has_value()) {
    return NotFoundError("courier: unknown site \"" + *host + "\"");
  }
  auto transfer_options = TransferOptionsFromBriefcase(bc);
  if (!transfer_options.ok()) {
    return InvalidArgumentError("courier: " + transfer_options.status().message());
  }
  Briefcase shipped;
  shipped.folder(*folder_name) = *payload;
  shipped.SetString("FOLDER", *folder_name);
  // The courier's delivery is one more hop of the sending agent's journey:
  // carry the trace context into the fresh briefcase.
  if (const Folder* trace = bc.Find(kTraceFolder)) {
    shipped.folder(kTraceFolder) = *trace;
  }
  return kernel->TransferAgent(place.site(), *destination, *contact, shipped,
                               *transfer_options);
}

// diffusion: "executes a specified agent locally and then creates a clone of
// itself at every site that appears in the set difference of the site-local
// SITES folder and the briefcase SITES folder" (§2).
//
// Folders:
//   CODE    payload agent source (kept intact so clones carry it onward)
//   SITES   sites visited so far (the agent's own record)
//   MSGID   optional dedup key; defaults to a digest of CODE
//   MODE    "visited" (default, bounded) or "naive" (§2's unbounded clone-only
//           flooding; bound it with TTL)
//   TTL     optional hop budget for naive mode
Status Diffusion(Place& place, Briefcase& bc) {
  const Folder* code = bc.Find(kCodeFolder);
  if (code == nullptr || code->empty()) {
    return InvalidArgumentError("diffusion: no CODE folder in briefcase");
  }
  std::string mode = bc.GetString("MODE").value_or("visited");
  std::string msg_id = bc.GetString("MSGID").value_or(
      DigestToHex(Sha256::Hash(*code->Front())).substr(0, 16));
  bc.SetString("MSGID", msg_id);

  FileCabinet& system_cab = place.Cabinet("system");
  const std::string done_marker = "diffusion-done:" + msg_id;

  if (mode == "visited") {
    // "an agent can simply terminate — rather than clone — when it finds
    // itself at a site that has already been visited."
    if (system_cab.HasFolder(done_marker)) {
      return OkStatus();
    }
    system_cab.SetString(done_marker, "1");
  }

  int64_t ttl = -1;
  if (auto ttl_str = bc.GetString("TTL")) {
    ttl = std::strtoll(ttl_str->c_str(), nullptr, 10);
    if (ttl <= 0) {
      return OkStatus();  // Hop budget exhausted.
    }
  }

  // Execute the payload locally (on a copy: ag_tacl pops CODE).
  Briefcase payload_bc = bc;
  Status ran = place.Meet("ag_tacl", payload_bc);
  if (!ran.ok()) {
    TLOG_DEBUG << "diffusion payload failed at " << place.name() << ": "
               << ran.ToString();
  }

  // Record this visit in the travelling SITES folder.
  Folder& visited = bc.folder(kSitesFolder);
  if (!visited.ContainsString(place.name())) {
    visited.PushBackString(place.name());
  }
  if (ttl > 0) {
    bc.SetString("TTL", std::to_string(ttl - 1));
  }

  Kernel* kernel = place.kernel();
  for (const std::string& neighbor : system_cab.ListStrings(kSitesFolder)) {
    if (mode == "visited" && visited.ContainsString(neighbor)) {
      continue;
    }
    auto destination = kernel->net().FindSite(neighbor);
    if (!destination.has_value()) {
      continue;
    }
    Status sent = kernel->TransferAgent(place.site(), *destination, "diffusion", bc);
    if (!sent.ok()) {
      TLOG_DEBUG << "diffusion clone to " << neighbor << " failed: " << sent.ToString();
    }
  }
  return OkStatus();
}

// relay: request/reply glue in the agent model.  Meets a local TARGET agent
// with the briefcase, then ships the (mutated) briefcase back to
// REPLY_HOST/REPLY_CONTACT.  Lets a remote agent consult a stationary service
// (a mint, a broker) and get the answer couriered home — still nothing but
// agents meeting agents.
Status Relay(Place& place, Briefcase& bc) {
  auto target = bc.GetString("TARGET");
  auto reply_host = bc.GetString("REPLY_HOST");
  auto reply_contact = bc.GetString("REPLY_CONTACT");
  if (!target || !reply_host || !reply_contact) {
    return InvalidArgumentError("relay: needs TARGET, REPLY_HOST, REPLY_CONTACT");
  }
  Status met = place.Meet(*target, bc);
  if (!met.ok()) {
    bc.SetString("RELAY_ERROR", met.ToString());
  }
  Kernel* kernel = place.kernel();
  auto destination = kernel->net().FindSite(*reply_host);
  if (!destination.has_value()) {
    return NotFoundError("relay: unknown reply site \"" + *reply_host + "\"");
  }
  Briefcase reply = bc;
  reply.Remove("TARGET");
  reply.Remove("REPLY_HOST");
  reply.Remove("REPLY_CONTACT");
  return kernel->TransferAgent(place.site(), *destination, *reply_contact, reply);
}

// probe: observability as an agent, per the paper's §2 dictum that all
// services are agents.  Meet it (locally, or remotely via rexec/relay) and it
// serializes the kernel's metrics and trace state into the briefcase:
//   WHAT           "metrics" (default), "trace", "account", "series", or "all"
//   METRICS_JSON   unified registry snapshot (JSON)
//   METRICS_TEXT   the same snapshot, one "name value" line per metric
//   TRACE_JSON     the trace buffer as Chrome-trace JSON
//   ACCOUNT_JSON   the per-agent resource ledger (top 10 by metered cost)
//   SERIES_JSON    the time-series sampler's retained history
//   PROBE_SITE / PROBE_TIME_US   where and when the reading was taken
Status Probe(Place& place, Briefcase& bc) {
  std::string what = bc.GetString("WHAT").value_or("metrics");
  if (what != "metrics" && what != "trace" && what != "account" &&
      what != "series" && what != "all") {
    return InvalidArgumentError(
        "probe: WHAT must be metrics, trace, account, series, or all");
  }
  Kernel* kernel = place.kernel();
  if (what == "metrics" || what == "all") {
    bc.SetString("METRICS_JSON", kernel->metrics().JsonSnapshot());
    bc.SetString("METRICS_TEXT", kernel->metrics().TextSnapshot());
  }
  if (what == "trace" || what == "all") {
    bc.SetString("TRACE_JSON", kernel->trace().ChromeTraceJson());
  }
  if (what == "account" || what == "all") {
    bc.SetString("ACCOUNT_JSON", kernel->accounts().JsonSnapshot(10));
  }
  if (what == "series" || what == "all") {
    bc.SetString("SERIES_JSON", kernel->sampler().JsonHistory());
  }
  bc.SetString("PROBE_SITE", place.name());
  bc.SetString("PROBE_TIME_US", std::to_string(kernel->sim().Now()));
  return OkStatus();
}

}  // namespace

void Kernel::InstallSystemAgents(Place& place) {
  place.RegisterAgent("ag_tacl", AgTacl);
  place.RegisterAgent("rexec", Rexec);
  place.RegisterAgent("courier", Courier);
  place.RegisterAgent("diffusion", Diffusion);
  place.RegisterAgent("relay", Relay);
  place.RegisterAgent("probe", Probe);
}

}  // namespace tacoma
