#include "core/trace.h"

#include <cstdio>
#include <cstdlib>

#include "core/briefcase.h"

namespace tacoma {

namespace {

// Minimal JSON string escaper for event details (site names and contacts are
// plain identifiers, but status messages can quote arbitrary agent input).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string TraceContext::Encoded() const {
  return std::to_string(trace_id) + ':' + std::to_string(span_id) + ':' +
         std::to_string(hop) + ':' + std::to_string(sent_ts);
}

std::optional<TraceContext> TraceContext::Decode(const std::string& encoded) {
  TraceContext ctx;
  const char* p = encoded.c_str();
  char* end = nullptr;
  ctx.trace_id = std::strtoull(p, &end, 10);
  if (end == p || *end != ':') {
    return std::nullopt;
  }
  p = end + 1;
  ctx.span_id = std::strtoull(p, &end, 10);
  if (end == p || *end != ':') {
    return std::nullopt;
  }
  p = end + 1;
  ctx.hop = static_cast<uint32_t>(std::strtoul(p, &end, 10));
  if (end == p || *end != ':') {
    return std::nullopt;
  }
  p = end + 1;
  ctx.sent_ts = std::strtoull(p, &end, 10);
  if (end == p || *end != '\0') {
    return std::nullopt;
  }
  return ctx;
}

std::optional<TraceContext> TraceContext::FromBriefcase(const Briefcase& bc) {
  auto encoded = bc.GetString(kTraceFolder);
  if (!encoded.has_value()) {
    return std::nullopt;
  }
  return Decode(*encoded);
}

void TraceContext::Stamp(Briefcase* bc) const {
  bc->SetString(kTraceFolder, Encoded());
}

TraceBuffer::TraceBuffer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceBuffer::Record(TraceEvent event) {
  ++recorded_;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceBuffer::ForTrace(uint64_t trace_id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events_) {
    if (ev.trace_id == trace_id) {
      out.push_back(ev);
    }
  }
  return out;
}

void TraceBuffer::Clear() {
  events_.clear();
  recorded_ = 0;
  dropped_ = 0;
}

std::string TraceBuffer::ChromeTraceJson() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"" + JsonEscape(ev.name) + "\",\"cat\":\"tacoma\",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(ev.ts);
    out += ",\"dur\":" + std::to_string(ev.dur);
    out += ",\"pid\":" + std::to_string(ev.trace_id);
    out += ",\"tid\":" + std::to_string(ev.site_id);
    out += ",\"args\":{\"span\":" + std::to_string(ev.span_id) +
           ",\"parent\":" + std::to_string(ev.parent_span_id) +
           ",\"hop\":" + std::to_string(ev.hop) + ",\"site\":\"" +
           JsonEscape(ev.site) + "\",\"detail\":\"" + JsonEscape(ev.detail) + "\"}}";
  }
  out += "]}";
  return out;
}

std::string TraceBuffer::Summary() const {
  std::string out;
  for (const TraceEvent& ev : events_) {
    char head[160];
    std::snprintf(head, sizeof(head),
                  "t=%llu us trace=%llu span=%llu parent=%llu hop=%u ",
                  (unsigned long long)ev.ts, (unsigned long long)ev.trace_id,
                  (unsigned long long)ev.span_id,
                  (unsigned long long)ev.parent_span_id, ev.hop);
    out += head;
    out += ev.name + " @" + ev.site;
    if (!ev.detail.empty()) {
      out += " (" + ev.detail + ")";
    }
    out += '\n';
  }
  return out;
}

}  // namespace tacoma
