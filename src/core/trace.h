// Agent journey tracing.
//
// The paper's whole point is that computation *moves* — briefcases hop
// between places via rexec/courier/diffusion — so observability has to
// follow the journey, not any one site.  Every journey gets a trace id; each
// transfer (hop) gets a span id; both travel with the agent in a reserved
// TRACE briefcase folder, exactly like the paper carries HOST/CONTACT.  The
// kernel stamps span events at transfer send/retry/ack, arrival meet
// dispatch, activation, and clone fan-out into one bounded per-kernel
// TraceBuffer, and exports the buffer as Chrome-trace JSON
// (chrome://tracing, Perfetto) so a multi-hop journey renders as a timeline.
//
// All timestamps are simulator time: for a fixed seed, two runs produce an
// identical span sequence with identical timestamps.
#ifndef TACOMA_CORE_TRACE_H_
#define TACOMA_CORE_TRACE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace tacoma {

class Briefcase;

// The reserved folder carrying trace context with a travelling agent.
inline constexpr char kTraceFolder[] = "TRACE";

// What the TRACE folder holds: one string "<trace>:<span>:<hop>:<sent_us>".
// `span_id` is the span of the transfer (or launch) that carried the
// briefcase here; a child transfer's parent.  `sent_ts` is the sim time the
// carrying transfer was sent, so the receiver can compute per-hop latency
// (every site shares the simulator clock).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint32_t hop = 0;
  SimTime sent_ts = 0;

  std::string Encoded() const;
  static std::optional<TraceContext> Decode(const std::string& encoded);
  static std::optional<TraceContext> FromBriefcase(const Briefcase& bc);
  // Writes this context into bc's TRACE folder (overwrites).
  void Stamp(Briefcase* bc) const;
};

struct TraceEvent {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root (no carrying transfer).
  uint32_t hop = 0;
  std::string name;  // "transfer.send", "meet.dispatch", "agent.activate", ...
  std::string site;
  SiteId site_id = 0;
  SimTime ts = 0;
  SimTime dur = 0;      // 0 for instants.
  std::string detail;   // Contact, mode, status — free text.
};

// Bounded in-memory event buffer.  When full the oldest events are evicted
// (recent history wins) and counted as dropped.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 8192);

  void Record(TraceEvent event);

  const std::deque<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> ForTrace(uint64_t trace_id) const;
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return dropped_; }
  size_t capacity() const { return capacity_; }
  void Clear();

  // Chrome trace format ({"traceEvents":[...]}): one "X" event per span
  // event, pid = trace id, tid = site id, ts/dur in microseconds.  Load in
  // chrome://tracing or Perfetto to see the journey as a timeline.
  std::string ChromeTraceJson() const;
  // Human-readable one-event-per-line dump (the shell's `trace` command).
  std::string Summary() const;

 private:
  size_t capacity_;
  std::deque<TraceEvent> events_;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace tacoma

#endif  // TACOMA_CORE_TRACE_H_
