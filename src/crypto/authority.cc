#include "crypto/authority.h"

#include "serial/encoder.h"

namespace tacoma {

Bytes Signature::Serialize() const {
  Encoder enc;
  enc.PutString(principal);
  enc.PutRaw(tag.data(), tag.size());
  return enc.Take();
}

Result<Signature> Signature::Deserialize(const Bytes& in) {
  Decoder dec(in);
  Signature sig;
  if (!dec.GetString(&sig.principal) || dec.remaining() != sig.tag.size()) {
    return DataLossError("malformed signature");
  }
  Bytes rest;
  rest.assign(in.end() - static_cast<long>(sig.tag.size()), in.end());
  std::copy(rest.begin(), rest.end(), sig.tag.begin());
  return sig;
}

SignatureAuthority::SignatureAuthority(uint64_t seed)
    : drbg_([seed] {
        Encoder enc;
        enc.PutU64(seed);
        return enc.Take();
      }()) {}

void SignatureAuthority::Enroll(const std::string& principal) {
  if (keys_.contains(principal)) {
    return;
  }
  Bytes key;
  drbg_.Generate(32, &key);
  keys_.emplace(principal, std::move(key));
}

bool SignatureAuthority::IsEnrolled(const std::string& principal) const {
  return keys_.contains(principal);
}

Signature SignatureAuthority::Sign(const std::string& principal, const Bytes& message) {
  Enroll(principal);
  Signature sig;
  sig.principal = principal;
  sig.tag = HmacSha256(keys_.at(principal), message);
  return sig;
}

bool SignatureAuthority::Verify(const Signature& sig, const Bytes& message) const {
  auto it = keys_.find(sig.principal);
  if (it == keys_.end()) {
    return false;
  }
  Digest expect = HmacSha256(it->second, message);
  // Constant-time comparison (good hygiene even in a simulator).
  uint8_t diff = 0;
  for (size_t i = 0; i < expect.size(); ++i) {
    diff |= static_cast<uint8_t>(expect[i] ^ sig.tag[i]);
  }
  return diff == 0;
}

}  // namespace tacoma
