// SignatureAuthority — the repo's stand-in for a PKI.
//
// The 1995 prototype leaned on UNIX security for its electronic cash; this
// library needs the same property (receipts and ECU records that agents
// cannot forge) inside one simulated trust domain.  Each principal is issued
// a secret MAC key held by the authority; signatures are HMAC-SHA-256 tags.
// Verification goes through the authority, which is exactly the trust shape
// the paper assumed of the underlying OS.  DESIGN.md records this
// substitution.
#ifndef TACOMA_CRYPTO_AUTHORITY_H_
#define TACOMA_CRYPTO_AUTHORITY_H_

#include <map>
#include <string>

#include "crypto/hmac.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

struct Signature {
  std::string principal;  // Who signed.
  Digest tag{};           // HMAC over the message.

  Bytes Serialize() const;
  static Result<Signature> Deserialize(const Bytes& in);
};

class SignatureAuthority {
 public:
  explicit SignatureAuthority(uint64_t seed);

  // Registers a principal and issues its secret key.  Idempotent: re-enrolling
  // an existing principal keeps the original key.
  void Enroll(const std::string& principal);

  bool IsEnrolled(const std::string& principal) const;

  // Signs `message` on behalf of `principal` (enrolls it if needed).
  Signature Sign(const std::string& principal, const Bytes& message);

  // True iff `sig` is a valid tag by `sig.principal` over `message`.
  bool Verify(const Signature& sig, const Bytes& message) const;

  size_t principal_count() const { return keys_.size(); }

 private:
  HmacDrbg drbg_;
  std::map<std::string, Bytes> keys_;
};

}  // namespace tacoma

#endif  // TACOMA_CRYPTO_AUTHORITY_H_
