#include "crypto/hmac.h"

#include <cstring>

namespace tacoma {
namespace {

constexpr size_t kBlockSize = 64;

}  // namespace

Digest HmacSha256(const Bytes& key, const Bytes& message) {
  Bytes k = key;
  if (k.size() > kBlockSize) {
    Digest d = Sha256::Hash(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlockSize, 0);

  Bytes ipad(kBlockSize), opad(kBlockSize);
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad);
  inner.Update(message);
  Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

HmacDrbg::HmacDrbg(const Bytes& seed) : key_(32, 0x00), value_(32, 0x01) {
  UpdateState(seed);
}

void HmacDrbg::UpdateState(const Bytes& provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  Bytes msg = value_;
  msg.push_back(0x00);
  msg.insert(msg.end(), provided.begin(), provided.end());
  Digest k = HmacSha256(key_, msg);
  key_.assign(k.begin(), k.end());
  Digest v = HmacSha256(key_, value_);
  value_.assign(v.begin(), v.end());

  if (!provided.empty()) {
    msg = value_;
    msg.push_back(0x01);
    msg.insert(msg.end(), provided.begin(), provided.end());
    k = HmacSha256(key_, msg);
    key_.assign(k.begin(), k.end());
    v = HmacSha256(key_, value_);
    value_.assign(v.begin(), v.end());
  }
}

void HmacDrbg::Generate(size_t len, Bytes* out) {
  out->clear();
  out->reserve(len);
  while (out->size() < len) {
    Digest v = HmacSha256(key_, value_);
    value_.assign(v.begin(), v.end());
    size_t take = std::min(len - out->size(), value_.size());
    out->insert(out->end(), value_.begin(), value_.begin() + take);
  }
  UpdateState(Bytes());
}

uint64_t HmacDrbg::NextU64() {
  Bytes b;
  Generate(8, &b);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(b[i]) << (8 * i);
  }
  return v;
}

void HmacDrbg::Reseed(const Bytes& extra) { UpdateState(extra); }

}  // namespace tacoma
