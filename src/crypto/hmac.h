// HMAC-SHA-256 (RFC 2104) and an HMAC-based deterministic random bit
// generator in the style of HMAC-DRBG (NIST SP 800-90A, simplified: no
// personalization string or prediction resistance — the simulator is one
// trust domain and the generator only needs unguessable, reproducible
// streams).
#ifndef TACOMA_CRYPTO_HMAC_H_
#define TACOMA_CRYPTO_HMAC_H_

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace tacoma {

// One-shot HMAC-SHA-256.
Digest HmacSha256(const Bytes& key, const Bytes& message);

class HmacDrbg {
 public:
  explicit HmacDrbg(const Bytes& seed);

  // Fills `out` with the next `len` deterministic pseudo-random bytes.
  void Generate(size_t len, Bytes* out);

  // Convenience: next 64-bit value.
  uint64_t NextU64();

  // Mixes additional entropy into the state.
  void Reseed(const Bytes& extra);

 private:
  void UpdateState(const Bytes& provided);

  Bytes key_;
  Bytes value_;
};

}  // namespace tacoma

#endif  // TACOMA_CRYPTO_HMAC_H_
