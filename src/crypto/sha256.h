// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for electronic-cash serial derivation, receipt digests, and the
// HMAC/DRBG constructions in this library.  Incremental interface plus a
// one-shot helper.
#ifndef TACOMA_CRYPTO_SHA256_H_
#define TACOMA_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "util/bytes.h"

namespace tacoma {

using Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void Update(const uint8_t* data, size_t len);
  // BytesView accepts Bytes and SharedBytes alike without copying.
  void Update(BytesView data);
  void Update(std::string_view data);

  // Finalizes and returns the digest.  The hasher must not be reused after
  // Finish() without calling Reset().
  Digest Finish();

  void Reset();

  // One-shot convenience.
  static Digest Hash(BytesView data);
  static Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

// Digest helpers.
Bytes DigestToBytes(const Digest& d);
std::string DigestToHex(const Digest& d);

}  // namespace tacoma

#endif  // TACOMA_CRYPTO_SHA256_H_
