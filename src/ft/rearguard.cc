#include "ft/rearguard.h"

#include "core/trace.h"
#include "tacl/list.h"
#include "util/log.h"

namespace tacoma::ft {

RearGuard::RearGuard(Kernel* kernel, GuardOptions options)
    : kernel_(kernel), options_(options) {}

std::string RearGuard::Key(const std::string& agent, uint32_t seq) {
  return agent + "#" + std::to_string(seq);
}

RearGuard::SiteTable& RearGuard::TableFor(Place& place) {
  SiteTable& table = tables_[place.site()];
  if (table.generation != place.generation()) {
    // New incarnation: the old guards died with the old place.
    table.records.clear();
    table.retired_agents.clear();
    table.generation = place.generation();
  }
  return table;
}

const RearGuard::SiteTable* RearGuard::PeekTable(SiteId site) const {
  auto it = tables_.find(site);
  if (it == tables_.end()) {
    return nullptr;
  }
  Place* place = const_cast<Kernel*>(kernel_)->place(site);
  if (place == nullptr || place->generation() != it->second.generation) {
    return nullptr;
  }
  return &it->second;
}

size_t RearGuard::GuardCount(SiteId site) const {
  const SiteTable* table = PeekTable(site);
  if (table == nullptr) {
    return 0;
  }
  size_t live = 0;
  for (const auto& [key, rec] : table->records) {
    if (!rec.retired) {
      ++live;
    }
  }
  return live;
}

size_t RearGuard::TotalGuards() const {
  size_t total = 0;
  for (const auto& [site, table] : tables_) {
    total += GuardCount(site);
  }
  return total;
}

void RearGuard::Install() {
  RearGuard* self = this;
  MetricsRegistry& metrics = kernel_->metrics();
  metrics.AddProbe("ft.rearguard.deposits", [self] { return self->stats_.deposits; });
  metrics.AddProbe("ft.rearguard.pings_sent",
                   [self] { return self->stats_.pings_sent; });
  metrics.AddProbe("ft.rearguard.replies_received",
                   [self] { return self->stats_.replies_received; });
  metrics.AddProbe("ft.rearguard.relaunches",
                   [self] { return self->stats_.relaunches; });
  metrics.AddProbe("ft.rearguard.retire_waves",
                   [self] { return self->stats_.retire_waves; });
  metrics.AddProbe("ft.rearguard.records_retired",
                   [self] { return self->stats_.records_retired; });
  kernel_->AddPlaceInitializer([self](Place& place) {
    place.RegisterAgent("rearguard", [self](Place& at, Briefcase& bc) {
      return self->OnMeet(at, bc);
    });

    place.AddBinder([self](tacl::Interp* interp, Activation* activation) {
      using tacl::Error;
      using tacl::Ok;
      using tacl::Outcome;

      // ft_jump next — checkpoint with the local rear guard, then move on.
      interp->Register(
          "ft_jump", [self, activation](tacl::Interp&,
                                        const std::vector<std::string>& argv) {
            if (argv.size() != 2) {
              return Error("wrong # args: should be \"ft_jump host\"");
            }
            if (activation->departed) {
              return Error("agent has departed this site");
            }
            Briefcase& bc = *activation->briefcase;
            Place& here = *activation->place;
            const std::string& next = argv[1];

            std::string agent = bc.GetString("GUARD_AGENT").value_or(
                activation->agent_id.empty() ? "agent" : activation->agent_id);
            uint32_t seq = 0;
            if (auto s = tacl::ParseInt(bc.GetString("GUARD_SEQ").value_or("0"))) {
              seq = static_cast<uint32_t>(std::max<int64_t>(0, *s));
            }
            std::string prev = bc.GetString("GUARD_PREV").value_or("");

            // Prepare the post-hop briefcase state, then checkpoint it with
            // the code pushed so a relaunch restarts the same program.
            bc.SetString("GUARD_AGENT", agent);
            bc.SetString("GUARD_SEQ", std::to_string(seq + 1));
            bc.SetString("GUARD_PREV", here.name());
            Briefcase checkpoint = bc;
            checkpoint.folder(kCodeFolder).PushFrontString(activation->code);

            Briefcase deposit;
            deposit.SetString("GUARD_OP", "deposit");
            deposit.SetString("GUARD_AGENT", agent);
            deposit.SetString("GUARD_SEQ", std::to_string(seq));
            deposit.SetString("GUARD_NEXT", next);
            deposit.SetString("GUARD_RECORD_PREV", prev);
            deposit.folder("CKPT").PushBack(checkpoint.Serialize());
            Status deposited = here.Meet("rearguard", deposit);
            if (!deposited.ok()) {
              return Error("ft_jump: " + deposited.ToString());
            }

            // Now the ordinary jump (push code, rexec).
            bc.folder(kCodeFolder).PushFrontString(activation->code);
            bc.SetString(kHostFolder, next);
            bc.SetString(kContactFolder, "ag_tacl");
            Status moved = here.Meet("rexec", bc);
            if (!moved.ok()) {
              bc.folder(kCodeFolder).PopFront();
              bc.Remove(kHostFolder);
              bc.Remove(kContactFolder);
              return Error("ft_jump: " + moved.ToString());
            }
            activation->departed = true;
            return Outcome{tacl::Code::kReturn, ""};
          });

      // ft_retire — the computation finished; unwind the guard chain.
      interp->Register(
          "ft_retire", [self, activation](tacl::Interp&,
                                          const std::vector<std::string>& argv) {
            if (argv.size() != 1) {
              return Error("wrong # args: should be \"ft_retire\"");
            }
            Briefcase& bc = *activation->briefcase;
            Briefcase wave;
            wave.SetString("GUARD_OP", "retire_wave");
            wave.SetString("GUARD_AGENT", bc.GetString("GUARD_AGENT").value_or(
                                              activation->agent_id));
            wave.SetString("GUARD_PREV", bc.GetString("GUARD_PREV").value_or(""));
            Status s = activation->place->Meet("rearguard", wave);
            if (!s.ok()) {
              return Error("ft_retire: " + s.ToString());
            }
            return Ok();
          });
    });
  });
}

Status RearGuard::OnMeet(Place& place, Briefcase& bc) {
  auto op = bc.GetString("GUARD_OP").value_or("");
  if (op == "deposit") {
    return HandleDeposit(place, bc);
  }
  if (op == "status") {
    return HandleStatusRequest(place, bc);
  }
  if (op == "status_rsp") {
    return HandleStatusReply(place, bc);
  }
  if (op == "retire_wave") {
    return HandleRetire(place, bc, /*is_wave_origin=*/true);
  }
  if (op == "retire") {
    return HandleRetire(place, bc, /*is_wave_origin=*/false);
  }
  return InvalidArgumentError("rearguard: unknown GUARD_OP \"" + op + "\"");
}

Status RearGuard::HandleDeposit(Place& place, Briefcase& bc) {
  auto agent = bc.GetString("GUARD_AGENT");
  auto seq_str = bc.GetString("GUARD_SEQ");
  auto next = bc.GetString("GUARD_NEXT");
  const Folder* ckpt = bc.Find("CKPT");
  if (!agent || !seq_str || !next || ckpt == nullptr || ckpt->empty()) {
    return InvalidArgumentError("rearguard: malformed deposit");
  }
  auto seq = tacl::ParseInt(*seq_str);
  if (!seq.has_value() || *seq < 0) {
    return InvalidArgumentError("rearguard: bad GUARD_SEQ");
  }

  GuardRecord record;
  record.agent = *agent;
  record.seq = static_cast<uint32_t>(*seq);
  record.checkpoint = *ckpt->Front();
  record.next_site = *next;
  record.prev_site = bc.GetString("GUARD_RECORD_PREV").value_or("");

  SiteTable& table = TableFor(place);
  std::string key = Key(record.agent, record.seq);
  table.records[key] = std::move(record);
  ++stats_.deposits;

  SchedulePing(place.site(), place.generation(), key);
  return OkStatus();
}

void RearGuard::SchedulePing(SiteId site, uint64_t generation, const std::string& key) {
  kernel_->sim().After(options_.heartbeat,
                       [this, site, generation, key] { PingTick(site, generation, key); });
}

void RearGuard::PingTick(SiteId site, uint64_t generation, const std::string& key) {
  if (!kernel_->PlaceAlive(site, generation)) {
    return;  // The guard died with its site.
  }
  SiteTable& table = tables_[site];
  auto it = table.records.find(key);
  if (it == table.records.end() || it->second.retired) {
    return;  // Retired or removed: the chain unwound.
  }
  GuardRecord& record = it->second;

  ++record.misses;
  if (record.misses > options_.max_misses) {
    Recover(site, record);
  }

  auto next = kernel_->net().FindSite(record.next_site);
  if (next.has_value() && kernel_->net().IsUp(*next)) {
    Briefcase ping;
    ping.SetString("GUARD_OP", "status");
    ping.SetString("GUARD_AGENT", record.agent);
    ping.SetString("GUARD_KEY", key);
    ping.SetString("REPLY_HOST", kernel_->net().site_name(site));
    // Fire-and-forget regardless of the kernel's reliability mode: a lost
    // ping is repaired by the next heartbeat, and retrying stale pings only
    // inflates the miss window under partition.
    TransferOptions fire_and_forget{.mode = Reliability::kOff};
    if (kernel_->TransferAgent(site, *next, "rearguard", ping, fire_and_forget).ok()) {
      ++stats_.pings_sent;
    }
  }

  SchedulePing(site, generation, key);
}

Status RearGuard::HandleStatusRequest(Place& place, Briefcase& bc) {
  auto agent = bc.GetString("GUARD_AGENT");
  auto key = bc.GetString("GUARD_KEY");
  auto reply_host = bc.GetString("REPLY_HOST");
  if (!agent || !key || !reply_host) {
    return InvalidArgumentError("rearguard: malformed status request");
  }

  SiteTable& table = TableFor(place);
  std::string state = "unknown";
  if (table.retired_agents.contains(*agent)) {
    state = "retired";
  } else {
    for (const auto& [k, rec] : table.records) {
      if (rec.agent == *agent && !rec.retired) {
        state = "active";
        break;
      }
    }
  }

  auto reply_site = kernel_->net().FindSite(*reply_host);
  if (!reply_site.has_value()) {
    return NotFoundError("rearguard: unknown reply site");
  }
  Briefcase reply;
  reply.SetString("GUARD_OP", "status_rsp");
  reply.SetString("GUARD_KEY", *key);
  reply.SetString("GUARD_STATE", state);
  // Heartbeat traffic, like the ping itself: the next ping re-asks.
  return kernel_->TransferAgent(place.site(), *reply_site, "rearguard", reply,
                                TransferOptions{.mode = Reliability::kOff});
}

Status RearGuard::HandleStatusReply(Place& place, Briefcase& bc) {
  auto key = bc.GetString("GUARD_KEY");
  auto state = bc.GetString("GUARD_STATE");
  if (!key || !state) {
    return InvalidArgumentError("rearguard: malformed status reply");
  }
  ++stats_.replies_received;
  SiteTable& table = TableFor(place);
  auto it = table.records.find(*key);
  if (it == table.records.end()) {
    return OkStatus();
  }
  if (*state == "active" || *state == "retired") {
    it->second.misses = 0;
  }
  if (*state == "retired") {
    it->second.retired = true;
  }
  return OkStatus();
}

Status RearGuard::HandleRetire(Place& place, Briefcase& bc, bool is_wave_origin) {
  auto agent = bc.GetString("GUARD_AGENT");
  if (!agent) {
    return InvalidArgumentError("rearguard: retire without GUARD_AGENT");
  }
  if (is_wave_origin) {
    ++stats_.retire_waves;
  }

  SiteTable& table = TableFor(place);
  table.retired_agents.insert(*agent);

  // Remove this agent's records here and forward the wave to each distinct
  // predecessor those records named.
  std::set<std::string> predecessors;
  for (auto it = table.records.begin(); it != table.records.end();) {
    if (it->second.agent == *agent) {
      if (!it->second.prev_site.empty()) {
        predecessors.insert(it->second.prev_site);
      }
      ++stats_.records_retired;
      it = table.records.erase(it);
    } else {
      ++it;
    }
  }
  // The wave origin also forwards to the hop it arrived from (the final
  // site usually holds no record for the agent — it never left).
  if (is_wave_origin) {
    std::string prev = bc.GetString("GUARD_PREV").value_or("");
    if (!prev.empty()) {
      predecessors.insert(prev);
    }
  }

  for (const std::string& prev : predecessors) {
    auto prev_site = kernel_->net().FindSite(prev);
    if (!prev_site.has_value()) {
      continue;
    }
    Briefcase wave;
    wave.SetString("GUARD_OP", "retire");
    wave.SetString("GUARD_AGENT", *agent);
    (void)kernel_->TransferAgent(place.site(), *prev_site, "rearguard", wave);
  }
  return OkStatus();
}

void RearGuard::Recover(SiteId site, GuardRecord& record) {
  if (options_.max_relaunches != 0 && record.relaunches >= options_.max_relaunches) {
    return;
  }
  auto checkpoint = Briefcase::Deserialize(record.checkpoint);
  if (!checkpoint.ok()) {
    TLOG_WARN << "rearguard: corrupt checkpoint for " << record.agent;
    return;
  }
  Briefcase bc = std::move(checkpoint).value();
  bc.SetString("GUARD_RELAUNCH", std::to_string(record.relaunches + 1));

  // Candidate destinations: the original next site, then itinerary entries
  // after it (skip the dead site and push on).  Agents typically pop the next
  // hop before jumping, so when next_site is absent from the checkpoint's
  // ITINERARY every remaining entry is downstream and a candidate.
  std::vector<std::string> candidates{record.next_site};
  if (const Folder* itinerary = bc.Find("ITINERARY")) {
    auto sites = itinerary->AsStrings();
    bool contains_next = false;
    for (const std::string& s : sites) {
      if (s == record.next_site) {
        contains_next = true;
        break;
      }
    }
    bool passed_next = !contains_next;
    for (const std::string& s : sites) {
      if (passed_next && s != record.next_site) {
        candidates.push_back(s);
      }
      if (s == record.next_site) {
        passed_next = true;
      }
    }
  }

  for (const std::string& destination : candidates) {
    auto dest = kernel_->net().FindSite(destination);
    if (!dest.has_value() || !kernel_->net().IsUp(*dest)) {
      continue;
    }
    if (!kernel_->net().HopCount(site, *dest).has_value()) {
      continue;
    }
    Status sent = kernel_->TransferAgent(site, *dest, "ag_tacl", bc);
    if (sent.ok()) {
      ++stats_.relaunches;
      ++record.relaunches;
      record.misses = 0;
      // The relaunch hop keeps the vanished agent's journey: the checkpoint
      // briefcase still carries its TRACE folder, so the transfer above
      // chained under the original trace id.  Mark the guard's intervention.
      if (kernel_->options().trace_enabled) {
        if (auto ctx = TraceContext::FromBriefcase(bc)) {
          TraceEvent ev;
          ev.trace_id = ctx->trace_id;
          ev.span_id = ctx->span_id;
          ev.hop = ctx->hop;
          ev.name = "agent.relaunch";
          ev.site = kernel_->net().site_name(site);
          ev.site_id = site;
          ev.ts = kernel_->sim().Now();
          ev.detail = bc.GetString("AGENT").value_or("agent") + " -> " + destination;
          kernel_->trace().Record(std::move(ev));
        }
      }
      return;
    }
  }
  // Nothing reachable right now: reset the miss counter and keep watching;
  // a later tick retries once something comes back.
  record.misses = 0;
}

}  // namespace tacoma::ft
