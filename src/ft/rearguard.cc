#include "ft/rearguard.h"

#include <algorithm>

#include "core/trace.h"
#include "tacl/list.h"
#include "util/log.h"

namespace tacoma::ft {
namespace {

// Durable guard-table op stream ("ftguard.log") record kinds.  The snapshot
// written on compaction reuses the record encoding, so replay is one path.
constexpr uint8_t kGOpRecord = 1;       // Insert/overwrite one guard record.
constexpr uint8_t kGOpRemove = 2;       // Erase the record at a key.
constexpr uint8_t kGOpRetireAgent = 3;  // Durably mark an agent retired.
constexpr uint8_t kGOpFence = 4;        // Raise an incarnation fence.
constexpr uint8_t kGOpRelaunch = 5;     // Bump a record's relaunch state.

}  // namespace

RearGuard::RearGuard(Kernel* kernel, GuardOptions options)
    : kernel_(kernel),
      options_(options),
      registry_(std::make_unique<CompletionRegistry>(kernel, options.durable)) {}

std::string RearGuard::Key(const std::string& agent, const std::string& branch,
                           uint32_t seq) {
  return agent + "#" + branch + "#" + std::to_string(seq);
}

std::string RearGuard::FenceKey(const std::string& agent, const std::string& branch) {
  return agent + "|" + branch;
}

RearGuard::SiteTable& RearGuard::TableFor(Place& place) {
  SiteTable& table = tables_[place.site()];
  if (table.generation != place.generation()) {
    // New incarnation: the old guards died with the old place.  (Durable
    // state is reloaded by RecoverGuards, which calls this first.)
    table.records.clear();
    table.fences.clear();
    table.retired_agents.clear();
    table.generation = place.generation();
  }
  return table;
}

const RearGuard::SiteTable* RearGuard::PeekTable(SiteId site) const {
  auto it = tables_.find(site);
  if (it == tables_.end()) {
    return nullptr;
  }
  Place* place = const_cast<Kernel*>(kernel_)->place(site);
  if (place == nullptr || place->generation() != it->second.generation) {
    return nullptr;
  }
  return &it->second;
}

size_t RearGuard::GuardCount(SiteId site) const {
  const SiteTable* table = PeekTable(site);
  if (table == nullptr) {
    return 0;
  }
  size_t live = 0;
  for (const auto& [key, rec] : table->records) {
    if (!rec.retired) {
      ++live;
    }
  }
  return live;
}

size_t RearGuard::TotalGuards() const {
  size_t total = 0;
  for (const auto& [site, table] : tables_) {
    total += GuardCount(site);
  }
  return total;
}

void RearGuard::Install() {
  RearGuard* self = this;
  MetricsRegistry& metrics = kernel_->metrics();
  metrics.AddProbe("ft.deposits", [self] { return self->stats_.deposits; });
  metrics.AddProbe("ft.pings_sent", [self] { return self->stats_.pings_sent; });
  metrics.AddProbe("ft.replies_received",
                   [self] { return self->stats_.replies_received; });
  metrics.AddProbe("ft.relaunches", [self] { return self->stats_.relaunches; });
  metrics.AddProbe("ft.retire_waves", [self] { return self->stats_.retire_waves; });
  metrics.AddProbe("ft.records_retired",
                   [self] { return self->stats_.records_retired; });
  metrics.AddProbe("ft.quenches", [self] { return self->stats_.quenches; });
  metrics.AddProbe("ft.guard_deadletters",
                   [self] { return self->stats_.guard_deadletters; });
  metrics.AddProbe("ft.lease_expiries",
                   [self] { return self->stats_.lease_expiries; });
  metrics.AddProbe("ft.recovered_records",
                   [self] { return self->stats_.recovered_records; });
  metrics.AddProbe("ft.launches",
                   [self] { return self->registry_->stats().launches; });
  metrics.AddProbe("ft.fanouts", [self] { return self->registry_->stats().fanouts; });
  metrics.AddProbe("ft.completions",
                   [self] { return self->registry_->stats().completions; });
  metrics.AddProbe("ft.deadletters",
                   [self] { return self->registry_->stats().deadletters; });
  metrics.AddProbe("ft.duplicates_quenched",
                   [self] { return self->registry_->stats().duplicates_quenched; });
  metrics.AddProbe("ft.resolved",
                   [self] { return self->registry_->stats().resolved; });
  metrics.AddProbe("ft.guards_live",
                   [self] { return static_cast<uint64_t>(self->TotalGuards()); });
  reactivation_hist_ =
      &metrics.AddHistogram("ft.relaunch_reactivation_us", SimTimeBucketsUs());

  registry_->SetResolutionHandler(
      [self](SiteId home, const std::string& agent,
             const CompletionRegistry::AgentState& state) {
        self->OnResolved(home, agent, state);
      });

  kernel_->AddPlaceInitializer([self](Place& place) {
    place.RegisterAgent("rearguard", [self](Place& at, Briefcase& bc) {
      return self->OnMeet(at, bc);
    });

    place.AddBinder([self](tacl::Interp* interp, Activation* activation) {
      using tacl::Error;
      using tacl::Ok;
      using tacl::Outcome;

      // ft_jump next — checkpoint with the local rear guard, then move on.
      interp->Register(
          "ft_jump", [self, activation](tacl::Interp&,
                                        const std::vector<std::string>& argv) {
            if (argv.size() != 2) {
              return Error("wrong # args: should be \"ft_jump host\"");
            }
            if (activation->departed) {
              return Error("agent has departed this site");
            }
            Briefcase& bc = *activation->briefcase;
            Place& here = *activation->place;
            const std::string& next = argv[1];

            std::string agent = bc.GetString("GUARD_AGENT").value_or(
                activation->agent_id.empty() ? "agent" : activation->agent_id);
            uint32_t seq = 0;
            if (auto s = tacl::ParseInt(bc.GetString("GUARD_SEQ").value_or("0"))) {
              seq = static_cast<uint32_t>(std::max<int64_t>(0, *s));
            }
            uint32_t inc = 0;
            if (auto i = tacl::ParseInt(bc.GetString("GUARD_INC").value_or("0"))) {
              inc = static_cast<uint32_t>(std::max<int64_t>(0, *i));
            }
            std::string prev = bc.GetString("GUARD_PREV").value_or("");
            std::string branch = bc.GetString("GUARD_BRANCH").value_or("");

            // Prepare the post-hop briefcase state, then checkpoint it with
            // the code pushed so a relaunch restarts the same program.  The
            // first ft_jump of an undeclared launch stamps GUARD_HOME: the
            // site the computation's outcome must report back to.
            bc.SetString("GUARD_AGENT", agent);
            if (!bc.Has("GUARD_HOME")) {
              bc.SetString("GUARD_HOME", here.name());
            }
            bc.SetString("GUARD_INC", std::to_string(inc));
            bc.SetString("GUARD_SEQ", std::to_string(seq + 1));
            bc.SetString("GUARD_PREV", here.name());
            Briefcase checkpoint = bc;
            checkpoint.folder(kCodeFolder).PushFrontString(activation->code);

            Briefcase deposit;
            deposit.SetString("GUARD_OP", "deposit");
            deposit.SetString("GUARD_AGENT", agent);
            deposit.SetString("GUARD_BRANCH", branch);
            deposit.SetString("GUARD_INC", std::to_string(inc));
            deposit.SetString("GUARD_SEQ", std::to_string(seq));
            deposit.SetString("GUARD_NEXT", next);
            deposit.SetString("GUARD_RECORD_PREV", prev);
            if (const Folder* tr = bc.Find(kTraceFolder)) {
              deposit.folder(kTraceFolder) = *tr;
            }
            deposit.folder("CKPT").PushBack(checkpoint.Serialize());
            Status deposited = here.Meet("rearguard", deposit);
            if (!deposited.ok()) {
              return Error("ft_jump: " + deposited.ToString());
            }
            if (deposit.GetString("GUARD_VERDICT").value_or("") == "quench") {
              // This copy's incarnation is stale (or the agent already
              // retired): a newer incarnation owns the computation.  End
              // quietly instead of re-walking the itinerary.
              return Outcome{tacl::Code::kReturn, ""};
            }

            // Now the ordinary jump (push code, rexec).
            bc.folder(kCodeFolder).PushFrontString(activation->code);
            bc.SetString(kHostFolder, next);
            bc.SetString(kContactFolder, "ag_tacl");
            Status moved = here.Meet("rexec", bc);
            if (!moved.ok()) {
              bc.folder(kCodeFolder).PopFront();
              bc.Remove(kHostFolder);
              bc.Remove(kContactFolder);
              return Error("ft_jump: " + moved.ToString());
            }
            activation->departed = true;
            return Outcome{tacl::Code::kReturn, ""};
          });

      // ft_retire — immediate guard-chain unwind (registry-less path).
      interp->Register(
          "ft_retire", [self, activation](tacl::Interp&,
                                          const std::vector<std::string>& argv) {
            if (argv.size() != 1) {
              return Error("wrong # args: should be \"ft_retire\"");
            }
            Briefcase& bc = *activation->briefcase;
            Briefcase wave;
            wave.SetString("GUARD_OP", "retire_wave");
            wave.SetString("GUARD_AGENT", bc.GetString("GUARD_AGENT").value_or(
                                              activation->agent_id));
            wave.SetString("GUARD_PREV", bc.GetString("GUARD_PREV").value_or(""));
            Status s = activation->place->Meet("rearguard", wave);
            if (!s.ok()) {
              return Error("ft_retire: " + s.ToString());
            }
            return Ok();
          });

      // ft_complete — report this branch's terminal outcome to the home
      // registry; retirement waves fire when the whole computation resolves.
      interp->Register(
          "ft_complete", [self, activation](tacl::Interp&,
                                            const std::vector<std::string>& argv) {
            if (argv.size() != 1) {
              return Error("wrong # args: should be \"ft_complete\"");
            }
            Briefcase& bc = *activation->briefcase;
            Place& here = *activation->place;
            std::string agent = bc.GetString("GUARD_AGENT").value_or(
                activation->agent_id.empty() ? "agent" : activation->agent_id);
            BranchOutcome outcome;
            outcome.branch = bc.GetString("GUARD_BRANCH").value_or("");
            outcome.kind = "complete";
            if (auto i = tacl::ParseInt(bc.GetString("GUARD_INC").value_or("0"))) {
              outcome.incarnation = static_cast<uint32_t>(std::max<int64_t>(0, *i));
            }
            outcome.endpoint = here.name();
            outcome.prev = bc.GetString("GUARD_PREV").value_or("");
            std::string home = bc.GetString("GUARD_HOME").value_or(here.name());
            Status s = self->ReportOutcome(here.site(), agent, std::move(outcome),
                                           home, &bc, nullptr);
            if (!s.ok()) {
              return Error("ft_complete: " + s.ToString());
            }
            return Ok();
          });

      // ft_fanout n — declare the clone fan-out's join barrier at home.
      interp->Register(
          "ft_fanout", [self, activation](tacl::Interp&,
                                          const std::vector<std::string>& argv) {
            if (argv.size() != 2) {
              return Error("wrong # args: should be \"ft_fanout branches\"");
            }
            auto n = tacl::ParseInt(argv[1]);
            if (!n.has_value() || *n < 1) {
              return Error("ft_fanout: branches must be a positive integer");
            }
            Briefcase& bc = *activation->briefcase;
            Place& here = *activation->place;
            std::string agent = bc.GetString("GUARD_AGENT").value_or(
                activation->agent_id.empty() ? "agent" : activation->agent_id);
            bc.SetString("GUARD_AGENT", agent);
            if (!bc.Has("GUARD_HOME")) {
              bc.SetString("GUARD_HOME", here.name());
            }
            std::string home = *bc.GetString("GUARD_HOME");
            Status s = self->SendFanout(here.site(), agent,
                                        static_cast<int>(*n), home);
            if (!s.ok()) {
              return Error("ft_fanout: " + s.ToString());
            }
            return Ok();
          });
    });

    // Durable recovery: a restarted site reloads its guard table and its
    // slice of the completion registry before any agent can arrive.
    self->RecoverGuards(place);
    if (self->options_.durable) {
      self->registry_->RecoverSite(place.site());
    }
  });
}

Status RearGuard::OnMeet(Place& place, Briefcase& bc) {
  auto op = bc.GetString("GUARD_OP").value_or("");
  if (op == "deposit") {
    return HandleDeposit(place, bc);
  }
  if (op == "status") {
    return HandleStatusRequest(place, bc);
  }
  if (op == "status_rsp") {
    return HandleStatusReply(place, bc);
  }
  if (op == "retire_wave") {
    return HandleRetire(place, bc, /*is_wave_origin=*/true);
  }
  if (op == "retire") {
    return HandleRetire(place, bc, /*is_wave_origin=*/false);
  }
  if (op == "outcome") {
    return HandleOutcome(place, bc);
  }
  if (op == "fanout") {
    return HandleFanout(place, bc);
  }
  return InvalidArgumentError("rearguard: unknown GUARD_OP \"" + op + "\"");
}

Status RearGuard::HandleDeposit(Place& place, Briefcase& bc) {
  auto agent = bc.GetString("GUARD_AGENT");
  auto seq_str = bc.GetString("GUARD_SEQ");
  auto next = bc.GetString("GUARD_NEXT");
  const Folder* ckpt = bc.Find("CKPT");
  if (!agent || !seq_str || !next || ckpt == nullptr || ckpt->empty()) {
    return InvalidArgumentError("rearguard: malformed deposit");
  }
  auto seq = tacl::ParseInt(*seq_str);
  if (!seq.has_value() || *seq < 0) {
    return InvalidArgumentError("rearguard: bad GUARD_SEQ");
  }
  std::string branch = bc.GetString("GUARD_BRANCH").value_or("");
  uint32_t inc = 0;
  if (auto i = tacl::ParseInt(bc.GetString("GUARD_INC").value_or("0"))) {
    inc = static_cast<uint32_t>(std::max<int64_t>(0, *i));
  }

  SiteTable& table = TableFor(place);
  const std::string fkey = FenceKey(*agent, branch);
  auto fence_it = table.fences.find(fkey);
  const uint32_t fence = fence_it == table.fences.end() ? 0 : fence_it->second;
  if (table.retired_agents.contains(*agent) || inc < fence) {
    // Incarnation fencing: a stale copy (or a durably retired agent) must
    // not deposit a guard and must not hop onward.  The verdict folder tells
    // ft_jump to end the activation quietly.
    ++stats_.quenches;
    RecordFtSpan("ft.quench", place.site(), &bc,
                 *agent + " inc " + std::to_string(inc) + " < fence " +
                     std::to_string(fence));
    bc.SetString("GUARD_VERDICT", "quench");
    return OkStatus();
  }
  if (inc > fence) {
    table.fences[fkey] = inc;
    Encoder enc;
    enc.PutU8(kGOpFence);
    enc.PutString(fkey);
    enc.PutU32(inc);
    PersistGuardOp(place.site(), enc.Take());
  }

  GuardRecord record;
  record.agent = *agent;
  record.branch = branch;
  record.seq = static_cast<uint32_t>(*seq);
  record.inc = inc;
  record.last_inc = inc;
  record.checkpoint = *ckpt->Front();
  record.next_site = *next;
  record.prev_site = bc.GetString("GUARD_RECORD_PREV").value_or("");
  record.deposited_at = kernel_->sim().Now();

  TrackReactivation(*agent, branch, inc);

  std::string key = Key(*agent, branch, record.seq);
  table.records[key] = std::move(record);
  PersistRecord(place.site(), key, table.records[key]);
  ++stats_.deposits;
  RecordFtSpan("ft.deposit", place.site(), &bc,
               *agent + " seq " + *seq_str + " -> " + *next);
  bc.SetString("GUARD_VERDICT", "ok");

  SchedulePing(place.site(), place.generation(), key);
  return OkStatus();
}

void RearGuard::SchedulePing(SiteId site, uint64_t generation, const std::string& key) {
  kernel_->sim().After(options_.heartbeat,
                       [this, site, generation, key] { PingTick(site, generation, key); });
}

void RearGuard::PingTick(SiteId site, uint64_t generation, const std::string& key) {
  if (!kernel_->PlaceAlive(site, generation)) {
    return;  // The guard died with its site.
  }
  SiteTable& table = tables_[site];
  auto it = table.records.find(key);
  if (it == table.records.end()) {
    return;  // Removed: the chain unwound.
  }

  // Lease GC first: an orphaned record (its retire wave lost, its agent
  // wedged) must not leak forever.  Unretired orphans dead-letter home.
  const SimTime now = kernel_->sim().Now();
  if (options_.lease > 0 && now >= it->second.deposited_at + options_.lease) {
    ++stats_.lease_expiries;
    if (!it->second.retired) {
      DeadLetterRecord(site, it->second, "guard lease expired");
      it = table.records.find(key);  // Reporting can reenter and erase.
    }
    if (it != table.records.end()) {
      RemoveRecord(site, table, key);
    }
    return;  // No reschedule: the record is gone.
  }
  if (it->second.retired) {
    // Keep ticking a retired record only to let the lease reap it.
    if (options_.lease > 0) {
      SchedulePing(site, generation, key);
    }
    return;
  }

  ++it->second.misses;
  if (it->second.misses > options_.max_misses) {
    if (!Recover(site, table, key)) {
      return;  // Dead-lettered and removed; nothing left to ping.
    }
    it = table.records.find(key);
    if (it == table.records.end()) {
      return;  // A reentrant retire wave removed it during recovery.
    }
  }

  GuardRecord& record = it->second;
  auto next = kernel_->net().FindSite(record.next_site);
  if (next.has_value() && kernel_->net().IsUp(*next)) {
    Briefcase ping;
    ping.SetString("GUARD_OP", "status");
    ping.SetString("GUARD_AGENT", record.agent);
    ping.SetString("GUARD_BRANCH", record.branch);
    ping.SetString("GUARD_KEY", key);
    ping.SetString("REPLY_HOST", kernel_->net().site_name(site));
    // Fire-and-forget regardless of the kernel's reliability mode: a lost
    // ping is repaired by the next heartbeat, and retrying stale pings only
    // inflates the miss window under partition.
    TransferOptions fire_and_forget{.mode = Reliability::kOff};
    if (kernel_->TransferAgent(site, *next, "rearguard", ping, fire_and_forget).ok()) {
      ++stats_.pings_sent;
    }
  }

  SchedulePing(site, generation, key);
}

Status RearGuard::HandleStatusRequest(Place& place, Briefcase& bc) {
  auto agent = bc.GetString("GUARD_AGENT");
  auto key = bc.GetString("GUARD_KEY");
  auto reply_host = bc.GetString("REPLY_HOST");
  if (!agent || !key || !reply_host) {
    return InvalidArgumentError("rearguard: malformed status request");
  }
  std::string branch = bc.GetString("GUARD_BRANCH").value_or("");

  SiteTable& table = TableFor(place);
  std::string state = "unknown";
  if (table.retired_agents.contains(*agent)) {
    state = "retired";
  } else {
    for (const auto& [k, rec] : table.records) {
      if (rec.agent == *agent && rec.branch == branch && !rec.retired) {
        state = "active";
        break;
      }
    }
  }

  auto reply_site = kernel_->net().FindSite(*reply_host);
  if (!reply_site.has_value()) {
    return NotFoundError("rearguard: unknown reply site");
  }
  Briefcase reply;
  reply.SetString("GUARD_OP", "status_rsp");
  reply.SetString("GUARD_KEY", *key);
  reply.SetString("GUARD_STATE", state);
  // Heartbeat traffic, like the ping itself: the next ping re-asks.
  return kernel_->TransferAgent(place.site(), *reply_site, "rearguard", reply,
                                TransferOptions{.mode = Reliability::kOff});
}

Status RearGuard::HandleStatusReply(Place& place, Briefcase& bc) {
  auto key = bc.GetString("GUARD_KEY");
  auto state = bc.GetString("GUARD_STATE");
  if (!key || !state) {
    return InvalidArgumentError("rearguard: malformed status reply");
  }
  ++stats_.replies_received;
  SiteTable& table = TableFor(place);
  auto it = table.records.find(*key);
  if (it == table.records.end()) {
    return OkStatus();
  }
  if (*state == "active" || *state == "retired") {
    it->second.misses = 0;
  }
  if (*state == "retired") {
    it->second.retired = true;
  }
  return OkStatus();
}

Status RearGuard::HandleRetire(Place& place, Briefcase& bc, bool is_wave_origin) {
  auto agent = bc.GetString("GUARD_AGENT");
  if (!agent) {
    return InvalidArgumentError("rearguard: retire without GUARD_AGENT");
  }
  if (is_wave_origin) {
    ++stats_.retire_waves;
  }

  SiteTable& table = TableFor(place);
  if (table.retired_agents.insert(*agent).second) {
    Encoder enc;
    enc.PutU8(kGOpRetireAgent);
    enc.PutString(*agent);
    PersistGuardOp(place.site(), enc.Take());
  }

  // Remove this agent's records here and forward the wave to each distinct
  // predecessor those records named.
  std::set<std::string> predecessors;
  size_t removed = 0;
  for (auto it = table.records.begin(); it != table.records.end();) {
    if (it->second.agent == *agent) {
      if (!it->second.prev_site.empty()) {
        predecessors.insert(it->second.prev_site);
      }
      ++stats_.records_retired;
      ++removed;
      std::string key = it->first;
      it = table.records.erase(it);
      Encoder enc;
      enc.PutU8(kGOpRemove);
      enc.PutString(key);
      PersistGuardOp(place.site(), enc.Take());
    } else {
      ++it;
    }
  }
  // The wave origin also forwards to the hop it arrived from (the final
  // site usually holds no record for the agent — it never left).
  if (is_wave_origin) {
    std::string prev = bc.GetString("GUARD_PREV").value_or("");
    if (!prev.empty()) {
      predecessors.insert(prev);
    }
  }
  RecordFtSpan("ft.retire", place.site(), &bc,
               *agent + " removed " + std::to_string(removed));

  for (const std::string& prev : predecessors) {
    auto prev_site = kernel_->net().FindSite(prev);
    if (!prev_site.has_value()) {
      continue;
    }
    Briefcase wave;
    wave.SetString("GUARD_OP", "retire");
    wave.SetString("GUARD_AGENT", *agent);
    // Reliable: a lost wave would leave upstream guards to the lease GC.
    (void)kernel_->TransferAgent(place.site(), *prev_site, "rearguard", wave,
                                 TransferOptions{.mode = Reliability::kReliable});
  }
  return OkStatus();
}

Status RearGuard::HandleOutcome(Place& place, Briefcase& bc) {
  auto agent = bc.GetString("GUARD_AGENT");
  auto kind = bc.GetString("OUTCOME_KIND");
  if (!agent || !kind || (*kind != "complete" && *kind != "deadletter")) {
    return InvalidArgumentError("rearguard: malformed outcome");
  }
  // Mis-delivered (home moved or the sender guessed wrong): forward one hop.
  std::string home_name = bc.GetString("GUARD_HOME").value_or("");
  if (!home_name.empty() && home_name != place.name()) {
    auto home = kernel_->net().FindSite(home_name);
    if (home.has_value() && *home != place.site()) {
      return kernel_->TransferAgent(place.site(), *home, "rearguard", bc,
                                    TransferOptions{.mode = Reliability::kReliable});
    }
  }

  BranchOutcome outcome;
  outcome.branch = bc.GetString("GUARD_BRANCH").value_or("");
  outcome.kind = *kind;
  outcome.reason = bc.GetString("DEADLETTER_REASON").value_or("");
  if (auto i = tacl::ParseInt(bc.GetString("GUARD_INC").value_or("0"))) {
    outcome.incarnation = static_cast<uint32_t>(std::max<int64_t>(0, *i));
  }
  outcome.endpoint = bc.GetString("OUTCOME_ENDPOINT").value_or(place.name());
  outcome.prev = bc.GetString("GUARD_RECORD_PREV").value_or("");

  TrackReactivation(*agent, outcome.branch, outcome.incarnation);
  const std::string branch = outcome.branch;
  const std::string endpoint = outcome.endpoint;
  const std::string prev = outcome.prev;
  bool accepted = registry_->RecordOutcome(place.site(), *agent, std::move(outcome));
  if (!accepted) {
    // A stale incarnation finished the itinerary too.  Quench it, and unwind
    // the duplicate's guard chain so its records don't wait for the lease.
    ++stats_.quenches;
    RecordFtSpan("ft.quench", place.site(), &bc,
                 *agent + " duplicate outcome for branch \"" + branch + "\"");
    FireRetireWave(place.site(), *agent, endpoint, prev);
  }
  return OkStatus();
}

Status RearGuard::HandleFanout(Place& place, Briefcase& bc) {
  auto agent = bc.GetString("GUARD_AGENT");
  auto n_str = bc.GetString("GUARD_FANOUT");
  if (!agent || !n_str) {
    return InvalidArgumentError("rearguard: malformed fanout");
  }
  auto n = tacl::ParseInt(*n_str);
  if (!n.has_value() || *n < 1) {
    return InvalidArgumentError("rearguard: bad GUARD_FANOUT");
  }
  std::string home_name = bc.GetString("GUARD_HOME").value_or("");
  if (!home_name.empty() && home_name != place.name()) {
    auto home = kernel_->net().FindSite(home_name);
    if (home.has_value() && *home != place.site()) {
      return kernel_->TransferAgent(place.site(), *home, "rearguard", bc,
                                    TransferOptions{.mode = Reliability::kReliable});
    }
  }
  registry_->DeclareFanout(place.site(), *agent, static_cast<int>(*n));
  return OkStatus();
}

Status RearGuard::SendFanout(SiteId from, const std::string& agent, int branches,
                             const std::string& home_name) {
  std::optional<SiteId> home;
  if (!home_name.empty()) {
    home = kernel_->net().FindSite(home_name);
  }
  if (!home.has_value() || *home == from) {
    registry_->DeclareFanout(from, agent, branches);
    return OkStatus();
  }
  Briefcase msg;
  msg.SetString("GUARD_OP", "fanout");
  msg.SetString("GUARD_AGENT", agent);
  msg.SetString("GUARD_FANOUT", std::to_string(branches));
  msg.SetString("GUARD_HOME", home_name);
  return kernel_->TransferAgent(from, *home, "rearguard", msg,
                                TransferOptions{.mode = Reliability::kReliable});
}

Status RearGuard::ReportOutcome(SiteId from, const std::string& agent,
                                BranchOutcome outcome, const std::string& home_name,
                                const Briefcase* trace_src,
                                const SharedBytes* checkpoint) {
  std::optional<SiteId> home;
  if (!home_name.empty()) {
    home = kernel_->net().FindSite(home_name);
  }
  if (!home.has_value() || *home == from) {
    // Home is this site (or unknown, in which case the local registry is the
    // best durable record we have).
    TrackReactivation(agent, outcome.branch, outcome.incarnation);
    const std::string branch = outcome.branch;
    const std::string endpoint = outcome.endpoint;
    const std::string prev = outcome.prev;
    bool accepted = registry_->RecordOutcome(from, agent, std::move(outcome));
    if (!accepted) {
      ++stats_.quenches;
      RecordFtSpan("ft.quench", from, trace_src,
                   agent + " duplicate outcome for branch \"" + branch + "\"");
      FireRetireWave(from, agent, endpoint, prev);
    }
    return OkStatus();
  }
  Briefcase msg;
  msg.SetString("GUARD_OP", "outcome");
  msg.SetString("GUARD_AGENT", agent);
  msg.SetString("GUARD_BRANCH", outcome.branch);
  msg.SetString("GUARD_INC", std::to_string(outcome.incarnation));
  msg.SetString("GUARD_HOME", home_name);
  msg.SetString("OUTCOME_KIND", outcome.kind);
  if (!outcome.reason.empty()) {
    msg.SetString("DEADLETTER_REASON", outcome.reason);
  }
  msg.SetString("OUTCOME_ENDPOINT", outcome.endpoint);
  msg.SetString("GUARD_RECORD_PREV", outcome.prev);
  if (checkpoint != nullptr) {
    msg.folder("CKPT").PushBack(*checkpoint);
  }
  if (trace_src != nullptr) {
    if (const Folder* tr = trace_src->Find(kTraceFolder)) {
      msg.folder(kTraceFolder) = *tr;
    }
  }
  return kernel_->TransferAgent(from, *home, "rearguard", msg,
                                TransferOptions{.mode = Reliability::kReliable});
}

void RearGuard::OnResolved(SiteId home, const std::string& agent,
                           const CompletionRegistry::AgentState& state) {
  // One retirement wave per branch endpoint — the join barrier guarantees
  // every branch has its terminal outcome, so no wave tears down a guard a
  // still-running branch needs.
  for (const auto& [branch, outcome] : state.outcomes) {
    FireRetireWave(home, agent, outcome.endpoint, outcome.prev);
  }
  if (!options_.completion_contact.empty()) {
    Place* place = kernel_->place(home);
    if (place != nullptr) {
      Briefcase note;
      note.SetString("GUARD_AGENT", agent);
      note.SetString("OUTCOME_KIND", state.final_kind);
      for (const auto& [branch, outcome] : state.outcomes) {
        if (outcome.kind == "deadletter") {
          note.SetString("DEADLETTER_REASON", outcome.reason);
          break;
        }
      }
      (void)place->Meet(options_.completion_contact, note);
    }
  }
}

void RearGuard::FireRetireWave(SiteId from, const std::string& agent,
                               const std::string& endpoint, const std::string& prev) {
  Briefcase wave;
  wave.SetString("GUARD_OP", "retire_wave");
  wave.SetString("GUARD_AGENT", agent);
  wave.SetString("GUARD_PREV", prev);
  std::optional<SiteId> dest;
  if (!endpoint.empty()) {
    dest = kernel_->net().FindSite(endpoint);
  }
  if (!dest.has_value() || *dest == from) {
    Place* place = kernel_->place(from);
    if (place != nullptr) {
      (void)place->Meet("rearguard", wave);
    }
    return;
  }
  (void)kernel_->TransferAgent(from, *dest, "rearguard", wave,
                               TransferOptions{.mode = Reliability::kReliable});
}

bool RearGuard::Recover(SiteId site, SiteTable& table, const std::string& key) {
  auto it = table.records.find(key);
  if (it == table.records.end()) {
    return false;
  }
  GuardRecord& record = it->second;
  if (options_.max_relaunches != 0 && record.relaunches >= options_.max_relaunches) {
    DeadLetterRecord(site, record,
                     "relaunch budget exhausted (" +
                         std::to_string(record.relaunches) + ")");
    // Reporting can reenter the table (local retire wave) — re-check by key.
    if (table.records.contains(key)) {
      RemoveRecord(site, table, key);
    }
    return false;
  }
  auto checkpoint = Briefcase::Deserialize(record.checkpoint);
  if (!checkpoint.ok()) {
    TLOG_WARN << "rearguard: corrupt checkpoint for " << record.agent;
    DeadLetterRecord(site, record,
                     "corrupt checkpoint: " + checkpoint.status().ToString());
    if (table.records.contains(key)) {
      RemoveRecord(site, table, key);
    }
    return false;
  }
  Briefcase bc = std::move(checkpoint).value();

  // Fence the relaunch: the new incarnation outranks both everything this
  // record launched before and everything this site has witnessed, so the
  // vanished copy — if it merely went quiet — is quenched wherever it next
  // deposits.
  uint32_t fence = 0;
  if (auto f = table.fences.find(FenceKey(record.agent, record.branch));
      f != table.fences.end()) {
    fence = f->second;
  }
  const uint32_t new_inc = std::max(record.last_inc, fence) + 1;
  bc.SetString("GUARD_INC", std::to_string(new_inc));
  bc.SetString("GUARD_RELAUNCH", std::to_string(record.relaunches + 1));

  // Candidate destinations: the original next site, then itinerary entries
  // after it (skip the dead site and push on).  Agents typically pop the next
  // hop before jumping, so when next_site is absent from the checkpoint's
  // ITINERARY every remaining entry is downstream and a candidate.
  std::vector<std::string> candidates{record.next_site};
  if (const Folder* itinerary = bc.Find("ITINERARY")) {
    auto sites = itinerary->AsStrings();
    bool contains_next = false;
    for (const std::string& s : sites) {
      if (s == record.next_site) {
        contains_next = true;
        break;
      }
    }
    bool passed_next = !contains_next;
    for (const std::string& s : sites) {
      if (passed_next && s != record.next_site) {
        candidates.push_back(s);
      }
      if (s == record.next_site) {
        passed_next = true;
      }
    }
  }

  const std::string agent_name = record.agent;
  const std::string pending_key =
      record.agent + "|" + record.branch + "|" + std::to_string(new_inc);
  for (const std::string& destination : candidates) {
    auto dest = kernel_->net().FindSite(destination);
    if (!dest.has_value() || !kernel_->net().IsUp(*dest)) {
      continue;
    }
    if (!kernel_->net().HopCount(site, *dest).has_value()) {
      continue;
    }
    // Registered before the send: a synchronous delivery can run the new
    // incarnation — and land its next deposit — inside TransferAgent, and the
    // reactivation match must find this entry.
    pending_relaunches_[pending_key] = kernel_->sim().Now();
    Status sent = kernel_->TransferAgent(site, *dest, "ag_tacl", bc);
    if (!sent.ok()) {
      pending_relaunches_.erase(pending_key);
      continue;
    }
    ++stats_.relaunches;
    // The relaunch hop keeps the vanished agent's journey: the checkpoint
    // briefcase still carries its TRACE folder, so the transfer above
    // chained under the original trace id.  Mark the guard's intervention.
    RecordFtSpan("ft.relaunch", site, &bc,
                 agent_name + " inc " + std::to_string(new_inc) + " -> " +
                     destination);
    // A synchronous delivery can also complete the whole journey inline:
    // the retire wave then erased this record while TransferAgent was on
    // the stack, so `record` may be dangling — re-find before mutating.
    auto live = table.records.find(key);
    if (live == table.records.end()) {
      if (relaunch_hook_) {
        relaunch_hook_(site, agent_name, new_inc);
      }
      return false;  // Resolved and retired during the send; nothing to ping.
    }
    GuardRecord& survivor = live->second;
    ++survivor.relaunches;
    survivor.last_inc = new_inc;
    survivor.misses = 0;
    survivor.unreachable_rounds = 0;
    Encoder enc;
    enc.PutU8(kGOpRelaunch);
    enc.PutString(key);
    enc.PutVarint(static_cast<uint64_t>(survivor.relaunches));
    enc.PutU32(survivor.last_inc);
    PersistGuardOp(site, enc.Take());
    if (relaunch_hook_) {
      relaunch_hook_(site, agent_name, new_inc);
    }
    return true;
  }
  // Nothing reachable right now.
  ++record.unreachable_rounds;
  if (options_.max_unreachable_rounds > 0 &&
      record.unreachable_rounds >= options_.max_unreachable_rounds) {
    DeadLetterRecord(site, record,
                     "itinerary unreachable: no candidate site reachable");
    if (table.records.contains(key)) {
      RemoveRecord(site, table, key);
    }
    return false;
  }
  // Reset the miss counter and keep watching; a later tick retries once
  // something comes back (or the lease dead-letters the checkpoint).
  record.misses = 0;
  return true;
}

void RearGuard::DeadLetterRecord(SiteId site, GuardRecord& record,
                                 const std::string& reason) {
  ++stats_.guard_deadletters;
  BranchOutcome outcome;
  outcome.branch = record.branch;
  outcome.kind = "deadletter";
  outcome.reason = reason;
  outcome.incarnation = record.last_inc;
  outcome.endpoint = kernel_->net().site_name(site);
  outcome.prev = record.prev_site;
  const std::string agent = record.agent;
  SharedBytes checkpoint = record.checkpoint;
  std::string home_name;
  Briefcase ckpt_bc;
  const Briefcase* trace_src = nullptr;
  if (auto parsed = Briefcase::Deserialize(checkpoint); parsed.ok()) {
    ckpt_bc = std::move(parsed).value();
    home_name = ckpt_bc.GetString("GUARD_HOME").value_or("");
    trace_src = &ckpt_bc;
  }
  TLOG_WARN << "rearguard: dead-lettering " << agent << " at "
            << outcome.endpoint << ": " << reason;
  // `record` must not be touched past this point: reporting a local outcome
  // can resolve the agent and fire a retire wave that erases it.
  (void)ReportOutcome(site, agent, std::move(outcome), home_name, trace_src,
                      &checkpoint);
}

void RearGuard::RemoveRecord(SiteId site, SiteTable& table, const std::string& key) {
  if (table.records.erase(key) > 0) {
    Encoder enc;
    enc.PutU8(kGOpRemove);
    enc.PutString(key);
    PersistGuardOp(site, enc.Take());
  }
}

DiskLog* RearGuard::GuardLog(SiteId site) {
  if (!options_.durable) {
    return nullptr;
  }
  DurableLog& dl = guard_logs_[site];
  if (dl.log == nullptr) {
    dl.log = std::make_unique<DiskLog>(&kernel_->disk(site), "ftguard");
  }
  return dl.log.get();
}

void RearGuard::PersistGuardOp(SiteId site, const Bytes& op) {
  DiskLog* log = GuardLog(site);
  if (log == nullptr) {
    return;
  }
  // A failed append (armed disk, mid-storm) costs durability of this one op,
  // not correctness: the in-memory table still serves, and recovery after
  // the crash falls back to predecessor healing plus re-quench.
  (void)log->Append(op);
  DurableLog& dl = guard_logs_[site];
  if (++dl.ops_since_compact >= options_.compact_threshold) {
    dl.ops_since_compact = 0;
    (void)log->Compact(EncodeTableSnapshot(tables_[site]));
  }
}

void RearGuard::PersistRecord(SiteId site, const std::string& key,
                              const GuardRecord& record) {
  if (!options_.durable) {
    return;
  }
  Encoder enc;
  enc.PutU8(kGOpRecord);
  EncodeRecord(&enc, key, record);
  PersistGuardOp(site, enc.Take());
}

void RearGuard::EncodeRecord(Encoder* enc, const std::string& key,
                             const GuardRecord& record) {
  enc->PutString(key);
  enc->PutString(record.agent);
  enc->PutString(record.branch);
  enc->PutU32(record.seq);
  enc->PutU32(record.inc);
  enc->PutU32(record.last_inc);
  enc->PutVarint(static_cast<uint64_t>(record.relaunches));
  enc->PutU8(record.retired ? 1 : 0);
  enc->PutString(record.next_site);
  enc->PutString(record.prev_site);
  enc->PutBytes(record.checkpoint);
}

bool RearGuard::DecodeRecord(Decoder* dec, std::string* key, GuardRecord* record) {
  uint64_t relaunches = 0;
  uint8_t retired = 0;
  if (!dec->GetString(key) || !dec->GetString(&record->agent) ||
      !dec->GetString(&record->branch) || !dec->GetU32(&record->seq) ||
      !dec->GetU32(&record->inc) || !dec->GetU32(&record->last_inc) ||
      !dec->GetVarint(&relaunches) || !dec->GetU8(&retired) ||
      !dec->GetString(&record->next_site) || !dec->GetString(&record->prev_site) ||
      !dec->GetSharedBytes(&record->checkpoint)) {
    return false;
  }
  record->relaunches = static_cast<int>(relaunches);
  record->retired = retired != 0;
  return true;
}

Bytes RearGuard::EncodeTableSnapshot(const SiteTable& table) const {
  Encoder enc;
  enc.PutVarint(table.records.size());
  for (const auto& [key, record] : table.records) {
    EncodeRecord(&enc, key, record);
  }
  enc.PutVarint(table.fences.size());
  for (const auto& [fkey, inc] : table.fences) {
    enc.PutString(fkey);
    enc.PutU32(inc);
  }
  enc.PutVarint(table.retired_agents.size());
  for (const std::string& agent : table.retired_agents) {
    enc.PutString(agent);
  }
  return enc.Take();
}

void RearGuard::RecoverGuards(Place& place) {
  SiteTable& table = TableFor(place);  // Clears any stale-generation state.
  if (!options_.durable) {
    return;
  }
  DiskLog* log = GuardLog(place.site());
  auto contents = log->Load();
  if (!contents.ok()) {
    TLOG_WARN << "rearguard: guard recovery failed at " << place.name() << ": "
              << contents.status().ToString();
    return;
  }
  guard_logs_[place.site()].ops_since_compact = 0;

  if (!contents->snapshot.empty()) {
    Decoder dec(contents->snapshot);
    uint64_t n = 0;
    if (dec.GetVarint(&n)) {
      for (uint64_t i = 0; i < n && dec.ok(); ++i) {
        std::string key;
        GuardRecord record;
        if (!DecodeRecord(&dec, &key, &record)) {
          break;
        }
        table.records[key] = std::move(record);
      }
    }
    if (dec.GetVarint(&n)) {
      for (uint64_t i = 0; i < n && dec.ok(); ++i) {
        std::string fkey;
        uint32_t inc = 0;
        if (!dec.GetString(&fkey) || !dec.GetU32(&inc)) {
          break;
        }
        table.fences[fkey] = std::max(table.fences[fkey], inc);
      }
    }
    if (dec.GetVarint(&n)) {
      for (uint64_t i = 0; i < n && dec.ok(); ++i) {
        std::string agent;
        if (!dec.GetString(&agent)) {
          break;
        }
        table.retired_agents.insert(agent);
      }
    }
  }

  for (const Bytes& op_bytes : contents->records) {
    Decoder dec(op_bytes);
    uint8_t op = 0;
    if (!dec.GetU8(&op)) {
      continue;
    }
    switch (op) {
      case kGOpRecord: {
        std::string key;
        GuardRecord record;
        if (DecodeRecord(&dec, &key, &record)) {
          table.records[key] = std::move(record);
        }
        break;
      }
      case kGOpRemove: {
        std::string key;
        if (dec.GetString(&key)) {
          table.records.erase(key);
        }
        break;
      }
      case kGOpRetireAgent: {
        std::string agent;
        if (dec.GetString(&agent)) {
          table.retired_agents.insert(agent);
        }
        break;
      }
      case kGOpFence: {
        std::string fkey;
        uint32_t inc = 0;
        if (dec.GetString(&fkey) && dec.GetU32(&inc)) {
          table.fences[fkey] = std::max(table.fences[fkey], inc);
        }
        break;
      }
      case kGOpRelaunch: {
        std::string key;
        uint64_t relaunches = 0;
        uint32_t last_inc = 0;
        if (dec.GetString(&key) && dec.GetVarint(&relaunches) &&
            dec.GetU32(&last_inc)) {
          auto it = table.records.find(key);
          if (it != table.records.end()) {
            it->second.relaunches = static_cast<int>(relaunches);
            it->second.last_inc = std::max(it->second.last_inc, last_inc);
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Recovered records restart their watch with a clean slate and a fresh
  // lease — the downtime already consumed an unknown slice of the old one.
  const SimTime now = kernel_->sim().Now();
  for (auto& [key, record] : table.records) {
    record.misses = 0;
    record.unreachable_rounds = 0;
    record.deposited_at = now;
    SchedulePing(place.site(), place.generation(), key);
  }
  stats_.recovered_records += table.records.size();
}

void RearGuard::RecordFtSpan(const std::string& name, SiteId site,
                             const Briefcase* ctx_src, const std::string& detail) {
  if (!kernel_->options().trace_enabled) {
    return;
  }
  TraceEvent ev;
  if (ctx_src != nullptr) {
    if (auto ctx = TraceContext::FromBriefcase(*ctx_src)) {
      ev.trace_id = ctx->trace_id;
      ev.span_id = ctx->span_id;
      ev.hop = ctx->hop;
    }
  }
  ev.name = name;
  ev.site = kernel_->net().site_name(site);
  ev.site_id = site;
  ev.ts = kernel_->sim().Now();
  ev.detail = detail;
  kernel_->trace().Record(std::move(ev));
}

void RearGuard::TrackReactivation(const std::string& agent, const std::string& branch,
                                  uint32_t inc) {
  if (inc == 0 || pending_relaunches_.empty()) {
    return;
  }
  auto it = pending_relaunches_.find(agent + "|" + branch + "|" + std::to_string(inc));
  if (it == pending_relaunches_.end()) {
    return;
  }
  const SimTime latency = kernel_->sim().Now() - it->second;
  pending_relaunches_.erase(it);
  relaunch_latencies_.push_back(latency);
  if (reactivation_hist_ != nullptr) {
    reactivation_hist_->Observe(static_cast<uint64_t>(latency));
  }
}

Status RearGuard::LaunchGuarded(SiteId home, const std::string& code, Briefcase bc,
                                const std::string& agent, const std::string& branch) {
  registry_->RegisterLaunch(home, agent);
  bc.SetString("GUARD_AGENT", agent);
  bc.SetString("GUARD_HOME", kernel_->net().site_name(home));
  if (!bc.Has("GUARD_INC")) {
    bc.SetString("GUARD_INC", "0");
  }
  if (!branch.empty()) {
    bc.SetString("GUARD_BRANCH", branch);
  }
  return kernel_->LaunchAgent(home, code, std::move(bc));
}

void RearGuard::DeclareFanout(SiteId home, const std::string& agent, int branches) {
  registry_->DeclareFanout(home, agent, branches);
}

}  // namespace tacoma::ft
