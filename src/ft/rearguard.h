// Rear guards (§5).
//
// "The solutions we have studied involve leaving a rear guard agent behind
// whenever execution moves from one site to another.  This rear guard is
// responsible for (i) launching a new agent should a failure cause an agent
// to vanish and (ii) terminating itself when its function is no longer
// necessary ...  The details of implementing rear guards efficiently are
// complex, because the sites traversed by an agent computation may be cyclic
// and because a single agent may clone itself and fan out through a network."
//
// Protocol implemented here:
//   - ft_jump (a TACL primitive added by this module) checkpoints the agent
//     (code + briefcase) with the local "rearguard" resident, then moves on.
//     Each hop gets a fresh (agent, seq) guard record, so cyclic itineraries
//     produce distinct guards per visit rather than colliding.
//   - A guard pings the next site's rearguard every heartbeat; any reply
//     ("active": a later guard record exists there; "retired") clears the
//     miss counter.  max_misses consecutive silent/unknown ticks trigger
//     recovery: the checkpoint is relaunched to the next reachable site on
//     the agent's ITINERARY (skipping the dead one).
//   - ft_retire starts the retirement wave: guards for the agent are removed
//     site by site, each site forwarding the wave to the predecessor sites
//     its records name.  The wave terminates because records are deleted as
//     it passes (cycles included).
//   - Guards are themselves volatile agents: a crash kills a site's guard
//     table.  The chain heals because the predecessor's guard is still
//     watching this site and will observe "unknown".
//
// Semantics note: recovery is at-least-once.  If a site fails after the agent
// moved past it, the predecessor may relaunch a stale checkpoint and part of
// the itinerary re-executes; agents make their per-site work idempotent (the
// paper's visit-record idiom does exactly this).  Duplicate completions are
// detected at the home site by the DONE marker idiom used in the tests.
#ifndef TACOMA_FT_REARGUARD_H_
#define TACOMA_FT_REARGUARD_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/kernel.h"

namespace tacoma::ft {

struct GuardOptions {
  SimTime heartbeat = 50 * kMillisecond;
  int max_misses = 3;
  // Relaunch at most this many times per guard record (0 = unlimited).
  int max_relaunches = 8;
};

class RearGuard {
 public:
  struct Stats {
    uint64_t deposits = 0;
    uint64_t pings_sent = 0;
    uint64_t replies_received = 0;
    uint64_t relaunches = 0;
    uint64_t retire_waves = 0;
    uint64_t records_retired = 0;
  };

  RearGuard(Kernel* kernel, GuardOptions options = {});

  // Installs the "rearguard" resident on every place and the ft_jump /
  // ft_retire TACL primitives.
  void Install();

  // Live guard records at a site (0 while the site is down).
  size_t GuardCount(SiteId site) const;
  size_t TotalGuards() const;
  const Stats& stats() const { return stats_; }
  const GuardOptions& options() const { return options_; }

 private:
  struct GuardRecord {
    std::string agent;
    uint32_t seq = 0;
    SharedBytes checkpoint; // Serialized briefcase, CODE included.
    std::string next_site;  // Where the agent went from here.
    std::string prev_site;  // Where the previous guard sits ("" at origin).
    int misses = 0;
    int relaunches = 0;
    bool retired = false;
  };
  struct SiteTable {
    uint64_t generation = 0;  // Place generation this table belongs to.
    std::map<std::string, GuardRecord> records;  // key = agent '#' seq.
    std::set<std::string> retired_agents;
  };

  static std::string Key(const std::string& agent, uint32_t seq);

  // Returns this site's table, resetting it when the place was reincarnated
  // (volatile guard state dies with the site).
  SiteTable& TableFor(Place& place);
  const SiteTable* PeekTable(SiteId site) const;

  Status OnMeet(Place& place, Briefcase& bc);
  Status HandleDeposit(Place& place, Briefcase& bc);
  Status HandleStatusRequest(Place& place, Briefcase& bc);
  Status HandleStatusReply(Place& place, Briefcase& bc);
  Status HandleRetire(Place& place, Briefcase& bc, bool is_wave_origin);

  void SchedulePing(SiteId site, uint64_t generation, const std::string& key);
  void PingTick(SiteId site, uint64_t generation, const std::string& key);
  void Recover(SiteId site, GuardRecord& record);

  Kernel* kernel_;
  GuardOptions options_;
  std::map<SiteId, SiteTable> tables_;
  Stats stats_;
};

}  // namespace tacoma::ft

#endif  // TACOMA_FT_REARGUARD_H_
