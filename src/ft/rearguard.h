// Rear guards (§5).
//
// "The solutions we have studied involve leaving a rear guard agent behind
// whenever execution moves from one site to another.  This rear guard is
// responsible for (i) launching a new agent should a failure cause an agent
// to vanish and (ii) terminating itself when its function is no longer
// necessary ...  The details of implementing rear guards efficiently are
// complex, because the sites traversed by an agent computation may be cyclic
// and because a single agent may clone itself and fan out through a network."
//
// Protocol implemented here:
//   - ft_jump (a TACL primitive added by this module) checkpoints the agent
//     (code + briefcase) with the local "rearguard" resident, then moves on.
//     Each hop gets a fresh (agent, branch, seq) guard record, so cyclic
//     itineraries produce distinct guards per visit rather than colliding.
//   - A guard pings the next site's rearguard every heartbeat; any reply
//     ("active": a later guard record exists there; "retired") clears the
//     miss counter.  max_misses consecutive silent/unknown ticks trigger
//     recovery: the checkpoint is relaunched to the next reachable site on
//     the agent's ITINERARY (skipping the dead one) under a freshly fenced
//     incarnation number.
//   - Guard records, incarnation fences, and retired-agent marks are
//     persisted per site through the crash-atomic DiskLog stack
//     ("ftguard.log"/"ftguard.snap"), so RestartSite recovers the site's
//     guard table instead of relying solely on predecessor healing.
//   - Incarnation fencing: every deposit carries GUARD_INC; a site quenches
//     deposits whose incarnation is older than the durable fence for that
//     (agent, branch), and deposits for agents it durably knows are retired.
//     A quenched ft_jump ends the stale copy's activation instead of letting
//     it re-walk the itinerary.
//   - ft_complete reports the computation's terminal outcome to the home
//     site's CompletionRegistry (registry.h), which accepts exactly one
//     outcome per (agent, branch) and — once every declared clone branch has
//     resolved (ft_fanout's join barrier) — fires the retirement waves.
//     ft_retire remains as the registry-less immediate wave.
//   - Graceful degradation: relaunch-budget exhaustion, an unreachable
//     itinerary, and lease expiry all dead-letter the checkpoint home with a
//     structured DEADLETTER_REASON instead of dropping it silently; the
//     lease also garbage-collects orphaned guards so storms cannot leak
//     records forever.
//
// Semantics: recovery remains at-least-once below the registry (a false
// suspicion can re-execute part of an itinerary; per-site work stays
// idempotent, the paper's visit-record idiom), but the end-to-end contract
// is exactly-once — every launched agent completes exactly once or
// dead-letters exactly once.  tests/ft_exactly_once_test.cc enforces this
// under combined crash/partition/disk-fault storms; see
// docs/fault_tolerance.md.
#ifndef TACOMA_FT_REARGUARD_H_
#define TACOMA_FT_REARGUARD_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "ft/registry.h"
#include "serial/encoder.h"
#include "storage/disk_log.h"

namespace tacoma::ft {

struct GuardOptions {
  SimTime heartbeat = 50 * kMillisecond;
  int max_misses = 3;
  // Relaunch at most this many times per guard record (0 = unlimited); the
  // exhausted checkpoint dead-letters home instead of being dropped.
  int max_relaunches = 8;
  // Persist guard tables and the completion registry through DiskLog.
  bool durable = true;
  // A guard record older than this dead-letters its checkpoint home (if not
  // already retired) and is removed — the orphan GC.  0 disables.
  SimTime lease = 8 * kSecond;
  // Recovery rounds with no reachable candidate before the checkpoint
  // dead-letters home (0 = keep watching until the lease expires).
  int max_unreachable_rounds = 0;
  // Durable-log mutations between snapshot compactions.
  uint64_t compact_threshold = 64;
  // Resident at the home place met once per resolved agent (empty = none).
  std::string completion_contact;
};

class RearGuard {
 public:
  struct Stats {
    uint64_t deposits = 0;
    uint64_t pings_sent = 0;
    uint64_t replies_received = 0;
    uint64_t relaunches = 0;
    uint64_t retire_waves = 0;
    uint64_t records_retired = 0;
    uint64_t quenches = 0;           // Stale-incarnation deposits/outcomes refused.
    uint64_t guard_deadletters = 0;  // Checkpoints dead-lettered home by guards.
    uint64_t lease_expiries = 0;     // Records reaped by the lease GC.
    uint64_t recovered_records = 0;  // Guard records reloaded from disk.
  };

  RearGuard(Kernel* kernel, GuardOptions options = {});

  // Installs the "rearguard" resident on every place, the ft_jump /
  // ft_retire / ft_complete / ft_fanout TACL primitives, the ft.* metrics,
  // and durable guard-table recovery on place (re)creation.
  void Install();

  // Launches `code` at `home` under the exactly-once contract: the agent is
  // durably registered with the home registry and its briefcase stamped with
  // GUARD_AGENT / GUARD_HOME / GUARD_INC (and GUARD_BRANCH when `branch` is
  // non-empty, for externally driven fan-outs).
  Status LaunchGuarded(SiteId home, const std::string& code, Briefcase bc,
                       const std::string& agent, const std::string& branch = "");

  // Declares `agent`'s clone fan-out directly at the home registry (the
  // TACL-level ft_fanout does the same from wherever the agent clones).
  void DeclareFanout(SiteId home, const std::string& agent, int branches);

  // Live guard records at a site (0 while the site is down).
  size_t GuardCount(SiteId site) const;
  size_t TotalGuards() const;
  const Stats& stats() const { return stats_; }
  const GuardOptions& options() const { return options_; }
  CompletionRegistry& registry() { return *registry_; }
  const CompletionRegistry& registry() const { return *registry_; }

  // Called after every successful relaunch send — chaos harnesses use it to
  // crash the relauncher mid-recovery.
  using RelaunchHook =
      std::function<void(SiteId site, const std::string& agent, uint32_t incarnation)>;
  void SetRelaunchHook(RelaunchHook hook) { relaunch_hook_ = std::move(hook); }

  // Relaunch-to-reactivation latencies (relaunch send until the relaunched
  // incarnation's next deposit or outcome), for bench_e14_ft.
  const std::vector<SimTime>& relaunch_latencies() const {
    return relaunch_latencies_;
  }

 private:
  struct GuardRecord {
    std::string agent;
    std::string branch;      // "" for unbranched computations.
    uint32_t seq = 0;
    uint32_t inc = 0;        // Incarnation that deposited this record.
    uint32_t last_inc = 0;   // Highest incarnation this record relaunched.
    SharedBytes checkpoint;  // Serialized briefcase, CODE included.
    std::string next_site;   // Where the agent went from here.
    std::string prev_site;   // Where the previous guard sits ("" at origin).
    int misses = 0;
    int relaunches = 0;
    int unreachable_rounds = 0;
    bool retired = false;
    SimTime deposited_at = 0;  // Lease anchor (reset on recovery).
  };
  struct SiteTable {
    uint64_t generation = 0;  // Place generation this table belongs to.
    std::map<std::string, GuardRecord> records;  // key = agent '#' branch '#' seq.
    std::map<std::string, uint32_t> fences;      // agent '|' branch -> min live inc.
    std::set<std::string> retired_agents;
  };
  struct DurableLog {
    std::unique_ptr<DiskLog> log;
    uint64_t ops_since_compact = 0;
  };

  static std::string Key(const std::string& agent, const std::string& branch,
                         uint32_t seq);
  static std::string FenceKey(const std::string& agent, const std::string& branch);

  // Returns this site's table, resetting it when the place was reincarnated.
  SiteTable& TableFor(Place& place);
  const SiteTable* PeekTable(SiteId site) const;

  Status OnMeet(Place& place, Briefcase& bc);
  Status HandleDeposit(Place& place, Briefcase& bc);
  Status HandleStatusRequest(Place& place, Briefcase& bc);
  Status HandleStatusReply(Place& place, Briefcase& bc);
  Status HandleRetire(Place& place, Briefcase& bc, bool is_wave_origin);
  Status HandleOutcome(Place& place, Briefcase& bc);
  Status HandleFanout(Place& place, Briefcase& bc);

  void SchedulePing(SiteId site, uint64_t generation, const std::string& key);
  void PingTick(SiteId site, uint64_t generation, const std::string& key);
  // Relaunches (or dead-letters) the record at `key`.  Returns false when the
  // record was removed (dead-lettered); callers must re-find by key either
  // way — recovery can reenter the table through local retire waves.
  bool Recover(SiteId site, SiteTable& table, const std::string& key);

  // Routes a fan-out declaration to `home_name`'s registry — locally when
  // home is this site or unknown, reliably over the wire otherwise.
  Status SendFanout(SiteId from, const std::string& agent, int branches,
                    const std::string& home_name);

  // Sends `outcome` (with optional checkpoint payload) to `home_name`'s
  // registry — locally when home is this site or unknown, reliably over the
  // wire otherwise.
  Status ReportOutcome(SiteId from, const std::string& agent, BranchOutcome outcome,
                       const std::string& home_name, const Briefcase* trace_src,
                       const SharedBytes* checkpoint);
  // Registry resolution: one retirement wave per branch endpoint, plus the
  // completion-contact notification.
  void OnResolved(SiteId home, const std::string& agent,
                  const CompletionRegistry::AgentState& state);
  void FireRetireWave(SiteId from, const std::string& agent,
                      const std::string& endpoint, const std::string& prev);
  // Budget exhaustion / unreachable itinerary / lease expiry: the checkpoint
  // goes home as a DEADLETTER outcome instead of being dropped.
  void DeadLetterRecord(SiteId site, GuardRecord& record, const std::string& reason);
  void RemoveRecord(SiteId site, SiteTable& table, const std::string& key);

  // Durable guard-table plumbing (no-ops when !options_.durable).
  DiskLog* GuardLog(SiteId site);
  void PersistGuardOp(SiteId site, const Bytes& op);
  void PersistRecord(SiteId site, const std::string& key, const GuardRecord& record);
  static void EncodeRecord(Encoder* enc, const std::string& key,
                           const GuardRecord& record);
  static bool DecodeRecord(Decoder* dec, std::string* key, GuardRecord* record);
  Bytes EncodeTableSnapshot(const SiteTable& table) const;
  void RecoverGuards(Place& place);

  void RecordFtSpan(const std::string& name, SiteId site, const Briefcase* ctx_src,
                    const std::string& detail);
  void TrackReactivation(const std::string& agent, const std::string& branch,
                         uint32_t inc);

  Kernel* kernel_;
  GuardOptions options_;
  std::map<SiteId, SiteTable> tables_;
  std::map<SiteId, DurableLog> guard_logs_;
  std::unique_ptr<CompletionRegistry> registry_;
  Stats stats_;
  RelaunchHook relaunch_hook_;
  // agent '|' branch '|' inc -> relaunch send time, awaiting reactivation.
  std::map<std::string, SimTime> pending_relaunches_;
  std::vector<SimTime> relaunch_latencies_;
  Histogram* reactivation_hist_ = nullptr;
};

}  // namespace tacoma::ft

#endif  // TACOMA_FT_REARGUARD_H_
