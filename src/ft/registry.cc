#include "ft/registry.h"

#include "serial/encoder.h"
#include "util/log.h"

namespace tacoma::ft {
namespace {

// Durable op stream ("ftreg.log") record kinds.  The snapshot written by
// Compact() reuses the same per-agent encoding, so replay is one code path.
constexpr uint8_t kOpLaunch = 1;
constexpr uint8_t kOpFanout = 2;
constexpr uint8_t kOpOutcome = 3;

void EncodeOutcome(Encoder* enc, const BranchOutcome& outcome) {
  enc->PutString(outcome.branch);
  enc->PutString(outcome.kind);
  enc->PutString(outcome.reason);
  enc->PutU32(outcome.incarnation);
  enc->PutString(outcome.endpoint);
  enc->PutString(outcome.prev);
}

bool DecodeOutcome(Decoder* dec, BranchOutcome* outcome) {
  return dec->GetString(&outcome->branch) && dec->GetString(&outcome->kind) &&
         dec->GetString(&outcome->reason) && dec->GetU32(&outcome->incarnation) &&
         dec->GetString(&outcome->endpoint) && dec->GetString(&outcome->prev);
}

}  // namespace

CompletionRegistry::CompletionRegistry(Kernel* kernel, bool durable)
    : kernel_(kernel), durable_(durable) {}

void CompletionRegistry::SetResolutionHandler(ResolutionHandler handler) {
  on_resolved_ = std::move(handler);
}

CompletionRegistry::SiteState& CompletionRegistry::StateFor(SiteId site) {
  SiteState& state = sites_[site];
  if (durable_ && state.log == nullptr) {
    state.log = std::make_unique<DiskLog>(&kernel_->disk(site), "ftreg");
  }
  return state;
}

void CompletionRegistry::Persist(SiteId site, const Bytes& op) {
  if (!durable_ || recovering_) {
    return;
  }
  SiteState& state = StateFor(site);
  // A failed append (armed disk, mid-storm) costs durability of this one op,
  // not correctness: the in-memory table still quenches, and recovery after
  // the crash falls back to at-least-once healing plus re-quench on the
  // re-delivered outcome.
  (void)state.log->Append(op);
  if (++state.ops_since_compact >= compact_threshold_) {
    state.ops_since_compact = 0;
    (void)state.log->Compact(EncodeSnapshot(state));
  }
}

Bytes CompletionRegistry::EncodeSnapshot(const SiteState& state) const {
  Encoder enc;
  enc.PutVarint(state.agents.size());
  for (const auto& [agent, st] : state.agents) {
    enc.PutString(agent);
    enc.PutU8(st.launched ? 1 : 0);
    // expected_branches is -1 until declared; shift by one to stay unsigned.
    enc.PutVarint(static_cast<uint64_t>(st.expected_branches + 1));
    enc.PutVarint(st.outcomes.size());
    for (const auto& [branch, outcome] : st.outcomes) {
      EncodeOutcome(&enc, outcome);
    }
  }
  return enc.Take();
}

void CompletionRegistry::RegisterLaunch(SiteId home, const std::string& agent) {
  AgentState& state = StateFor(home).agents[agent];
  if (!state.launched) {
    state.launched = true;
    ++stats_.launches;
    Encoder enc;
    enc.PutU8(kOpLaunch);
    enc.PutString(agent);
    Persist(home, enc.Take());
  }
}

void CompletionRegistry::DeclareFanout(SiteId home, const std::string& agent,
                                       int branches) {
  if (branches < 1) {
    return;
  }
  AgentState& state = StateFor(home).agents[agent];
  if (state.expected_branches >= 0) {
    return;  // First declaration wins.
  }
  state.expected_branches = branches;
  ++stats_.fanouts;
  Encoder enc;
  enc.PutU8(kOpFanout);
  enc.PutString(agent);
  enc.PutVarint(static_cast<uint64_t>(branches));
  Persist(home, enc.Take());
  EvaluateResolution(home, agent, state, /*fire_handlers=*/!recovering_);
}

bool CompletionRegistry::RecordOutcome(SiteId home, const std::string& agent,
                                       BranchOutcome outcome) {
  AgentState& state = StateFor(home).agents[agent];
  if (state.resolved || state.outcomes.contains(outcome.branch)) {
    ++stats_.duplicates_quenched;
    return false;
  }
  if (outcome.kind == "complete") {
    ++stats_.completions;
  } else {
    ++stats_.deadletters;
  }
  Encoder enc;
  enc.PutU8(kOpOutcome);
  enc.PutString(agent);
  EncodeOutcome(&enc, outcome);
  // Mutate before persisting: Persist may compact, and the snapshot it
  // writes must already contain this outcome (compaction clears the log).
  const std::string branch = outcome.branch;
  state.outcomes[branch] = std::move(outcome);
  Persist(home, enc.Take());
  EvaluateResolution(home, agent, state, /*fire_handlers=*/!recovering_);
  return true;
}

void CompletionRegistry::EvaluateResolution(SiteId home, const std::string& agent,
                                            AgentState& state, bool fire_handlers) {
  if (state.resolved) {
    return;
  }
  if (state.expected_branches < 0) {
    // No fan-out declared: the computation resolves on its unbranched
    // outcome.  Branch outcomes arriving before the (reliable, possibly
    // delayed) fan-out declaration wait at the barrier.
    if (!state.outcomes.contains("")) {
      return;
    }
  } else if (state.outcomes.size() < static_cast<size_t>(state.expected_branches)) {
    return;
  }
  state.resolved = true;
  state.final_kind = "complete";
  for (const auto& [branch, outcome] : state.outcomes) {
    if (outcome.kind != "complete") {
      state.final_kind = "deadletter";
      break;
    }
  }
  ++stats_.resolved;
  if (fire_handlers && on_resolved_) {
    on_resolved_(home, agent, state);
  }
}

void CompletionRegistry::RecoverSite(SiteId site) {
  if (!durable_) {
    return;
  }
  SiteState& state = StateFor(site);
  state.agents.clear();
  state.ops_since_compact = 0;
  auto contents = state.log->Load();
  if (!contents.ok()) {
    TLOG_WARN << "ftreg: recovery failed for site " << site << ": "
              << contents.status().ToString();
    return;
  }
  recovering_ = true;
  if (!contents->snapshot.empty()) {
    Decoder dec(contents->snapshot);
    uint64_t agents = 0;
    if (dec.GetVarint(&agents)) {
      for (uint64_t i = 0; i < agents && dec.ok(); ++i) {
        std::string agent;
        uint8_t launched = 0;
        uint64_t expected_plus1 = 0;
        uint64_t outcomes = 0;
        if (!dec.GetString(&agent) || !dec.GetU8(&launched) ||
            !dec.GetVarint(&expected_plus1) || !dec.GetVarint(&outcomes)) {
          break;
        }
        AgentState& st = state.agents[agent];
        st.launched = launched != 0;
        st.expected_branches = static_cast<int>(expected_plus1) - 1;
        if (st.launched) {
          ++stats_.recovered;
        }
        for (uint64_t j = 0; j < outcomes; ++j) {
          BranchOutcome outcome;
          if (!DecodeOutcome(&dec, &outcome)) {
            break;
          }
          st.outcomes[outcome.branch] = std::move(outcome);
        }
        EvaluateResolution(site, agent, st, /*fire_handlers=*/false);
      }
    }
  }
  for (const Bytes& record : contents->records) {
    Decoder dec(record);
    uint8_t op = 0;
    std::string agent;
    if (!dec.GetU8(&op) || !dec.GetString(&agent)) {
      continue;
    }
    AgentState& st = state.agents[agent];
    switch (op) {
      case kOpLaunch:
        if (!st.launched) {
          st.launched = true;
          ++stats_.recovered;
        }
        break;
      case kOpFanout: {
        uint64_t branches = 0;
        if (dec.GetVarint(&branches) && st.expected_branches < 0) {
          st.expected_branches = static_cast<int>(branches);
        }
        break;
      }
      case kOpOutcome: {
        BranchOutcome outcome;
        if (DecodeOutcome(&dec, &outcome) && !st.resolved &&
            !st.outcomes.contains(outcome.branch)) {
          st.outcomes[outcome.branch] = std::move(outcome);
        }
        break;
      }
      default:
        break;
    }
    EvaluateResolution(site, agent, st, /*fire_handlers=*/false);
  }
  recovering_ = false;
}

const CompletionRegistry::AgentState* CompletionRegistry::Find(
    SiteId home, const std::string& agent) const {
  auto site_it = sites_.find(home);
  if (site_it == sites_.end()) {
    return nullptr;
  }
  auto agent_it = site_it->second.agents.find(agent);
  if (agent_it == site_it->second.agents.end()) {
    return nullptr;
  }
  return &agent_it->second;
}

Status CompletionRegistry::CheckExactlyOnce(SiteId home, bool require_resolved) const {
  auto site_it = sites_.find(home);
  if (site_it == sites_.end()) {
    return OkStatus();
  }
  for (const auto& [agent, state] : site_it->second.agents) {
    if (!state.launched) {
      continue;
    }
    if (state.resolved && state.final_kind != "complete" &&
        state.final_kind != "deadletter") {
      return InternalError("registry: agent " + agent + " resolved to \"" +
                           state.final_kind + "\"");
    }
    if (state.expected_branches >= 0 &&
        state.outcomes.size() > static_cast<size_t>(state.expected_branches)) {
      return InternalError("registry: agent " + agent + " has " +
                           std::to_string(state.outcomes.size()) + " outcomes for " +
                           std::to_string(state.expected_branches) + " branches");
    }
    if (require_resolved && !state.resolved) {
      return InternalError("registry: agent " + agent +
                           " never resolved (lost, neither COMPLETE nor DEADLETTER)");
    }
  }
  return OkStatus();
}

Status CompletionRegistry::CheckExactlyOnceEverywhere(bool require_resolved) const {
  for (const auto& [site, state] : sites_) {
    Status s = CheckExactlyOnce(site, require_resolved);
    if (!s.ok()) {
      return s;
    }
  }
  return OkStatus();
}

}  // namespace tacoma::ft
