// Completion registry — the home site's durable, exactly-once outcome table.
//
// The rear-guard protocol (rearguard.h) makes recovery at-least-once: a
// false suspicion relaunches a checkpoint while the original is still
// walking, so two incarnations of one computation can both reach the end of
// their itinerary.  The registry is where at-least-once is squeezed down to
// exactly-once: every launched agent owns one entry at its home site, and
// the FIRST terminal outcome recorded for each (agent, branch) wins —
// "complete" or "deadletter", never both, never twice.  Later outcomes from
// stale incarnations are quenched (counted, reported to the duplicate
// handler so their guard chains can be unwound, and otherwise ignored).
//
// Clone fan-out gets a join barrier here: DeclareFanout(agent, n) tells the
// registry the computation split into n branches, and the agent resolves
// only when all n branch outcomes are in.  Retirement waves therefore fire
// once per branch, after the whole fan-out has ended — not when the first
// branch finishes (which would tear down guards the other branches still
// need).
//
// Entries are persisted through the same crash-atomic DiskLog stack the file
// cabinets use ("ftreg.log"/"ftreg.snap" on the site's disk), so a home-site
// restart recovers the table and a pre-crash outcome still quenches its
// post-crash duplicate.
#ifndef TACOMA_FT_REGISTRY_H_
#define TACOMA_FT_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/kernel.h"
#include "storage/disk_log.h"

namespace tacoma::ft {

// One recorded end-of-life for one branch of one agent computation.
struct BranchOutcome {
  std::string branch;        // "" = the unbranched computation.
  std::string kind;          // "complete" | "deadletter".
  std::string reason;        // Structured DEADLETTER_REASON for dead-letters.
  uint32_t incarnation = 0;  // Incarnation that produced the outcome.
  std::string endpoint;      // Site name where the outcome originated.
  std::string prev;          // GUARD_PREV at the endpoint (retire-wave entry).
};

class CompletionRegistry {
 public:
  struct Stats {
    uint64_t launches = 0;
    uint64_t fanouts = 0;
    uint64_t completions = 0;
    uint64_t deadletters = 0;
    uint64_t duplicates_quenched = 0;
    uint64_t resolved = 0;
    uint64_t recovered = 0;  // Entries rebuilt from disk after a restart.
  };

  struct AgentState {
    bool launched = false;
    // Branches the join barrier waits for; -1 until a fan-out is declared
    // (an undeclared agent resolves on its single "" branch outcome).
    int expected_branches = -1;
    std::map<std::string, BranchOutcome> outcomes;  // key = branch.
    bool resolved = false;
    std::string final_kind;  // "complete" iff every branch completed.
  };

  // Fired exactly once per agent, when its last awaited branch outcome
  // lands (never during recovery replay — pre-crash resolutions already had
  // their side effects).
  using ResolutionHandler =
      std::function<void(SiteId home, const std::string& agent, const AgentState&)>;

  CompletionRegistry(Kernel* kernel, bool durable);

  void SetResolutionHandler(ResolutionHandler handler);

  // Durably notes that `agent` was launched from `home`; CheckExactlyOnce
  // holds every registered launch to the exactly-once contract.
  void RegisterLaunch(SiteId home, const std::string& agent);

  // Declares that `agent` fans out into `branches` clone branches (join
  // barrier).  First declaration wins; may resolve the agent immediately if
  // the branch outcomes already arrived.
  void DeclareFanout(SiteId home, const std::string& agent, int branches);

  // Records one branch outcome.  Returns true if this outcome was accepted
  // (first for its branch) and false if it was quenched as a duplicate or
  // the agent had already resolved.
  bool RecordOutcome(SiteId home, const std::string& agent, BranchOutcome outcome);

  // Rebuilds a site's table from its disk (no handlers fire).  Called by the
  // rear guard's place initializer on every (re)creation of the place.
  void RecoverSite(SiteId site);

  const AgentState* Find(SiteId home, const std::string& agent) const;

  // The exactly-once contract over one home site's registered launches:
  // every branch carries at most one outcome (structural), and — when
  // `require_resolved` — every launched agent has resolved to exactly one
  // final COMPLETE or DEADLETTER.
  Status CheckExactlyOnce(SiteId home, bool require_resolved) const;
  // The same check over every site that holds registry state.
  Status CheckExactlyOnceEverywhere(bool require_resolved) const;

  const Stats& stats() const { return stats_; }

 private:
  struct SiteState {
    std::map<std::string, AgentState> agents;
    std::unique_ptr<DiskLog> log;
    uint64_t ops_since_compact = 0;
  };

  SiteState& StateFor(SiteId site);
  void Persist(SiteId site, const Bytes& op);
  void EvaluateResolution(SiteId home, const std::string& agent, AgentState& state,
                          bool fire_handlers);
  Bytes EncodeSnapshot(const SiteState& state) const;

  Kernel* kernel_;
  bool durable_;
  uint64_t compact_threshold_ = 64;
  std::map<SiteId, SiteState> sites_;
  Stats stats_;
  ResolutionHandler on_resolved_;
  bool recovering_ = false;
};

}  // namespace tacoma::ft

#endif  // TACOMA_FT_REGISTRY_H_
