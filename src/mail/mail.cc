#include "mail/mail.h"

#include "serial/encoder.h"

namespace tacoma::mail {
namespace {

std::string InboxFolder(const std::string& user) { return "INBOX:" + user; }
std::string ReceiptFolder(const std::string& user) { return "RECEIPTS:" + user; }

}  // namespace

Bytes MailMessage::Serialize() const {
  Encoder enc;
  enc.PutString(id);
  enc.PutString(from_user);
  enc.PutString(from_site);
  enc.PutString(to_user);
  enc.PutString(subject);
  enc.PutString(body);
  enc.PutU64(delivered_us);
  return enc.Take();
}

Result<MailMessage> MailMessage::Deserialize(BytesView data) {
  Decoder dec(data);
  MailMessage m;
  if (!dec.GetString(&m.id) || !dec.GetString(&m.from_user) ||
      !dec.GetString(&m.from_site) || !dec.GetString(&m.to_user) ||
      !dec.GetString(&m.subject) || !dec.GetString(&m.body) ||
      !dec.GetU64(&m.delivered_us) || !dec.Done()) {
    return DataLossError("malformed mail message");
  }
  return m;
}

MailSystem::MailSystem(Kernel* kernel) : kernel_(kernel) {}

void MailSystem::Install() {
  if (installed_) {
    return;
  }
  installed_ = true;
  MailSystem* self = this;
  kernel_->AddPlaceInitializer([self](Place& place) {
    place.RegisterAgent("mailbox", [self](Place& at, Briefcase& bc) {
      return self->OnMailbox(at, bc);
    });
  });
  MetricsRegistry& metrics = kernel_->metrics();
  metrics.AddProbe("mail.sent", [self] { return self->stats_.sent; });
  metrics.AddProbe("mail.delivered", [self] { return self->stats_.delivered; });
  metrics.AddProbe("mail.receipts", [self] { return self->stats_.receipts; });
}

Status MailSystem::OnMailbox(Place& place, Briefcase& bc) {
  auto op = bc.GetString("OP").value_or("");

  if (op == "deliver") {
    MailMessage m;
    m.id = bc.GetString("MSGID").value_or("");
    m.from_user = bc.GetString("MAIL_FROM").value_or("");
    m.from_site = bc.GetString("FROM_SITE").value_or("");
    m.to_user = bc.GetString("MAIL_TO").value_or("");
    m.subject = bc.GetString("SUBJECT").value_or("");
    m.body = bc.GetString("BODY").value_or("");
    m.delivered_us = kernel_->sim().Now();
    if (m.id.empty() || m.to_user.empty()) {
      return InvalidArgumentError("mailbox: malformed delivery");
    }
    place.Cabinet("mail").Append(InboxFolder(m.to_user), m.Serialize());
    ++stats_.delivered;

    // Delivery receipt travels back to the sender's mailbox.
    auto origin = kernel_->net().FindSite(m.from_site);
    if (origin.has_value() && !m.from_user.empty()) {
      Briefcase receipt;
      receipt.SetString("OP", "receipt");
      receipt.SetString("MSGID", m.id);
      receipt.SetString("MAIL_TO", m.from_user);
      (void)kernel_->TransferAgent(place.site(), *origin, "mailbox", receipt);
    }
    return OkStatus();
  }

  if (op == "receipt") {
    auto msg_id = bc.GetString("MSGID");
    auto user = bc.GetString("MAIL_TO");
    if (!msg_id || !user) {
      return InvalidArgumentError("mailbox: malformed receipt");
    }
    place.Cabinet("mail").AppendString(ReceiptFolder(*user), *msg_id);
    ++stats_.receipts;
    return OkStatus();
  }

  return InvalidArgumentError("mailbox: unknown OP \"" + op + "\"");
}

Status MailSystem::Send(SiteId from_site, const std::string& from_user, SiteId to_site,
                        const std::string& to_user, const std::string& subject,
                        const std::string& body, const std::string& extra_code) {
  Install();
  std::string id = "msg-" + std::to_string(next_id_++);

  // The message is a mobile agent: its code deposits it and then runs any
  // rider code the sender attached.
  std::string code =
      "bc_set OP deliver\n"
      "meet mailbox\n" +
      extra_code;

  Briefcase bc;
  bc.SetString("MSGID", id);
  bc.SetString("MAIL_FROM", from_user);
  bc.SetString("FROM_SITE", kernel_->net().site_name(from_site));
  bc.SetString("MAIL_TO", to_user);
  bc.SetString("SUBJECT", subject);
  bc.SetString("BODY", body);
  bc.folder(kCodeFolder).PushBackString(code);

  Status sent = kernel_->TransferAgent(from_site, to_site, "ag_tacl", bc);
  if (sent.ok()) {
    ++stats_.sent;
  }
  return sent;
}

std::vector<MailMessage> MailSystem::Inbox(SiteId site, const std::string& user) const {
  std::vector<MailMessage> out;
  Place* place = const_cast<Kernel*>(kernel_)->place(site);
  if (place == nullptr) {
    return out;
  }
  for (const Bytes& b : place->Cabinet("mail").List(InboxFolder(user))) {
    auto m = MailMessage::Deserialize(b);
    if (m.ok()) {
      out.push_back(std::move(m).value());
    }
  }
  return out;
}

std::vector<MailMessage> MailSystem::Drain(SiteId site, const std::string& user) {
  std::vector<MailMessage> out = Inbox(site, user);
  Place* place = kernel_->place(site);
  if (place != nullptr) {
    place->Cabinet("mail").EraseFolder(InboxFolder(user));
  }
  return out;
}

std::vector<std::string> MailSystem::Receipts(SiteId site,
                                              const std::string& user) const {
  Place* place = const_cast<Kernel*>(kernel_)->place(site);
  if (place == nullptr) {
    return {};
  }
  return place->Cabinet("mail").ListStrings(ReceiptFolder(user));
}

}  // namespace tacoma::mail
