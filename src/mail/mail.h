// Agent-based mail (§6): "we have started to build an interactive mail
// system where messages are implemented by agents."
//
// A mail message IS an agent: Send() builds a small TACL program that travels
// to the destination site, deposits itself into the recipient's mailbox (a
// file cabinet folder), and couriers a delivery receipt back to the sender's
// mailbox.  Because the message is an agent it can do more than sit in a
// folder — the EXTRA hook lets callers append code the message runs on
// delivery (the tests use it for auto-replies and mail filtering).
#ifndef TACOMA_MAIL_MAIL_H_
#define TACOMA_MAIL_MAIL_H_

#include <string>
#include <vector>

#include "core/kernel.h"

namespace tacoma::mail {

struct MailMessage {
  std::string id;
  std::string from_user;
  std::string from_site;
  std::string to_user;
  std::string subject;
  std::string body;
  uint64_t delivered_us = 0;

  Bytes Serialize() const;
  static Result<MailMessage> Deserialize(BytesView data);
};

class MailSystem {
 public:
  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t receipts = 0;
  };

  explicit MailSystem(Kernel* kernel);

  // Installs the "mailbox" resident everywhere (idempotent per kernel).
  void Install();

  // Sends `subject`/`body` from `from_user`@`from_site` to `to_user` at
  // `to_site` as a mobile agent.  `extra_code` (optional TACL) runs at the
  // destination after the deposit.
  Status Send(SiteId from_site, const std::string& from_user, SiteId to_site,
              const std::string& to_user, const std::string& subject,
              const std::string& body, const std::string& extra_code = "");

  // Reads a user's inbox at a site (messages stay until Drain).
  std::vector<MailMessage> Inbox(SiteId site, const std::string& user) const;
  // Reads and clears.
  std::vector<MailMessage> Drain(SiteId site, const std::string& user);
  // Delivery receipts (message ids) accumulated for a sender.
  std::vector<std::string> Receipts(SiteId site, const std::string& user) const;

  const Stats& stats() const { return stats_; }

 private:
  Status OnMailbox(Place& place, Briefcase& bc);

  Kernel* kernel_;
  bool installed_ = false;
  uint64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace tacoma::mail

#endif  // TACOMA_MAIL_MAIL_H_
