#include "net/epoll_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <array>

namespace tacoma {

EpollLoop::EpollLoop() : epfd_(epoll_create1(0)) {}

EpollLoop::~EpollLoop() {
  if (epfd_ >= 0) {
    close(epfd_);
  }
}

Status EpollLoop::Add(int fd, uint32_t events, Callback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return InternalError(std::string("epoll_ctl ADD: ") + strerror(errno));
  }
  callbacks_[fd] = std::make_shared<Callback>(std::move(cb));
  return OkStatus();
}

Status EpollLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return InternalError(std::string("epoll_ctl MOD: ") + strerror(errno));
  }
  return OkStatus();
}

void EpollLoop::Remove(int fd) {
  epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

int EpollLoop::PollOnce(int timeout_ms) {
  std::array<epoll_event, 64> events;
  int n = epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                     timeout_ms);
  if (n < 0) {
    return errno == EINTR ? 0 : -1;
  }
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end()) {
      continue;  // Removed by an earlier callback in this batch.
    }
    auto cb = it->second;  // Keep alive across self-removal.
    (*cb)(events[i].events);
  }
  return n;
}

}  // namespace tacoma
