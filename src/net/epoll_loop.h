// Thin epoll wrapper: fd -> callback registration plus a single-shot poll.
//
// Single-threaded by design, like everything else in TACOMA: callbacks run
// inside PollOnce on the caller's thread, so the transport needs no locks.
// Callbacks may Add/Modify/Remove fds (including their own) mid-dispatch;
// removal is deferred-safe — a callback removed while a batch is being
// dispatched is not invoked for later events in that batch.
#ifndef TACOMA_NET_EPOLL_LOOP_H_
#define TACOMA_NET_EPOLL_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "util/status.h"

namespace tacoma {

class EpollLoop {
 public:
  // Receives the epoll event mask (EPOLLIN | EPOLLOUT | EPOLLERR | ...).
  using Callback = std::function<void(uint32_t events)>;

  EpollLoop();
  ~EpollLoop();
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  bool ok() const { return epfd_ >= 0; }

  Status Add(int fd, uint32_t events, Callback cb);
  Status Modify(int fd, uint32_t events);
  // Unregisters fd (does not close it).
  void Remove(int fd);

  // Waits up to timeout_ms (-1 blocks, 0 polls) and dispatches callbacks.
  // Returns the number of fds that had events, or -1 on epoll_wait error.
  int PollOnce(int timeout_ms);

 private:
  int epfd_ = -1;
  // shared_ptr so a callback that Removes itself mid-dispatch stays alive
  // for the duration of its own invocation.
  std::map<int, std::shared_ptr<Callback>> callbacks_;
};

}  // namespace tacoma

#endif  // TACOMA_NET_EPOLL_LOOP_H_
