#include "net/frame.h"

#include <cstring>

namespace tacoma {

namespace {

void PutU32Le(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
  out[2] = static_cast<uint8_t>(v >> 16);
  out[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32Le(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | static_cast<uint32_t>(in[1]) << 8 |
         static_cast<uint32_t>(in[2]) << 16 | static_cast<uint32_t>(in[3]) << 24;
}

}  // namespace

std::array<uint8_t, kFrameHeaderBytes> EncodeFrameHeader(SiteId from, SiteId to,
                                                         uint32_t payload_len) {
  std::array<uint8_t, kFrameHeaderBytes> h;
  PutU32Le(h.data(), kFrameMagic);
  PutU32Le(h.data() + 4, from);
  PutU32Le(h.data() + 8, to);
  PutU32Le(h.data() + 12, payload_len);
  return h;
}

Status FrameReader::Feed(SharedBytes chunk, std::vector<WireFrame>* out) {
  if (poisoned_) {
    return DataLossError("frame stream poisoned by earlier corruption");
  }

  // Fast path: no carried-over partial, parse frames straight out of the
  // chunk via Substr views (payloads share the chunk's allocation).  Slow
  // path: stitch partial + chunk into one buffer first — that copy happens
  // only when a frame straddled a read() boundary.
  SharedBytes buf;
  if (partial_.empty()) {
    buf = std::move(chunk);
  } else {
    Bytes merged;
    merged.reserve(partial_.size() + chunk.size());
    merged.insert(merged.end(), partial_.begin(), partial_.end());
    merged.insert(merged.end(), chunk.begin(), chunk.end());
    buf = SharedBytes(std::move(merged));
  }

  size_t off = 0;
  while (buf.size() - off >= kFrameHeaderBytes) {
    const uint8_t* h = buf.data() + off;
    if (GetU32Le(h) != kFrameMagic) {
      poisoned_ = true;
      return DataLossError("bad frame magic");
    }
    uint32_t len = GetU32Le(h + 12);
    if (len > max_frame_bytes_) {
      poisoned_ = true;
      return DataLossError("frame length " + std::to_string(len) +
                           " exceeds limit " + std::to_string(max_frame_bytes_));
    }
    if (buf.size() - off - kFrameHeaderBytes < len) {
      break;  // Frame incomplete; wait for more bytes.
    }
    WireFrame f;
    f.from = GetU32Le(h + 4);
    f.to = GetU32Le(h + 8);
    f.payload = buf.Substr(off + kFrameHeaderBytes, len);
    out->push_back(std::move(f));
    off += kFrameHeaderBytes + len;
  }
  partial_ = off < buf.size() ? buf.Substr(off, buf.size() - off) : SharedBytes();
  return OkStatus();
}

}  // namespace tacoma
