// Length-prefixed frame encoding for the TCP transport.
//
// TCP is a byte stream; the kernel speaks in frames.  Every frame on the
// wire is a fixed 16-byte header followed by the payload:
//
//   offset  size  field
//   0       4     magic "TAC1" (0x54 0x41 0x43 0x31 on the wire)
//   4       4     from-site id, little-endian
//   8       4     to-site id, little-endian
//   12      4     payload length in bytes, little-endian
//   16      len   payload (opaque kernel frame)
//
// The header carries site ids — not addresses — because connections are
// anonymous: any process that knows a peer's host:port can carry frames for
// any site it hosts, exactly like the sim network's store-and-forward hops.
// Authentication, dedup, and retries all live in the kernel layers above.
//
// FrameReader reassembles frames from arbitrary read() chunk boundaries.
// When a chunk starts on a frame boundary the extracted payloads are Substr
// views into the chunk's SharedBytes allocation (zero additional copies);
// only partial-frame tails are stitched across chunks.
#ifndef TACOMA_NET_FRAME_H_
#define TACOMA_NET_FRAME_H_

#include <array>
#include <cstdint>
#include <vector>

#include "net/transport.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

constexpr size_t kFrameHeaderBytes = 16;
constexpr uint32_t kFrameMagic = 0x31434154;  // "TAC1" read little-endian.

struct WireFrame {
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;
  SharedBytes payload;
};

// Encodes the 16-byte header for a frame carrying `payload_len` bytes.
std::array<uint8_t, kFrameHeaderBytes> EncodeFrameHeader(SiteId from, SiteId to,
                                                         uint32_t payload_len);

// Incremental stream-to-frame reassembler; one per connection.
class FrameReader {
 public:
  // Frames longer than `max_frame_bytes` poison the stream (a corrupt or
  // hostile length prefix must not allocate unbounded memory).
  explicit FrameReader(size_t max_frame_bytes) : max_frame_bytes_(max_frame_bytes) {}

  // Feeds one read() chunk; appends every completed frame to `*out`.  An
  // error (bad magic, oversized length) is sticky: the connection carrying
  // this stream is beyond resync and must be closed.
  Status Feed(SharedBytes chunk, std::vector<WireFrame>* out);

  // Bytes of an incomplete frame currently buffered.
  size_t pending_bytes() const { return partial_.size(); }

 private:
  size_t max_frame_bytes_;
  SharedBytes partial_;  // Prefix of an incomplete frame (may alias a chunk).
  bool poisoned_ = false;
};

}  // namespace tacoma

#endif  // TACOMA_NET_FRAME_H_
