#include "net/proc_chaos.h"

#include <signal.h>
#include <sys/wait.h>
#include <time.h>

namespace tacoma {

uint64_t ProcessChaos::MonoMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000'000;
}

ProcessChaos::ProcessChaos(Spawner spawner, Options options)
    : spawner_(std::move(spawner)), options_(options), rng_(options.seed) {}

ProcessChaos::~ProcessChaos() { Stop(); }

bool ProcessChaos::Start() {
  pid_ = spawner_();
  if (pid_ <= 0) {
    return false;
  }
  next_kill_ms = MonoMs() + static_cast<uint64_t>(rng_.UniformInt(
                                static_cast<int64_t>(options_.min_uptime_ms),
                                static_cast<int64_t>(options_.max_uptime_ms)));
  return true;
}

void ProcessChaos::KillNow() {
  if (pid_ <= 0) {
    return;
  }
  kill(pid_, SIGKILL);
  waitpid(pid_, nullptr, 0);
  pid_ = -1;
  ++report_.kills;
  next_respawn_ms =
      MonoMs() + static_cast<uint64_t>(rng_.UniformInt(
                     static_cast<int64_t>(options_.min_downtime_ms),
                     static_cast<int64_t>(options_.max_downtime_ms)));
}

bool ProcessChaos::RespawnNow() {
  pid_ = spawner_();
  if (pid_ <= 0) {
    return false;
  }
  ++report_.respawns;
  next_kill_ms = MonoMs() + static_cast<uint64_t>(rng_.UniformInt(
                                static_cast<int64_t>(options_.min_uptime_ms),
                                static_cast<int64_t>(options_.max_uptime_ms)));
  return true;
}

bool ProcessChaos::Tick() {
  if (stopped_) {
    return false;
  }
  uint64_t now = MonoMs();
  if (pid_ > 0) {
    bool kills_left =
        options_.max_kills == 0 || report_.kills < options_.max_kills;
    if (kills_left && now >= next_kill_ms) {
      KillNow();
      return true;
    }
    return false;
  }
  if (now >= next_respawn_ms) {
    return RespawnNow();
  }
  return false;
}

void ProcessChaos::Stop() {
  stopped_ = true;
  if (pid_ > 0) {
    kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
}

}  // namespace tacoma
