// Process-level chaos: SIGKILL a peer daemon, restart it, repeat.
//
// The sim-layer ChaosHarness injects site crashes inside one process; this
// is its multi-process sibling.  A ProcessChaos owns one child process slot:
// a Spawner launches (or relaunches) the peer, and a seeded uptime/downtime
// schedule decides when the current incarnation is SIGKILLed and when the
// next one starts.  SIGKILL — not SIGTERM — because the contract under test
// is the paper's §5 fault-tolerance story: no flush, no goodbye, the process
// is simply gone, and exactly-once survival must come from durable state
// (dedup journals, rear-guard checkpoints) plus retries.
//
// Driven by non-blocking Tick() calls from the surviving side's pump loop,
// so no extra threads or signal handlers are involved.
#ifndef TACOMA_NET_PROC_CHAOS_H_
#define TACOMA_NET_PROC_CHAOS_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>

#include "util/rng.h"

namespace tacoma {

class ProcessChaos {
 public:
  // Launches one incarnation of the victim; returns its pid (< 0 = failure).
  using Spawner = std::function<pid_t()>;

  struct Options {
    uint64_t seed = 1995;
    uint64_t min_uptime_ms = 400;
    uint64_t max_uptime_ms = 1500;
    uint64_t min_downtime_ms = 150;
    uint64_t max_downtime_ms = 600;
    // Stop killing after this many SIGKILLs (0 = keep going forever).
    uint64_t max_kills = 1;
  };

  struct Report {
    uint64_t kills = 0;
    uint64_t respawns = 0;
  };

  ProcessChaos(Spawner spawner, Options options);
  // Reaps (and kills, if still running) the current incarnation.
  ~ProcessChaos();
  ProcessChaos(const ProcessChaos&) = delete;
  ProcessChaos& operator=(const ProcessChaos&) = delete;

  // Spawns the first incarnation and schedules its demise.
  bool Start();

  // Call frequently from the pump loop.  Kills or respawns when the seeded
  // schedule says so.  Returns true if it acted this call.
  bool Tick();

  // Kills the current incarnation and stops scheduling further faults.
  void Stop();

  pid_t pid() const { return pid_; }
  bool victim_up() const { return pid_ > 0; }
  const Report& report() const { return report_; }

 private:
  static uint64_t MonoMs();
  void KillNow();
  bool RespawnNow();

  Spawner spawner_;
  Options options_;
  Rng rng_;
  pid_t pid_ = -1;
  bool stopped_ = false;
  uint64_t next_kill_ms = 0;     // Valid while the victim is up.
  uint64_t next_respawn_ms = 0;  // Valid while the victim is down.
  Report report_;
};

}  // namespace tacoma

#endif  // TACOMA_NET_PROC_CHAOS_H_
