#include "net/realtime.h"

#include <time.h>

#include <algorithm>

namespace tacoma {

uint64_t RealtimePump::MonoUs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000;
}

RealtimePump::RealtimePump(Simulator* sim, TcpTransport* transport)
    : sim_(sim), transport_(transport), start_us_(MonoUs()) {}

uint64_t RealtimePump::elapsed_us() const { return MonoUs() - start_us_; }

int RealtimePump::Tick(int max_wait_ms) {
  uint64_t elapsed = elapsed_us();
  sim_->RunUntil(elapsed);

  int wait = max_wait_ms;
  if (!sim_->Idle()) {
    // Sleep no longer than the next due sim event (retry, heartbeat, ...).
    SimTime next = sim_->NextEventTime();
    uint64_t delta_ms = next > elapsed ? (next - elapsed) / 1000 : 0;
    wait = static_cast<int>(std::min<uint64_t>(
        delta_ms, static_cast<uint64_t>(max_wait_ms)));
  }
  return transport_->Poll(wait);
}

bool RealtimePump::RunFor(uint64_t wall_budget_ms,
                          const std::function<bool()>& done) {
  uint64_t deadline = elapsed_us() + wall_budget_ms * 1000;
  while (elapsed_us() < deadline) {
    Tick();
    if (done && done()) {
      return true;
    }
  }
  return done ? done() : false;
}

}  // namespace tacoma
