// Realtime pump: drives the deterministic simulator off the wall clock.
//
// The kernel's timers (retry backoff, rear-guard heartbeats, telemetry
// sampling) are all simulator events.  In a daemon the simulator has no
// Run() loop of its own — instead this pump maps wall-clock time since
// start onto the sim clock (1 µs of wall time = 1 µs of sim time) and
// interleaves:
//
//   1. run every sim event that has come due at the current wall offset,
//   2. poll the TCP transport, sleeping at most until the next sim event
//      is due (so a retry scheduled 80 ms out wakes the process in 80 ms,
//      and an arriving frame wakes it immediately).
//
// The result: the exact same kernel code runs under `Simulator::Run()` in
// tests and under this pump in a daemon, with real elapsed time standing in
// for simulated time.
#ifndef TACOMA_NET_REALTIME_H_
#define TACOMA_NET_REALTIME_H_

#include <cstdint>
#include <functional>

#include "net/tcp_transport.h"
#include "sim/simulator.h"

namespace tacoma {

class RealtimePump {
 public:
  RealtimePump(Simulator* sim, TcpTransport* transport);

  // One iteration: advance the sim to the current wall offset, then poll
  // sockets for at most `max_wait_ms` (less if a sim event is due sooner).
  // Returns the number of frames dispatched into handlers.
  int Tick(int max_wait_ms = 20);

  // Ticks until `done()` returns true or `wall_budget_ms` elapses.  A null
  // `done` just runs out the budget.  Returns the final done() value
  // (false for a null predicate).
  bool RunFor(uint64_t wall_budget_ms, const std::function<bool()>& done = nullptr);

  // Microseconds of wall time since the pump was constructed — this is also
  // the sim-clock horizon the pump has advanced to.
  uint64_t elapsed_us() const;

 private:
  static uint64_t MonoUs();

  Simulator* sim_;
  TcpTransport* transport_;
  uint64_t start_us_;
};

}  // namespace tacoma

#endif  // TACOMA_NET_REALTIME_H_
