#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <sys/epoll.h>

#include <algorithm>

namespace tacoma {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
// Frames gathered per sendmsg: each frame contributes two iovecs (header +
// payload), and IOV_MAX is at least 16 everywhere.
constexpr size_t kSendBatch = 8;

int MakeNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags < 0 ? -1 : fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

uint64_t TcpTransport::MonoMs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000 +
         static_cast<uint64_t>(ts.tv_nsec) / 1'000'000;
}

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)) {}

TcpTransport::~TcpTransport() {
  if (listen_fd_ >= 0) {
    loop_.Remove(listen_fd_);
    close(listen_fd_);
  }
  for (auto& [fd, in] : inbound_) {
    loop_.Remove(fd);
    close(fd);
  }
  for (auto& [site, peer] : peers_) {
    if (peer.fd >= 0) {
      loop_.Remove(peer.fd);
      close(peer.fd);
    }
  }
}

Status TcpTransport::Listen() {
  if (!loop_.ok()) {
    return InternalError("epoll_create1 failed");
  }
  if (listen_fd_ >= 0) {
    return FailedPreconditionError("already listening");
  }
  sockaddr_in addr;
  if (!FillAddr(options_.listen_host, options_.listen_port, &addr)) {
    return InvalidArgumentError("bad listen host " + options_.listen_host);
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, options_.backlog) != 0 || MakeNonBlocking(fd) != 0) {
    Status s = InternalError(std::string("bind/listen: ") + strerror(errno));
    close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    bound_port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  return loop_.Add(fd, EPOLLIN, [this](uint32_t) { OnAcceptable(); });
}

void TcpTransport::AddPeer(SiteId site, std::string host, uint16_t port) {
  auto [it, inserted] = peers_.try_emplace(site, options_.max_frame_bytes);
  it->second.host = std::move(host);
  it->second.port = port;
  if (inserted) {
    it->second.backoff_ms = options_.reconnect_initial_ms;
  }
}

void TcpTransport::SetHandler(SiteId site, Handler handler) {
  handlers_[site] = std::move(handler);
}

void TcpTransport::SetRestartHook(SiteId site, RestartHook hook) {
  restart_hooks_[site] = std::move(hook);
}

bool TcpTransport::PeerConnected(SiteId site) const {
  auto it = peers_.find(site);
  return it != peers_.end() && it->second.state == PeerState::kConnected;
}

size_t TcpTransport::QueuedFrames(SiteId site) const {
  auto it = peers_.find(site);
  return it == peers_.end() ? 0 : it->second.queue.size();
}

Status TcpTransport::Send(SiteId from, SiteId to, SharedBytes payload) {
  if (payload.size() > options_.max_frame_bytes) {
    ++stats_.sends_rejected;
    return InvalidArgumentError("frame exceeds max_frame_bytes");
  }
  if (handlers_.count(to) != 0) {
    // Local destination: queue to the inbox so the handler runs from Poll,
    // never re-entrantly inside this Send.
    ++stats_.frames_sent;
    inbox_.push_back(WireFrame{from, to, std::move(payload)});
    return OkStatus();
  }
  auto it = peers_.find(to);
  if (it == peers_.end()) {
    ++stats_.sends_rejected;
    return NotFoundError("no peer registered for site " + std::to_string(to));
  }
  Peer& peer = it->second;
  if (peer.queue.size() >= options_.max_queued_frames) {
    ++stats_.sends_rejected;
    return ResourceExhaustedError("peer " + std::to_string(to) +
                                  " send queue full");
  }
  Outgoing out;
  out.header =
      EncodeFrameHeader(from, to, static_cast<uint32_t>(payload.size()));
  out.payload = std::move(payload);
  peer.queue.push_back(std::move(out));
  ++stats_.frames_sent;
  if (peer.state == PeerState::kConnected) {
    FlushPeer(to);
  } else if (peer.state == PeerState::kDisconnected &&
             MonoMs() >= peer.next_attempt_ms) {
    StartConnect(to);
  }
  return OkStatus();
}

void TcpTransport::OnAcceptable() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or transient error; epoll will re-arm.
    }
    if (MakeNonBlocking(fd) != 0) {
      close(fd);
      continue;
    }
    SetNoDelay(fd);
    ++stats_.accepts;
    inbound_.emplace(fd, Inbound(options_.max_frame_bytes));
    Status s = loop_.Add(
        fd, EPOLLIN, [this, fd](uint32_t events) { OnInboundEvent(fd, events); });
    if (!s.ok()) {
      inbound_.erase(fd);
      close(fd);
    }
  }
}

bool TcpTransport::ReadIntoInbox(int fd, FrameReader* reader) {
  while (true) {
    Bytes buf(kReadChunk);
    ssize_t n = read(fd, buf.data(), buf.size());
    if (n > 0) {
      stats_.bytes_received += static_cast<uint64_t>(n);
      buf.resize(static_cast<size_t>(n));
      std::vector<WireFrame> frames;
      if (!reader->Feed(SharedBytes(std::move(buf)), &frames).ok()) {
        return false;  // Corrupt stream: caller closes the connection.
      }
      for (WireFrame& f : frames) {
        if (handlers_.count(f.to) != 0) {
          inbox_.push_back(std::move(f));
        } else {
          ++stats_.frames_dropped;  // Misrouted: we don't host that site.
        }
      }
      if (static_cast<size_t>(n) < kReadChunk) {
        return true;  // Drained (short read).
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;
    }
    return false;  // EOF or hard error.
  }
}

void TcpTransport::OnInboundEvent(int fd, uint32_t events) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) {
    return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 ||
      !ReadIntoInbox(fd, &it->second.reader)) {
    CloseInbound(fd);
  }
}

void TcpTransport::CloseInbound(int fd) {
  loop_.Remove(fd);
  close(fd);
  inbound_.erase(fd);
  ++stats_.disconnects;
}

void TcpTransport::StartConnect(SiteId site) {
  Peer& peer = peers_.at(site);
  sockaddr_in addr;
  if (!FillAddr(peer.host, peer.port, &addr)) {
    PeerConnFailure(site);
    return;
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || MakeNonBlocking(fd) != 0) {
    if (fd >= 0) {
      close(fd);
    }
    PeerConnFailure(site);
    return;
  }
  SetNoDelay(fd);
  peer.fd = fd;
  peer.want_writable = false;
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    peer.fd = -1;
    PeerConnFailure(site);
    return;
  }
  peer.state = PeerState::kConnecting;
  // EPOLLOUT signals connect completion; EPOLLIN covers a server that
  // talks (or closes) immediately.
  Status s = loop_.Add(fd, EPOLLOUT | EPOLLIN, [this, site](uint32_t events) {
    OnPeerEvent(site, events);
  });
  if (!s.ok()) {
    close(fd);
    peer.fd = -1;
    PeerConnFailure(site);
  }
}

void TcpTransport::FinishConnect(SiteId site) {
  Peer& peer = peers_.at(site);
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    PeerConnFailure(site);
    return;
  }
  peer.state = PeerState::kConnected;
  ++stats_.connects;
  peer.backoff_ms = options_.reconnect_initial_ms;
  bool reconnected = peer.was_connected;
  peer.was_connected = true;
  (void)loop_.Modify(peer.fd, EPOLLIN);
  peer.want_writable = false;
  if (reconnected) {
    ++stats_.reconnects;
    // The peer process (or the path to it) went away and came back: let
    // upper layers drop cached beliefs about that site.
    auto hook = restart_hooks_.find(site);
    if (hook != restart_hooks_.end() && hook->second) {
      hook->second(site);
    }
  }
  FlushPeer(site);
}

void TcpTransport::PeerConnFailure(SiteId site) {
  Peer& peer = peers_.at(site);
  if (peer.fd >= 0) {
    loop_.Remove(peer.fd);
    close(peer.fd);
    peer.fd = -1;
  }
  if (peer.state == PeerState::kConnected) {
    ++stats_.disconnects;
  }
  peer.state = PeerState::kDisconnected;
  peer.want_writable = false;
  peer.next_attempt_ms = MonoMs() + peer.backoff_ms;
  peer.backoff_ms = std::min(peer.backoff_ms * 2, options_.reconnect_max_ms);
  // Queued frames survive: they flush after the reconnect succeeds.
}

void TcpTransport::OnPeerEvent(SiteId site, uint32_t events) {
  auto it = peers_.find(site);
  if (it == peers_.end() || it->second.fd < 0) {
    return;
  }
  Peer& peer = it->second;
  if (peer.state == PeerState::kConnecting) {
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      PeerConnFailure(site);
      return;
    }
    if ((events & EPOLLOUT) != 0) {
      FinishConnect(site);
    }
    return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    PeerConnFailure(site);
    return;
  }
  if ((events & EPOLLIN) != 0 && !ReadIntoInbox(peer.fd, &peer.reader)) {
    PeerConnFailure(site);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushPeer(site);
  }
}

void TcpTransport::SetPeerWritable(Peer* peer, bool want) {
  if (peer->want_writable == want || peer->fd < 0) {
    return;
  }
  peer->want_writable = want;
  (void)loop_.Modify(peer->fd, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void TcpTransport::FlushPeer(SiteId site) {
  Peer& peer = peers_.at(site);
  if (peer.state != PeerState::kConnected) {
    return;
  }
  while (!peer.queue.empty()) {
    // Gather the fronts of the queue into one sendmsg: header and payload
    // iovecs point straight at the Outgoing entries (the payload iovec
    // aliases the refcounted SharedBytes — no copy into a send buffer).
    iovec iov[2 * kSendBatch];
    int iovcnt = 0;
    size_t batched = 0;
    for (const Outgoing& out : peer.queue) {
      if (batched == kSendBatch) {
        break;
      }
      if (out.header_off < out.header.size()) {
        iov[iovcnt].iov_base =
            const_cast<uint8_t*>(out.header.data()) + out.header_off;
        iov[iovcnt].iov_len = out.header.size() - out.header_off;
        ++iovcnt;
      }
      if (out.payload_off < out.payload.size()) {
        iov[iovcnt].iov_base =
            const_cast<uint8_t*>(out.payload.data()) + out.payload_off;
        iov[iovcnt].iov_len = out.payload.size() - out.payload_off;
        ++iovcnt;
      }
      ++batched;
    }
    if (iovcnt == 0) {
      // Fully-written entries at the front (shouldn't persist, but be safe).
      while (!peer.queue.empty() &&
             peer.queue.front().header_off >= kFrameHeaderBytes &&
             peer.queue.front().payload_off >= peer.queue.front().payload.size()) {
        peer.queue.pop_front();
      }
      continue;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t n = sendmsg(peer.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SetPeerWritable(&peer, true);
        return;
      }
      PeerConnFailure(site);
      return;
    }
    stats_.bytes_sent += static_cast<uint64_t>(n);
    // Consume written bytes across the batched entries.
    size_t left = static_cast<size_t>(n);
    while (left > 0 && !peer.queue.empty()) {
      Outgoing& out = peer.queue.front();
      size_t header_rest = out.header.size() - out.header_off;
      size_t take = std::min(left, header_rest);
      out.header_off += take;
      left -= take;
      size_t payload_rest = out.payload.size() - out.payload_off;
      take = std::min(left, payload_rest);
      out.payload_off += take;
      left -= take;
      if (out.header_off >= out.header.size() &&
          out.payload_off >= out.payload.size()) {
        peer.queue.pop_front();
      } else {
        break;  // Partially written; the socket is likely full.
      }
    }
  }
  SetPeerWritable(&peer, false);
}

int TcpTransport::DispatchInbox() {
  // Swap first: handlers may Send (which appends) — those frames dispatch on
  // the next Poll, preserving the never-re-entrant contract.
  std::deque<WireFrame> batch;
  batch.swap(inbox_);
  int dispatched = 0;
  for (WireFrame& f : batch) {
    auto it = handlers_.find(f.to);
    if (it == handlers_.end() || !it->second) {
      ++stats_.frames_dropped;
      continue;
    }
    ++stats_.frames_delivered;
    ++dispatched;
    it->second(f.from, f.payload);
  }
  return dispatched;
}

void TcpTransport::DriveReconnects(uint64_t now_ms) {
  for (auto& [site, peer] : peers_) {
    if (peer.state == PeerState::kDisconnected && !peer.queue.empty() &&
        now_ms >= peer.next_attempt_ms) {
      StartConnect(site);
    }
  }
}

int TcpTransport::Poll(int timeout_ms) {
  uint64_t now = MonoMs();
  DriveReconnects(now);

  int wait = timeout_ms;
  if (!inbox_.empty()) {
    wait = 0;  // Work is already queued; don't sleep on the poller.
  } else {
    // Don't sleep past the earliest scheduled reconnect attempt.
    for (const auto& [site, peer] : peers_) {
      if (peer.state == PeerState::kDisconnected && !peer.queue.empty()) {
        uint64_t delta =
            peer.next_attempt_ms > now ? peer.next_attempt_ms - now : 0;
        int d = static_cast<int>(std::min<uint64_t>(delta, 60'000));
        if (wait < 0 || d < wait) {
          wait = d;  // (wait < 0 means "block forever" — cap it here.)
        }
      }
    }
  }
  loop_.PollOnce(wait);

  int dispatched = DispatchInbox();
  // Handlers usually respond (ACKs, NeedCode, next-hop transfers); flush
  // those now instead of waiting a poll cycle.
  for (auto& [site, peer] : peers_) {
    if (peer.state == PeerState::kConnected && !peer.queue.empty()) {
      FlushPeer(site);
    }
  }
  return dispatched;
}

}  // namespace tacoma
