// TCP/epoll Transport backend: the kernel's frames over real sockets.
//
// Each OS process hosts one or more sites (handlers registered locally) and
// knows its peers by host:port.  One TcpTransport per process:
//
//   - a non-blocking listener accepts anonymous inbound connections (frames
//     identify their source site in the header, not the socket),
//   - one non-blocking outbound connection per peer, established lazily on
//     first send and re-established with exponential backoff on failure;
//     frames queued while a peer is unreachable survive the reconnect,
//   - sends gather the 16-byte header and the refcounted SharedBytes payload
//     into one sendmsg iovec — the zero-copy path from briefcase to wire
//     (the payload bytes are never memcpy'd into a transport buffer),
//   - everything runs single-threaded from Poll(): socket readiness, frame
//     reassembly, handler dispatch, and queue flushing all happen on the
//     caller's thread, preserving the kernel's no-locks discipline.
//
// Delivery semantics match the Transport contract: fire-and-forget, no
// ordering across peers, no duplicates suppressed here.  A self-send (the
// destination handler lives in this process) is queued to the local inbox
// and dispatched from the next Poll — never re-entrantly inside Send.
//
// Restart detection: when an outbound connection that was once established
// is re-established after a failure, the restart hook registered for that
// peer's site fires — upper layers use it to drop per-peer beliefs (e.g.
// "peer has this CODE digest cached").  This is a best-effort hint; the
// kernel's NeedCode miss path self-heals regardless.
#ifndef TACOMA_NET_TCP_TRANSPORT_H_
#define TACOMA_NET_TCP_TRANSPORT_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "net/epoll_loop.h"
#include "net/frame.h"
#include "net/transport.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

struct TcpTransportOptions {
  std::string listen_host = "127.0.0.1";
  uint16_t listen_port = 0;  // 0 = ephemeral; read back via bound_port().
  int backlog = 16;
  // Exponential backoff for outbound reconnects.
  uint64_t reconnect_initial_ms = 50;
  uint64_t reconnect_max_ms = 2000;
  // Frames above this size poison the connection (hostile length prefix).
  size_t max_frame_bytes = 64u << 20;
  // Per-peer backpressure: Send returns ResourceExhausted beyond this.
  size_t max_queued_frames = 4096;
};

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = {});
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Binds and listens; call once before Poll.  With listen_port = 0 the OS
  // picks a free port, available from bound_port() afterwards.
  Status Listen();
  uint16_t bound_port() const { return bound_port_; }

  // Registers where a remote site's frames should be sent.  Sites hosted by
  // this process need no peer entry — their handlers are local.
  void AddPeer(SiteId site, std::string host, uint16_t port);

  // Runs one event-loop iteration: waits up to timeout_ms for socket
  // readiness (0 polls), reads/reassembles frames, dispatches handlers,
  // flushes queues, and drives pending reconnects.  Returns the number of
  // frames dispatched into local handlers.
  int Poll(int timeout_ms);

  // --- Transport seam -------------------------------------------------------
  void SetHandler(SiteId site, Handler handler) override;
  void SetRestartHook(SiteId site, RestartHook hook) override;
  Status Send(SiteId from, SiteId to, SharedBytes payload) override;
  TransportStats transport_stats() const override { return stats_; }

  // True while an established outbound connection to `site` exists.
  bool PeerConnected(SiteId site) const;
  size_t QueuedFrames(SiteId site) const;

 private:
  struct Outgoing {
    std::array<uint8_t, kFrameHeaderBytes> header;
    size_t header_off = 0;
    SharedBytes payload;
    size_t payload_off = 0;
  };
  enum class PeerState { kDisconnected, kConnecting, kConnected };
  struct Peer {
    std::string host;
    uint16_t port = 0;
    PeerState state = PeerState::kDisconnected;
    int fd = -1;
    bool want_writable = false;  // EPOLLOUT currently armed.
    bool was_connected = false;  // Distinguishes reconnects from first contact.
    uint64_t backoff_ms = 0;
    uint64_t next_attempt_ms = 0;  // Earliest monotonic time to retry connect.
    std::deque<Outgoing> queue;
    FrameReader reader;
    explicit Peer(size_t max_frame) : reader(max_frame) {}
  };
  struct Inbound {
    FrameReader reader;
    explicit Inbound(size_t max_frame) : reader(max_frame) {}
  };

  static uint64_t MonoMs();

  void OnAcceptable();
  // Shared read path for inbound and outbound sockets.  Returns false when
  // the connection died (already cleaned up).
  bool ReadIntoInbox(int fd, FrameReader* reader);
  void OnInboundEvent(int fd, uint32_t events);
  void OnPeerEvent(SiteId site, uint32_t events);
  void StartConnect(SiteId site);
  void FinishConnect(SiteId site);
  void PeerConnFailure(SiteId site);
  void CloseInbound(int fd);
  // Writes as much of the peer's queue as the socket accepts (gathering up
  // to kSendBatch frames per sendmsg); arms EPOLLOUT when the socket fills.
  void FlushPeer(SiteId site);
  void SetPeerWritable(Peer* peer, bool want);
  int DispatchInbox();
  void DriveReconnects(uint64_t now_ms);

  TcpTransportOptions options_;
  EpollLoop loop_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;

  std::map<SiteId, Handler> handlers_;
  std::map<SiteId, RestartHook> restart_hooks_;
  std::map<SiteId, Peer> peers_;
  std::map<int, Inbound> inbound_;
  std::deque<WireFrame> inbox_;  // Received + local frames awaiting dispatch.
  TransportStats stats_;
};

}  // namespace tacoma

#endif  // TACOMA_NET_TCP_TRANSPORT_H_
