// Transport: the seam between the kernel and whatever moves frames
// between sites.
//
// The kernel's reliability stack (ACK/NACK retries, dedup windows, CodeCache
// stub/NeedCode recovery) speaks to the network through exactly three
// operations: register a per-site delivery handler, register a per-site
// restart hook, and send an opaque frame.  This interface captures that seam
// so the same kernel runs unchanged over
//
//   - the deterministic single-threaded simulator (`sim/network.h`), the
//     default for every test and experiment, and
//   - the real TCP/epoll backend (`net/tcp_transport.h`), where each site is
//     an OS process and frames cross actual sockets — the paper's §6
//     deployment (UNIX workstations over rsh/TCP/Horus).
//
// A Transport makes NO reliability promises: Send is fire-and-forget once
// accepted, frames can be lost, reordered across peers, or duplicated by the
// layers above.  Delivery handlers must never be invoked re-entrantly from
// inside the sender's Send call — local (self) sends are deferred to the
// event loop like every remote delivery.
#ifndef TACOMA_NET_TRANSPORT_H_
#define TACOMA_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>

#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

// Sites are dense small integers, assigned in creation order.  Both backends
// share the id space: in a multi-process deployment every daemon adds the
// same site list in the same order, so SiteId N names the same site
// everywhere.
using SiteId = uint32_t;
constexpr SiteId kInvalidSite = 0xffffffff;

// Backend-level frame accounting, distinct from the sim's NetworkStats (which
// models links and hops): these count what crossed the transport's edge.
// All-zero for backends that don't track a given quantity.
struct TransportStats {
  uint64_t frames_sent = 0;       // Send() calls accepted.
  uint64_t frames_delivered = 0;  // Frames dispatched into a local handler.
  uint64_t frames_dropped = 0;    // Accepted but discarded (overflow, no handler).
  uint64_t sends_rejected = 0;    // Send() calls refused (unknown peer, backpressure).
  uint64_t bytes_sent = 0;        // Payload + framing bytes written to the wire.
  uint64_t bytes_received = 0;    // Payload + framing bytes read off the wire.
  uint64_t connects = 0;          // Outbound connections established.
  uint64_t accepts = 0;           // Inbound connections accepted.
  uint64_t disconnects = 0;       // Established connections torn down.
  uint64_t reconnects = 0;        // Connections re-established after a failure.
};

class Transport {
 public:
  // Called when a frame reaches its destination site.  The payload is a
  // shared frame: the handler may keep views into it (they pin the
  // allocation) but never mutate it.
  using Handler = std::function<void(SiteId from, const SharedBytes& payload)>;
  // Called when a site (or the connection to it) restarts, so upper layers
  // can run recovery — the kernel uses this to drop per-peer beliefs like
  // "that site has this CODE digest cached".
  using RestartHook = std::function<void(SiteId site)>;

  virtual ~Transport() = default;

  virtual void SetHandler(SiteId site, Handler handler) = 0;
  virtual void SetRestartHook(SiteId site, RestartHook hook) = 0;

  // Hands one frame to the transport.  Ok means accepted (queued or
  // delivered later), not delivered; errors mean the frame was not taken
  // (unknown destination, no route, backpressure) and the caller may retry.
  virtual Status Send(SiteId from, SiteId to, SharedBytes payload) = 0;

  // Edge-level accounting; backends that don't track it return zeros.
  virtual TransportStats transport_stats() const { return TransportStats{}; }
};

}  // namespace tacoma

#endif  // TACOMA_NET_TRANSPORT_H_
