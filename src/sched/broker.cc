#include "sched/broker.h"

#include <algorithm>
#include <cmath>

#include "serial/encoder.h"
#include "tacl/list.h"
#include "util/log.h"

namespace tacoma::sched {

Result<Policy> ParsePolicy(const std::string& name) {
  if (name == "random") {
    return Policy::kRandom;
  }
  if (name == "round_robin") {
    return Policy::kRoundRobin;
  }
  if (name == "least_loaded" || name.empty()) {
    return Policy::kLeastLoaded;
  }
  if (name == "weighted") {
    return Policy::kWeightedCapacity;
  }
  return InvalidArgumentError("unknown policy \"" + name + "\"");
}

std::string_view PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kRandom:
      return "random";
    case Policy::kRoundRobin:
      return "round_robin";
    case Policy::kLeastLoaded:
      return "least_loaded";
    case Policy::kWeightedCapacity:
      return "weighted";
  }
  return "unknown";
}

BrokerService::BrokerService(Kernel* kernel, SiteId site, std::string agent_name)
    : kernel_(kernel), site_(site), agent_name_(std::move(agent_name)) {}

void BrokerService::Install() {
  BrokerService* self = this;
  kernel_->AddPlaceInitializer([self](Place& place) {
    if (place.site() != self->site_) {
      return;
    }
    place.RegisterAgent(self->agent_name_, [self](Place& at, Briefcase& bc) {
      return self->OnMeet(at, bc);
    });
  });
  const std::string prefix = "broker." + kernel_->net().site_name(site_) + ".";
  MetricsRegistry& metrics = kernel_->metrics();
  metrics.AddProbe(prefix + "registers", [self] { return self->stats_.registers; });
  metrics.AddProbe(prefix + "reports", [self] { return self->stats_.reports; });
  metrics.AddProbe(prefix + "finds", [self] { return self->stats_.finds; });
  metrics.AddProbe(prefix + "gossip_rounds",
                   [self] { return self->stats_.gossip_rounds; });
  metrics.AddProbe(prefix + "gossip_merges",
                   [self] { return self->stats_.gossip_merges; });
  metrics.AddProbe(prefix + "meeting_requests",
                   [self] { return self->stats_.meeting_requests; });
  metrics.AddProbe(prefix + "meeting_collections",
                   [self] { return self->stats_.meeting_collections; });
}

void BrokerService::AddPeer(SiteId peer_site) { peers_.push_back(peer_site); }

void BrokerService::StartGossip(SimTime period) {
  if (gossiping_ || peers_.empty()) {
    return;
  }
  gossiping_ = true;
  // Self-rescheduling gossip tick; rounds are skipped while the broker site
  // is down (the service object survives the crash, the agent does not).
  StartGossipTickChain(period);
}

void BrokerService::StartGossipTickChain(SimTime period) {
  GossipOnce();
  kernel_->sim().After(period, [this, period] { StartGossipTickChain(period); });
}

void BrokerService::GossipOnce() {
  if (kernel_->place(site_) == nullptr) {
    return;  // Our site is down this round.
  }
  ++stats_.gossip_rounds;
  Bytes db = SerializeDb();
  for (SiteId peer : peers_) {
    Briefcase bc;
    bc.SetString("OP", "sync");
    bc.folder("ENTRIES").PushBack(db);
    (void)kernel_->TransferAgent(site_, peer, agent_name_, bc);
  }
}

Bytes BrokerService::SerializeDb() const {
  Encoder enc;
  size_t count = 0;
  for (const auto& [service, providers] : db_) {
    count += providers.size();
  }
  enc.PutVarint(count);
  for (const auto& [service, providers] : db_) {
    for (const ProviderInfo& p : providers) {
      enc.PutString(p.service);
      enc.PutString(p.site);
      enc.PutString(p.agent);
      enc.PutU64(static_cast<uint64_t>(p.capacity * 1000.0));
      enc.PutU64(p.load);
      enc.PutU64(p.updated);
    }
  }
  return enc.Take();
}

void BrokerService::MergeDb(BytesView data) {
  Decoder dec(data);
  uint64_t count = 0;
  if (!dec.GetVarint(&count)) {
    return;
  }
  for (uint64_t i = 0; i < count; ++i) {
    ProviderInfo p;
    uint64_t capacity_milli = 0;
    if (!dec.GetString(&p.service) || !dec.GetString(&p.site) ||
        !dec.GetString(&p.agent) || !dec.GetU64(&capacity_milli) ||
        !dec.GetU64(&p.load) || !dec.GetU64(&p.updated)) {
      return;
    }
    p.capacity = static_cast<double>(capacity_milli) / 1000.0;

    auto& providers = db_[p.service];
    auto existing = std::find_if(providers.begin(), providers.end(),
                                 [&p](const ProviderInfo& e) {
                                   return e.site == p.site && e.agent == p.agent;
                                 });
    if (existing == providers.end()) {
      providers.push_back(p);
      ++stats_.gossip_merges;
    } else if (p.updated > existing->updated) {
      *existing = p;
      ++stats_.gossip_merges;
    }
  }
}

void BrokerService::Register(ProviderInfo info) {
  info.updated = kernel_->sim().Now();
  auto& providers = db_[info.service];
  auto existing =
      std::find_if(providers.begin(), providers.end(), [&info](const ProviderInfo& e) {
        return e.site == info.site && e.agent == info.agent;
      });
  if (existing == providers.end()) {
    providers.push_back(std::move(info));
  } else {
    *existing = std::move(info);
  }
  ++stats_.registers;
}

void BrokerService::Report(const std::string& site, uint64_t load) {
  SimTime now = kernel_->sim().Now();
  for (auto& [service, providers] : db_) {
    for (ProviderInfo& p : providers) {
      if (p.site == site) {
        p.load = load;
        p.updated = now;
      }
    }
  }
  ++stats_.reports;
}

Result<ProviderInfo> BrokerService::Find(const std::string& service, Policy policy) {
  ++stats_.finds;
  auto it = db_.find(service);
  if (it == db_.end() || it->second.empty()) {
    return NotFoundError("no provider for service \"" + service + "\"");
  }
  std::vector<ProviderInfo>& providers = it->second;

  Place* here = kernel_->place(site_);
  Rng* rng = here != nullptr ? &here->rng() : &kernel_->rng();

  switch (policy) {
    case Policy::kRandom:
      return providers[rng->Uniform(providers.size())];
    case Policy::kRoundRobin:
      return providers[round_robin_++ % providers.size()];
    case Policy::kLeastLoaded: {
      const ProviderInfo* best = &providers[0];
      for (const ProviderInfo& p : providers) {
        if (p.load < best->load ||
            (p.load == best->load && p.capacity > best->capacity)) {
          best = &p;
        }
      }
      return *best;
    }
    case Policy::kWeightedCapacity: {
      // Weight ~ capacity / (1 + load): fast, idle machines win.
      double total = 0;
      for (const ProviderInfo& p : providers) {
        total += p.capacity / (1.0 + static_cast<double>(p.load));
      }
      double pick = rng->UniformDouble() * total;
      for (const ProviderInfo& p : providers) {
        pick -= p.capacity / (1.0 + static_cast<double>(p.load));
        if (pick <= 0) {
          return p;
        }
      }
      return providers.back();
    }
  }
  return InternalError("unreachable policy");
}

void BrokerService::Protect(const std::string& public_name,
                            const std::string& secret_name) {
  protected_[public_name] = secret_name;
}

void BrokerService::QueueMeetingRequest(const std::string& public_name,
                                        Bytes briefcase) {
  meeting_queues_[public_name].push_back(std::move(briefcase));
  ++stats_.meeting_requests;
}

Result<std::vector<Bytes>> BrokerService::CollectMeetingRequests(
    const std::string& secret_name) {
  for (const auto& [public_name, secret] : protected_) {
    if (secret == secret_name) {
      ++stats_.meeting_collections;
      auto queue = meeting_queues_.find(public_name);
      if (queue == meeting_queues_.end()) {
        return std::vector<Bytes>{};
      }
      std::vector<Bytes> out = std::move(queue->second);
      meeting_queues_.erase(queue);
      return out;
    }
  }
  return PermissionDeniedError("no protected agent with that secret name");
}

const std::vector<ProviderInfo>* BrokerService::providers(
    const std::string& service) const {
  auto it = db_.find(service);
  return it == db_.end() ? nullptr : &it->second;
}

size_t BrokerService::provider_count() const {
  size_t count = 0;
  for (const auto& [service, providers] : db_) {
    count += providers.size();
  }
  return count;
}

Status BrokerService::OnMeet(Place& place, Briefcase& bc) {
  (void)place;
  auto op = bc.GetString("OP").value_or("");

  if (op == "register") {
    ProviderInfo info;
    info.service = bc.GetString("SERVICE").value_or("");
    info.site = bc.GetString("PROVIDER_SITE").value_or("");
    info.agent = bc.GetString("PROVIDER_AGENT").value_or("");
    auto capacity = tacl::ParseDouble(bc.GetString("CAPACITY").value_or("1.0"));
    info.capacity = capacity.value_or(1.0);
    if (info.service.empty() || info.site.empty() || info.agent.empty()) {
      bc.SetString("STATUS", "bad register request");
      return InvalidArgumentError("broker: bad register request");
    }
    Register(std::move(info));
    bc.SetString("STATUS", "ok");
    return OkStatus();
  }

  if (op == "report") {
    auto load = tacl::ParseInt(bc.GetString("LOAD").value_or(""));
    auto reporter = bc.GetString("SITE");
    if (!load.has_value() || !reporter.has_value()) {
      bc.SetString("STATUS", "bad report");
      return InvalidArgumentError("broker: bad report");
    }
    Report(*reporter, static_cast<uint64_t>(std::max<int64_t>(0, *load)));
    bc.SetString("STATUS", "ok");
    return OkStatus();
  }

  if (op == "find") {
    auto service = bc.GetString("SERVICE");
    auto policy = ParsePolicy(bc.GetString("POLICY").value_or("least_loaded"));
    if (!service.has_value() || !policy.ok()) {
      bc.SetString("STATUS", "bad find request");
      return InvalidArgumentError("broker: bad find request");
    }
    auto provider = Find(*service, *policy);
    if (!provider.ok()) {
      bc.SetString("STATUS", std::string(provider.status().message()));
      return provider.status();
    }
    bc.SetString("PROVIDER_SITE", provider->site);
    bc.SetString("PROVIDER_AGENT", provider->agent);
    bc.SetString("STATUS", "ok");
    return OkStatus();
  }

  if (op == "sync") {
    const Folder* entries = bc.Find("ENTRIES");
    if (entries != nullptr && !entries->empty()) {
      MergeDb(*entries->Front());
    }
    bc.SetString("STATUS", "ok");
    return OkStatus();
  }

  if (op == "protect") {
    auto public_name = bc.GetString("PUBLIC");
    auto secret_name = bc.GetString("SECRET");
    if (!public_name || !secret_name) {
      bc.SetString("STATUS", "bad protect request");
      return InvalidArgumentError("broker: bad protect request");
    }
    Protect(*public_name, *secret_name);
    bc.SetString("STATUS", "ok");
    return OkStatus();
  }

  if (op == "request_meeting") {
    auto public_name = bc.GetString("PUBLIC");
    const Folder* payload = bc.Find("PAYLOAD");
    if (!public_name || payload == nullptr || payload->empty()) {
      bc.SetString("STATUS", "bad meeting request");
      return InvalidArgumentError("broker: bad meeting request");
    }
    if (!protected_.contains(*public_name)) {
      bc.SetString("STATUS", "no such protected agent");
      return NotFoundError("broker: no such protected agent");
    }
    QueueMeetingRequest(*public_name, payload->Front()->ToBytes());
    bc.SetString("STATUS", "ok");
    return OkStatus();
  }

  if (op == "collect") {
    auto secret_name = bc.GetString("SECRET");
    if (!secret_name) {
      bc.SetString("STATUS", "bad collect request");
      return InvalidArgumentError("broker: bad collect request");
    }
    auto queued = CollectMeetingRequests(*secret_name);
    if (!queued.ok()) {
      bc.SetString("STATUS", std::string(queued.status().message()));
      return queued.status();
    }
    Folder& out = bc.folder("RETRIEVED");
    out.Clear();
    for (Bytes& b : *queued) {
      out.PushBack(std::move(b));
    }
    bc.SetString("STATUS", "ok");
    return OkStatus();
  }

  bc.SetString("STATUS", "unknown OP");
  return InvalidArgumentError("broker: unknown OP \"" + op + "\"");
}

}  // namespace tacoma::sched
