// Broker agents (§4).
//
// "Scheduling is implemented by broker agents, which are ordinary agents
// whose names are well known.  Some broker agents maintain databases of
// service providers; these brokers serve as matchmakers. ... Brokers are
// expected to communicate among themselves and with the service providers,
// so that requests can be distributed amongst service providers based on
// load and capacity."
//
// Also implements §4's protected agents: "the broker ... provides the only
// way to meet with the protected agent ... the broker maintains a folder for
// each agent that has requested a meeting ... possible only because folders
// are uninterpreted and typeless and, therefore, can themselves store agents
// and sets of folders."  Meeting-request briefcases are serialized into the
// broker's queue folders byte-for-byte.
#ifndef TACOMA_SCHED_BROKER_H_
#define TACOMA_SCHED_BROKER_H_

#include <map>
#include <string>
#include <vector>

#include "core/kernel.h"

namespace tacoma::sched {

enum class Policy { kRandom, kRoundRobin, kLeastLoaded, kWeightedCapacity };

Result<Policy> ParsePolicy(const std::string& name);
std::string_view PolicyName(Policy policy);

struct ProviderInfo {
  std::string service;
  std::string site;    // Site name.
  std::string agent;   // Resident agent name at that site.
  double capacity = 1.0;
  uint64_t load = 0;   // Last reported queue length.
  SimTime updated = 0; // When the load was last reported/merged.
};

class BrokerService {
 public:
  struct Stats {
    uint64_t registers = 0;
    uint64_t reports = 0;
    uint64_t finds = 0;
    uint64_t gossip_rounds = 0;
    uint64_t gossip_merges = 0;
    uint64_t meeting_requests = 0;
    uint64_t meeting_collections = 0;
  };

  BrokerService(Kernel* kernel, SiteId site, std::string agent_name = "broker");

  // Registers the resident agent (re-registered across restarts).
  void Install();

  // Adds a gossip partner (the broker agent at `peer_site`).
  void AddPeer(SiteId peer_site);
  // Starts periodic database exchange with peers.
  void StartGossip(SimTime period);

  // --- Direct API (the meet handler forwards to these) -------------------------

  void Register(ProviderInfo info);
  // Updates the load of every provider registered at `site`.
  void Report(const std::string& site, uint64_t load);
  Result<ProviderInfo> Find(const std::string& service, Policy policy);

  void Protect(const std::string& public_name, const std::string& secret_name);
  void QueueMeetingRequest(const std::string& public_name, Bytes briefcase);
  // The protected agent presents its secret name and drains its queue.
  Result<std::vector<Bytes>> CollectMeetingRequests(const std::string& secret_name);

  const std::vector<ProviderInfo>* providers(const std::string& service) const;
  size_t provider_count() const;
  const Stats& stats() const { return stats_; }
  SiteId site() const { return site_; }

 private:
  Status OnMeet(Place& place, Briefcase& bc);
  void GossipOnce();
  void StartGossipTickChain(SimTime period);
  Bytes SerializeDb() const;
  void MergeDb(BytesView data);

  Kernel* kernel_;
  SiteId site_;
  std::string agent_name_;
  std::map<std::string, std::vector<ProviderInfo>> db_;   // By service.
  std::map<std::string, std::string> protected_;          // public -> secret.
  std::map<std::string, std::vector<Bytes>> meeting_queues_;
  std::vector<SiteId> peers_;
  size_t round_robin_ = 0;
  bool gossiping_ = false;
  Stats stats_;
};

}  // namespace tacoma::sched

#endif  // TACOMA_SCHED_BROKER_H_
