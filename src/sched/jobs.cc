#include "sched/jobs.h"

#include "sched/ticket.h"
#include "tacl/list.h"

namespace tacoma::sched {

JobServer::JobServer(Kernel* kernel, SiteId site, std::string agent_name, double speed)
    : kernel_(kernel), site_(site), agent_name_(std::move(agent_name)), speed_(speed) {}

void JobServer::Install() {
  JobServer* self = this;
  kernel_->AddPlaceInitializer([self](Place& place) {
    if (place.site() != self->site_) {
      return;
    }
    place.RegisterAgent(self->agent_name_, [self](Place& at, Briefcase& bc) {
      return self->OnJob(at, bc);
    });
  });
  const std::string prefix = "jobs." + agent_name_ + ".";
  MetricsRegistry& metrics = kernel_->metrics();
  metrics.AddProbe(prefix + "accepted", [self] { return self->stats_.accepted; });
  metrics.AddProbe(prefix + "completed", [self] { return self->stats_.completed; });
  metrics.AddProbe(prefix + "rejected_no_ticket",
                   [self] { return self->stats_.rejected_no_ticket; });
  metrics.AddProbe(prefix + "busy_time_us",
                   [self] { return self->stats_.busy_time; });
}

void JobServer::RequireTickets(const TicketService* tickets) { tickets_ = tickets; }

Status JobServer::OnJob(Place& place, Briefcase& bc) {
  auto duration_str = bc.GetString("DURATION");
  auto duration = duration_str ? tacl::ParseInt(*duration_str) : std::nullopt;
  if (!duration.has_value() || *duration < 0) {
    return InvalidArgumentError(agent_name_ + ": bad DURATION");
  }
  std::string service = bc.GetString("SERVICE").value_or("");

  if (tickets_ != nullptr) {
    const Folder* tf = bc.Find("TICKET");
    auto ticket = (tf != nullptr && !tf->empty()) ? Ticket::Deserialize(*tf->Front())
                                                  : DataLossError("no ticket");
    if (!ticket.ok() || !tickets_->Verify(*ticket, service)) {
      ++stats_.rejected_no_ticket;
      return PermissionDeniedError(agent_name_ + ": missing or invalid ticket");
    }
  }

  ++stats_.accepted;
  ++queue_length_;

  SimTime now = kernel_->sim().Now();
  SimTime service_time = static_cast<SimTime>(static_cast<double>(*duration) / speed_);
  SimTime start = std::max(now, busy_until_);
  SimTime finish = start + service_time;
  busy_until_ = finish;
  stats_.busy_time += service_time;

  std::string job_id = bc.GetString("JOBID").value_or("");
  std::string reply_host = bc.GetString("REPLY_HOST").value_or("");
  std::string reply_contact = bc.GetString("REPLY_CONTACT").value_or("");
  SiteId site = place.site();
  Kernel* kernel = kernel_;
  JobServer* self = this;

  kernel_->sim().At(finish, [self, kernel, site, job_id, reply_host, reply_contact] {
    if (self->queue_length_ > 0) {
      --self->queue_length_;
    }
    ++self->stats_.completed;
    if (reply_host.empty() || reply_contact.empty()) {
      return;
    }
    auto destination = kernel->net().FindSite(reply_host);
    if (!destination.has_value()) {
      return;
    }
    Briefcase done;
    done.SetString("MSG", "done");
    done.SetString("JOBID", job_id);
    done.SetString("WORKER", kernel->net().site_name(site));
    // The send fails harmlessly if this site crashed in the meantime.
    (void)kernel->TransferAgent(site, *destination, reply_contact, done);
  });
  return OkStatus();
}

}  // namespace tacoma::sched
