// JobServer — a service provider that does simulated work.
//
// Scheduling (§4) is about matching agents to providers "based on load and
// capacity", which only means something if work takes time.  A JobServer is a
// resident agent that queues jobs and serves them one at a time at its site's
// speed; its queue length is the "load" monitors report to brokers.
//
// Meet protocol (folders):
//   JOBID          caller-chosen id
//   SERVICE        service name (informational)
//   DURATION       nominal work in simulated microseconds
//   REPLY_HOST / REPLY_CONTACT   where to send the DONE notice (optional)
//   TICKET         required when the server was configured to demand tickets
#ifndef TACOMA_SCHED_JOBS_H_
#define TACOMA_SCHED_JOBS_H_

#include <cstdint>
#include <string>

#include "core/kernel.h"

namespace tacoma::sched {

class TicketService;

class JobServer {
 public:
  struct Stats {
    uint64_t accepted = 0;
    uint64_t completed = 0;
    uint64_t rejected_no_ticket = 0;
    SimTime busy_time = 0;  // Total time spent serving.
  };

  // `speed` scales service time: a job of DURATION d takes d/speed.
  JobServer(Kernel* kernel, SiteId site, std::string agent_name, double speed);

  // Registers the resident agent (and re-registers across restarts).
  void Install();

  // Demands a valid ticket (verified against `tickets`) on every job.
  void RequireTickets(const TicketService* tickets);

  // Load = queued + running jobs right now.
  size_t QueueLength() const { return queue_length_; }
  double speed() const { return speed_; }
  SiteId site() const { return site_; }
  const std::string& agent_name() const { return agent_name_; }
  const Stats& stats() const { return stats_; }

 private:
  Status OnJob(Place& place, Briefcase& bc);

  Kernel* kernel_;
  SiteId site_;
  std::string agent_name_;
  double speed_;
  const TicketService* tickets_ = nullptr;
  size_t queue_length_ = 0;
  SimTime busy_until_ = 0;
  Stats stats_;
};

}  // namespace tacoma::sched

#endif  // TACOMA_SCHED_JOBS_H_
