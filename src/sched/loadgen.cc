#include "sched/loadgen.h"

#include "tacl/list.h"
#include "util/log.h"

namespace tacoma::sched {

LoadGenerator::LoadGenerator(Kernel* kernel, LoadGenOptions options,
                             std::vector<ProviderInfo> direct_providers)
    : kernel_(kernel),
      options_(std::move(options)),
      direct_providers_(std::move(direct_providers)) {}

void LoadGenerator::Start() {
  if (!installed_) {
    installed_ = true;
    LoadGenerator* self = this;
    kernel_->AddPlaceInitializer([self](Place& place) {
      if (place.site() != self->options_.client_site) {
        return;
      }
      place.RegisterAgent(self->options_.client_agent,
                          [self](Place& at, Briefcase& bc) {
                            return self->OnClientMessage(at, bc);
                          });
    });
  }
  jobs_.assign(options_.job_count, JobStat{});
  for (size_t i = 0; i < options_.job_count; ++i) {
    kernel_->sim().After(options_.inter_arrival_us * (i + 1), [this, i] { Submit(i); });
  }
}

void LoadGenerator::Submit(size_t index) {
  jobs_[index].submitted = kernel_->sim().Now();

  if (!options_.use_broker) {
    if (direct_providers_.empty()) {
      return;
    }
    Place* here = kernel_->place(options_.client_site);
    Rng& rng = here != nullptr ? here->rng() : kernel_->rng();
    const ProviderInfo& pick = direct_providers_[rng.Uniform(direct_providers_.size())];
    Dispatch(index, pick.site, pick.agent);
    return;
  }

  Briefcase find;
  find.SetString("TARGET", "broker");
  find.SetString("REPLY_HOST", kernel_->net().site_name(options_.client_site));
  find.SetString("REPLY_CONTACT", options_.client_agent);
  find.SetString("OP", "find");
  find.SetString("SERVICE", options_.service);
  find.SetString("POLICY", std::string(PolicyName(options_.policy)));
  find.SetString("JOBID", std::to_string(index));
  Status sent = kernel_->TransferAgent(options_.client_site, options_.broker_site,
                                       "relay", find);
  if (!sent.ok()) {
    TLOG_DEBUG << "loadgen: find failed: " << sent.ToString();
  }
}

void LoadGenerator::Dispatch(size_t index, const std::string& provider_site,
                             const std::string& provider_agent) {
  auto destination = kernel_->net().FindSite(provider_site);
  if (!destination.has_value()) {
    return;
  }
  jobs_[index].dispatched = kernel_->sim().Now();
  jobs_[index].worker = provider_site;

  Briefcase job;
  job.SetString("JOBID", std::to_string(index));
  job.SetString("SERVICE", options_.service);
  job.SetString("DURATION", std::to_string(options_.job_duration_us));
  job.SetString("REPLY_HOST", kernel_->net().site_name(options_.client_site));
  job.SetString("REPLY_CONTACT", options_.client_agent);
  Status sent = kernel_->TransferAgent(options_.client_site, *destination,
                                       provider_agent, job);
  if (!sent.ok()) {
    TLOG_DEBUG << "loadgen: dispatch failed: " << sent.ToString();
  }
}

Status LoadGenerator::OnClientMessage(Place& place, Briefcase& bc) {
  (void)place;
  auto job_id = tacl::ParseInt(bc.GetString("JOBID").value_or(""));
  if (!job_id.has_value() || *job_id < 0 ||
      static_cast<size_t>(*job_id) >= jobs_.size()) {
    return InvalidArgumentError("client: bad JOBID");
  }
  size_t index = static_cast<size_t>(*job_id);

  if (bc.GetString("MSG").value_or("") == "done") {
    jobs_[index].done = true;
    jobs_[index].completed = kernel_->sim().Now();
    return OkStatus();
  }

  // Otherwise this is a broker find reply.
  if (bc.GetString("STATUS").value_or("") != "ok") {
    return UnavailableError("client: broker had no provider");
  }
  Dispatch(index, bc.GetString("PROVIDER_SITE").value_or(""),
           bc.GetString("PROVIDER_AGENT").value_or(""));
  return OkStatus();
}

size_t LoadGenerator::completed() const {
  size_t count = 0;
  for (const JobStat& j : jobs_) {
    if (j.done) {
      ++count;
    }
  }
  return count;
}

std::vector<SimTime> LoadGenerator::Latencies() const {
  std::vector<SimTime> out;
  for (const JobStat& j : jobs_) {
    if (j.done) {
      out.push_back(j.completed - j.submitted);
    }
  }
  return out;
}

}  // namespace tacoma::sched
