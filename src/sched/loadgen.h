// Load generator for the scheduling experiments (E7) and tests.
//
// Submits a stream of jobs from a client site.  With a broker: each job first
// asks the broker (via relay) for a provider under the chosen policy, then
// dispatches to it.  Without: picks uniformly from a static provider list —
// the "no scheduling service" baseline.
#ifndef TACOMA_SCHED_LOADGEN_H_
#define TACOMA_SCHED_LOADGEN_H_

#include <string>
#include <vector>

#include "core/kernel.h"
#include "sched/broker.h"

namespace tacoma::sched {

struct LoadGenOptions {
  SiteId client_site = 0;
  SiteId broker_site = 0;
  bool use_broker = true;
  Policy policy = Policy::kLeastLoaded;
  std::string service = "compute";
  size_t job_count = 100;
  uint64_t job_duration_us = 10 * kMillisecond;
  SimTime inter_arrival_us = 5 * kMillisecond;
  std::string client_agent = "client";
};

struct JobStat {
  SimTime submitted = 0;
  SimTime dispatched = 0;   // Provider chosen, job sent.
  SimTime completed = 0;
  std::string worker;
  bool done = false;
};

class LoadGenerator {
 public:
  // `direct_providers` is the fallback pool for use_broker == false.
  LoadGenerator(Kernel* kernel, LoadGenOptions options,
                std::vector<ProviderInfo> direct_providers = {});

  // Registers the client resident and schedules all submissions.
  void Start();

  size_t completed() const;
  const std::vector<JobStat>& jobs() const { return jobs_; }
  // Completion latencies (submit -> done), only for finished jobs.
  std::vector<SimTime> Latencies() const;

 private:
  void Submit(size_t index);
  void Dispatch(size_t index, const std::string& provider_site,
                const std::string& provider_agent);
  Status OnClientMessage(Place& place, Briefcase& bc);

  Kernel* kernel_;
  LoadGenOptions options_;
  std::vector<ProviderInfo> direct_providers_;
  std::vector<JobStat> jobs_;
  bool installed_ = false;
};

}  // namespace tacoma::sched

#endif  // TACOMA_SCHED_LOADGEN_H_
