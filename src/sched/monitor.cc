#include "sched/monitor.h"

namespace tacoma::sched {

Monitor::Monitor(Kernel* kernel, const JobServer* server,
                 std::vector<SiteId> broker_sites, SimTime period)
    : kernel_(kernel),
      server_(server),
      broker_sites_(std::move(broker_sites)),
      period_(period) {}

void Monitor::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  Tick();
}

void Monitor::Tick() {
  SiteId site = server_->site();
  if (kernel_->place(site) != nullptr) {
    Briefcase report;
    report.SetString("OP", "report");
    report.SetString("SITE", kernel_->net().site_name(site));
    report.SetString("LOAD", std::to_string(server_->QueueLength()));
    for (SiteId broker : broker_sites_) {
      if (kernel_->TransferAgent(site, broker, "broker", report).ok()) {
        ++reports_sent_;
      }
    }
  }
  kernel_->sim().After(period_, [this] { Tick(); });
}

}  // namespace tacoma::sched
