// Site monitor agent (§4/§6).
//
// The prototype's scheduling service uses an agent that is "responsible for
// monitoring the status of a site and reporting that to the brokers".  A
// Monitor samples its JobServer's queue length on a fixed period and couriers
// a load report to every broker it knows.
#ifndef TACOMA_SCHED_MONITOR_H_
#define TACOMA_SCHED_MONITOR_H_

#include <vector>

#include "core/kernel.h"
#include "sched/jobs.h"

namespace tacoma::sched {

class Monitor {
 public:
  Monitor(Kernel* kernel, const JobServer* server, std::vector<SiteId> broker_sites,
          SimTime period);

  // Begins the periodic reporting loop.
  void Start();

  uint64_t reports_sent() const { return reports_sent_; }

 private:
  void Tick();

  Kernel* kernel_;
  const JobServer* server_;
  std::vector<SiteId> broker_sites_;
  SimTime period_;
  bool started_ = false;
  uint64_t reports_sent_ = 0;
};

}  // namespace tacoma::sched

#endif  // TACOMA_SCHED_MONITOR_H_
