#include "sched/ticket.h"

#include "serial/encoder.h"
#include "tacl/list.h"

namespace tacoma::sched {

Bytes Ticket::SignedPayload() const {
  Encoder enc;
  enc.PutString(service);
  enc.PutString(holder);
  enc.PutU64(expires_us);
  return enc.Take();
}

Bytes Ticket::Serialize() const {
  Encoder enc;
  enc.PutString(service);
  enc.PutString(holder);
  enc.PutU64(expires_us);
  enc.PutBytes(signature.Serialize());
  return enc.Take();
}

Result<Ticket> Ticket::Deserialize(BytesView data) {
  Decoder dec(data);
  Ticket t;
  Bytes sig;
  if (!dec.GetString(&t.service) || !dec.GetString(&t.holder) ||
      !dec.GetU64(&t.expires_us) || !dec.GetBytes(&sig) || !dec.Done()) {
    return DataLossError("malformed ticket");
  }
  auto signature = Signature::Deserialize(sig);
  if (!signature.ok()) {
    return signature.status();
  }
  t.signature = std::move(signature).value();
  return t;
}

Ticket TicketService::Issue(const std::string& service, const std::string& holder,
                            SimTime lifetime_us) const {
  Ticket t;
  t.service = service;
  t.holder = holder;
  t.expires_us = kernel_->sim().Now() + lifetime_us;
  t.signature = authority_->Sign(kTicketPrincipal, t.SignedPayload());
  return t;
}

bool TicketService::Verify(const Ticket& ticket, const std::string& service) const {
  if (ticket.service != service) {
    return false;
  }
  if (ticket.expires_us < kernel_->sim().Now()) {
    return false;
  }
  if (ticket.signature.principal != kTicketPrincipal) {
    return false;
  }
  return authority_->Verify(ticket.signature, ticket.SignedPayload());
}

void TicketService::Install(SiteId site) const {
  const TicketService* self = this;
  kernel_->AddPlaceInitializer([site, self](Place& place) {
    if (place.site() != site) {
      return;
    }
    place.RegisterAgent("ticket", [self](Place&, Briefcase& bc) -> Status {
      auto op = bc.GetString("OP").value_or("");
      if (op == "issue") {
        auto service = bc.GetString("SERVICE");
        auto holder = bc.GetString("HOLDER");
        auto lifetime = bc.GetString("LIFETIME");
        int64_t lifetime_us =
            lifetime ? tacl::ParseInt(*lifetime).value_or(0) : 0;
        if (!service || !holder || lifetime_us <= 0) {
          bc.SetString("STATUS", "bad issue request");
          return InvalidArgumentError("ticket: bad issue request");
        }
        Ticket t = self->Issue(*service, *holder, static_cast<SimTime>(lifetime_us));
        bc.folder("TICKET").Clear();
        bc.folder("TICKET").PushBack(t.Serialize());
        bc.SetString("STATUS", "ok");
        return OkStatus();
      }
      if (op == "verify") {
        auto service = bc.GetString("SERVICE");
        const Folder* tf = bc.Find("TICKET");
        if (!service || tf == nullptr || tf->empty()) {
          bc.SetString("STATUS", "bad verify request");
          return InvalidArgumentError("ticket: bad verify request");
        }
        auto ticket = Ticket::Deserialize(*tf->Front());
        bool ok = ticket.ok() && self->Verify(*ticket, *service);
        bc.SetString("STATUS", ok ? "ok" : "invalid");
        return OkStatus();
      }
      bc.SetString("STATUS", "unknown OP");
      return InvalidArgumentError("ticket: unknown OP \"" + op + "\"");
    });
  });
}

}  // namespace tacoma::sched
