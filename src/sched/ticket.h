// Tickets — access capabilities for scheduled services.
//
// The paper's prototype scheduling service uses four agents, one of which
// "issues tickets to allow access to the service" (§4/§6).  A ticket is a
// signed {service, holder, expiry} triple; providers configured to demand
// tickets verify them before serving.
#ifndef TACOMA_SCHED_TICKET_H_
#define TACOMA_SCHED_TICKET_H_

#include <string>

#include "core/kernel.h"
#include "crypto/authority.h"

namespace tacoma::sched {

inline constexpr char kTicketPrincipal[] = "ticket-agent";

struct Ticket {
  std::string service;
  std::string holder;
  uint64_t expires_us = 0;
  Signature signature;

  Bytes SignedPayload() const;
  Bytes Serialize() const;
  static Result<Ticket> Deserialize(BytesView data);
};

class TicketService {
 public:
  TicketService(Kernel* kernel, SignatureAuthority* authority)
      : kernel_(kernel), authority_(authority) {
    authority_->Enroll(kTicketPrincipal);
  }

  // Issues a ticket valid for `lifetime_us` of simulated time.
  Ticket Issue(const std::string& service, const std::string& holder,
               SimTime lifetime_us) const;

  // Signature valid, service matches, not expired.
  bool Verify(const Ticket& ticket, const std::string& service) const;

  // Installs resident agent "ticket" at `site`:
  //   OP "issue": SERVICE, HOLDER, LIFETIME -> TICKET, STATUS
  //   OP "verify": SERVICE, TICKET -> STATUS ("ok"/"invalid")
  void Install(SiteId site) const;

 private:
  Kernel* kernel_;
  SignatureAuthority* authority_;
};

}  // namespace tacoma::sched

#endif  // TACOMA_SCHED_TICKET_H_
