#include "serial/encoder.h"

#include <cstring>

namespace tacoma {

void Encoder::PutU8(uint8_t v) { buffer_.push_back(v); }

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<uint8_t>(v));
}

void Encoder::PutSignedVarint(int64_t v) {
  uint64_t zigzag = (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint(zigzag);
}

void Encoder::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

void Encoder::PutBytes(const SharedBytes& b) {
  PutVarint(b.size());
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

void Encoder::PutBytes(BytesView b) {
  PutVarint(b.size());
  buffer_.insert(buffer_.end(), b.data(), b.data() + b.size());
}

void Encoder::PutString(std::string_view s) {
  PutVarint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Encoder::PutRaw(const uint8_t* data, size_t len) {
  buffer_.insert(buffer_.end(), data, data + len);
}

bool Decoder::GetU8(uint8_t* v) {
  if (!ok_ || size_ - pos_ < 1) {
    return Fail();
  }
  *v = data_[pos_++];
  return true;
}

bool Decoder::GetU32(uint32_t* v) {
  if (!ok_ || size_ - pos_ < 4) {
    return Fail();
  }
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return true;
}

bool Decoder::GetU64(uint64_t* v) {
  if (!ok_ || size_ - pos_ < 8) {
    return Fail();
  }
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return true;
}

bool Decoder::GetVarint(uint64_t* v) {
  if (!ok_) {
    return false;
  }
  uint64_t out = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_ || shift > 63) {
      return Fail();
    }
    uint8_t byte = data_[pos_++];
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  *v = out;
  return true;
}

bool Decoder::GetSignedVarint(int64_t* v) {
  uint64_t zigzag;
  if (!GetVarint(&zigzag)) {
    return false;
  }
  *v = static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
  return true;
}

bool Decoder::GetBytes(Bytes* b) {
  uint64_t len;
  if (!GetVarint(&len)) {
    return false;
  }
  if (size_ - pos_ < len) {
    return Fail();
  }
  b->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return true;
}

bool Decoder::GetSharedBytes(SharedBytes* b) {
  uint64_t len;
  if (!GetVarint(&len)) {
    return false;
  }
  if (size_ - pos_ < len) {
    return Fail();
  }
  if (source_.empty() && len > 0) {
    *b = SharedBytes(Bytes(data_ + pos_, data_ + pos_ + len));
  } else {
    *b = source_.Substr(pos_, len);
  }
  pos_ += len;
  return true;
}

bool Decoder::GetString(std::string* s) {
  uint64_t len;
  if (!GetVarint(&len)) {
    return false;
  }
  if (size_ - pos_ < len) {
    return Fail();
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return true;
}

}  // namespace tacoma
