// Flat byte-stream serialization.
//
// The paper (§2) requires that folders and briefcases be cheap to move between
// sites: the wire format is therefore a flat, index-free stream — varint
// lengths and raw bytes, nothing else.  The same format is reused for agent
// transfers (rexec), courier payloads, and file-cabinet persistence, so the
// bytes counted by the network simulator are exactly the bytes this encoder
// produces.
#ifndef TACOMA_SERIAL_ENCODER_H_
#define TACOMA_SERIAL_ENCODER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace tacoma {

class Encoder {
 public:
  Encoder() = default;

  // Pre-allocates room for `additional` more bytes.  Callers that know their
  // serialized size (Folder/Briefcase ByteSize()) reserve once up front
  // instead of realloc-and-copying their way through a large encode.
  void Reserve(size_t additional) { buffer_.reserve(buffer_.size() + additional); }

  // Fixed-width little-endian primitives.
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);

  // LEB128 variable-length unsigned integer.
  void PutVarint(uint64_t v);

  // Signed variant (zig-zag encoded).
  void PutSignedVarint(int64_t v);

  // Length-prefixed byte string.
  void PutBytes(const Bytes& b);
  void PutBytes(const SharedBytes& b);
  void PutBytes(BytesView b);
  void PutString(std::string_view s);

  // Raw bytes, no length prefix (caller knows the framing).
  void PutRaw(const uint8_t* data, size_t len);

  const Bytes& buffer() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  // Takes the buffer as an immutable shared frame: the wire representation
  // every downstream holder (link hops, retry queue, receiver views) aliases
  // instead of copying.
  SharedBytes TakeShared() { return SharedBytes(std::move(buffer_)); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

// Sequential decoder over a byte buffer.  All getters return false (and leave
// the output untouched) on truncated or malformed input; once a decode fails
// the decoder is poisoned and every later call fails too, so call sites can
// check once at the end.
class Decoder {
 public:
  explicit Decoder(const Bytes& buffer) : data_(buffer.data()), size_(buffer.size()) {}
  // Decoding a shared frame lets GetSharedBytes() return views into it (the
  // zero-copy receive path); the other getters behave identically.
  explicit Decoder(const SharedBytes& buffer)
      : data_(buffer.data()), size_(buffer.size()), source_(buffer) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Decoder(BytesView buffer) : data_(buffer.data()), size_(buffer.size()) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetVarint(uint64_t* v);
  bool GetSignedVarint(int64_t* v);
  bool GetBytes(Bytes* b);
  // Length-prefixed byte string as a SharedBytes.  When this decoder was
  // constructed over a SharedBytes, the result is a view sharing the frame's
  // allocation; otherwise the bytes are copied into a fresh buffer.
  bool GetSharedBytes(SharedBytes* b);
  bool GetString(std::string* s);

  // True when the whole buffer was consumed and no decode failed.
  bool Done() const { return ok_ && pos_ == size_; }
  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  SharedBytes source_;  // Non-empty when constructed over a shared frame.
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace tacoma

#endif  // TACOMA_SERIAL_ENCODER_H_
