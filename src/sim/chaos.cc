#include "sim/chaos.h"

#include <algorithm>

#include "util/log.h"

namespace tacoma {

ChaosHarness::ChaosHarness(Simulator* sim, Network* net, ChaosOptions options)
    : sim_(sim), net_(net), options_(options), rng_(options.seed) {
  crash_ = [this](SiteId site) { net_->CrashSite(site); };
  restart_ = [this](SiteId site) { net_->RestartSite(site); };
}

void ChaosHarness::SetSiteHooks(SiteHook crash, SiteHook restart) {
  crash_ = std::move(crash);
  restart_ = std::move(restart);
}

void ChaosHarness::SetDiskArmHook(DiskArmHook arm) { arm_disk_ = std::move(arm); }

void ChaosHarness::AddInvariant(std::string name, Invariant check) {
  invariants_.emplace_back(std::move(name), std::move(check));
}

void ChaosHarness::SetViolationHook(ViolationHook hook) {
  on_violation_ = std::move(hook);
}

bool ChaosHarness::IsProtected(SiteId site) const {
  return std::find(options_.protected_sites.begin(), options_.protected_sites.end(),
                   site) != options_.protected_sites.end();
}

void ChaosHarness::ScheduleSiteFaults() {
  if (options_.mean_crash_interval == 0 || net_->site_count() == 0) {
    return;
  }
  // Pre-generate the storm in one pass so the event outcomes depend only on
  // the seed, not on how injected faults interleave with workload events.
  // busy_until keeps one site's crash/restart windows from overlapping.
  std::vector<SimTime> busy_until(net_->site_count(), 0);
  SimTime t = 0;
  while (true) {
    t += std::max<SimTime>(
        1, static_cast<SimTime>(
               rng_.Exponential(static_cast<double>(options_.mean_crash_interval))));
    if (t >= options_.horizon) {
      break;
    }
    SiteId victim = static_cast<SiteId>(rng_.Uniform(net_->site_count()));
    SimTime downtime = options_.min_downtime +
                       rng_.Uniform(options_.max_downtime - options_.min_downtime + 1);
    if (IsProtected(victim) || busy_until[victim] > t) {
      continue;
    }
    busy_until[victim] = t + downtime + 1;
    if (options_.disk_fault_prob > 0 && arm_disk_ &&
        rng_.UniformDouble() < options_.disk_fault_prob) {
      // Arm the victim's disk shortly before the crash: the next few flush /
      // journal operations fail (the last one torn), so the crash lands in
      // the middle of a persistence sequence instead of between them.
      uint64_t ops = 1 + rng_.Uniform(options_.max_disk_fault_ops);
      double tear = rng_.UniformDouble();
      SimTime arm_at = t > options_.disk_fault_lead ? t - options_.disk_fault_lead : 0;
      sim_->At(arm_at, [this, victim, ops, tear] {
        ++report_.disk_faults;
        arm_disk_(victim, ops, tear);
      });
    }
    sim_->At(t, [this, victim] {
      ++report_.crashes;
      crash_(victim);
    });
    sim_->At(t + downtime, [this, victim] {
      ++report_.restarts;
      restart_(victim);
    });
    // Crash-during-recovery: hit the site again right after it comes back,
    // while guard reload / registry replay / relaunch timers are in flight.
    if (options_.recrash_prob > 0 &&
        rng_.UniformDouble() < options_.recrash_prob) {
      SimTime delay = 1 + rng_.Uniform(options_.max_recrash_delay);
      SimTime t2 = t + downtime + delay;
      if (t2 + options_.recrash_downtime < options_.horizon) {
        busy_until[victim] = t2 + options_.recrash_downtime + 1;
        sim_->At(t2, [this, victim] {
          ++report_.recrashes;
          ++report_.crashes;
          crash_(victim);
        });
        sim_->At(t2 + options_.recrash_downtime, [this, victim] {
          ++report_.restarts;
          restart_(victim);
        });
      }
    }
  }
  // Safety net: everything the storm may have left down comes back at the
  // horizon (restarting an up site is a no-op at every layer).
  for (SiteId site = 0; site < net_->site_count(); ++site) {
    sim_->At(options_.horizon, [this, site] { restart_(site); });
  }
}

void ChaosHarness::ScheduleLinkFaults() {
  auto links = net_->Links();
  if (options_.mean_cut_interval == 0 || links.empty()) {
    return;
  }
  std::vector<SimTime> busy_until(links.size(), 0);
  SimTime t = 0;
  while (true) {
    t += std::max<SimTime>(
        1, static_cast<SimTime>(
               rng_.Exponential(static_cast<double>(options_.mean_cut_interval))));
    if (t >= options_.horizon) {
      break;
    }
    size_t pick = rng_.Uniform(links.size());
    SimTime cut = options_.min_cut + rng_.Uniform(options_.max_cut - options_.min_cut + 1);
    if (busy_until[pick] > t) {
      continue;
    }
    busy_until[pick] = t + cut + 1;
    auto [a, b] = links[pick];
    sim_->At(t, [this, a, b] {
      ++report_.cuts;
      net_->CutLink(a, b);
    });
    sim_->At(t + cut, [this, a, b] {
      ++report_.restores;
      net_->RestoreLink(a, b);
    });
  }
  for (auto [a, b] : links) {
    sim_->At(options_.horizon, [this, a, b] { net_->RestoreLink(a, b); });
  }
}

void ChaosHarness::ScheduleLossFlaps() {
  auto links = net_->Links();
  if (options_.mean_flap_interval == 0 || options_.max_loss <= 0 || links.empty()) {
    return;
  }
  SimTime t = 0;
  while (true) {
    t += std::max<SimTime>(
        1, static_cast<SimTime>(
               rng_.Exponential(static_cast<double>(options_.mean_flap_interval))));
    if (t >= options_.horizon) {
      break;
    }
    auto [a, b] = links[rng_.Uniform(links.size())];
    double loss = rng_.UniformDouble() * options_.max_loss;
    sim_->At(t, [this, a, b, loss] {
      ++report_.loss_flaps;
      net_->SetLinkLoss(a, b, loss);
    });
  }
  for (auto [a, b] : links) {
    sim_->At(options_.horizon, [this, a, b] { net_->SetLinkLoss(a, b, 0.0); });
  }
}

void ChaosHarness::SchedulePartitions() {
  auto links = net_->Links();
  if (options_.mean_partition_interval == 0 || links.empty() ||
      net_->site_count() < 2) {
    return;
  }
  SimTime t = 0;
  while (true) {
    t += std::max<SimTime>(
        1, static_cast<SimTime>(rng_.Exponential(
               static_cast<double>(options_.mean_partition_interval))));
    if (t >= options_.horizon) {
      break;
    }
    // Draw a random bipartition; links crossing it are cut together and heal
    // together (a correlated failure, not independent per-link noise).
    std::vector<uint8_t> side(net_->site_count(), 0);
    size_t ones = 0;
    for (size_t i = 0; i < side.size(); ++i) {
      side[i] = static_cast<uint8_t>(rng_.Uniform(2));
      ones += side[i];
    }
    SimTime duration = options_.min_partition +
                       rng_.Uniform(options_.max_partition - options_.min_partition + 1);
    if (ones == 0 || ones == side.size()) {
      continue;  // Degenerate split: nothing crosses.
    }
    std::vector<std::pair<SiteId, SiteId>> crossing;
    for (auto [a, b] : links) {
      if (side[a] != side[b]) {
        crossing.push_back({a, b});
      }
    }
    if (crossing.empty()) {
      continue;
    }
    sim_->At(t, [this, crossing] {
      ++report_.partitions;
      for (auto [a, b] : crossing) {
        net_->CutLink(a, b);
      }
    });
    sim_->At(t + duration, [this, crossing] {
      ++report_.partition_heals;
      for (auto [a, b] : crossing) {
        net_->RestoreLink(a, b);
      }
    });
  }
  // Horizon safety net (the independent cut storm's own net may be disabled
  // while partitions are on).
  for (auto [a, b] : links) {
    sim_->At(options_.horizon, [this, a, b] { net_->RestoreLink(a, b); });
  }
}

void ChaosHarness::ScheduleChecks() {
  if (options_.check_interval == 0) {
    return;
  }
  for (SimTime t = options_.check_interval; t <= options_.horizon;
       t += options_.check_interval) {
    sim_->At(t, [this] { (void)CheckNow(); });
  }
}

void ChaosHarness::Start() {
  ScheduleSiteFaults();
  ScheduleLinkFaults();
  ScheduleLossFlaps();
  // New modes draw from the rng only after (and gated independently of) the
  // legacy storms, so pre-partition seeds keep their exact schedules.
  SchedulePartitions();
  ScheduleChecks();
}

Status ChaosHarness::CheckNow() {
  ++report_.checks;
  Status first = OkStatus();
  for (const auto& [name, check] : invariants_) {
    Status s = check();
    if (!s.ok()) {
      std::string violation = name + " at t=" + std::to_string(sim_->Now()) + "us: " +
                              s.ToString();
      TLOG_ERROR << "chaos invariant violated: " << violation;
      report_.violations.push_back(violation);
      if (on_violation_) {
        on_violation_(violation);
      }
      if (first.ok()) {
        first = s;
      }
    }
  }
  return first;
}

void ChaosHarness::RegisterMetrics(MetricsRegistry* registry,
                                   const std::string& prefix) {
  registry->AddProbe(prefix + "crashes", [this] { return report_.crashes; });
  registry->AddProbe(prefix + "restarts", [this] { return report_.restarts; });
  registry->AddProbe(prefix + "cuts", [this] { return report_.cuts; });
  registry->AddProbe(prefix + "restores", [this] { return report_.restores; });
  registry->AddProbe(prefix + "loss_flaps",
                     [this] { return report_.loss_flaps; });
  registry->AddProbe(prefix + "disk_faults",
                     [this] { return report_.disk_faults; });
  registry->AddProbe(prefix + "partitions", [this] { return report_.partitions; });
  registry->AddProbe(prefix + "partition_heals",
                     [this] { return report_.partition_heals; });
  registry->AddProbe(prefix + "recrashes", [this] { return report_.recrashes; });
  registry->AddProbe(prefix + "checks", [this] { return report_.checks; });
  registry->AddProbe(prefix + "violations",
                     [this] { return static_cast<uint64_t>(report_.violations.size()); });
}

}  // namespace tacoma
