// Chaos harness — seeded fault schedules plus invariant checking.
//
// The paper's §5 failure story ("a site or network link has failed, and the
// agent has vanished") is exercised here systematically: from one seed the
// harness pre-generates a deterministic schedule of site crash/restart
// storms, link cut/restore storms, and per-link loss-rate flaps, drives them
// against a running simulation, and periodically evaluates caller-supplied
// invariants (no duplicate activation, transfer conservation, ...).
//
// Layering: this lives in sim/ and therefore cannot know about the kernel.
// Site failures must go through the kernel (which tears down and recreates
// Places), so they are injected via SetSiteHooks; everything link-level is
// driven directly on the Network.
#ifndef TACOMA_SIM_CHAOS_H_
#define TACOMA_SIM_CHAOS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace tacoma {

struct ChaosOptions {
  uint64_t seed = 1995;
  // Fault injection stops at the horizon: every downed site is restarted,
  // every cut link restored, and all loss rates reset to zero, so the system
  // can quiesce and end-of-run invariants are meaningful.
  SimTime horizon = 3 * kSecond;

  // Site crash/restart storm (0 interval disables).  Downtime is uniform in
  // [min_downtime, max_downtime].
  SimTime mean_crash_interval = 150 * kMillisecond;
  SimTime min_downtime = 50 * kMillisecond;
  SimTime max_downtime = 400 * kMillisecond;

  // Link cut/restore storm (0 interval disables).
  SimTime mean_cut_interval = 200 * kMillisecond;
  SimTime min_cut = 30 * kMillisecond;
  SimTime max_cut = 300 * kMillisecond;

  // Loss-rate flaps: each flap re-rolls one link's loss uniformly in
  // [0, max_loss] (0 interval disables).
  SimTime mean_flap_interval = 100 * kMillisecond;
  double max_loss = 0.5;

  // Mid-flush disk faults: with this probability a scheduled site crash is
  // preceded (by disk_fault_lead) by arming the site's disk — via the
  // DiskArmHook — to fail a few mutating operations later, so the crash
  // lands in the middle of whatever flush/journal activity is in flight
  // (torn write, partial append, failed rename).  0 disables; the rng draws
  // are only taken when enabled, so existing seeds keep their schedules.
  double disk_fault_prob = 0.0;
  // Uniform [1, max_disk_fault_ops] mutating operations pass between arming
  // and the injected failure.
  uint64_t max_disk_fault_ops = 6;
  // Lead time between arming the disk and the site crash itself.
  SimTime disk_fault_lead = 20 * kMillisecond;

  // Partition mode: correlated group link-cuts that heal.  Each partition
  // event draws a random bipartition of the sites and cuts every link that
  // crosses it, restoring all of them when the partition heals — unlike the
  // independent per-link cut storm, both halves stay internally connected
  // while being mutually unreachable.  0 disables; the rng draws are only
  // taken when enabled, so existing seeds keep their schedules.
  SimTime mean_partition_interval = 0;
  SimTime min_partition = 80 * kMillisecond;
  SimTime max_partition = 300 * kMillisecond;

  // Crash-during-recovery targeting: with this probability, a restarted site
  // is crashed again shortly after it comes back (uniform [1,
  // max_recrash_delay] after the restart), so recovery code paths — guard
  // reload, registry replay, relaunch timers — are themselves interrupted.
  // The second downtime is fixed at recrash_downtime.  0 disables (draws
  // gated, same seed-stability rule as above).
  double recrash_prob = 0.0;
  SimTime max_recrash_delay = 40 * kMillisecond;
  SimTime recrash_downtime = 60 * kMillisecond;

  // Cadence of invariant evaluation while the storm runs.
  SimTime check_interval = 100 * kMillisecond;

  // Sites the harness never crashes (e.g. the home site whose cabinets the
  // invariants read).
  std::vector<SiteId> protected_sites;
};

class ChaosHarness {
 public:
  using SiteHook = std::function<void(SiteId)>;
  // Arms a site's disk to fail `ops_from_now` mutating operations later with
  // `tear_fraction` of a torn payload landing (see Kernel::ArmDiskCrash /
  // storage/crash_disk.h).  The layering note above applies: the harness
  // cannot know about CrashDisk, so the kernel side is injected.
  using DiskArmHook =
      std::function<void(SiteId, uint64_t ops_from_now, double tear_fraction)>;
  // Returns OkStatus while the invariant holds; the error message of a
  // violation is recorded in the report.
  using Invariant = std::function<Status()>;
  // Invoked once per recorded violation (after it lands in the report), with
  // the formatted violation text.  The kernel's flight recorder hangs off
  // this to dump its black box at the moment an invariant first breaks.
  using ViolationHook = std::function<void(const std::string&)>;

  struct Report {
    uint64_t crashes = 0;
    uint64_t restarts = 0;
    uint64_t cuts = 0;
    uint64_t restores = 0;
    uint64_t loss_flaps = 0;
    uint64_t disk_faults = 0;
    uint64_t partitions = 0;
    uint64_t partition_heals = 0;
    uint64_t recrashes = 0;
    uint64_t checks = 0;
    std::vector<std::string> violations;
  };

  ChaosHarness(Simulator* sim, Network* net, ChaosOptions options = {});
  ChaosHarness(const ChaosHarness&) = delete;
  ChaosHarness& operator=(const ChaosHarness&) = delete;

  // Site crashes/restarts are injected through these (the kernel must destroy
  // and recreate Places).  Without hooks, site faults fall back to the raw
  // Network::CrashSite / RestartSite, which upper layers will not notice.
  void SetSiteHooks(SiteHook crash, SiteHook restart);
  // Required for disk_fault_prob > 0 (site crashes cannot land mid-flush
  // without a way to arm the site's disk).
  void SetDiskArmHook(DiskArmHook arm);

  void AddInvariant(std::string name, Invariant check);
  // At most one hook; replaces any previous one (empty clears).
  void SetViolationHook(ViolationHook hook);

  // Pre-generates the whole seeded fault schedule and queues it on the
  // simulator, along with periodic invariant checks.  Call once, before
  // running the simulation; the harness must outlive the run.
  void Start();

  // Evaluates every invariant now, recording any violations.  Returns the
  // first violation (or OkStatus).  Call after the run has quiesced for the
  // end-of-run verdict.
  Status CheckNow();

  const Report& report() const { return report_; }
  bool ok() const { return report_.violations.empty(); }

  // Registers pull-style probes over the report fields (chaos.crashes,
  // chaos.cuts, ...) so chaos activity shows up in unified snapshots.  The
  // harness must outlive every snapshot call on the registry.
  void RegisterMetrics(MetricsRegistry* registry,
                       const std::string& prefix = "chaos.");

 private:
  void ScheduleSiteFaults();
  void ScheduleLinkFaults();
  void ScheduleLossFlaps();
  void SchedulePartitions();
  void ScheduleChecks();
  bool IsProtected(SiteId site) const;

  Simulator* sim_;
  Network* net_;
  ChaosOptions options_;
  Rng rng_;
  SiteHook crash_;
  SiteHook restart_;
  DiskArmHook arm_disk_;
  std::vector<std::pair<std::string, Invariant>> invariants_;
  ViolationHook on_violation_;
  Report report_;
};

}  // namespace tacoma

#endif  // TACOMA_SIM_CHAOS_H_
