#include "sim/network.h"

#include <deque>

namespace tacoma {

SiteId Network::AddSite(std::string name) {
  SiteId id = static_cast<SiteId>(sites_.size());
  sites_.push_back(Site{std::move(name), /*up=*/true, nullptr, nullptr, 0});
  adjacency_[id];  // Ensure the entry exists.
  return id;
}

void Network::AddLink(SiteId a, SiteId b, LinkParams params) {
  if (a == b || a >= sites_.size() || b >= sites_.size()) {
    return;
  }
  for (auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
    auto [it, inserted] = links_.try_emplace({x, y});
    it->second.params = params;
    // A param-only re-add must not resurrect a cut link: `up` is owned by
    // CutLink/RestoreLink once the link exists.
    if (inserted) {
      adjacency_[x].push_back(y);
    }
  }
  if (topology_hook_) {
    topology_hook_(a, b);
  }
}

std::optional<SiteId> Network::FindSite(const std::string& name) const {
  for (SiteId i = 0; i < sites_.size(); ++i) {
    if (sites_[i].name == name) {
      return i;
    }
  }
  return std::nullopt;
}

void Network::SetHandler(SiteId site, Handler handler) {
  sites_[site].handler = std::move(handler);
}

void Network::SetRestartHook(SiteId site, RestartHook hook) {
  sites_[site].restart_hook = std::move(hook);
}

Network::Link* Network::FindLink(SiteId a, SiteId b) {
  auto it = links_.find({a, b});
  return it == links_.end() ? nullptr : &it->second;
}

const Network::Link* Network::FindLink(SiteId a, SiteId b) const {
  auto it = links_.find({a, b});
  return it == links_.end() ? nullptr : &it->second;
}

SiteId Network::NextHop(SiteId at, SiteId to) const {
  if (at == to) {
    return to;
  }
  // BFS over up sites and links; returns the first hop of a shortest path.
  std::vector<SiteId> parent(sites_.size(), kInvalidSite);
  std::deque<SiteId> frontier{at};
  parent[at] = at;
  while (!frontier.empty()) {
    SiteId cur = frontier.front();
    frontier.pop_front();
    auto adj = adjacency_.find(cur);
    if (adj == adjacency_.end()) {
      continue;
    }
    for (SiteId next : adj->second) {
      if (parent[next] != kInvalidSite || !sites_[next].up) {
        continue;
      }
      const Link* link = FindLink(cur, next);
      if (link == nullptr || !link->up) {
        continue;
      }
      parent[next] = cur;
      if (next == to) {
        // Walk back to find the first hop from `at`.
        SiteId hop = to;
        while (parent[hop] != at) {
          hop = parent[hop];
        }
        return hop;
      }
      frontier.push_back(next);
    }
  }
  return kInvalidSite;
}

std::optional<size_t> Network::HopCount(SiteId from, SiteId to) const {
  if (from == to) {
    return 0;
  }
  std::vector<int> dist(sites_.size(), -1);
  std::deque<SiteId> frontier{from};
  dist[from] = 0;
  while (!frontier.empty()) {
    SiteId cur = frontier.front();
    frontier.pop_front();
    auto adj = adjacency_.find(cur);
    if (adj == adjacency_.end()) {
      continue;
    }
    for (SiteId next : adj->second) {
      if (dist[next] >= 0 || !sites_[next].up) {
        continue;
      }
      const Link* link = FindLink(cur, next);
      if (link == nullptr || !link->up) {
        continue;
      }
      dist[next] = dist[cur] + 1;
      if (next == to) {
        return static_cast<size_t>(dist[next]);
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

std::vector<SiteId> Network::Neighbors(SiteId site) const {
  auto it = adjacency_.find(site);
  if (it == adjacency_.end()) {
    return {};
  }
  return it->second;
}

Status Network::Send(SiteId from, SiteId to, SharedBytes payload) {
  if (from >= sites_.size() || to >= sites_.size()) {
    return InvalidArgumentError("no such site");
  }
  if (!sites_[from].up) {
    return UnavailableError("source site " + sites_[from].name + " is down");
  }
  if (!sites_[to].up) {
    return UnavailableError("destination site " + sites_[to].name + " is down");
  }
  if (from != to && NextHop(from, to) == kInvalidSite) {
    return UnavailableError("no route from " + sites_[from].name + " to " +
                            sites_[to].name);
  }
  ++stats_.messages_sent;
  if (from == to) {
    // Self-sends defer to the event loop like every remote delivery, so a
    // handler never runs re-entrantly inside the sender's Send call (the
    // same re-entrancy class as the PR 7 use-after-free bugs).
    uint32_t dest_epoch = sites_[to].epoch;
    sim_->At(sim_->Now(),
             [this, from, to, payload = std::move(payload), dest_epoch] {
               ForwardHop(to, from, to, payload, dest_epoch);
             });
    return OkStatus();
  }
  ForwardHop(from, from, to, payload, sites_[to].epoch);
  return OkStatus();
}

void Network::ForwardHop(SiteId at, SiteId from, SiteId to,
                         const SharedBytes& payload,
                         uint32_t dest_epoch) {
  if (at == to) {
    Site& dest = sites_[to];
    if (!dest.up || dest.epoch != dest_epoch || !dest.handler) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    dest.handler(from, payload);
    return;
  }

  SiteId next = NextHop(at, to);
  if (next == kInvalidSite) {
    ++stats_.messages_dropped;
    return;
  }
  Link* link = FindLink(at, next);
  if (link == nullptr || !link->up) {
    ++stats_.messages_dropped;
    return;
  }

  // Store-and-forward with link contention: a transmission starts when the
  // link frees up, occupies it for size/bandwidth, then propagates.
  SimTime now = sim_->Now();
  SimTime start = std::max(now, link->next_free);
  SimTime tx = payload.empty()
                   ? 0
                   : (payload.size() * kSecond + link->params.bandwidth_bps - 1) /
                         link->params.bandwidth_bps;
  SimTime arrive = start + tx + link->params.latency;
  link->next_free = start + tx;

  link->stats.messages += 1;
  link->stats.bytes += payload.size();
  stats_.link_traversals += 1;
  stats_.bytes_on_wire += payload.size();

  // Probabilistic loss: the transmission occupies the wire (bytes counted
  // above) but the frame is corrupt on arrival.  Drawn at schedule time so
  // the outcome is deterministic for a seeded run.
  if (link->params.loss > 0 && loss_rng_.Bernoulli(link->params.loss)) {
    sim_->At(arrive, [this] {
      ++stats_.messages_dropped;
      ++stats_.messages_lost;
    });
    return;
  }

  // The capture shares the frame (refcount bump), so an N-hop route holds
  // one allocation, not N copies of the payload.
  //
  // The intermediate hop's epoch is captured now: if `next` crashes and
  // restarts while the frame is in flight, the restarted incarnation must
  // not forward it (crash semantics are "queued deliveries to AND THROUGH a
  // crashed site are dropped").
  uint32_t next_epoch = sites_[next].epoch;
  sim_->At(arrive, [this, next, from, to, payload, dest_epoch, next_epoch] {
    if (!sites_[next].up || sites_[next].epoch != next_epoch) {
      ++stats_.messages_dropped;
      return;
    }
    ForwardHop(next, from, to, payload, dest_epoch);
  });
}

void Network::CrashSite(SiteId site) {
  if (site >= sites_.size() || !sites_[site].up) {
    return;
  }
  sites_[site].up = false;
  sites_[site].epoch += 1;
}

void Network::RestartSite(SiteId site) {
  if (site >= sites_.size() || sites_[site].up) {
    return;
  }
  sites_[site].up = true;
  if (sites_[site].restart_hook) {
    sites_[site].restart_hook(site);
  }
}

void Network::CutLink(SiteId a, SiteId b) {
  for (auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
    if (Link* link = FindLink(x, y)) {
      link->up = false;
      // Everything queued on the wire is gone with the link; a later
      // RestoreLink starts from an idle wire, not a stale backlog.
      link->next_free = 0;
    }
  }
}

void Network::RestoreLink(SiteId a, SiteId b) {
  for (auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
    if (Link* link = FindLink(x, y)) {
      link->up = true;
    }
  }
}

void Network::SetLinkLoss(SiteId a, SiteId b, double loss) {
  for (auto [x, y] : {std::pair{a, b}, std::pair{b, a}}) {
    if (Link* link = FindLink(x, y)) {
      link->params.loss = loss;
    }
  }
}

std::vector<std::pair<SiteId, SiteId>> Network::Links() const {
  std::vector<std::pair<SiteId, SiteId>> out;
  for (const auto& [key, link] : links_) {
    if (key.first < key.second) {
      out.push_back(key);
    }
  }
  return out;
}

void Network::ResetStats() {
  stats_ = NetworkStats{};
  for (auto& [key, link] : links_) {
    link.stats = LinkStats{};
  }
}

TransportStats Network::transport_stats() const {
  // Map the sim's message-level model onto the edge-level Transport view.
  // Connection counters stay zero: the sim has no sockets.
  TransportStats ts;
  ts.frames_sent = stats_.messages_sent;
  ts.frames_delivered = stats_.messages_delivered;
  ts.frames_dropped = stats_.messages_dropped;
  ts.bytes_sent = stats_.bytes_on_wire;
  return ts;
}

LinkStats Network::DirectedLinkStats(SiteId a, SiteId b) const {
  const Link* link = FindLink(a, b);
  return link == nullptr ? LinkStats{} : link->stats;
}

}  // namespace tacoma
