// Simulated network of sites.
//
// Substitutes for the paper's physical network of UNIX workstations (Tromsø +
// Cornell over rsh/TCP/Horus).  The model is store-and-forward: messages are
// routed hop-by-hop along shortest paths; each link has a propagation latency
// and a bandwidth, and transmissions queue behind one another on a busy link.
// Every byte crossing every link is accounted, which is exactly the quantity
// the paper's bandwidth-conservation claim (§1) is about.
//
// Failure injection: sites crash (volatile state lost, queued deliveries to
// and through them dropped) and restart; links can be cut and restored.  The
// fault-tolerance experiments (§5, rear guards) drive these hooks.
#ifndef TACOMA_SIM_NETWORK_H_
#define TACOMA_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/transport.h"
#include "sim/simulator.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace tacoma {

struct LinkParams {
  SimTime latency = 1 * kMillisecond;          // Propagation delay per hop.
  uint64_t bandwidth_bps = 10'000'000;         // Bytes per simulated second.
  double loss = 0.0;                           // Per-traversal drop probability.
};

struct LinkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

struct NetworkStats {
  uint64_t messages_sent = 0;      // Send() calls accepted.
  uint64_t messages_delivered = 0; // Reached their destination handler.
  uint64_t messages_dropped = 0;   // Lost to site/link failure or link loss.
  uint64_t messages_lost = 0;      // Subset of dropped: probabilistic link loss.
  uint64_t link_traversals = 0;    // Per-hop transmissions.
  uint64_t bytes_on_wire = 0;      // Sum over every traversed link.
};

class Network : public Transport {
 public:
  // Handler/RestartHook come from the Transport seam (net/transport.h).
  using Handler = Transport::Handler;
  using RestartHook = Transport::RestartHook;
  // Called after a link is added (so upper layers can track adjacency).
  using TopologyHook = std::function<void(SiteId a, SiteId b)>;

  explicit Network(Simulator* sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- Topology -----------------------------------------------------------

  SiteId AddSite(std::string name);
  // Adds an undirected link (both directions share params but have separate
  // queues and stats).  Re-adding an existing link updates its params only:
  // a link downed by CutLink stays cut until RestoreLink, so topology
  // re-registration never undoes failure injection.
  void AddLink(SiteId a, SiteId b, LinkParams params = LinkParams());

  size_t site_count() const { return sites_.size(); }
  const std::string& site_name(SiteId id) const { return sites_[id].name; }
  // Looks a site up by name.
  std::optional<SiteId> FindSite(const std::string& name) const;

  // --- Messaging ----------------------------------------------------------

  void SetHandler(SiteId site, Handler handler) override;
  void SetRestartHook(SiteId site, RestartHook hook) override;
  void SetTopologyHook(TopologyHook hook) { topology_hook_ = std::move(hook); }

  // Routes `payload` from `from` to `to` along the current shortest path.
  // Returns an error if no path exists right now or either endpoint is down;
  // once accepted, the message can still be silently lost to failures while
  // in flight (callers needing reliability build timeouts above this, as the
  // paper's agents do).  Delivery is always asynchronous — even a self-send
  // (`from == to`) runs its handler from a simulator event, never from
  // inside this call.
  //
  // The payload is a refcounted frame: an N-hop route schedules N link
  // traversals that all alias one allocation (frames are immutable once
  // sent), so forwarding and retransmission never deep-copy the bytes.
  Status Send(SiteId from, SiteId to, SharedBytes payload) override;

  TransportStats transport_stats() const override;

  // --- Failure injection ---------------------------------------------------

  void CrashSite(SiteId site);
  void RestartSite(SiteId site);
  bool IsUp(SiteId site) const { return sites_[site].up; }
  void CutLink(SiteId a, SiteId b);
  void RestoreLink(SiteId a, SiteId b);
  // Sets the per-traversal drop probability on both directions of a link.
  void SetLinkLoss(SiteId a, SiteId b, double loss);
  // Seeds the generator that decides probabilistic losses (the kernel seeds
  // this from its own Rng so whole experiments stay bit-reproducible).
  void set_loss_seed(uint64_t seed) { loss_rng_ = Rng(seed); }

  // --- Accounting -----------------------------------------------------------

  const NetworkStats& stats() const { return stats_; }
  void ResetStats();
  // Stats for the directed link a->b (zeros if no such link).
  LinkStats DirectedLinkStats(SiteId a, SiteId b) const;

  // Hop count of the current shortest path, or nullopt if unreachable.
  std::optional<size_t> HopCount(SiteId from, SiteId to) const;

  // Direct neighbours of `site` (regardless of up/down state).
  std::vector<SiteId> Neighbors(SiteId site) const;

  // Every undirected link as an (a, b) pair with a < b.
  std::vector<std::pair<SiteId, SiteId>> Links() const;

  Simulator* sim() { return sim_; }

 private:
  struct Site {
    std::string name;
    bool up = true;
    Handler handler;
    RestartHook restart_hook;
    uint32_t epoch = 0;  // Bumped on crash; stale in-flight hops check this.
  };
  struct Link {
    LinkParams params;
    bool up = true;
    SimTime next_free = 0;  // Earliest time a new transmission can start.
    LinkStats stats;
  };

  // Computes next hop from `at` toward `to` via BFS over up sites/links.
  SiteId NextHop(SiteId at, SiteId to) const;
  Link* FindLink(SiteId a, SiteId b);
  const Link* FindLink(SiteId a, SiteId b) const;

  // Schedules the hop `at` -> next toward `to`; drops on failure.
  void ForwardHop(SiteId at, SiteId from, SiteId to, const SharedBytes& payload,
                  uint32_t dest_epoch);

  Simulator* sim_;
  TopologyHook topology_hook_;
  Rng loss_rng_{0x10551055};  // Deterministic default; reseed via set_loss_seed.
  std::vector<Site> sites_;
  std::map<std::pair<SiteId, SiteId>, Link> links_;  // Directed.
  std::map<SiteId, std::vector<SiteId>> adjacency_;
  NetworkStats stats_;
};

}  // namespace tacoma

#endif  // TACOMA_SIM_NETWORK_H_
