#include "sim/simulator.h"

#include <utility>

namespace tacoma {

void Simulator::At(SimTime when, Action action) {
  if (when < now_) {
    when = now_;
  }
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

void Simulator::After(SimTime delay, Action action) {
  At(now_ + delay, std::move(action));
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top() is const; move out via const_cast on the action,
  // which is safe because we pop immediately.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++events_run_;
  ev.action();
  return true;
}

size_t Simulator::Run() {
  size_t count = 0;
  hit_event_limit_ = false;
  while (!queue_.empty()) {
    if (event_limit_ != 0 && events_run_ >= event_limit_) {
      hit_event_limit_ = true;
      break;
    }
    Step();
    ++count;
  }
  return count;
}

size_t Simulator::RunUntil(SimTime deadline) {
  size_t count = 0;
  hit_event_limit_ = false;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    if (event_limit_ != 0 && events_run_ >= event_limit_) {
      hit_event_limit_ = true;
      break;
    }
    Step();
    ++count;
  }
  if (now_ < deadline && !hit_event_limit_) {
    now_ = deadline;
  }
  return count;
}

}  // namespace tacoma
