// Discrete-event simulation kernel.
//
// A single-threaded, deterministic event loop: events are (time, sequence)
// ordered closures.  The simulator clock is the only notion of time anywhere
// in TACOMA — all latencies, timeouts, and heartbeats are events here, which
// makes every experiment bit-reproducible.
#ifndef TACOMA_SIM_SIMULATOR_H_
#define TACOMA_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tacoma {

// Simulated time in microseconds.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `action` at absolute time `when` (clamped to now).
  void At(SimTime when, Action action);

  // Schedules `action` `delay` from now.
  void After(SimTime delay, Action action);

  // Runs until the event queue drains.  Returns the number of events run.
  size_t Run();

  // Runs events with time <= deadline; the clock ends at `deadline` even if
  // the queue drained earlier.  Returns the number of events run.
  size_t RunUntil(SimTime deadline);

  // Runs at most one event.  Returns false if the queue was empty.
  bool Step();

  bool Idle() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  // Absolute time of the earliest pending event (only valid when !Idle()).
  // A realtime pump uses this to size its socket-poll timeout: sleep no
  // longer than the next due heartbeat/retry.
  SimTime NextEventTime() const { return queue_.top().when; }
  size_t events_run() const { return events_run_; }

  // Safety valve for runaway agent populations (e.g. the unbounded-flooding
  // experiment): Run() stops once this many events have executed.  0 = none.
  void set_event_limit(size_t limit) { event_limit_ = limit; }
  bool hit_event_limit() const { return hit_event_limit_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // FIFO tie-break for simultaneous events.
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t events_run_ = 0;
  size_t event_limit_ = 0;
  bool hit_event_limit_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace tacoma

#endif  // TACOMA_SIM_SIMULATOR_H_
