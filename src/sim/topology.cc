#include "sim/topology.h"

#include <string>

namespace tacoma {
namespace {

std::vector<SiteId> AddSites(Network* net, size_t n) {
  std::vector<SiteId> ids;
  ids.reserve(n);
  size_t base = net->site_count();
  for (size_t i = 0; i < n; ++i) {
    // Built in two steps: gcc 12's -Wrestrict misfires on
    // `"literal" + std::to_string(...)` at -O2 (PR 105651).
    std::string name = "s";
    name += std::to_string(base + i);
    ids.push_back(net->AddSite(name));
  }
  return ids;
}

}  // namespace

std::vector<SiteId> BuildLine(Network* net, size_t n, LinkParams params) {
  auto ids = AddSites(net, n);
  for (size_t i = 0; i + 1 < n; ++i) {
    net->AddLink(ids[i], ids[i + 1], params);
  }
  return ids;
}

std::vector<SiteId> BuildRing(Network* net, size_t n, LinkParams params) {
  auto ids = AddSites(net, n);
  for (size_t i = 0; i + 1 < n; ++i) {
    net->AddLink(ids[i], ids[i + 1], params);
  }
  if (n > 2) {
    net->AddLink(ids[n - 1], ids[0], params);
  }
  return ids;
}

std::vector<SiteId> BuildStar(Network* net, size_t n, LinkParams params) {
  auto ids = AddSites(net, n);
  for (size_t i = 1; i < n; ++i) {
    net->AddLink(ids[0], ids[i], params);
  }
  return ids;
}

std::vector<SiteId> BuildFullMesh(Network* net, size_t n, LinkParams params) {
  auto ids = AddSites(net, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      net->AddLink(ids[i], ids[j], params);
    }
  }
  return ids;
}

std::vector<SiteId> BuildGrid(Network* net, size_t rows, size_t cols, LinkParams params) {
  auto ids = AddSites(net, rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      size_t i = r * cols + c;
      if (c + 1 < cols) {
        net->AddLink(ids[i], ids[i + 1], params);
      }
      if (r + 1 < rows) {
        net->AddLink(ids[i], ids[i + cols], params);
      }
    }
  }
  return ids;
}

std::vector<SiteId> BuildRandom(Network* net, size_t n, double p, Rng* rng,
                                LinkParams params) {
  auto ids = AddSites(net, n);
  // Random spanning tree: attach each node to a random earlier one.
  for (size_t i = 1; i < n; ++i) {
    size_t j = static_cast<size_t>(rng->Uniform(i));
    net->AddLink(ids[i], ids[j], params);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(p)) {
        net->AddLink(ids[i], ids[j], params);
      }
    }
  }
  return ids;
}

}  // namespace tacoma
