// Topology builders for experiments: line, ring, star, grid, full mesh, and
// connected random graphs.  Site names are "s0", "s1", ... in creation order.
#ifndef TACOMA_SIM_TOPOLOGY_H_
#define TACOMA_SIM_TOPOLOGY_H_

#include <vector>

#include "sim/network.h"
#include "util/rng.h"

namespace tacoma {

// Each builder adds `n` fresh sites to `net`, wires them, and returns their
// ids in order.
std::vector<SiteId> BuildLine(Network* net, size_t n, LinkParams params = LinkParams());
std::vector<SiteId> BuildRing(Network* net, size_t n, LinkParams params = LinkParams());
// sites[0] is the hub.
std::vector<SiteId> BuildStar(Network* net, size_t n, LinkParams params = LinkParams());
std::vector<SiteId> BuildFullMesh(Network* net, size_t n, LinkParams params = LinkParams());
// rows x cols grid; returned in row-major order.
std::vector<SiteId> BuildGrid(Network* net, size_t rows, size_t cols,
                              LinkParams params = LinkParams());
// Connected G(n, p): a random spanning tree guarantees connectivity, then each
// remaining pair is linked with probability p.
std::vector<SiteId> BuildRandom(Network* net, size_t n, double p, Rng* rng,
                                LinkParams params = LinkParams());

}  // namespace tacoma

#endif  // TACOMA_SIM_TOPOLOGY_H_
