#include "storage/crash_disk.h"

#include <algorithm>

namespace tacoma {

void CrashDisk::Arm(uint64_t ops_from_now, double tear_fraction) {
  armed_ = true;
  countdown_ = ops_from_now;
  tear_fraction_ = std::clamp(tear_fraction, 0.0, 1.0);
}

void CrashDisk::Reset() {
  armed_ = false;
  crashed_ = false;
  countdown_ = 0;
}

bool CrashDisk::TickFails() {
  ++mutating_ops_;
  if (!armed_) {
    return false;
  }
  if (countdown_ > 0) {
    --countdown_;
    return false;
  }
  armed_ = false;
  crashed_ = true;
  ++faults_injected_;
  return true;
}

Bytes CrashDisk::TornPrefix(const Bytes& data) const {
  size_t keep = static_cast<size_t>(static_cast<double>(data.size()) * tear_fraction_);
  keep = std::min(keep, data.size());
  return Bytes(data.begin(), data.begin() + static_cast<long>(keep));
}

Status CrashDisk::CrashedError(const std::string& op) const {
  return UnavailableError("disk crashed: " + op);
}

Status CrashDisk::Write(const std::string& name, const Bytes& data) {
  if (crashed_) {
    return CrashedError("write " + name);
  }
  if (TickFails()) {
    // Torn write: a prefix of the payload replaces the file before the
    // failure surfaces — the worst case a non-atomic overwrite allows.  With
    // tear_fraction 0 the crash fires before the write reaches the disk at
    // all, so the old contents survive (distinct from an empty prefix, which
    // would truncate the file).
    if (tear_fraction_ > 0.0) {
      (void)base_->Write(name, TornPrefix(data));
    }
    return DataLossError("injected torn write: " + name);
  }
  return base_->Write(name, data);
}

Result<Bytes> CrashDisk::Read(const std::string& name) const {
  if (crashed_) {
    return CrashedError("read " + name);
  }
  return base_->Read(name);
}

Status CrashDisk::Append(const std::string& name, const Bytes& data) {
  if (crashed_) {
    return CrashedError("append " + name);
  }
  if (TickFails()) {
    (void)base_->Append(name, TornPrefix(data));
    return DataLossError("injected partial append: " + name);
  }
  return base_->Append(name, data);
}

Status CrashDisk::Remove(const std::string& name) {
  if (crashed_) {
    return CrashedError("remove " + name);
  }
  if (TickFails()) {
    return UnavailableError("injected failed remove: " + name);
  }
  return base_->Remove(name);
}

Status CrashDisk::Rename(const std::string& from, const std::string& to) {
  if (crashed_) {
    return CrashedError("rename " + from);
  }
  if (TickFails()) {
    // Renames are atomic: the injected failure leaves both names untouched.
    return UnavailableError("injected failed rename: " + from + " -> " + to);
  }
  return base_->Rename(from, to);
}

bool CrashDisk::Exists(const std::string& name) const {
  return !crashed_ && base_->Exists(name);
}

std::vector<std::string> CrashDisk::List() const {
  if (crashed_) {
    return {};
  }
  return base_->List();
}

}  // namespace tacoma
