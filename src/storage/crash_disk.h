// Fault-injecting Disk decorator for crash-point testing.
//
// Crash-safety claims about the persistence layer ("a crash between these two
// writes cannot corrupt the cabinet") are only worth anything if a crash can
// actually be made to land between those two writes.  CrashDisk wraps any
// Disk and counts its mutating operations (Write, Append, Remove, Rename);
// Arm(k) makes the k-th mutating operation from now fail the way a dying disk
// does:
//
//   - Write/Append land a torn prefix of the payload (a partial sector
//     flush) before reporting failure; a tear_fraction of 0 means the crash
//     fired before the operation reached the disk at all, so the previous
//     contents survive untouched;
//   - Remove/Rename fail with no effect (directory ops are atomic: they
//     either happened or they didn't).
//
// After the injected failure the disk is "crashed": every operation fails
// (reads included — the process is dead) until Reset(), which models the
// restart remounting the device with whatever bytes actually landed.
//
// The op counter runs whether or not a fault is armed, so a test can dry-run
// a workload once to learn its operation count N, then sweep every crash
// point k in [0, N) — the crash-point sweep in tests/crash_recovery_test.cc.
// The kernel wraps every site disk in one of these, and the ChaosHarness
// arms them just before scheduled site crashes so simulated failures land
// mid-flush.
#ifndef TACOMA_STORAGE_CRASH_DISK_H_
#define TACOMA_STORAGE_CRASH_DISK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

class CrashDisk : public Disk {
 public:
  explicit CrashDisk(Disk* base) : base_(base) {}

  // The mutating operation `ops_from_now` ops ahead fails (0 = the very next
  // one).  For Write/Append, `tear_fraction` of the payload (clamped to
  // [0, 1]) still lands before the failure; 0 means nothing reached the disk
  // (a Write leaves the old file intact).  Re-arming replaces any armed
  // fault.
  void Arm(uint64_t ops_from_now, double tear_fraction = 0.5);
  void Disarm() { armed_ = false; }

  // Clears the crashed state (and any armed fault), as a restart remounting
  // the disk would.  The bytes that landed stay exactly as they are.
  void Reset();

  bool armed() const { return armed_; }
  bool crashed() const { return crashed_; }
  // Total mutating operations observed (including the failed one).
  uint64_t mutating_ops() const { return mutating_ops_; }
  uint64_t faults_injected() const { return faults_injected_; }

  Status Write(const std::string& name, const Bytes& data) override;
  Result<Bytes> Read(const std::string& name) const override;
  Status Append(const std::string& name, const Bytes& data) override;
  Status Remove(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;

 private:
  // Counts one mutating op; true when this is the op that must fail.
  bool TickFails();
  Bytes TornPrefix(const Bytes& data) const;
  Status CrashedError(const std::string& op) const;

  Disk* base_;
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t countdown_ = 0;
  double tear_fraction_ = 0.5;
  uint64_t mutating_ops_ = 0;
  uint64_t faults_injected_ = 0;
};

}  // namespace tacoma

#endif  // TACOMA_STORAGE_CRASH_DISK_H_
