#include "storage/disk.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace tacoma {

Status MemDisk::Write(const std::string& name, const Bytes& data) {
  files_[name] = data;
  return OkStatus();
}

Result<Bytes> MemDisk::Read(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + name);
  }
  return it->second;
}

Status MemDisk::Append(const std::string& name, const Bytes& data) {
  Bytes& file = files_[name];
  file.insert(file.end(), data.begin(), data.end());
  return OkStatus();
}

Status MemDisk::Remove(const std::string& name) {
  if (files_.erase(name) == 0) {
    return NotFoundError("no such file: " + name);
  }
  return OkStatus();
}

bool MemDisk::Exists(const std::string& name) const { return files_.contains(name); }

std::vector<std::string> MemDisk::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, data] : files_) {
    names.push_back(name);
  }
  return names;
}

size_t MemDisk::TotalBytes() const {
  size_t total = 0;
  for (const auto& [name, data] : files_) {
    total += data.size();
  }
  return total;
}

FileDisk::FileDisk(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

std::string FileDisk::PathFor(const std::string& name) const {
  // Flatten to a safe filename: path separators and dots become underscores.
  std::string safe = name;
  for (char& c : safe) {
    if (c == '/' || c == '\\' || c == '.') {
      c = '_';
    }
  }
  return directory_ + "/" + safe;
}

Status FileDisk::Write(const std::string& name, const Bytes& data) {
  std::ofstream out(PathFor(name), std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError("cannot open for write: " + name);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good() ? OkStatus() : DataLossError("short write: " + name);
}

Result<Bytes> FileDisk::Read(const std::string& name) const {
  std::ifstream in(PathFor(name), std::ios::binary);
  if (!in) {
    return NotFoundError("no such file: " + name);
  }
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return data;
}

Status FileDisk::Append(const std::string& name, const Bytes& data) {
  std::ofstream out(PathFor(name), std::ios::binary | std::ios::app);
  if (!out) {
    return InternalError("cannot open for append: " + name);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good() ? OkStatus() : DataLossError("short append: " + name);
}

Status FileDisk::Remove(const std::string& name) {
  std::error_code ec;
  if (!std::filesystem::remove(PathFor(name), ec) || ec) {
    return NotFoundError("no such file: " + name);
  }
  return OkStatus();
}

bool FileDisk::Exists(const std::string& name) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(name), ec);
}

std::vector<std::string> FileDisk::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    names.push_back(entry.path().filename().string());
  }
  return names;
}

}  // namespace tacoma
