#include "storage/disk.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace tacoma {

Status MemDisk::Write(const std::string& name, const Bytes& data) {
  files_[name] = data;
  return OkStatus();
}

Result<Bytes> MemDisk::Read(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + name);
  }
  return it->second;
}

Status MemDisk::Append(const std::string& name, const Bytes& data) {
  Bytes& file = files_[name];
  file.insert(file.end(), data.begin(), data.end());
  return OkStatus();
}

Status MemDisk::Remove(const std::string& name) {
  if (files_.erase(name) == 0) {
    return NotFoundError("no such file: " + name);
  }
  return OkStatus();
}

Status MemDisk::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) {
    return NotFoundError("no such file: " + from);
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return OkStatus();
}

bool MemDisk::Exists(const std::string& name) const { return files_.contains(name); }

std::vector<std::string> MemDisk::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, data] : files_) {
    names.push_back(name);
  }
  return names;
}

size_t MemDisk::TotalBytes() const {
  size_t total = 0;
  for (const auto& [name, data] : files_) {
    total += data.size();
  }
  return total;
}

FileDisk::FileDisk(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
}

namespace {

bool IsPlainNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '_' || c == '-';
}

char HexDigit(unsigned v) { return static_cast<char>(v < 10 ? '0' + v : 'A' + (v - 10)); }

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

void AppendEscaped(std::string* out, char c) {
  unsigned byte = static_cast<unsigned char>(c);
  out->push_back('%');
  out->push_back(HexDigit(byte >> 4));
  out->push_back(HexDigit(byte & 0xf));
}

}  // namespace

std::string FileDisk::EscapeName(const std::string& name) {
  // Dots stay literal (so "a.b" and "a_b" cannot collide, unlike the old
  // flatten-to-underscore scheme), but a name that is nothing but dots would
  // alias "." or ".." — those are escaped entirely.
  bool all_dots = !name.empty();
  for (char c : name) {
    if (c != '.') {
      all_dots = false;
      break;
    }
  }
  std::string safe;
  safe.reserve(name.size());
  for (char c : name) {
    if (IsPlainNameChar(c) && !(all_dots && c == '.')) {
      safe.push_back(c);
    } else {
      AppendEscaped(&safe, c);
    }
  }
  return safe;
}

std::string FileDisk::UnescapeName(const std::string& filename) {
  std::string name;
  name.reserve(filename.size());
  for (size_t i = 0; i < filename.size(); ++i) {
    if (filename[i] == '%' && i + 2 < filename.size()) {
      int hi = HexValue(filename[i + 1]);
      int lo = HexValue(filename[i + 2]);
      if (hi >= 0 && lo >= 0) {
        name.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    // Foreign file with a malformed escape: return it verbatim.
    name.push_back(filename[i]);
  }
  return name;
}

std::string FileDisk::PathFor(const std::string& name) const {
  return directory_ + "/" + EscapeName(name);
}

Status FileDisk::Write(const std::string& name, const Bytes& data) {
  std::ofstream out(PathFor(name), std::ios::binary | std::ios::trunc);
  if (!out) {
    return InternalError("cannot open for write: " + name);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good() ? OkStatus() : DataLossError("short write: " + name);
}

Result<Bytes> FileDisk::Read(const std::string& name) const {
  std::ifstream in(PathFor(name), std::ios::binary);
  if (!in) {
    return NotFoundError("no such file: " + name);
  }
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return data;
}

Status FileDisk::Append(const std::string& name, const Bytes& data) {
  std::ofstream out(PathFor(name), std::ios::binary | std::ios::app);
  if (!out) {
    return InternalError("cannot open for append: " + name);
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good() ? OkStatus() : DataLossError("short append: " + name);
}

Status FileDisk::Remove(const std::string& name) {
  std::error_code ec;
  bool removed = std::filesystem::remove(PathFor(name), ec);
  if (ec) {
    // A real I/O failure (permissions, non-empty directory, ...) is not the
    // same as absence; callers like DiskLog::Destroy tolerate only the latter.
    return InternalError("cannot remove " + name + ": " + ec.message());
  }
  if (!removed) {
    return NotFoundError("no such file: " + name);
  }
  return OkStatus();
}

Status FileDisk::Rename(const std::string& from, const std::string& to) {
  if (!Exists(from)) {
    return NotFoundError("no such file: " + from);
  }
  std::error_code ec;
  // POSIX rename: atomic replacement of `to`, which is what makes the
  // DiskLog snapshot swap crash-safe on a real filesystem.
  std::filesystem::rename(PathFor(from), PathFor(to), ec);
  if (ec) {
    return InternalError("cannot rename " + from + " -> " + to + ": " + ec.message());
  }
  return OkStatus();
}

bool FileDisk::Exists(const std::string& name) const {
  std::error_code ec;
  return std::filesystem::exists(PathFor(name), ec);
}

std::vector<std::string> FileDisk::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory_, ec)) {
    // Undo the filename escaping so callers see the names they stored —
    // DiskLog names like "cab.system.snap" must round-trip through List().
    names.push_back(UnescapeName(entry.path().filename().string()));
  }
  return names;
}

}  // namespace tacoma
