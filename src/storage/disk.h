// Disk abstraction for file-cabinet permanence (paper §6: "file cabinets can
// be flushed to disk when permanence is required").
//
// Two implementations:
//  - MemDisk: lives outside the volatile site state in the simulator, so it
//    survives simulated site crashes — exactly the property the
//    fault-tolerance experiments need.
//  - FileDisk: a real directory on the host filesystem, for examples and for
//    demonstrating actual persistence.
#ifndef TACOMA_STORAGE_DISK_H_
#define TACOMA_STORAGE_DISK_H_

#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

class Disk {
 public:
  virtual ~Disk() = default;

  virtual Status Write(const std::string& name, const Bytes& data) = 0;
  virtual Result<Bytes> Read(const std::string& name) const = 0;
  virtual Status Append(const std::string& name, const Bytes& data) = 0;
  virtual Status Remove(const std::string& name) = 0;
  virtual bool Exists(const std::string& name) const = 0;
  virtual std::vector<std::string> List() const = 0;
};

class MemDisk : public Disk {
 public:
  Status Write(const std::string& name, const Bytes& data) override;
  Result<Bytes> Read(const std::string& name) const override;
  Status Append(const std::string& name, const Bytes& data) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;

  // Total bytes stored, for capacity accounting in tests.
  size_t TotalBytes() const;

 private:
  std::map<std::string, Bytes> files_;
};

class FileDisk : public Disk {
 public:
  // Creates `directory` if missing.  Names are sanitized to flat filenames.
  explicit FileDisk(std::string directory);

  Status Write(const std::string& name, const Bytes& data) override;
  Result<Bytes> Read(const std::string& name) const override;
  Status Append(const std::string& name, const Bytes& data) override;
  Status Remove(const std::string& name) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;

 private:
  std::string PathFor(const std::string& name) const;

  std::string directory_;
};

}  // namespace tacoma

#endif  // TACOMA_STORAGE_DISK_H_
