// Disk abstraction for file-cabinet permanence (paper §6: "file cabinets can
// be flushed to disk when permanence is required").
//
// Two implementations:
//  - MemDisk: lives outside the volatile site state in the simulator, so it
//    survives simulated site crashes — exactly the property the
//    fault-tolerance experiments need.
//  - FileDisk: a real directory on the host filesystem, for examples and for
//    demonstrating actual persistence.
#ifndef TACOMA_STORAGE_DISK_H_
#define TACOMA_STORAGE_DISK_H_

#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

class Disk {
 public:
  virtual ~Disk() = default;

  virtual Status Write(const std::string& name, const Bytes& data) = 0;
  virtual Result<Bytes> Read(const std::string& name) const = 0;
  virtual Status Append(const std::string& name, const Bytes& data) = 0;
  // NotFound when the file is absent; any other code is a real I/O failure.
  virtual Status Remove(const std::string& name) = 0;
  // Atomically replaces `to` with `from` (the destination, if present, is
  // overwritten as one step — the foundation of DiskLog's crash-safe
  // snapshot swap).  NotFound when `from` is absent.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual bool Exists(const std::string& name) const = 0;
  virtual std::vector<std::string> List() const = 0;
};

class MemDisk : public Disk {
 public:
  Status Write(const std::string& name, const Bytes& data) override;
  Result<Bytes> Read(const std::string& name) const override;
  Status Append(const std::string& name, const Bytes& data) override;
  Status Remove(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;

  // Total bytes stored, for capacity accounting in tests.
  size_t TotalBytes() const;

 private:
  std::map<std::string, Bytes> files_;
};

class FileDisk : public Disk {
 public:
  // Creates `directory` if missing.  Names are escaped to flat filenames with
  // a reversible %XX scheme (see EscapeName), so distinct logical names never
  // collide on disk and List() returns the original names.
  explicit FileDisk(std::string directory);

  Status Write(const std::string& name, const Bytes& data) override;
  Result<Bytes> Read(const std::string& name) const override;
  Status Append(const std::string& name, const Bytes& data) override;
  Status Remove(const std::string& name) override;
  Status Rename(const std::string& from, const std::string& to) override;
  bool Exists(const std::string& name) const override;
  std::vector<std::string> List() const override;

  // Reversible flat-filename escaping: [A-Za-z0-9._-] pass through (except
  // '%', and names that are entirely dots); everything else becomes %XX.
  static std::string EscapeName(const std::string& name);
  static std::string UnescapeName(const std::string& filename);

 private:
  std::string PathFor(const std::string& name) const;

  std::string directory_;
};

}  // namespace tacoma

#endif  // TACOMA_STORAGE_DISK_H_
