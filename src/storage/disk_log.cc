#include "storage/disk_log.h"

#include "serial/encoder.h"

namespace tacoma {

DiskLog::DiskLog(Disk* disk, std::string name) : disk_(disk), name_(std::move(name)) {}

Status DiskLog::Append(const Bytes& record) {
  Encoder enc;
  enc.PutBytes(record);
  enc.PutU64(Fnv1a64(record));
  return disk_->Append(LogFile(), enc.buffer());
}

Status DiskLog::Compact(const Bytes& state) {
  Encoder enc;
  enc.PutBytes(state);
  enc.PutU64(Fnv1a64(state));
  TACOMA_RETURN_IF_ERROR(disk_->Write(SnapFile(), enc.buffer()));
  return disk_->Write(LogFile(), Bytes());
}

Result<LogContents> DiskLog::Load() const {
  LogContents out;

  if (disk_->Exists(SnapFile())) {
    auto snap = disk_->Read(SnapFile());
    if (!snap.ok()) {
      return snap.status();
    }
    Decoder dec(*snap);
    Bytes state;
    uint64_t sum = 0;
    if (!dec.GetBytes(&state) || !dec.GetU64(&sum) || Fnv1a64(state) != sum) {
      return DataLossError("corrupt snapshot: " + name_);
    }
    out.snapshot = std::move(state);
  }

  if (disk_->Exists(LogFile())) {
    auto log = disk_->Read(LogFile());
    if (!log.ok()) {
      return log.status();
    }
    Decoder dec(*log);
    while (dec.remaining() > 0) {
      Bytes record;
      uint64_t sum = 0;
      if (!dec.GetBytes(&record) || !dec.GetU64(&sum) || Fnv1a64(record) != sum) {
        // Torn tail (crash mid-append): keep what decoded cleanly.
        out.truncated_tail = true;
        break;
      }
      out.records.push_back(std::move(record));
    }
  }

  return out;
}

Status DiskLog::Destroy() {
  // Remove both; "not found" is fine for either.
  Status a = disk_->Remove(LogFile());
  Status b = disk_->Remove(SnapFile());
  (void)a;
  (void)b;
  return OkStatus();
}

}  // namespace tacoma
