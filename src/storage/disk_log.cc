#include "storage/disk_log.h"

#include "serial/encoder.h"

namespace tacoma {

namespace {

// Checksum covering both the payload and the epoch it is stamped with, so a
// corrupt epoch can never smuggle a record into the wrong compaction era.
uint64_t FrameChecksum(uint64_t epoch, const Bytes& payload) {
  return Fnv1a64(payload) ^ (0x9e3779b97f4a7c15ULL * (epoch + 1));
}

}  // namespace

DiskLog::DiskLog(Disk* disk, std::string name) : disk_(disk), name_(std::move(name)) {}

void DiskLog::EnsureEpoch() {
  if (epoch_known_) {
    return;
  }
  if (!disk_->Exists(SnapFile())) {
    epoch_known_ = true;  // Fresh log: epoch 0.
    return;
  }
  auto snap = disk_->Read(SnapFile());
  if (!snap.ok()) {
    // Disk unreadable right now; retry on the next call rather than pinning
    // epoch 0 over a snapshot that may carry a later one.
    return;
  }
  Decoder dec(*snap);
  uint64_t epoch = 0;
  if (dec.GetU64(&epoch)) {
    epoch_ = epoch;
  }
  epoch_known_ = true;
}

Status DiskLog::Append(const Bytes& record) {
  EnsureEpoch();
  Encoder enc;
  enc.PutU64(epoch_);
  enc.PutBytes(record);
  enc.PutU64(FrameChecksum(epoch_, record));
  return disk_->Append(LogFile(), enc.buffer());
}

Status DiskLog::Compact(const Bytes& state) {
  EnsureEpoch();
  const uint64_t epoch = epoch_ + 1;
  Encoder enc;
  enc.PutU64(epoch);
  enc.PutBytes(state);
  enc.PutU64(FrameChecksum(epoch, state));
  TACOMA_RETURN_IF_ERROR(disk_->Write(TmpFile(), enc.buffer()));
  // The swap is the commit point: a crash before it leaves the old snapshot
  // and log intact; a crash after it leaves the new snapshot plus stale
  // records that Load() discards by epoch.
  TACOMA_RETURN_IF_ERROR(disk_->Rename(TmpFile(), SnapFile()));
  epoch_ = epoch;
  // Clearing the log only reclaims space; stale records are harmless now.
  (void)disk_->Write(LogFile(), Bytes());
  return OkStatus();
}

Result<LogContents> DiskLog::Load() {
  LogContents out;

  if (disk_->Exists(SnapFile())) {
    auto snap = disk_->Read(SnapFile());
    if (!snap.ok()) {
      return snap.status();
    }
    Decoder dec(*snap);
    uint64_t epoch = 0;
    Bytes state;
    uint64_t sum = 0;
    if (!dec.GetU64(&epoch) || !dec.GetBytes(&state) || !dec.GetU64(&sum) ||
        FrameChecksum(epoch, state) != sum) {
      return DataLossError("corrupt snapshot: " + name_);
    }
    out.snapshot = std::move(state);
    out.snapshot_epoch = epoch;
  }

  if (disk_->Exists(LogFile())) {
    auto log = disk_->Read(LogFile());
    if (!log.ok()) {
      return log.status();
    }
    Decoder dec(*log);
    while (dec.remaining() > 0) {
      uint64_t epoch = 0;
      Bytes record;
      uint64_t sum = 0;
      if (!dec.GetU64(&epoch) || !dec.GetBytes(&record) || !dec.GetU64(&sum) ||
          FrameChecksum(epoch, record) != sum) {
        // Torn tail (crash mid-append): keep what decoded cleanly.
        out.truncated_tail = true;
        break;
      }
      if (epoch < out.snapshot_epoch) {
        // The snapshot already folded this mutation in: the crash landed
        // between Compact's rename and its log clear.
        ++out.stale_records_dropped;
        continue;
      }
      out.records.push_back(std::move(record));
    }
  }

  epoch_ = out.snapshot_epoch;
  epoch_known_ = true;
  return out;
}

Status DiskLog::Destroy() {
  Status out = OkStatus();
  for (const std::string& file : {LogFile(), SnapFile(), TmpFile()}) {
    Status s = disk_->Remove(file);
    // Absence is fine; a real I/O failure (permissions, ...) is not.
    if (!s.ok() && s.code() != StatusCode::kNotFound && out.ok()) {
      out = s;
    }
  }
  return out;
}

}  // namespace tacoma
