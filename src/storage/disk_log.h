// Append-only record log with snapshots, on top of a Disk.
//
// File cabinets persist through this: every mutation appends a record, and
// Compact() collapses history into a snapshot.  Records are checksummed
// (FNV-64) so a torn tail — e.g. a crash mid-append — is detected and
// truncated on recovery instead of corrupting the cabinet.
#ifndef TACOMA_STORAGE_DISK_LOG_H_
#define TACOMA_STORAGE_DISK_LOG_H_

#include <string>
#include <vector>

#include "storage/disk.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

struct LogContents {
  Bytes snapshot;              // Empty if no snapshot was taken.
  std::vector<Bytes> records;  // Records appended after the snapshot.
  bool truncated_tail = false; // A torn/corrupt tail record was discarded.
};

class DiskLog {
 public:
  // The log occupies two Disk files: "<name>.log" and "<name>.snap".
  DiskLog(Disk* disk, std::string name);

  // Appends one record (framed + checksummed) to the log file.
  Status Append(const Bytes& record);

  // Replaces the snapshot with `state` and clears the record log.
  Status Compact(const Bytes& state);

  // Reads everything back; tolerates a torn tail.
  Result<LogContents> Load() const;

  // Deletes both files.
  Status Destroy();

  const std::string& name() const { return name_; }

 private:
  std::string LogFile() const { return name_ + ".log"; }
  std::string SnapFile() const { return name_ + ".snap"; }

  Disk* disk_;
  std::string name_;
};

}  // namespace tacoma

#endif  // TACOMA_STORAGE_DISK_LOG_H_
