// Append-only record log with crash-atomic snapshots, on top of a Disk.
//
// File cabinets persist through this: every mutation appends a record, and
// Compact() collapses history into a snapshot.  Two mechanisms make the pair
// crash-safe:
//
//   - Checksums (FNV-64 over epoch + payload): a torn tail — e.g. a crash
//     mid-append — is detected and truncated on recovery instead of
//     corrupting the cabinet.
//   - Epochs: every snapshot and record carries the compaction epoch it
//     belongs to.  Compact() writes the new snapshot (epoch e+1) to
//     "<name>.snap.tmp", atomically renames it over "<name>.snap", and only
//     then clears the record log.  A crash between the rename and the clear
//     leaves the new snapshot *plus* the old records on disk — but those
//     records are stamped with epoch e, so Load() discards them instead of
//     double-applying mutations already folded into the snapshot.  The clear
//     is thereby an optimisation, not a correctness step.
//
// The crash-point sweep in tests/crash_recovery_test.cc injects a failure at
// every operation index of an append/compact workload and checks that
// recovery always yields a clean prefix of history.
#ifndef TACOMA_STORAGE_DISK_LOG_H_
#define TACOMA_STORAGE_DISK_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk.h"
#include "util/bytes.h"
#include "util/status.h"

namespace tacoma {

// Storage-layer accounting, surfaced as the kernel's storage.* metrics.  The
// owner (the kernel) outlives the volatile cabinets that increment it, so
// the counters survive site crashes like the disks themselves do.
struct StorageStats {
  uint64_t recoveries = 0;             // Cabinet recoveries completed.
  uint64_t torn_tails = 0;             // Torn log tails truncated on recovery.
  uint64_t records_replayed = 0;       // WAL records replayed into cabinets.
  uint64_t stale_records_dropped = 0;  // Pre-snapshot-epoch records discarded.
  uint64_t wal_append_errors = 0;      // Write-ahead appends lost to disk errors.
  uint64_t autocompactions = 0;        // Threshold-triggered cabinet compactions.
};

struct LogContents {
  Bytes snapshot;               // Empty if no snapshot was taken.
  uint64_t snapshot_epoch = 0;  // Compaction epoch of the snapshot (0: none).
  std::vector<Bytes> records;   // Records appended after the snapshot.
  bool truncated_tail = false;  // A torn/corrupt tail record was discarded.
  // Records from an epoch older than the snapshot's, discarded because the
  // snapshot already contains them (a crash landed between Compact's rename
  // and its log clear).
  uint64_t stale_records_dropped = 0;
};

class DiskLog {
 public:
  // The log occupies two Disk files, "<name>.log" and "<name>.snap", plus
  // the transient "<name>.snap.tmp" while a compaction is in flight.
  DiskLog(Disk* disk, std::string name);

  // Appends one record (epoch-stamped, framed, checksummed) to the log file.
  Status Append(const Bytes& record);

  // Atomically replaces the snapshot with `state` (write tmp, rename over)
  // and then clears the record log.  Returns OK once the snapshot swap is
  // durable; a failed log clear is tolerated because Load() discards the
  // stale records by epoch.
  Status Compact(const Bytes& state);

  // Reads everything back; tolerates a torn tail and discards stale-epoch
  // records.  Also primes the epoch for subsequent Append/Compact calls.
  Result<LogContents> Load();

  // Deletes all files.  Absence is fine; real I/O failures are returned.
  Status Destroy();

  const std::string& name() const { return name_; }
  // Current compaction epoch (stamped on appended records).
  uint64_t epoch() const { return epoch_; }

 private:
  std::string LogFile() const { return name_ + ".log"; }
  std::string SnapFile() const { return name_ + ".snap"; }
  std::string TmpFile() const { return name_ + ".snap.tmp"; }

  // Lazily primes epoch_ from the on-disk snapshot, so a fresh DiskLog over
  // an existing file set never stamps appends with an older epoch than the
  // snapshot (which Load() would then wrongly discard).
  void EnsureEpoch();

  Disk* disk_;
  std::string name_;
  uint64_t epoch_ = 0;
  bool epoch_known_ = false;
};

}  // namespace tacoma

#endif  // TACOMA_STORAGE_DISK_LOG_H_
