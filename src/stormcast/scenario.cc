#include "stormcast/scenario.h"

#include <cstdio>

#include "tacl/list.h"

namespace tacoma::stormcast {
namespace {

std::string FormatDouble1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

KernelOptions ScenarioKernelOptions(const ScenarioOptions& options) {
  KernelOptions ko;
  ko.seed = options.seed;
  ko.step_limit = 50'000'000;
  ko.telemetry.accounting = options.accounting;
  return ko;
}

}  // namespace

Scenario::Scenario(ScenarioOptions options)
    : options_(options),
      field_(options.seed, options.sensor_count, options.samples_per_site,
             options.storm_events),
      kernel_(std::make_unique<Kernel>(ScenarioKernelOptions(options))) {
  // Topology: home plus one site per sensor.
  home_ = kernel_->AddSite("home");
  for (size_t i = 0; i < options_.sensor_count; ++i) {
    sensors_.push_back(kernel_->AddSite("sensor" + std::to_string(i)));
  }
  LinkParams params;
  if (options_.topology == Topology::kStar) {
    for (SiteId s : sensors_) {
      kernel_->net().AddLink(home_, s, params);
    }
  } else {
    SiteId prev = home_;
    for (SiteId s : sensors_) {
      kernel_->net().AddLink(prev, s, params);
      prev = s;
    }
  }

  LoadSensorCabinets();

  Scenario* self = this;
  kernel_->AddPlaceInitializer([self](Place& place) {
    // Native scan primitive for agents: filter the local wx cabinet.
    place.AddBinder([](tacl::Interp* interp, Activation* activation) {
      interp->Register(
          "wx_scan", [activation](tacl::Interp&, const std::vector<std::string>& argv) {
            if (argv.size() != 2) {
              return tacl::Error("wrong # args: should be \"wx_scan windThreshold\"");
            }
            auto threshold = tacl::ParseDouble(argv[1]);
            if (!threshold.has_value()) {
              return tacl::Error("bad threshold \"" + argv[1] + "\"");
            }
            double min_pressure = 99999.0;
            double max_wind = -1.0;
            Place& here = *activation->place;
            for (const std::string& line : here.Cabinet("wx").ListStrings("SAMPLES")) {
              auto sample = DecodeSample(line);
              if (!sample.ok()) {
                continue;
              }
              min_pressure = std::min(min_pressure, sample->pressure_hpa);
              max_wind = std::max(max_wind, sample->wind_ms);
              if (sample->wind_ms >= *threshold) {
                activation->briefcase->folder("MATCHES")
                    .PushBackString(here.name() + ";" + line);
              }
            }
            return tacl::Ok(FormatDouble1(min_pressure) + ";" +
                            FormatDouble1(max_wind));
          });
    });

    // Sensor sites answer raw-data pulls (the client/server baseline).
    if (place.name().rfind("sensor", 0) == 0) {
      Scenario* scenario = self;
      place.RegisterAgent("sensor", [scenario](Place& at, Briefcase& bc) -> Status {
        (void)bc;
        Briefcase reply;
        reply.SetString("SENSOR", at.name());
        Folder& samples = reply.folder("SAMPLES");
        for (const std::string& line : at.Cabinet("wx").ListStrings("SAMPLES")) {
          samples.PushBackString(line);
        }
        return at.kernel()->TransferAgent(at.site(), scenario->home_, "collector",
                                          reply);
      });
    }

    // The home site aggregates client/server reports.
    if (place.site() == self->home_) {
      Scenario* scenario = self;
      place.RegisterAgent("collector", [scenario](Place&, Briefcase& bc) -> Status {
        const Folder* samples = bc.Find("SAMPLES");
        if (samples == nullptr) {
          return InvalidArgumentError("collector: report without SAMPLES");
        }
        double min_pressure = 99999.0;
        double max_wind = -1.0;
        for (const std::string& line : samples->AsStrings()) {
          auto sample = DecodeSample(line);
          if (!sample.ok()) {
            continue;
          }
          min_pressure = std::min(min_pressure, sample->pressure_hpa);
          max_wind = std::max(max_wind, sample->wind_ms);
          if (sample->wind_ms >= scenario->cs_thresholds_.filter_wind_ms) {
            ++scenario->gather_.matches;
          }
        }
        if (min_pressure < scenario->cs_thresholds_.alert_pressure_hpa &&
            max_wind > scenario->cs_thresholds_.alert_wind_ms) {
          ++scenario->gather_.alerting;
        }
        if (++scenario->gather_.reports ==
            static_cast<int>(scenario->sensors_.size())) {
          scenario->gather_.done = true;
        }
        return OkStatus();
      });
    }
  });
}

void Scenario::LoadSensorCabinets() {
  for (size_t i = 0; i < sensors_.size(); ++i) {
    Place* place = kernel_->place(sensors_[i]);
    FileCabinet& cab = place->Cabinet("wx");
    for (const WeatherSample& s : field_.SamplesFor(i)) {
      cab.AppendString("SAMPLES", EncodeSample(s));
    }
  }
}

std::string Scenario::BuildAgentCode(const Thresholds& thresholds) const {
  std::string scan;
  if (options_.native_scan) {
    scan =
        "    set mm [wx_scan " + FormatDouble1(thresholds.filter_wind_ms) + "]\n"
        "    set parts [split $mm {;}]\n"
        "    bc_put SUMMARY \"[site];[lindex $parts 0];[lindex $parts 1]\"\n";
  } else {
    scan =
        "    set minp 99999.0\n"
        "    set maxw -1.0\n"
        "    foreach s [cab_list wx SAMPLES] {\n"
        "      set parts [split $s {;}]\n"
        "      set p [lindex $parts 2]\n"
        "      set w [lindex $parts 3]\n"
        "      if {$p < $minp} { set minp $p }\n"
        "      if {$w > $maxw} { set maxw $w }\n"
        "      if {$w >= " + FormatDouble1(thresholds.filter_wind_ms) + "} {\n"
        "        bc_put MATCHES \"[site];$s\"\n"
        "      }\n"
        "    }\n"
        "    bc_put SUMMARY \"[site];$minp;$maxw\"\n";
  }

  return
      "set home [bc_get HOME]\n"
      "if {[site] eq $home && [bc_has SUMMARY]} {\n"
      "  set alerts 0\n"
      "  foreach s [bc_list SUMMARY] {\n"
      "    set parts [split $s {;}]\n"
      "    if {[lindex $parts 1] < " + FormatDouble1(thresholds.alert_pressure_hpa) +
      " && [lindex $parts 2] > " + FormatDouble1(thresholds.alert_wind_ms) + "} {\n"
      "      incr alerts\n"
      "    }\n"
      "  }\n"
      "  set storm [expr {$alerts >= " + std::to_string(thresholds.quorum) +
      " ? 1 : 0}]\n"
      "  cab_set stormcast RESULT \"storm=$storm;alerts=$alerts;matches=[bc_len "
      "MATCHES]\"\n"
      "} else {\n"
      "  if {[site] ne $home} {\n" + scan +
      "  }\n"
      "  if {[bc_len ITINERARY] > 0} {\n"
      "    jump [bc_pop ITINERARY]\n"
      "  } else {\n"
      "    jump $home\n"
      "  }\n"
      "}\n";
}

CollectionResult Scenario::RunAgentCollection(const Thresholds& thresholds) {
  Network& net = kernel_->net();
  net.ResetStats();
  SimTime t0 = kernel_->sim().Now();
  kernel_->place(home_)->Cabinet("stormcast").EraseFolder("RESULT");

  Briefcase bc;
  bc.SetString("HOME", net.site_name(home_));
  Folder& itinerary = bc.folder("ITINERARY");
  for (SiteId s : sensors_) {
    itinerary.PushBackString(net.site_name(s));
  }
  CollectionResult result;
  Status launched = kernel_->LaunchAgent(home_, BuildAgentCode(thresholds), bc);
  if (!launched.ok()) {
    return result;
  }
  kernel_->sim().Run();

  result.bytes_on_wire = net.stats().bytes_on_wire;
  result.messages = net.stats().messages_sent;
  result.duration = kernel_->sim().Now() - t0;

  auto verdict = kernel_->place(home_)->Cabinet("stormcast").GetSingleString("RESULT");
  if (verdict.has_value()) {
    int storm = 0;
    int alerts = 0;
    int matches = 0;
    if (std::sscanf(verdict->c_str(), "storm=%d;alerts=%d;matches=%d", &storm, &alerts,
                    &matches) == 3) {
      result.prediction.storm = storm != 0;
      result.prediction.alerting_stations = alerts;
      result.prediction.matches_carried = matches;
      result.completed = true;
    }
  }
  return result;
}

CollectionResult Scenario::RunClientServerCollection(const Thresholds& thresholds) {
  Network& net = kernel_->net();
  net.ResetStats();
  SimTime t0 = kernel_->sim().Now();
  gather_ = Gather{};
  cs_thresholds_ = thresholds;

  for (SiteId s : sensors_) {
    Briefcase request;
    request.SetString("OP", "pull");
    (void)kernel_->TransferAgent(home_, s, "sensor", request);
  }
  kernel_->sim().Run();

  CollectionResult result;
  result.bytes_on_wire = net.stats().bytes_on_wire;
  result.messages = net.stats().messages_sent;
  result.duration = kernel_->sim().Now() - t0;
  result.completed = gather_.done;
  result.prediction.alerting_stations = gather_.alerting;
  result.prediction.matches_carried = gather_.matches;
  result.prediction.storm = gather_.alerting >= thresholds.quorum;
  return result;
}

Prediction Scenario::ReferencePrediction(const Thresholds& thresholds) const {
  Prediction prediction;
  for (size_t i = 0; i < field_.site_count(); ++i) {
    double min_pressure = 99999.0;
    double max_wind = -1.0;
    for (const WeatherSample& raw : field_.SamplesFor(i)) {
      // Score the encoded form: that is what sits in the sensor cabinets and
      // what both collection pipelines actually see (0.1-unit precision).
      WeatherSample s = *DecodeSample(EncodeSample(raw));
      min_pressure = std::min(min_pressure, s.pressure_hpa);
      max_wind = std::max(max_wind, s.wind_ms);
      if (s.wind_ms >= thresholds.filter_wind_ms) {
        ++prediction.matches_carried;
      }
    }
    if (min_pressure < thresholds.alert_pressure_hpa &&
        max_wind > thresholds.alert_wind_ms) {
      ++prediction.alerting_stations;
    }
  }
  prediction.storm = prediction.alerting_stations >= thresholds.quorum;
  return prediction;
}

}  // namespace tacoma::stormcast
