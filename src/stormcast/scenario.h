// StormCast scenario: the paper's flagship application, both ways.
//
// The same prediction is computed twice over identical sensor data:
//   - agent-based: a TACL agent walks the sensor sites, filters locally, and
//     carries only summaries + matching readings home (§1's bandwidth
//     argument);
//   - client/server: every sensor ships its raw series to the home site,
//     which computes centrally.
// Benchmark E1 compares the bytes each approach puts on the wire; both must
// reach the same storm verdict (asserted by tests) since they see the same
// data.
#ifndef TACOMA_STORMCAST_SCENARIO_H_
#define TACOMA_STORMCAST_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "stormcast/weather.h"

namespace tacoma::stormcast {

enum class Topology { kStar, kLine };

struct ScenarioOptions {
  size_t sensor_count = 8;
  size_t samples_per_site = 96;   // Four days of hourly readings.
  size_t storm_events = 2;
  uint64_t seed = 1995;
  Topology topology = Topology::kStar;
  // Agents scan with native code (fast, used by benches) or pure TACL
  // (exercises the language; keep sample counts modest).
  bool native_scan = true;
  // Per-agent resource accounting (kernel telemetry).  bench_e15 flips this
  // to measure the metering overhead on the E1 workload.
  bool accounting = true;
};

struct Prediction {
  bool storm = false;
  int alerting_stations = 0;
  int matches_carried = 0;  // Filtered readings brought home.
};

struct CollectionResult {
  Prediction prediction;
  uint64_t bytes_on_wire = 0;
  uint64_t messages = 0;
  SimTime duration = 0;
  bool completed = false;
};

struct Thresholds {
  double alert_pressure_hpa = 980.0;  // Station alerts when it saw below this...
  double alert_wind_ms = 20.0;        // ...and above this.
  int quorum = 2;                     // Stations alerting => storm.
  double filter_wind_ms = 24.0;       // Readings above this travel home.
};

class Scenario {
 public:
  explicit Scenario(ScenarioOptions options);

  // One agent walks all sensors and aggregates at home.
  CollectionResult RunAgentCollection(const Thresholds& thresholds);
  // Home pulls raw data from every sensor and aggregates centrally.
  CollectionResult RunClientServerCollection(const Thresholds& thresholds);

  Kernel& kernel() { return *kernel_; }
  SiteId home() const { return home_; }
  const std::vector<SiteId>& sensors() const { return sensors_; }
  const WeatherField& field() const { return field_; }

  // Reference prediction computed directly over the generated data.
  Prediction ReferencePrediction(const Thresholds& thresholds) const;

 private:
  void LoadSensorCabinets();
  std::string BuildAgentCode(const Thresholds& thresholds) const;

  ScenarioOptions options_;
  WeatherField field_;
  std::unique_ptr<Kernel> kernel_;
  SiteId home_ = 0;
  std::vector<SiteId> sensors_;

  // Client/server collection state (reset per run).
  struct Gather {
    int reports = 0;
    int alerting = 0;
    int matches = 0;
    bool done = false;
  };
  Gather gather_;
  Thresholds cs_thresholds_;
};

}  // namespace tacoma::stormcast

#endif  // TACOMA_STORMCAST_SCENARIO_H_
