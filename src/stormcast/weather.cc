#include "stormcast/weather.h"

#include <cmath>
#include <cstdio>

namespace tacoma::stormcast {

std::string EncodeSample(const WeatherSample& s) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%d;%.1f;%.1f;%.1f", s.t, s.temp_c, s.pressure_hpa,
                s.wind_ms);
  return buf;
}

Result<WeatherSample> DecodeSample(const std::string& text) {
  WeatherSample s;
  if (std::sscanf(text.c_str(), "%d;%lf;%lf;%lf", &s.t, &s.temp_c, &s.pressure_hpa,
                  &s.wind_ms) != 4) {
    return InvalidArgumentError("malformed weather sample: " + text);
  }
  return s;
}

WeatherField::WeatherField(uint64_t seed, size_t site_count, size_t samples_per_site,
                           size_t storm_events)
    : samples_(samples_per_site) {
  Rng rng(seed);

  // Plan storm events first so every site agrees on the truth.
  for (size_t e = 0; e < storm_events; ++e) {
    StormEvent event;
    event.length = 6 + rng.Uniform(10);
    if (samples_per_site > event.length + 2) {
      event.start = 1 + rng.Uniform(samples_per_site - event.length - 1);
    }
    // A storm front hits most of the region.
    for (size_t s = 0; s < site_count; ++s) {
      if (rng.Bernoulli(0.75)) {
        event.affected_sites.push_back(s);
      }
    }
    if (event.affected_sites.empty() && site_count > 0) {
      event.affected_sites.push_back(rng.Uniform(site_count));
    }
    events_.push_back(std::move(event));
  }

  series_.resize(site_count);
  for (size_t site = 0; site < site_count; ++site) {
    Rng site_rng(rng.Next());
    double base_temp = site_rng.Gaussian(-8.0, 4.0);  // Arctic.
    double base_wind = 4.0 + site_rng.UniformDouble() * 4.0;
    auto& samples = series_[site];
    samples.reserve(samples_per_site);
    for (size_t t = 0; t < samples_per_site; ++t) {
      WeatherSample s;
      s.t = static_cast<int>(t);
      double diurnal = std::sin(2.0 * M_PI * static_cast<double>(t % 24) / 24.0);
      s.temp_c = base_temp + 3.0 * diurnal + site_rng.Gaussian(0, 0.8);
      s.pressure_hpa = 1013.0 + 8.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                                               72.0) +
                       site_rng.Gaussian(0, 1.5);
      s.wind_ms = std::max(0.0, base_wind + site_rng.Gaussian(0, 1.5));

      // Apply active storm events: deep trough + wind spike, ramping in/out.
      for (const StormEvent& event : events_) {
        if (t < event.start || t >= event.start + event.length) {
          continue;
        }
        bool affected = false;
        for (size_t a : event.affected_sites) {
          if (a == site) {
            affected = true;
            break;
          }
        }
        if (!affected) {
          continue;
        }
        double phase = static_cast<double>(t - event.start) /
                       static_cast<double>(event.length);
        double envelope = std::sin(M_PI * phase);  // Ramp in, peak, ramp out.
        s.pressure_hpa -= 45.0 * envelope;
        s.wind_ms += 20.0 * envelope;
      }
      samples.push_back(s);
    }
  }
}

bool WeatherField::StormActiveAt(size_t t) const {
  for (const StormEvent& event : events_) {
    if (t >= event.start && t < event.start + event.length) {
      return true;
    }
  }
  return false;
}

}  // namespace tacoma::stormcast
