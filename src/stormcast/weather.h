// Synthetic Arctic weather data for the StormCast reproduction (§6).
//
// "we are reimplementing StormCast, which uses a set of expert systems to
// predict severe storms in the Arctic based on weather data obtained from a
// distributed network of sensors."
//
// The real sensor network is substituted by a seeded generator: per-site time
// series of temperature, pressure, and wind with diurnal structure plus
// injected storm events (pressure troughs with wind spikes).  The injected
// events are the ground truth predictions are scored against.
#ifndef TACOMA_STORMCAST_WEATHER_H_
#define TACOMA_STORMCAST_WEATHER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace tacoma::stormcast {

struct WeatherSample {
  int t = 0;                    // Sample index (one per simulated hour).
  double temp_c = 0;
  double pressure_hpa = 1013;
  double wind_ms = 0;
};

// Compact text form agents carry around: "t;temp;pressure;wind".
std::string EncodeSample(const WeatherSample& s);
Result<WeatherSample> DecodeSample(const std::string& text);

struct StormEvent {
  size_t start = 0;   // First affected sample index.
  size_t length = 0;
  std::vector<size_t> affected_sites;
};

class WeatherField {
 public:
  WeatherField(uint64_t seed, size_t site_count, size_t samples_per_site,
               size_t storm_events);

  size_t site_count() const { return series_.size(); }
  size_t samples_per_site() const { return samples_; }
  const std::vector<WeatherSample>& SamplesFor(size_t site) const {
    return series_[site];
  }
  const std::vector<StormEvent>& events() const { return events_; }

  // True when any storm event covers sample index `t`.
  bool StormActiveAt(size_t t) const;

 private:
  size_t samples_;
  std::vector<std::vector<WeatherSample>> series_;
  std::vector<StormEvent> events_;
};

}  // namespace tacoma::stormcast

#endif  // TACOMA_STORMCAST_WEATHER_H_
