#include "tacl/analyze.h"

#include <algorithm>
#include <cctype>

#include "tacl/list.h"

namespace tacoma::tacl {

std::string_view SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

size_t AnalysisReport::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == Severity::kError ? 1 : 0;
  }
  return n;
}

size_t AnalysisReport::warning_count() const {
  return diagnostics.size() - error_count();
}

std::string AnalysisReport::FirstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) {
      return "line " + std::to_string(d.line) + ": " + d.message;
    }
  }
  return "";
}

std::string AnalysisReport::ToString(std::string_view name) const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!name.empty()) {
      out += name;
      out += ':';
    }
    out += std::to_string(d.line);
    out += ": ";
    out += SeverityName(d.severity);
    out += ": ";
    out += d.message;
    out += " [";
    out += d.code;
    out += "]\n";
  }
  return out;
}

const SignatureTable& BuiltinCommandSignatures() {
  static const SignatureTable* table = new SignatureTable{
      {"set", {1, 2}},      {"unset", {1, -1}},   {"incr", {1, 2}},
      {"global", {0, -1}},  {"upvar", {2, -1}},   {"append", {1, -1}},
      {"if", {2, -1}},      {"while", {2, 2}},    {"for", {4, 4}},
      {"foreach", {3, 3}},  {"break", {0, 0}},    {"continue", {0, 0}},
      {"return", {0, 1}},   {"error", {1, 1}},    {"catch", {1, 2}},
      {"eval", {1, -1}},    {"expr", {1, -1}},    {"proc", {3, 3}},
      {"puts", {1, 2}},     {"list", {0, -1}},    {"lindex", {2, 2}},
      {"llength", {1, 1}},  {"lappend", {1, -1}}, {"lrange", {3, 3}},
      {"lreverse", {1, 1}}, {"lsearch", {2, 3}},  {"lsort", {1, -1}},
      {"linsert", {2, -1}}, {"concat", {0, -1}},  {"join", {1, 2}},
      {"split", {1, 2}},    {"string", {2, -1}},  {"format", {1, -1}},
      {"switch", {2, -1}},  {"lassign", {2, -1}}, {"info", {1, 2}},
  };
  return *table;
}

namespace {

// Re-parsing nested bodies costs O(depth * length); the cap keeps adversarial
// deeply-nested scripts linear and protects the stack on the admission path.
constexpr size_t kMaxAnalysisDepth = 100;

bool IsLiteral(const Word& w) {
  return w.parts.size() == 1 && w.parts[0].kind == WordPart::Kind::kLiteral;
}

const std::string& LiteralText(const Word& w) { return w.parts[0].text; }

bool IsVarNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Analyzer {
 public:
  explicit Analyzer(const AnalyzerOptions& options)
      : options_(options),
        signatures_(options.signatures.empty() ? BuiltinCommandSignatures()
                                               : options.signatures) {}

  AnalysisReport Run(std::string_view script) {
    CollectDefinitions(script, 0);
    Scope top;
    AnalyzeBlock(script, 1, 0, &top);
    FinishScope(top);
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
    return std::move(report_);
  }

 private:
  // Variables are tracked per scope: the top level is one scope, each proc
  // body (and each detached continuation, which runs in a fresh interpreter)
  // is another.  `dynamic` means a computed variable name or dynamic eval was
  // seen, after which unset-variable reasoning would be guesswork.
  struct Scope {
    std::set<std::string> defined;
    std::map<std::string, size_t> first_read;  // name -> line
    bool dynamic = false;
  };

  void Diag(Severity severity, size_t line, std::string_view code,
            std::string message) {
    report_.diagnostics.push_back(
        {severity, line == 0 ? 1 : line, std::string(code), std::move(message)});
  }

  // --- Pass 1: definition harvest ---------------------------------------------
  //
  // Walks every braced word and bracketed script recursively, regardless of
  // position, so procs (and `global` declarations) defined anywhere — loop
  // bodies, nested ifs, data blocks that might be eval'd — are known before
  // diagnostics are produced.  Over-collection only suppresses diagnostics,
  // which is the conservative direction for an admission check.
  void CollectDefinitions(std::string_view script, size_t depth) {
    if (depth > kMaxAnalysisDepth) {
      return;
    }
    auto parsed = ParseScript(script);
    if (!parsed.ok()) {
      return;  // Reported by the diagnostic pass.
    }
    for (const ParsedCommand& cmd : *parsed) {
      if (!cmd.words.empty() && IsLiteral(cmd.words[0])) {
        const std::string& name = LiteralText(cmd.words[0]);
        if (name == "proc" && cmd.words.size() == 4) {
          if (IsLiteral(cmd.words[1])) {
            procs_[LiteralText(cmd.words[1])] = ProcSignature(cmd.words[2]);
          } else {
            dynamic_procs_ = true;
          }
        } else if (name == "global") {
          for (size_t i = 1; i < cmd.words.size(); ++i) {
            if (IsLiteral(cmd.words[i])) {
              global_defined_.insert(LiteralText(cmd.words[i]));
            }
          }
        } else if (name == "upvar") {
          // A called proc can rewrite any caller variable through the alias;
          // variable liveness is no longer statically knowable.
          has_upvar_ = true;
        }
      }
      for (const Word& w : cmd.words) {
        for (const WordPart& part : w.parts) {
          if (part.kind == WordPart::Kind::kScript) {
            CollectDefinitions(part.text, depth + 1);
          }
        }
        if (w.braced) {
          CollectDefinitions(LiteralText(w), depth + 1);
        }
      }
    }
  }

  CommandSignature ProcSignature(const Word& params_word) {
    if (!IsLiteral(params_word)) {
      return {0, -1};
    }
    auto params = ParseList(LiteralText(params_word));
    if (!params.ok()) {
      return {0, -1};
    }
    CommandSignature sig{0, 0};
    for (size_t i = 0; i < params->size(); ++i) {
      if ((*params)[i] == "args" && i + 1 == params->size()) {
        sig.max_args = -1;
        return sig;
      }
      auto parts = ParseList((*params)[i]);
      bool has_default = parts.ok() && parts->size() == 2;
      if (!has_default) {
        ++sig.min_args;
      }
      ++sig.max_args;
    }
    return sig;
  }

  // --- Pass 2: diagnostics -----------------------------------------------------

  void AnalyzeBlock(std::string_view script, size_t base_line, size_t depth,
                    Scope* scope) {
    if (depth > kMaxAnalysisDepth) {
      if (!depth_warned_) {
        depth_warned_ = true;
        Diag(Severity::kWarning, base_line, "analysis-limit",
             "nesting exceeds analysis depth; deeper code not checked");
      }
      return;
    }
    auto parsed = ParseScript(script);
    if (!parsed.ok()) {
      ReportParseError(parsed.status().message(), base_line);
      return;
    }
    report_.commands_analyzed += parsed->size();
    bool terminated = false;
    std::string terminator;
    for (const ParsedCommand& cmd : *parsed) {
      if (cmd.words.empty()) {
        continue;
      }
      if (terminated) {
        Diag(Severity::kWarning, AbsLine(base_line, cmd.line), kDiagUnreachable,
             "unreachable code after \"" + terminator + "\"");
        terminated = false;  // One warning per block.
      }
      if (AnalyzeCommand(cmd, base_line, depth, scope) && !terminated) {
        terminated = true;
        terminator = LiteralText(cmd.words[0]);
      }
    }
  }

  // Parser errors arrive as "line N: message" with N relative to the parsed
  // substring; rebase onto the enclosing script.
  void ReportParseError(std::string_view message, size_t base_line) {
    size_t line = base_line;
    if (message.rfind("line ", 0) == 0) {
      size_t i = 5;
      size_t rel = 0;
      while (i < message.size() && std::isdigit(static_cast<unsigned char>(message[i]))) {
        rel = rel * 10 + static_cast<size_t>(message[i] - '0');
        ++i;
      }
      if (i + 1 < message.size() && message[i] == ':' && rel > 0) {
        line = AbsLine(base_line, rel);
        message = message.substr(i + 2);
      }
    }
    Diag(Severity::kError, line, kDiagParseError, std::string(message));
  }

  static size_t AbsLine(size_t base_line, size_t relative_line) {
    return base_line + relative_line - 1;
  }

  // Analyzes one command; returns true when control cannot continue past it
  // in the enclosing block.
  bool AnalyzeCommand(const ParsedCommand& cmd, size_t base_line, size_t depth,
                      Scope* scope) {
    // Substitution parts first: every $var is a read, every [script] runs in
    // the current scope.  Braced words have no parts to substitute.
    for (const Word& w : cmd.words) {
      for (const WordPart& part : w.parts) {
        if (part.kind == WordPart::Kind::kVariable) {
          RecordRead(scope, part.text, AbsLine(base_line, w.line));
        } else if (part.kind == WordPart::Kind::kScript) {
          AnalyzeBlock(part.text, AbsLine(base_line, w.line), depth + 1, scope);
        }
      }
    }

    if (!IsLiteral(cmd.words[0])) {
      return false;  // Computed command name: nothing to check statically.
    }
    const std::string& name = LiteralText(cmd.words[0]);
    const size_t line = AbsLine(base_line, cmd.line);
    const size_t nargs = cmd.words.size() - 1;

    CheckCommand(name, nargs, line);
    TrackVariables(name, cmd, base_line, scope);
    TrackCapabilities(name, cmd);
    RecurseBodies(name, cmd, base_line, depth, scope);

    // `move`/`jump` unwind the activation like `return` (the agent departs);
    // `error` aborts the enclosing block even under `catch`.
    return name == "return" || name == "break" || name == "continue" ||
           name == "error" || name == "move" || name == "jump";
  }

  void CheckCommand(const std::string& name, size_t nargs, size_t line) {
    if (!options_.check_commands) {
      return;
    }
    const CommandSignature* sig = nullptr;
    if (auto it = procs_.find(name); it != procs_.end()) {
      sig = &it->second;
    } else if (auto it2 = signatures_.find(name); it2 != signatures_.end()) {
      sig = &it2->second;
    } else if (options_.known_commands.contains(name)) {
      return;  // Known to exist; arity unknown.
    } else {
      if (!dynamic_procs_) {
        Diag(Severity::kError, line, kDiagUnknownCommand,
             "unknown command \"" + name + "\"");
      }
      return;
    }
    if (nargs < sig->min_args ||
        (sig->max_args >= 0 && nargs > static_cast<size_t>(sig->max_args))) {
      std::string expected =
          sig->max_args < 0
              ? "at least " + std::to_string(sig->min_args)
          : sig->min_args == static_cast<size_t>(sig->max_args)
              ? std::to_string(sig->min_args)
              : std::to_string(sig->min_args) + ".." + std::to_string(sig->max_args);
      Diag(Severity::kError, line, kDiagBadArity,
           "wrong # args for \"" + name + "\": got " + std::to_string(nargs) +
               ", expected " + expected);
    }
  }

  void TrackVariables(const std::string& name, const ParsedCommand& cmd,
                      size_t base_line, Scope* scope) {
    const auto& words = cmd.words;
    auto define_or_dynamic = [&](size_t index) {
      if (index >= words.size()) {
        return;
      }
      if (IsLiteral(words[index])) {
        scope->defined.insert(LiteralText(words[index]));
      } else {
        scope->dynamic = true;
      }
    };

    if (name == "set") {
      if (words.size() == 2 && IsLiteral(words[1])) {
        // One-argument set is a read of the named variable.
        RecordRead(scope, LiteralText(words[1]), AbsLine(base_line, words[1].line));
      } else {
        define_or_dynamic(1);
      }
    } else if (name == "incr" || name == "append" || name == "lappend") {
      define_or_dynamic(1);
    } else if (name == "lassign") {
      for (size_t i = 2; i < words.size(); ++i) {
        define_or_dynamic(i);
      }
    } else if (name == "global") {
      for (size_t i = 1; i < words.size(); ++i) {
        define_or_dynamic(i);
      }
    } else if (name == "upvar") {
      // Locals become defined; the aliased side is out of scope for us.
      for (size_t i = 2; i < words.size(); i += 2) {
        define_or_dynamic(i);
      }
    } else if (name == "foreach" && words.size() == 4) {
      if (IsLiteral(words[1])) {
        auto vars = ParseList(LiteralText(words[1]));
        if (vars.ok()) {
          for (const std::string& v : *vars) {
            scope->defined.insert(v);
          }
        }
      } else {
        scope->dynamic = true;
      }
    } else if (name == "catch" && words.size() == 3) {
      define_or_dynamic(2);
    } else if (name == "info" && words.size() == 3 && IsLiteral(words[1]) &&
               LiteralText(words[1]) == "exists" && IsLiteral(words[2])) {
      // The script guards on existence; don't second-guess reads of it.
      scope->defined.insert(LiteralText(words[2]));
    } else if (name == "eval") {
      bool static_eval = words.size() == 2 && IsLiteral(words[1]);
      if (!static_eval) {
        scope->dynamic = true;  // Built strings can set anything.
      }
    }
  }

  void TrackCapabilities(const std::string& name, const ParsedCommand& cmd) {
    auto record = [&](size_t index, std::set<std::string>* into) {
      if (index >= cmd.words.size()) {
        return;
      }
      if (IsLiteral(cmd.words[index])) {
        into->insert(LiteralText(cmd.words[index]));
      } else {
        report_.capabilities.dynamic_targets = true;
      }
    };
    CapabilitySummary& caps = report_.capabilities;
    if (name.rfind("bc_", 0) == 0 && cmd.words.size() >= 2) {
      record(1, &caps.briefcase_folders);
    } else if (name.rfind("cab_", 0) == 0 && cmd.words.size() >= 2) {
      record(1, &caps.cabinets);
    } else if (name == "meet") {
      record(1, &caps.agents_met);
    } else if (name == "move" || name == "jump" || name == "clone") {
      record(1, &caps.hosts);
    } else if (name == "send") {
      record(1, &caps.hosts);
      record(2, &caps.agents_met);
    }
  }

  void RecurseBodies(const std::string& name, const ParsedCommand& cmd,
                     size_t base_line, size_t depth, Scope* scope) {
    const auto& words = cmd.words;
    auto body = [&](size_t index) {
      if (index < words.size() && (words[index].braced || IsLiteral(words[index]))) {
        AnalyzeBlock(LiteralText(words[index]),
                     AbsLine(base_line, words[index].line), depth + 1, scope);
      }
    };
    auto condition = [&](size_t index) {
      if (index < words.size() && words[index].braced) {
        AnalyzeExprString(LiteralText(words[index]),
                          AbsLine(base_line, words[index].line), depth, scope);
      }
    };

    if (name == "if") {
      AnalyzeIf(cmd, base_line, depth, scope);
    } else if (name == "while") {
      condition(1);
      body(2);
    } else if (name == "for" && words.size() == 5) {
      body(1);
      condition(2);
      body(3);
      body(4);
    } else if (name == "foreach" && words.size() == 4) {
      body(3);
    } else if (name == "catch") {
      body(1);
    } else if (name == "eval" && words.size() == 2) {
      body(1);
    } else if (name == "expr") {
      for (size_t i = 1; i < words.size(); ++i) {
        condition(i);
      }
    } else if (name == "proc" && words.size() == 4) {
      AnalyzeProcBody(cmd, base_line, depth);
    } else if (name == "detach" && words.size() == 3) {
      // The continuation runs later in a fresh interpreter: new scope.
      if (words[2].braced || IsLiteral(words[2])) {
        Scope detached;
        AnalyzeBlock(LiteralText(words[2]), AbsLine(base_line, words[2].line),
                     depth + 1, &detached);
        FinishScope(detached);
      }
    } else if (name == "switch") {
      AnalyzeSwitch(cmd, base_line, depth, scope);
    }
  }

  void AnalyzeIf(const ParsedCommand& cmd, size_t base_line, size_t depth,
                 Scope* scope) {
    const auto& words = cmd.words;
    auto literal_is = [&](size_t i, std::string_view text) {
      return i < words.size() && IsLiteral(words[i]) && LiteralText(words[i]) == text;
    };
    auto body = [&](size_t index) {
      if (index < words.size() && (words[index].braced || IsLiteral(words[index]))) {
        AnalyzeBlock(LiteralText(words[index]),
                     AbsLine(base_line, words[index].line), depth + 1, scope);
      }
    };
    size_t i = 1;
    while (i < words.size()) {
      if (words[i].braced) {
        AnalyzeExprString(LiteralText(words[i]), AbsLine(base_line, words[i].line),
                          depth, scope);
      }
      size_t b = i + 1;
      if (literal_is(b, "then")) {
        ++b;
      }
      if (b >= words.size()) {
        break;  // Malformed chain; arity/runtime reports it.
      }
      body(b);
      i = b + 1;
      if (i >= words.size()) {
        break;
      }
      if (literal_is(i, "elseif")) {
        ++i;
        continue;
      }
      if (literal_is(i, "else")) {
        body(i + 1);
      } else {
        body(i);  // Bare trailing script acts as else.
      }
      break;
    }
  }

  void AnalyzeProcBody(const ParsedCommand& cmd, size_t base_line, size_t depth) {
    const auto& words = cmd.words;
    if (!(words[3].braced || IsLiteral(words[3]))) {
      return;
    }
    Scope proc_scope;
    if (IsLiteral(words[2])) {
      auto params = ParseList(LiteralText(words[2]));
      if (params.ok()) {
        for (const std::string& p : *params) {
          auto parts = ParseList(p);
          proc_scope.defined.insert(
              parts.ok() && !parts->empty() ? (*parts)[0] : p);
        }
      }
    } else {
      proc_scope.dynamic = true;
    }
    AnalyzeBlock(LiteralText(words[3]), AbsLine(base_line, words[3].line),
                 depth + 1, &proc_scope);
    FinishScope(proc_scope);
  }

  void AnalyzeSwitch(const ParsedCommand& cmd, size_t base_line, size_t depth,
                     Scope* scope) {
    const auto& words = cmd.words;
    size_t i = 1;
    if (i < words.size() && IsLiteral(words[i]) &&
        (LiteralText(words[i]) == "-exact" || LiteralText(words[i]) == "-glob")) {
      ++i;
    }
    ++i;  // Skip the value word (its parts were already processed).
    if (i >= words.size()) {
      return;
    }
    if (words.size() - i == 1 && words[i].braced) {
      // Braced clause list: {pattern body pattern body ...}.  Line numbers
      // inside the list are folded onto the word's line — close enough for
      // the short clause bodies the form encourages.
      auto clauses = ParseList(LiteralText(words[i]));
      if (!clauses.ok()) {
        return;
      }
      for (size_t c = 1; c < clauses->size(); c += 2) {
        if ((*clauses)[c] != "-") {
          AnalyzeBlock((*clauses)[c], AbsLine(base_line, words[i].line),
                       depth + 1, scope);
        }
      }
      return;
    }
    for (size_t b = i + 1; b < words.size(); b += 2) {
      if (words[b].braced || (IsLiteral(words[b]) && LiteralText(words[b]) != "-")) {
        AnalyzeBlock(LiteralText(words[b]), AbsLine(base_line, words[b].line),
                     depth + 1, scope);
      }
    }
  }

  // Scans an expr string (condition) without evaluating it: $name and
  // ${name} are reads, [script] chunks are analyzed in the current scope.
  void AnalyzeExprString(std::string_view text, size_t base_line, size_t depth,
                         Scope* scope) {
    size_t line = base_line;
    for (size_t i = 0; i < text.size();) {
      char c = text[i];
      if (c == '\n') {
        ++line;
        ++i;
      } else if (c == '\\') {
        i += 2;
      } else if (c == '$') {
        ++i;
        std::string name;
        if (i < text.size() && text[i] == '{') {
          size_t close = text.find('}', i + 1);
          if (close == std::string_view::npos) {
            break;
          }
          name = std::string(text.substr(i + 1, close - i - 1));
          i = close + 1;
        } else {
          size_t start = i;
          while (i < text.size() && IsVarNameChar(text[i])) {
            ++i;
          }
          name = std::string(text.substr(start, i - start));
        }
        if (!name.empty()) {
          RecordRead(scope, name, line);
        }
      } else if (c == '[') {
        size_t start = i + 1;
        size_t start_line = line;
        int bracket_depth = 1;
        ++i;
        while (i < text.size() && bracket_depth > 0) {
          if (text[i] == '\\') {
            i += 2;
            continue;
          }
          if (text[i] == '\n') {
            ++line;
          } else if (text[i] == '[') {
            ++bracket_depth;
          } else if (text[i] == ']') {
            --bracket_depth;
          }
          ++i;
        }
        if (bracket_depth == 0) {
          AnalyzeBlock(text.substr(start, i - 1 - start), start_line, depth + 1,
                       scope);
        }
      } else {
        ++i;
      }
    }
  }

  void RecordRead(Scope* scope, const std::string& name, size_t line) {
    scope->first_read.emplace(name, line);
  }

  void FinishScope(const Scope& scope) {
    if (scope.dynamic || has_upvar_) {
      return;
    }
    for (const auto& [name, line] : scope.first_read) {
      if (!scope.defined.contains(name) && !global_defined_.contains(name)) {
        Diag(Severity::kWarning, line, kDiagUnsetVariable,
             "variable \"" + name + "\" is read but never set");
      }
    }
  }

  const AnalyzerOptions& options_;
  const SignatureTable& signatures_;
  AnalysisReport report_;
  std::map<std::string, CommandSignature> procs_;
  std::set<std::string> global_defined_;
  bool dynamic_procs_ = false;
  bool has_upvar_ = false;
  bool depth_warned_ = false;
};

}  // namespace

AnalysisReport Analyze(std::string_view script, const AnalyzerOptions& options) {
  return Analyzer(options).Run(script);
}

}  // namespace tacoma::tacl
