#include "tacl/analyze.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <optional>

#include "tacl/list.h"

namespace tacoma::tacl {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "note";
}

size_t AnalysisReport::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == Severity::kError ? 1 : 0;
  }
  return n;
}

size_t AnalysisReport::warning_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == Severity::kWarning ? 1 : 0;
  }
  return n;
}

size_t AnalysisReport::note_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == Severity::kNote ? 1 : 0;
  }
  return n;
}

std::string AnalysisReport::FirstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) {
      return "line " + std::to_string(d.line) + ": " + d.message;
    }
  }
  return "";
}

std::string AnalysisReport::ToString(std::string_view name) const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!name.empty()) {
      out += name;
      out += ':';
    }
    out += std::to_string(d.line);
    out += ": ";
    out += SeverityName(d.severity);
    out += ": ";
    out += d.message;
    out += " [";
    out += d.code;
    out += "]\n";
  }
  return out;
}

// --- Effect lattice ----------------------------------------------------------

int64_t EffectAdd(int64_t a, int64_t b) {
  if (a == kUnboundedEffect || b == kUnboundedEffect) {
    return kUnboundedEffect;
  }
  return a + b;
}

int64_t EffectMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) {
    return 0;  // Zero iterations annihilate even unbounded contributions.
  }
  if (a == kUnboundedEffect || b == kUnboundedEffect) {
    return kUnboundedEffect;
  }
  return a * b;
}

std::string EffectBoundToString(int64_t bound) {
  return bound == kUnboundedEffect ? "unbounded" : std::to_string(bound);
}

bool IsSensitiveFolder(std::string_view name) {
  if (name.rfind("SECRET", 0) == 0) {
    return true;
  }
  return name.find("WALLET") != std::string_view::npos ||
         name.find("RECEIPT") != std::string_view::npos;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonSet(std::string* out, const char* key,
                   const std::set<std::string>& values) {
  AppendJsonString(out, key);
  *out += ":[";
  bool first = true;
  for (const std::string& v : values) {
    if (!first) {
      out->push_back(',');
    }
    first = false;
    AppendJsonString(out, v);
  }
  *out += "]";
}

void AppendJsonBound(std::string* out, const char* key, int64_t bound) {
  AppendJsonString(out, key);
  out->push_back(':');
  if (bound == kUnboundedEffect) {
    *out += "\"unbounded\"";
  } else {
    *out += std::to_string(bound);
  }
}

void AppendJsonBool(std::string* out, const char* key, bool value) {
  AppendJsonString(out, key);
  out->push_back(':');
  *out += value ? "true" : "false";
}

}  // namespace

std::string EffectManifest::ToJson() const {
  // Keys emitted in alphabetical order; the encoding is canonical (the same
  // manifest always produces the same bytes).
  std::string out = "{";
  AppendJsonSet(&out, "agents_met", agents_met);
  out += ",";
  AppendJsonSet(&out, "cabinets_read", cabinets_read);
  out += ",";
  AppendJsonSet(&out, "cabinets_written", cabinets_written);
  out += ",";
  AppendJsonBound(&out, "clone_bound", clone_bound);
  out += ",";
  AppendJsonBool(&out, "dynamic_targets", dynamic_targets);
  out += ",";
  AppendJsonBool(&out, "exfiltration_risk", exfiltration_risk);
  out += ",";
  AppendJsonSet(&out, "folders_read", folders_read);
  out += ",";
  AppendJsonSet(&out, "folders_written", folders_written);
  out += ",";
  AppendJsonBound(&out, "hop_bound", hop_bound);
  out += ",";
  AppendJsonSet(&out, "hosts", hosts);
  out += ",";
  AppendJsonBool(&out, "reads_sensitive", reads_sensitive);
  out += ",";
  AppendJsonBound(&out, "spend_bound", spend_bound);
  out += "}";
  return out;
}

std::vector<std::string> ManifestViolations(const EffectManifest& manifest,
                                            const EffectRecord& actual) {
  std::vector<std::string> violations;
  auto check_set = [&violations](const std::set<std::string>& allowed,
                                 const std::set<std::string>& used,
                                 const char* what) {
    for (const std::string& name : used) {
      if (!allowed.contains(name)) {
        violations.push_back(std::string(what) + " \"" + name +
                             "\" not in static manifest");
      }
    }
  };
  check_set(manifest.folders_read, actual.folders_read, "folder read");
  check_set(manifest.folders_written, actual.folders_written, "folder write");
  check_set(manifest.cabinets_read, actual.cabinets_read, "cabinet read");
  check_set(manifest.cabinets_written, actual.cabinets_written, "cabinet write");
  check_set(manifest.agents_met, actual.agents_met, "agent contact");
  check_set(manifest.hosts, actual.hosts, "host");
  auto check_bound = [&violations](int64_t bound, int64_t used, const char* what) {
    if (bound != kUnboundedEffect && used > bound) {
      violations.push_back(std::string(what) + " count " + std::to_string(used) +
                           " exceeds static bound " + std::to_string(bound));
    }
  };
  check_bound(manifest.hop_bound, actual.hops, "hop");
  check_bound(manifest.clone_bound, actual.clones, "clone");
  check_bound(manifest.spend_bound, actual.spend, "spend");
  return violations;
}

const SignatureTable& BuiltinCommandSignatures() {
  static const SignatureTable* table = new SignatureTable{
      {"set", {1, 2}},      {"unset", {1, -1}},   {"incr", {1, 2}},
      {"global", {0, -1}},  {"upvar", {2, -1}},   {"append", {1, -1}},
      {"if", {2, -1}},      {"while", {2, 2}},    {"for", {4, 4}},
      {"foreach", {3, 3}},  {"break", {0, 0}},    {"continue", {0, 0}},
      {"return", {0, 1}},   {"error", {1, 1}},    {"catch", {1, 2}},
      {"eval", {1, -1}},    {"expr", {1, -1}},    {"proc", {3, 3}},
      {"puts", {1, 2}},     {"list", {0, -1}},    {"lindex", {2, 2}},
      {"llength", {1, 1}},  {"lappend", {1, -1}}, {"lrange", {3, 3}},
      {"lreverse", {1, 1}}, {"lsearch", {2, 3}},  {"lsort", {1, -1}},
      {"linsert", {2, -1}}, {"concat", {0, -1}},  {"join", {1, 2}},
      {"split", {1, 2}},    {"string", {2, -1}},  {"format", {1, -1}},
      {"switch", {2, -1}},  {"lassign", {2, -1}}, {"info", {1, 2}},
  };
  return *table;
}

namespace {

// Re-parsing nested bodies costs O(depth * length); the cap keeps adversarial
// deeply-nested scripts linear and protects the stack on the admission path.
constexpr size_t kMaxAnalysisDepth = 100;

bool IsLiteral(const Word& w) {
  return w.parts.size() == 1 && w.parts[0].kind == WordPart::Kind::kLiteral;
}

const std::string& LiteralText(const Word& w) { return w.parts[0].text; }

// A word that is exactly one $variable substitution (the shape proc argument
// forwarding resolves: `proc go {h} { move $h }`).
const std::string* SingleVariable(const Word& w) {
  if (w.parts.size() == 1 && w.parts[0].kind == WordPart::Kind::kVariable) {
    return &w.parts[0].text;
  }
  return nullptr;
}

bool IsVarNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Which manifest set a literal effect operand lands in.
enum class EffectKind {
  kFolderRead,
  kFolderWrite,
  kCabinetRead,
  kCabinetWrite,
  kAgent,
  kHost,
};

// Read/write classification for the briefcase and cabinet primitive families.
// Kept in lockstep with the runtime recorder in core/bindings.cc — the
// monitor's soundness contract depends on the two sides agreeing.
void BcEffectKinds(const std::string& name, bool* read, bool* write) {
  *read = *write = false;
  if (name == "bc_get" || name == "bc_peek" || name == "bc_list" ||
      name == "bc_has" || name == "bc_len") {
    *read = true;
  } else if (name == "bc_put" || name == "bc_push" || name == "bc_set" ||
             name == "bc_clear") {
    *write = true;
  } else {
    *read = *write = true;  // bc_pop / bc_pop_back / unknown bc_*: both.
  }
}

void CabEffectKinds(const std::string& name, bool* read, bool* write) {
  *read = *write = false;
  if (name == "cab_get" || name == "cab_list" || name == "cab_len" ||
      name == "cab_contains" || name == "cab_folders") {
    *read = true;
  } else if (name == "cab_append" || name == "cab_set" || name == "cab_erase" ||
             name == "cab_flush") {
    *write = true;
  } else {
    *read = *write = true;
  }
}

// bc commands whose result carries folder *contents* (taint sources).
bool IsBcContentRead(const std::string& name) {
  return name == "bc_get" || name == "bc_peek" || name == "bc_pop" ||
         name == "bc_pop_back" || name == "bc_list";
}

class Analyzer {
 public:
  explicit Analyzer(const AnalyzerOptions& options)
      : options_(options),
        signatures_(options.signatures.empty() ? BuiltinCommandSignatures()
                                               : options.signatures) {}

  AnalysisReport Run(std::string_view script) {
    CollectDefinitions(script, 0);
    Scope top;
    AnalyzeBlock(script, 1, 0, &top);
    FinishScope(top);
    InstantiateProcEffects();
    PropagateTaint();
    EmitEffectNotes();
    FillCapabilitySummary();
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.line < b.line;
                     });
    return std::move(report_);
  }

 private:
  // Variables are tracked per scope: the top level is one scope, each proc
  // body (and each detached continuation, which runs in a fresh interpreter)
  // is another.  `dynamic` means a computed variable name or dynamic eval was
  // seen, after which unset-variable reasoning would be guesswork.
  struct Scope {
    std::set<std::string> defined;
    std::map<std::string, size_t> first_read;  // name -> line
    bool dynamic = false;
  };

  // Per-proc effect summary collected while walking the body: numeric
  // contributions (to be scaled by how often the proc can be called) and
  // parameterized targets (`move $h` where h is a parameter) resolved from
  // literal call-site arguments afterwards — one level of forwarding.
  struct ProcEffects {
    std::vector<std::string> params;
    std::vector<std::pair<EffectKind, size_t>> param_effects;  // (kind, param idx)
    int64_t hops = 0;
    int64_t clones = 0;
    int64_t spend = 0;
  };

  // One observed call of a script proc: literal arguments (nullopt when
  // computed) and the loop multiplier at the call site.
  struct CallSite {
    std::vector<std::optional<std::string>> args;
    int64_t multiplier = 1;
    size_t line = 1;
  };

  void Diag(Severity severity, size_t line, std::string_view code,
            std::string message) {
    report_.diagnostics.push_back(
        {severity, line == 0 ? 1 : line, std::string(code), std::move(message)});
  }

  // --- Pass 1: definition harvest ---------------------------------------------
  //
  // Walks every braced word and bracketed script recursively, regardless of
  // position, so procs (and `global` declarations) defined anywhere — loop
  // bodies, nested ifs, data blocks that might be eval'd — are known before
  // diagnostics are produced.  Over-collection only suppresses diagnostics,
  // which is the conservative direction for an admission check.
  void CollectDefinitions(std::string_view script, size_t depth) {
    if (depth > kMaxAnalysisDepth) {
      return;
    }
    auto parsed = ParseScript(script);
    if (!parsed.ok()) {
      return;  // Reported by the diagnostic pass.
    }
    for (const ParsedCommand& cmd : *parsed) {
      if (!cmd.words.empty() && IsLiteral(cmd.words[0])) {
        const std::string& name = LiteralText(cmd.words[0]);
        if (name == "proc" && cmd.words.size() == 4) {
          if (IsLiteral(cmd.words[1])) {
            const std::string& proc_name = LiteralText(cmd.words[1]);
            procs_[proc_name] = ProcSignature(cmd.words[2]);
            proc_effects_[proc_name].params = ProcParamNames(cmd.words[2]);
          } else {
            dynamic_procs_ = true;
          }
        } else if (name == "global") {
          for (size_t i = 1; i < cmd.words.size(); ++i) {
            if (IsLiteral(cmd.words[i])) {
              global_defined_.insert(LiteralText(cmd.words[i]));
            }
          }
        } else if (name == "upvar") {
          // A called proc can rewrite any caller variable through the alias;
          // variable liveness is no longer statically knowable.
          has_upvar_ = true;
        }
      }
      for (const Word& w : cmd.words) {
        for (const WordPart& part : w.parts) {
          if (part.kind == WordPart::Kind::kScript) {
            CollectDefinitions(part.text, depth + 1);
          }
        }
        if (w.braced) {
          CollectDefinitions(LiteralText(w), depth + 1);
        }
      }
    }
  }

  CommandSignature ProcSignature(const Word& params_word) {
    if (!IsLiteral(params_word)) {
      return {0, -1};
    }
    auto params = ParseList(LiteralText(params_word));
    if (!params.ok()) {
      return {0, -1};
    }
    CommandSignature sig{0, 0};
    for (size_t i = 0; i < params->size(); ++i) {
      if ((*params)[i] == "args" && i + 1 == params->size()) {
        sig.max_args = -1;
        return sig;
      }
      auto parts = ParseList((*params)[i]);
      bool has_default = parts.ok() && parts->size() == 2;
      if (!has_default) {
        ++sig.min_args;
      }
      ++sig.max_args;
    }
    return sig;
  }

  static std::vector<std::string> ProcParamNames(const Word& params_word) {
    std::vector<std::string> names;
    if (!IsLiteral(params_word)) {
      return names;
    }
    auto params = ParseList(LiteralText(params_word));
    if (!params.ok()) {
      return names;
    }
    for (const std::string& p : *params) {
      auto parts = ParseList(p);
      names.push_back(parts.ok() && !parts->empty() ? (*parts)[0] : p);
    }
    return names;
  }

  // --- Pass 2: diagnostics -----------------------------------------------------

  void AnalyzeBlock(std::string_view script, size_t base_line, size_t depth,
                    Scope* scope) {
    if (depth > kMaxAnalysisDepth) {
      if (!depth_warned_) {
        depth_warned_ = true;
        Diag(Severity::kWarning, base_line, "analysis-limit",
             "nesting exceeds analysis depth; deeper code not checked");
      }
      // Unanalyzed code can do anything: the manifest no longer bounds it.
      report_.manifest.dynamic_targets = true;
      return;
    }
    auto parsed = ParseScript(script);
    if (!parsed.ok()) {
      ReportParseError(parsed.status().message(), base_line);
      return;
    }
    report_.commands_analyzed += parsed->size();
    bool terminated = false;
    std::string terminator;
    for (const ParsedCommand& cmd : *parsed) {
      if (cmd.words.empty()) {
        continue;
      }
      if (terminated) {
        Diag(Severity::kWarning, AbsLine(base_line, cmd.line), kDiagUnreachable,
             "unreachable code after \"" + terminator + "\"");
        terminated = false;  // One warning per block.
      }
      if (AnalyzeCommand(cmd, base_line, depth, scope) && !terminated) {
        terminated = true;
        terminator = LiteralText(cmd.words[0]);
      }
    }
  }

  // Parser errors arrive as "line N: message" with N relative to the parsed
  // substring; rebase onto the enclosing script.
  void ReportParseError(std::string_view message, size_t base_line) {
    size_t line = base_line;
    if (message.rfind("line ", 0) == 0) {
      size_t i = 5;
      size_t rel = 0;
      while (i < message.size() && std::isdigit(static_cast<unsigned char>(message[i]))) {
        rel = rel * 10 + static_cast<size_t>(message[i] - '0');
        ++i;
      }
      if (i + 1 < message.size() && message[i] == ':' && rel > 0) {
        line = AbsLine(base_line, rel);
        message = message.substr(i + 2);
      }
    }
    Diag(Severity::kError, line, kDiagParseError, std::string(message));
  }

  static size_t AbsLine(size_t base_line, size_t relative_line) {
    return base_line + relative_line - 1;
  }

  // Analyzes one command; returns true when control cannot continue past it
  // in the enclosing block.
  bool AnalyzeCommand(const ParsedCommand& cmd, size_t base_line, size_t depth,
                      Scope* scope) {
    // Substitution parts first: every $var is a read, every [script] runs in
    // the current scope.  Braced words have no parts to substitute.
    for (const Word& w : cmd.words) {
      for (const WordPart& part : w.parts) {
        if (part.kind == WordPart::Kind::kVariable) {
          RecordRead(scope, part.text, AbsLine(base_line, w.line));
        } else if (part.kind == WordPart::Kind::kScript) {
          AnalyzeBlock(part.text, AbsLine(base_line, w.line), depth + 1, scope);
        }
      }
    }

    if (!IsLiteral(cmd.words[0])) {
      // Computed command name: nothing to check statically, and the manifest
      // cannot claim to bound what it invokes.
      report_.manifest.dynamic_targets = true;
      return false;
    }
    const std::string& name = LiteralText(cmd.words[0]);
    const size_t line = AbsLine(base_line, cmd.line);
    const size_t nargs = cmd.words.size() - 1;

    CheckCommand(name, nargs, line);
    TrackVariables(name, cmd, base_line, scope);
    TrackEffects(name, cmd, base_line);
    TrackTaint(name, cmd, base_line, depth);
    RecordCallSite(name, cmd, line);
    RecurseBodies(name, cmd, base_line, depth, scope);

    // `move`/`jump` unwind the activation like `return` (the agent departs);
    // `error` aborts the enclosing block even under `catch`.
    return name == "return" || name == "break" || name == "continue" ||
           name == "error" || name == "move" || name == "jump";
  }

  void CheckCommand(const std::string& name, size_t nargs, size_t line) {
    if (!options_.check_commands) {
      return;
    }
    const CommandSignature* sig = nullptr;
    if (auto it = procs_.find(name); it != procs_.end()) {
      sig = &it->second;
    } else if (auto it2 = signatures_.find(name); it2 != signatures_.end()) {
      sig = &it2->second;
    } else if (options_.known_commands.contains(name)) {
      return;  // Known to exist; arity unknown.
    } else {
      if (!dynamic_procs_) {
        Diag(Severity::kError, line, kDiagUnknownCommand,
             "unknown command \"" + name + "\"");
      }
      return;
    }
    if (nargs < sig->min_args ||
        (sig->max_args >= 0 && nargs > static_cast<size_t>(sig->max_args))) {
      std::string expected =
          sig->max_args < 0
              ? "at least " + std::to_string(sig->min_args)
          : sig->min_args == static_cast<size_t>(sig->max_args)
              ? std::to_string(sig->min_args)
              : std::to_string(sig->min_args) + ".." + std::to_string(sig->max_args);
      Diag(Severity::kError, line, kDiagBadArity,
           "wrong # args for \"" + name + "\": got " + std::to_string(nargs) +
               ", expected " + expected);
    }
  }

  void TrackVariables(const std::string& name, const ParsedCommand& cmd,
                      size_t base_line, Scope* scope) {
    const auto& words = cmd.words;
    auto define_or_dynamic = [&](size_t index) {
      if (index >= words.size()) {
        return;
      }
      if (IsLiteral(words[index])) {
        scope->defined.insert(LiteralText(words[index]));
      } else {
        scope->dynamic = true;
      }
    };

    if (name == "set") {
      if (words.size() == 2 && IsLiteral(words[1])) {
        // One-argument set is a read of the named variable.
        RecordRead(scope, LiteralText(words[1]), AbsLine(base_line, words[1].line));
      } else {
        define_or_dynamic(1);
      }
    } else if (name == "incr" || name == "append" || name == "lappend") {
      define_or_dynamic(1);
    } else if (name == "lassign") {
      for (size_t i = 2; i < words.size(); ++i) {
        define_or_dynamic(i);
      }
    } else if (name == "global") {
      for (size_t i = 1; i < words.size(); ++i) {
        define_or_dynamic(i);
      }
    } else if (name == "upvar") {
      // Locals become defined; the aliased side is out of scope for us.
      for (size_t i = 2; i < words.size(); i += 2) {
        define_or_dynamic(i);
      }
    } else if (name == "foreach" && words.size() == 4) {
      if (IsLiteral(words[1])) {
        auto vars = ParseList(LiteralText(words[1]));
        if (vars.ok()) {
          for (const std::string& v : *vars) {
            scope->defined.insert(v);
          }
        }
      } else {
        scope->dynamic = true;
      }
    } else if (name == "catch" && words.size() == 3) {
      define_or_dynamic(2);
    } else if (name == "info" && words.size() == 3 && IsLiteral(words[1]) &&
               LiteralText(words[1]) == "exists" && IsLiteral(words[2])) {
      // The script guards on existence; don't second-guess reads of it.
      scope->defined.insert(LiteralText(words[2]));
    } else if (name == "eval") {
      bool static_eval = words.size() == 2 && IsLiteral(words[1]);
      if (!static_eval) {
        scope->dynamic = true;  // Built strings can set anything.
        // A built string can invoke any primitive: effects are unbounded in
        // the set dimension (numeric bounds stay best-effort; see docs).
        report_.manifest.dynamic_targets = true;
      }
    }
  }

  // --- Effect inference --------------------------------------------------------

  // Records a literal effect target into the manifest set for `kind`.
  void RecordEffectName(EffectKind kind, const std::string& name) {
    EffectManifest& m = report_.manifest;
    switch (kind) {
      case EffectKind::kFolderRead:
        m.folders_read.insert(name);
        break;
      case EffectKind::kFolderWrite:
        m.folders_written.insert(name);
        break;
      case EffectKind::kCabinetRead:
        m.cabinets_read.insert(name);
        break;
      case EffectKind::kCabinetWrite:
        m.cabinets_written.insert(name);
        break;
      case EffectKind::kAgent:
        m.agents_met.insert(name);
        break;
      case EffectKind::kHost:
        m.hosts.insert(name);
        break;
    }
  }

  // If `w` is exactly `$param` of the innermost enclosing proc, returns the
  // parameter index — the one level of argument forwarding we resolve.
  std::optional<size_t> ParamIndex(const Word& w) {
    if (proc_stack_.empty()) {
      return std::nullopt;
    }
    const std::string* var = SingleVariable(w);
    if (var == nullptr) {
      return std::nullopt;
    }
    const auto& params = proc_effects_[proc_stack_.back()].params;
    for (size_t i = 0; i < params.size(); ++i) {
      if (params[i] == *var) {
        return i;
      }
    }
    return std::nullopt;
  }

  // An effect operand: literal → manifest set; `$param` in a proc body →
  // parameterized effect resolved from call sites; anything else → dynamic.
  void EffectTarget(const ParsedCommand& cmd, size_t index, EffectKind kind) {
    if (index >= cmd.words.size()) {
      return;
    }
    const Word& w = cmd.words[index];
    if (IsLiteral(w)) {
      RecordEffectName(kind, LiteralText(w));
      return;
    }
    if (auto param = ParamIndex(w)) {
      proc_effects_[proc_stack_.back()].param_effects.emplace_back(kind, *param);
      return;
    }
    report_.manifest.dynamic_targets = true;
  }

  // Numeric contributions accumulate into the innermost proc summary (scaled
  // later by call-site multiplicity) or straight into the manifest.
  void AddNumericEffect(int64_t ProcEffects::*proc_field,
                        int64_t EffectManifest::*manifest_field, int64_t amount,
                        size_t line, size_t* first_unbounded_line) {
    int64_t scaled = EffectMul(amount, loop_mult_);
    int64_t* slot = proc_stack_.empty()
                        ? &(report_.manifest.*manifest_field)
                        : &(proc_effects_[proc_stack_.back()].*proc_field);
    *slot = EffectAdd(*slot, scaled);
    if (*slot == kUnboundedEffect && *first_unbounded_line == 0) {
      *first_unbounded_line = line;
    }
  }

  void TrackEffects(const std::string& name, const ParsedCommand& cmd,
                    size_t base_line) {
    const size_t line = AbsLine(base_line, cmd.line);
    if (name.rfind("bc_", 0) == 0 && cmd.words.size() >= 2) {
      bool read = false;
      bool write = false;
      BcEffectKinds(name, &read, &write);
      if (read) {
        EffectTarget(cmd, 1, EffectKind::kFolderRead);
      }
      if (write) {
        EffectTarget(cmd, 1, EffectKind::kFolderWrite);
      }
    } else if (name.rfind("cab_", 0) == 0 && cmd.words.size() >= 2) {
      bool read = false;
      bool write = false;
      CabEffectKinds(name, &read, &write);
      if (read) {
        EffectTarget(cmd, 1, EffectKind::kCabinetRead);
      }
      if (write) {
        EffectTarget(cmd, 1, EffectKind::kCabinetWrite);
      }
    } else if (name == "meet") {
      EffectTarget(cmd, 1, EffectKind::kAgent);
      if (cmd.words.size() >= 3) {
        // The folder list is adopted into the sub-briefcase and merged back:
        // each named folder is both read and written.
        if (IsLiteral(cmd.words[2])) {
          auto folders = ParseList(LiteralText(cmd.words[2]));
          if (folders.ok()) {
            for (const std::string& f : *folders) {
              RecordEffectName(EffectKind::kFolderRead, f);
              RecordEffectName(EffectKind::kFolderWrite, f);
            }
          }
        } else {
          report_.manifest.dynamic_targets = true;
        }
      }
    } else if (name == "move" || name == "jump") {
      EffectTarget(cmd, 1, EffectKind::kHost);
      AddNumericEffect(&ProcEffects::hops, &EffectManifest::hop_bound, 1, line,
                       &first_unbounded_hop_line_);
    } else if (name == "clone") {
      EffectTarget(cmd, 1, EffectKind::kHost);
      AddNumericEffect(&ProcEffects::clones, &EffectManifest::clone_bound, 1,
                       line, &first_unbounded_hop_line_);
    } else if (name == "send") {
      EffectTarget(cmd, 1, EffectKind::kHost);
      EffectTarget(cmd, 2, EffectKind::kAgent);
      EffectTarget(cmd, 3, EffectKind::kFolderRead);  // Courier ships the folder.
    } else if (name == "pay" || name == "withdraw") {
      if (name == "pay" && first_pay_line_ == 0) {
        first_pay_line_ = line;
      }
      int64_t amount = kUnboundedEffect;
      if (cmd.words.size() >= 2 && IsLiteral(cmd.words[1])) {
        auto parsed = ParseInt(LiteralText(cmd.words[1]));
        if (parsed.has_value() && *parsed >= 0) {
          amount = *parsed;
        }
      }
      AddNumericEffect(&ProcEffects::spend, &EffectManifest::spend_bound, amount,
                       line, &first_unbounded_spend_line_);
    }
  }

  // Calls of script procs: remember the literal arguments and the loop
  // multiplier, so parameterized effects and per-proc numeric contributions
  // can be instantiated after the walk.  A call made from inside another proc
  // body has unknown multiplicity (we resolve one level only): ⊤.
  void RecordCallSite(const std::string& name, const ParsedCommand& cmd,
                      size_t line) {
    if (!procs_.contains(name)) {
      return;
    }
    CallSite site;
    site.line = line;
    site.multiplier = proc_stack_.empty() ? loop_mult_ : kUnboundedEffect;
    for (size_t i = 1; i < cmd.words.size(); ++i) {
      if (IsLiteral(cmd.words[i])) {
        site.args.emplace_back(LiteralText(cmd.words[i]));
      } else {
        site.args.emplace_back(std::nullopt);
      }
    }
    calls_[name].push_back(std::move(site));
  }

  // --- Taint (sensitive folders → movement operands) ---------------------------

  // True when `script` (a bracketed substitution) reads the *contents* of a
  // sensitive folder at any nesting level.
  bool ScriptReadsSensitive(std::string_view script, size_t depth) {
    if (depth > kMaxAnalysisDepth) {
      return false;
    }
    auto parsed = ParseScript(script);
    if (!parsed.ok()) {
      return false;
    }
    for (const ParsedCommand& cmd : *parsed) {
      if (cmd.words.empty()) {
        continue;
      }
      if (IsLiteral(cmd.words[0])) {
        const std::string& name = LiteralText(cmd.words[0]);
        if (IsBcContentRead(name) && cmd.words.size() >= 2 &&
            IsLiteral(cmd.words[1]) &&
            IsSensitiveFolder(LiteralText(cmd.words[1]))) {
          return true;
        }
        if ((name == "cab_get" || name == "cab_list") && cmd.words.size() >= 3 &&
            IsLiteral(cmd.words[2]) &&
            IsSensitiveFolder(LiteralText(cmd.words[2]))) {
          return true;
        }
      }
      for (const Word& w : cmd.words) {
        for (const WordPart& part : w.parts) {
          if (part.kind == WordPart::Kind::kScript &&
              ScriptReadsSensitive(part.text, depth + 1)) {
            return true;
          }
        }
      }
    }
    return false;
  }

  void TrackTaint(const std::string& name, const ParsedCommand& cmd,
                  size_t base_line, size_t depth) {
    const auto& words = cmd.words;
    // Assignments: `set v <expr>` (and append/lappend) make v depend on every
    // variable in the value and taint it directly if the value substitutes a
    // sensitive read.
    if ((name == "set" && words.size() == 3) ||
        ((name == "append" || name == "lappend") && words.size() >= 3)) {
      if (IsLiteral(words[1])) {
        const std::string& var = LiteralText(words[1]);
        for (size_t i = 2; i < words.size(); ++i) {
          for (const WordPart& part : words[i].parts) {
            if (part.kind == WordPart::Kind::kVariable) {
              var_deps_[var].insert(part.text);
            } else if (part.kind == WordPart::Kind::kScript &&
                       ScriptReadsSensitive(part.text, depth)) {
              tainted_.insert(var);
            }
          }
        }
      }
      return;
    }
    // Sinks: data flowing into movement/communication operands leaves the
    // site.  Any variable or sensitive substitution in an operand is flagged.
    if (name == "move" || name == "jump" || name == "clone" || name == "send" ||
        name == "meet") {
      for (size_t i = 1; i < words.size(); ++i) {
        const size_t line = AbsLine(base_line, words[i].line);
        for (const WordPart& part : words[i].parts) {
          if (part.kind == WordPart::Kind::kVariable) {
            sink_uses_.push_back({part.text, line, name});
          } else if (part.kind == WordPart::Kind::kScript &&
                     ScriptReadsSensitive(part.text, depth)) {
            direct_risks_.emplace(
                line, "operand of \"" + name + "\" reads a sensitive folder");
          }
        }
      }
      if (name == "send" && words.size() >= 4 && IsLiteral(words[3]) &&
          IsSensitiveFolder(LiteralText(words[3]))) {
        direct_risks_.emplace(AbsLine(base_line, words[3].line),
                              "sensitive folder \"" + LiteralText(words[3]) +
                                  "\" is shipped off-site by \"send\"");
      }
    }
  }

  struct SinkUse {
    std::string var;
    size_t line;
    std::string command;
  };

  void PropagateTaint() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [var, deps] : var_deps_) {
        if (tainted_.contains(var)) {
          continue;
        }
        for (const std::string& dep : deps) {
          if (tainted_.contains(dep)) {
            tainted_.insert(var);
            changed = true;
            break;
          }
        }
      }
    }
  }

  // --- Post-walk synthesis ------------------------------------------------------

  void InstantiateProcEffects() {
    for (auto& [name, effects] : proc_effects_) {
      auto calls_it = calls_.find(name);
      if (calls_it == calls_.end()) {
        continue;  // Never called: contributes nothing.
      }
      int64_t total_mult = 0;
      for (const CallSite& site : calls_it->second) {
        total_mult = EffectAdd(total_mult, site.multiplier);
        for (const auto& [kind, index] : effects.param_effects) {
          if (index < site.args.size() && site.args[index].has_value()) {
            RecordEffectName(kind, *site.args[index]);
          } else {
            report_.manifest.dynamic_targets = true;
          }
        }
      }
      EffectManifest& m = report_.manifest;
      auto fold = [&](int64_t contribution, int64_t EffectManifest::*field,
                      size_t* first_unbounded_line) {
        int64_t scaled = EffectMul(contribution, total_mult);
        m.*field = EffectAdd(m.*field, scaled);
        if (m.*field == kUnboundedEffect && *first_unbounded_line == 0 &&
            !calls_it->second.empty()) {
          *first_unbounded_line = calls_it->second.front().line;
        }
      };
      fold(effects.hops, &EffectManifest::hop_bound, &first_unbounded_hop_line_);
      fold(effects.clones, &EffectManifest::clone_bound,
           &first_unbounded_hop_line_);
      fold(effects.spend, &EffectManifest::spend_bound,
           &first_unbounded_spend_line_);
    }
  }

  void EmitEffectNotes() {
    EffectManifest& m = report_.manifest;
    for (const std::string& folder : m.folders_read) {
      if (IsSensitiveFolder(folder)) {
        m.reads_sensitive = true;
        break;
      }
    }

    if (m.hop_bound == kUnboundedEffect || m.clone_bound == kUnboundedEffect) {
      Diag(Severity::kNote, first_unbounded_hop_line_, kDiagUnboundedItinerary,
           "movement inside a loop with no literal bound; itinerary size is "
           "unbounded");
    }
    if (m.spend_bound == kUnboundedEffect) {
      Diag(Severity::kNote, first_unbounded_spend_line_, kDiagUnboundedSpend,
           "pay/withdraw amount is not a literal (or repeats unboundedly); "
           "spend is unbounded");
    }
    if (first_pay_line_ != 0) {
      bool reads_receipt = false;
      for (const std::string& folder : m.folders_read) {
        if (folder.find("RECEIPT") != std::string::npos) {
          reads_receipt = true;
          break;
        }
      }
      if (!reads_receipt) {
        Diag(Severity::kNote, first_pay_line_, kDiagUncheckedReceipt,
             "payment is made but no receipt folder is ever read");
      }
    }

    // Exfiltration: direct sensitive flows plus tainted variables reaching a
    // movement/communication operand (one note per line and cause).
    std::set<std::pair<size_t, std::string>> emitted = direct_risks_;
    for (const SinkUse& use : sink_uses_) {
      if (tainted_.contains(use.var)) {
        emitted.emplace(use.line, "variable \"" + use.var +
                                      "\" may carry sensitive folder contents "
                                      "into \"" +
                                      use.command + "\"");
      }
    }
    for (const auto& [line, message] : emitted) {
      m.exfiltration_risk = true;
      Diag(Severity::kNote, line, kDiagExfiltrationRisk,
           "possible exfiltration: " + message);
    }
  }

  void FillCapabilitySummary() {
    const EffectManifest& m = report_.manifest;
    CapabilitySummary& caps = report_.capabilities;
    caps.briefcase_folders = m.folders_read;
    caps.briefcase_folders.insert(m.folders_written.begin(),
                                  m.folders_written.end());
    caps.cabinets = m.cabinets_read;
    caps.cabinets.insert(m.cabinets_written.begin(), m.cabinets_written.end());
    caps.agents_met = m.agents_met;
    caps.hosts = m.hosts;
    caps.dynamic_targets = m.dynamic_targets;
  }

  void RecurseBodies(const std::string& name, const ParsedCommand& cmd,
                     size_t base_line, size_t depth, Scope* scope) {
    const auto& words = cmd.words;
    auto body = [&](size_t index) {
      if (index < words.size() && (words[index].braced || IsLiteral(words[index]))) {
        AnalyzeBlock(LiteralText(words[index]),
                     AbsLine(base_line, words[index].line), depth + 1, scope);
      }
    };
    auto condition = [&](size_t index) {
      if (index < words.size() && words[index].braced) {
        AnalyzeExprString(LiteralText(words[index]),
                          AbsLine(base_line, words[index].line), depth, scope);
      }
    };

    if (name == "if") {
      AnalyzeIf(cmd, base_line, depth, scope);
    } else if (name == "while") {
      // Condition and body both run per iteration; with no literal trip
      // count every effect inside is unbounded.
      int64_t saved = loop_mult_;
      loop_mult_ = kUnboundedEffect;
      condition(1);
      body(2);
      loop_mult_ = saved;
    } else if (name == "for" && words.size() == 5) {
      body(1);  // Init runs once.
      int64_t saved = loop_mult_;
      loop_mult_ = kUnboundedEffect;
      condition(2);
      body(3);
      body(4);
      loop_mult_ = saved;
    } else if (name == "foreach" && words.size() == 4) {
      // A literal element list gives an exact trip count; a computed list
      // gives ⊤.
      int64_t trips = kUnboundedEffect;
      if (IsLiteral(words[2])) {
        auto items = ParseList(LiteralText(words[2]));
        if (items.ok()) {
          trips = static_cast<int64_t>(items->size());
        }
      }
      int64_t saved = loop_mult_;
      loop_mult_ = EffectMul(loop_mult_, trips);
      body(3);
      loop_mult_ = saved;
    } else if (name == "catch") {
      body(1);
    } else if (name == "eval" && words.size() == 2) {
      body(1);
    } else if (name == "expr") {
      for (size_t i = 1; i < words.size(); ++i) {
        condition(i);
      }
    } else if (name == "proc" && words.size() == 4) {
      AnalyzeProcBody(cmd, base_line, depth);
    } else if (name == "detach" && words.size() == 3) {
      // The continuation runs later in a fresh interpreter: new scope.  Its
      // effects are folded into this manifest (a superset is sound; the
      // detached activation is also analyzed standalone when it runs).
      if (words[2].braced || IsLiteral(words[2])) {
        Scope detached;
        AnalyzeBlock(LiteralText(words[2]), AbsLine(base_line, words[2].line),
                     depth + 1, &detached);
        FinishScope(detached);
      }
    } else if (name == "switch") {
      AnalyzeSwitch(cmd, base_line, depth, scope);
    }
  }

  void AnalyzeIf(const ParsedCommand& cmd, size_t base_line, size_t depth,
                 Scope* scope) {
    const auto& words = cmd.words;
    auto literal_is = [&](size_t i, std::string_view text) {
      return i < words.size() && IsLiteral(words[i]) && LiteralText(words[i]) == text;
    };
    auto body = [&](size_t index) {
      if (index < words.size() && (words[index].braced || IsLiteral(words[index]))) {
        AnalyzeBlock(LiteralText(words[index]),
                     AbsLine(base_line, words[index].line), depth + 1, scope);
      }
    };
    size_t i = 1;
    while (i < words.size()) {
      if (words[i].braced) {
        AnalyzeExprString(LiteralText(words[i]), AbsLine(base_line, words[i].line),
                          depth, scope);
      }
      size_t b = i + 1;
      if (literal_is(b, "then")) {
        ++b;
      }
      if (b >= words.size()) {
        break;  // Malformed chain; arity/runtime reports it.
      }
      body(b);
      i = b + 1;
      if (i >= words.size()) {
        break;
      }
      if (literal_is(i, "elseif")) {
        ++i;
        continue;
      }
      if (literal_is(i, "else")) {
        body(i + 1);
      } else {
        body(i);  // Bare trailing script acts as else.
      }
      break;
    }
  }

  void AnalyzeProcBody(const ParsedCommand& cmd, size_t base_line, size_t depth) {
    const auto& words = cmd.words;
    if (!(words[3].braced || IsLiteral(words[3]))) {
      return;
    }
    Scope proc_scope;
    bool named = IsLiteral(words[1]);
    if (IsLiteral(words[2])) {
      auto params = ParseList(LiteralText(words[2]));
      if (params.ok()) {
        for (const std::string& p : *params) {
          auto parts = ParseList(p);
          proc_scope.defined.insert(
              parts.ok() && !parts->empty() ? (*parts)[0] : p);
        }
      }
    } else {
      proc_scope.dynamic = true;
    }
    // The body's numeric effects count per *call*, so they accumulate into
    // the proc summary under a fresh multiplier and are scaled by call-site
    // multiplicity afterwards.  A dynamically-named proc can't be linked to
    // call sites: its effects go to the enclosing context with multiplier ⊤
    // (it may be called any number of times).
    int64_t saved_mult = loop_mult_;
    if (named) {
      proc_stack_.push_back(LiteralText(words[1]));
      loop_mult_ = 1;
    } else {
      loop_mult_ = kUnboundedEffect;
    }
    AnalyzeBlock(LiteralText(words[3]), AbsLine(base_line, words[3].line),
                 depth + 1, &proc_scope);
    loop_mult_ = saved_mult;
    if (named) {
      proc_stack_.pop_back();
    }
    FinishScope(proc_scope);
  }

  void AnalyzeSwitch(const ParsedCommand& cmd, size_t base_line, size_t depth,
                     Scope* scope) {
    const auto& words = cmd.words;
    size_t i = 1;
    if (i < words.size() && IsLiteral(words[i]) &&
        (LiteralText(words[i]) == "-exact" || LiteralText(words[i]) == "-glob")) {
      ++i;
    }
    ++i;  // Skip the value word (its parts were already processed).
    if (i >= words.size()) {
      return;
    }
    if (words.size() - i == 1 && words[i].braced) {
      // Braced clause list: {pattern body pattern body ...}.  Line numbers
      // inside the list are folded onto the word's line — close enough for
      // the short clause bodies the form encourages.
      auto clauses = ParseList(LiteralText(words[i]));
      if (!clauses.ok()) {
        return;
      }
      for (size_t c = 1; c < clauses->size(); c += 2) {
        if ((*clauses)[c] != "-") {
          AnalyzeBlock((*clauses)[c], AbsLine(base_line, words[i].line),
                       depth + 1, scope);
        }
      }
      return;
    }
    for (size_t b = i + 1; b < words.size(); b += 2) {
      if (words[b].braced || (IsLiteral(words[b]) && LiteralText(words[b]) != "-")) {
        AnalyzeBlock(LiteralText(words[b]), AbsLine(base_line, words[b].line),
                     depth + 1, scope);
      }
    }
  }

  // Scans an expr string (condition) without evaluating it: $name and
  // ${name} are reads, [script] chunks are analyzed in the current scope.
  void AnalyzeExprString(std::string_view text, size_t base_line, size_t depth,
                         Scope* scope) {
    size_t line = base_line;
    for (size_t i = 0; i < text.size();) {
      char c = text[i];
      if (c == '\n') {
        ++line;
        ++i;
      } else if (c == '\\') {
        i += 2;
      } else if (c == '$') {
        ++i;
        std::string name;
        if (i < text.size() && text[i] == '{') {
          size_t close = text.find('}', i + 1);
          if (close == std::string_view::npos) {
            break;
          }
          name = std::string(text.substr(i + 1, close - i - 1));
          i = close + 1;
        } else {
          size_t start = i;
          while (i < text.size() && IsVarNameChar(text[i])) {
            ++i;
          }
          name = std::string(text.substr(start, i - start));
        }
        if (!name.empty()) {
          RecordRead(scope, name, line);
        }
      } else if (c == '[') {
        size_t start = i + 1;
        size_t start_line = line;
        int bracket_depth = 1;
        ++i;
        while (i < text.size() && bracket_depth > 0) {
          if (text[i] == '\\') {
            i += 2;
            continue;
          }
          if (text[i] == '\n') {
            ++line;
          } else if (text[i] == '[') {
            ++bracket_depth;
          } else if (text[i] == ']') {
            --bracket_depth;
          }
          ++i;
        }
        if (bracket_depth == 0) {
          AnalyzeBlock(text.substr(start, i - 1 - start), start_line, depth + 1,
                       scope);
        }
      } else {
        ++i;
      }
    }
  }

  void RecordRead(Scope* scope, const std::string& name, size_t line) {
    scope->first_read.emplace(name, line);
  }

  void FinishScope(const Scope& scope) {
    if (scope.dynamic || has_upvar_) {
      return;
    }
    for (const auto& [name, line] : scope.first_read) {
      if (!scope.defined.contains(name) && !global_defined_.contains(name)) {
        Diag(Severity::kWarning, line, kDiagUnsetVariable,
             "variable \"" + name + "\" is read but never set");
      }
    }
  }

  const AnalyzerOptions& options_;
  const SignatureTable& signatures_;
  AnalysisReport report_;
  std::map<std::string, CommandSignature> procs_;
  std::set<std::string> global_defined_;
  bool dynamic_procs_ = false;
  bool has_upvar_ = false;
  bool depth_warned_ = false;

  // Effect-inference state.
  std::map<std::string, ProcEffects> proc_effects_;
  std::map<std::string, std::vector<CallSite>> calls_;
  std::vector<std::string> proc_stack_;  // Innermost named proc being walked.
  int64_t loop_mult_ = 1;                // Iterations of the enclosing loops.
  size_t first_unbounded_hop_line_ = 0;
  size_t first_unbounded_spend_line_ = 0;
  size_t first_pay_line_ = 0;

  // Taint state.
  std::map<std::string, std::set<std::string>> var_deps_;  // var → vars it reads
  std::set<std::string> tainted_;
  std::vector<SinkUse> sink_uses_;
  std::set<std::pair<size_t, std::string>> direct_risks_;  // (line, cause)
};

}  // namespace

AnalysisReport Analyze(std::string_view script, const AnalyzerOptions& options) {
  return Analyzer(options).Run(script);
}

}  // namespace tacoma::tacl
