// Static analysis ("lint") for TACL agent scripts.
//
// Places execute CODE folders they have never seen; this pass vets a script
// before the interpreter touches it.  It walks the parse tree (ParseScript)
// without evaluating anything and reports:
//   - parse errors                          (error)
//   - calls to commands that exist nowhere  (error)
//   - arity mismatches for builtins, agent primitives and script procs (error)
//   - reads of variables never set on any path in their scope (warning)
//   - unreachable commands after an unconditional return/break/continue/
//     error/move/jump                       (warning)
// and extracts a capability summary — which briefcase folders, cabinets,
// hosts and agents the script names — so sites can enforce admission policy.
//
// The analysis is deliberately conservative: a diagnostic is only produced
// when the script would misbehave on *every* path.  Dynamic constructs
// (computed command names, `eval` of built strings, computed variable names)
// suppress the affected checks rather than guessing.
#ifndef TACOMA_TACL_ANALYZE_H_
#define TACOMA_TACL_ANALYZE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tacl/parse.h"

namespace tacoma::tacl {

enum class Severity { kWarning, kError };
std::string_view SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  size_t line = 1;      // 1-based line in the analyzed script.
  std::string code;     // Stable slug: "unknown-command", "bad-arity", ...
  std::string message;
};

// Diagnostic code slugs (use these, not ad-hoc strings, so policy code can
// match on them).
inline constexpr std::string_view kDiagParseError = "parse-error";
inline constexpr std::string_view kDiagUnknownCommand = "unknown-command";
inline constexpr std::string_view kDiagBadArity = "bad-arity";
inline constexpr std::string_view kDiagUnsetVariable = "unset-variable";
inline constexpr std::string_view kDiagUnreachable = "unreachable-code";

// What the script can touch, as far as the static pass can see.  Only
// literal operands are recorded; any computed operand sets dynamic_targets,
// signalling that the summary is a lower bound.
struct CapabilitySummary {
  std::set<std::string> briefcase_folders;  // bc_* folder operands
  std::set<std::string> cabinets;           // cab_* cabinet operands
  std::set<std::string> agents_met;         // meet / send contact operands
  std::set<std::string> hosts;              // move / jump / clone / send hosts
  bool dynamic_targets = false;
};

// Arity of a command, counting arguments after the command word.
struct CommandSignature {
  size_t min_args = 0;
  int max_args = -1;  // -1 = unbounded.
};

using SignatureTable = std::map<std::string, CommandSignature>;

// Signatures of the TACL standard library (builtins.cc).
const SignatureTable& BuiltinCommandSignatures();

struct AnalyzerOptions {
  // Commands with known arity.  When empty, BuiltinCommandSignatures() is
  // used.  Callers embedding extra primitives merge their tables in.
  SignatureTable signatures;
  // Commands known to exist but with unknown arity (e.g. everything a live
  // Interp has registered, including module binder commands).
  std::set<std::string> known_commands;
  // Unknown-command/arity checks can be disabled for dialect-agnostic lints.
  bool check_commands = true;
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  CapabilitySummary capabilities;
  size_t commands_analyzed = 0;

  bool ok() const { return error_count() == 0; }
  size_t error_count() const;
  size_t warning_count() const;
  // First error-severity diagnostic formatted as "line N: message", or "".
  std::string FirstError() const;
  // One diagnostic per line: "<name>:<line>: <severity>: <message> [<code>]".
  std::string ToString(std::string_view name = "") const;
};

// Analyzes `script` and returns the report.  Never evaluates the script.
AnalysisReport Analyze(std::string_view script, const AnalyzerOptions& options = {});

}  // namespace tacoma::tacl

#endif  // TACOMA_TACL_ANALYZE_H_
