// Static analysis ("lint") for TACL agent scripts.
//
// Places execute CODE folders they have never seen; this pass vets a script
// before the interpreter touches it.  It walks the parse tree (ParseScript)
// without evaluating anything and reports:
//   - parse errors                          (error)
//   - calls to commands that exist nowhere  (error)
//   - arity mismatches for builtins, agent primitives and script procs (error)
//   - reads of variables never set on any path in their scope (warning)
//   - unreachable commands after an unconditional return/break/continue/
//     error/move/jump                       (warning)
//   - effect advisories: unbounded itineraries or spend, payments with no
//     receipt check, sensitive data flowing into movement operands (note)
// and infers a structured EffectManifest — which briefcase folders the script
// reads vs writes, which cabinets, hosts and agents it touches, upper bounds
// on hops / clones / ECU spend, and taint flags — so sites can enforce a
// declarative admission policy (core/admission.h).
//
// The analysis is deliberately conservative: a diagnostic is only produced
// when the script would misbehave on *every* path.  Dynamic constructs
// (computed command names, `eval` of built strings, computed variable names)
// suppress the affected checks rather than guessing, and mark the manifest's
// dynamic_targets flag so consumers know the name sets are a lower bound.
#ifndef TACOMA_TACL_ANALYZE_H_
#define TACOMA_TACL_ANALYZE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tacl/parse.h"

namespace tacoma::tacl {

// Notes are effect advisories: possibly intentional, never admission-fatal by
// default (a policy table can still deny their slugs).  Warnings are likely
// mistakes; errors describe scripts that misbehave on every path.
enum class Severity { kNote, kWarning, kError };
std::string_view SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  size_t line = 1;      // 1-based line in the analyzed script.
  std::string code;     // Stable slug: "unknown-command", "bad-arity", ...
  std::string message;
};

// Diagnostic code slugs (use these, not ad-hoc strings, so policy code can
// match on them).
inline constexpr std::string_view kDiagParseError = "parse-error";
inline constexpr std::string_view kDiagUnknownCommand = "unknown-command";
inline constexpr std::string_view kDiagBadArity = "bad-arity";
inline constexpr std::string_view kDiagUnsetVariable = "unset-variable";
inline constexpr std::string_view kDiagUnreachable = "unreachable-code";
inline constexpr std::string_view kDiagExfiltrationRisk = "exfiltration-risk";
inline constexpr std::string_view kDiagUnboundedItinerary = "unbounded-itinerary";
inline constexpr std::string_view kDiagUnboundedSpend = "unbounded-spend";
inline constexpr std::string_view kDiagUncheckedReceipt = "unchecked-receipt";

// --- Effect lattice ----------------------------------------------------------
//
// Numeric effects (hops, clones, ECU spend) live in the lattice
// 0 < 1 < 2 < ... < ⊤, where ⊤ ("unbounded", encoded as -1) means the static
// pass could not bound the quantity — a movement or payment inside a loop
// with no literal trip count, or a non-literal amount.

inline constexpr int64_t kUnboundedEffect = -1;

// Saturating lattice arithmetic: ⊤ absorbs addition; multiplication by zero
// annihilates even ⊤ (a loop over an empty literal list runs zero times).
int64_t EffectAdd(int64_t a, int64_t b);
int64_t EffectMul(int64_t a, int64_t b);
// "unbounded" or the decimal value — the rendering ToJson and messages use.
std::string EffectBoundToString(int64_t bound);

// Folders whose contents are presumed secret for taint purposes: names
// starting with "SECRET" and names containing "WALLET" or "RECEIPT".
bool IsSensitiveFolder(std::string_view name);

// What the script can do, as far as the static pass can prove.  Name sets
// hold literal operands only; any computed operand sets dynamic_targets,
// marking the sets as lower bounds (the numeric bounds stay sound only for
// the statically-visible commands — see docs/analysis.md).
struct EffectManifest {
  std::set<std::string> folders_read;      // bc reads + send payload folders
  std::set<std::string> folders_written;   // bc writes (pop counts as both)
  std::set<std::string> cabinets_read;     // cab_get/list/len/contains/folders
  std::set<std::string> cabinets_written;  // cab_append/set/erase/flush
  std::set<std::string> agents_met;        // meet / send contact operands
  std::set<std::string> hosts;             // move / jump / clone / send hosts
  int64_t hop_bound = 0;    // move + jump occurrences (⊤ = unbounded).
  int64_t clone_bound = 0;  // clone occurrences (⊤ = unbounded).
  int64_t spend_bound = 0;  // Sum of literal pay/withdraw amounts (⊤ = unbounded).
  bool reads_sensitive = false;     // Reads any sensitive folder.
  bool exfiltration_risk = false;   // Sensitive data may flow into movement.
  bool dynamic_targets = false;     // Some operand is computed at run time.

  // Canonical single-line JSON: keys in alphabetical order, sets sorted,
  // unbounded rendered as the string "unbounded".  Byte-stable across runs,
  // so manifests can be digested, cached, and golden-tested.
  std::string ToJson() const;
};

// Actual effects one activation performed, recorded by the interpreter
// bindings when the runtime effect monitor is on.  Mirrors exactly what the
// analyzer models: operand names of bc_*/cab_*/meet/move/jump/clone/send and
// pay/withdraw amounts — not internal folder traffic those primitives cause.
struct EffectRecord {
  std::set<std::string> folders_read;
  std::set<std::string> folders_written;
  std::set<std::string> cabinets_read;
  std::set<std::string> cabinets_written;
  std::set<std::string> agents_met;
  std::set<std::string> hosts;
  int64_t hops = 0;
  int64_t clones = 0;
  int64_t spend = 0;
};

// Soundness cross-check: every recorded effect must be admitted by the
// manifest (sets by membership, counters by bound).  Returns one description
// per violation; empty means the activation stayed inside its manifest.  For
// manifests with dynamic_targets the set checks routinely fire (the sets are
// lower bounds) — the caller decides what a violation means in that case.
std::vector<std::string> ManifestViolations(const EffectManifest& manifest,
                                            const EffectRecord& actual);

// Back-compat flat view of the manifest (merged read/write sets).
struct CapabilitySummary {
  std::set<std::string> briefcase_folders;  // bc_* folder operands
  std::set<std::string> cabinets;           // cab_* cabinet operands
  std::set<std::string> agents_met;         // meet / send contact operands
  std::set<std::string> hosts;              // move / jump / clone / send hosts
  bool dynamic_targets = false;
};

// Arity of a command, counting arguments after the command word.
struct CommandSignature {
  size_t min_args = 0;
  int max_args = -1;  // -1 = unbounded.
};

using SignatureTable = std::map<std::string, CommandSignature>;

// Signatures of the TACL standard library (builtins.cc).
const SignatureTable& BuiltinCommandSignatures();

struct AnalyzerOptions {
  // Commands with known arity.  When empty, BuiltinCommandSignatures() is
  // used.  Callers embedding extra primitives merge their tables in.
  SignatureTable signatures;
  // Commands known to exist but with unknown arity (e.g. everything a live
  // Interp has registered, including module binder commands).
  std::set<std::string> known_commands;
  // Unknown-command/arity checks can be disabled for dialect-agnostic lints.
  bool check_commands = true;
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  CapabilitySummary capabilities;
  EffectManifest manifest;
  size_t commands_analyzed = 0;

  bool ok() const { return error_count() == 0; }
  size_t error_count() const;
  size_t warning_count() const;
  size_t note_count() const;
  // First error-severity diagnostic formatted as "line N: message", or "".
  std::string FirstError() const;
  // One diagnostic per line: "<name>:<line>: <severity>: <message> [<code>]".
  std::string ToString(std::string_view name = "") const;
};

// Analyzes `script` and returns the report.  Never evaluates the script.
AnalysisReport Analyze(std::string_view script, const AnalyzerOptions& options = {});

}  // namespace tacoma::tacl

#endif  // TACOMA_TACL_ANALYZE_H_
