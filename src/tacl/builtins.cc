// The TACL standard library: control flow, variables, lists, strings.
//
// Commands follow Tcl semantics closely enough that anyone who has written
// Tcl can write TACOMA agents; divergences are subsets, not changes.
#include <algorithm>
#include <cctype>
#include <cstdio>

#include "tacl/interp.h"
#include "tacl/list.h"

namespace tacoma::tacl {
namespace {

using Args = std::vector<std::string>;

Outcome WrongArgs(const std::string& usage) {
  return Error("wrong # args: should be \"" + usage + "\"");
}

// --- Variables ----------------------------------------------------------------

Outcome CmdSet(Interp& in, const Args& argv) {
  if (argv.size() == 2) {
    auto v = in.GetVar(argv[1]);
    if (!v.has_value()) {
      return Error("can't read \"" + argv[1] + "\": no such variable");
    }
    return Ok(*v);
  }
  if (argv.size() == 3) {
    in.SetVar(argv[1], argv[2]);
    return Ok(argv[2]);
  }
  return WrongArgs("set varName ?newValue?");
}

Outcome CmdUnset(Interp& in, const Args& argv) {
  if (argv.size() < 2) {
    return WrongArgs("unset varName ?varName ...?");
  }
  for (size_t i = 1; i < argv.size(); ++i) {
    in.UnsetVar(argv[i]);
  }
  return Ok();
}

Outcome CmdIncr(Interp& in, const Args& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return WrongArgs("incr varName ?increment?");
  }
  int64_t delta = 1;
  if (argv.size() == 3) {
    auto d = ParseInt(argv[2]);
    if (!d.has_value()) {
      return Error("expected integer but got \"" + argv[2] + "\"");
    }
    delta = *d;
  }
  auto cur = in.GetVar(argv[1]);
  int64_t base = 0;
  if (cur.has_value()) {
    auto b = ParseInt(*cur);
    if (!b.has_value()) {
      return Error("expected integer but got \"" + *cur + "\"");
    }
    base = *b;
  }
  std::string result = FormatInt(base + delta);
  in.SetVar(argv[1], result);
  return Ok(result);
}

Outcome CmdGlobal(Interp& in, const Args& argv) {
  for (size_t i = 1; i < argv.size(); ++i) {
    in.LinkGlobal(argv[i]);
  }
  return Ok();
}

Outcome CmdUpvar(Interp& in, const Args& argv) {
  // upvar ?level? otherVar localVar ?otherVar localVar ...?
  size_t i = 1;
  size_t levels_up = 1;
  if (i < argv.size()) {
    if (argv[i].size() > 1 && argv[i][0] == '#') {
      // "#N": absolute frame index (only "#0", the global frame, supported).
      auto abs = ParseInt(std::string_view(argv[i]).substr(1));
      if (!abs.has_value() || *abs != 0) {
        return Error("upvar: only #0 absolute level is supported");
      }
      levels_up = in.FrameDepth() - 1;
      ++i;
    } else if (auto n = ParseInt(argv[i]);
               n.has_value() && argv.size() >= 4 && (argv.size() - i) % 2 == 1) {
      if (*n < 1 || static_cast<size_t>(*n) >= in.FrameDepth()) {
        return Error("upvar: bad level \"" + argv[i] + "\"");
      }
      levels_up = static_cast<size_t>(*n);
      ++i;
    }
  }
  if (i >= argv.size() || (argv.size() - i) % 2 != 0) {
    return WrongArgs("upvar ?level? otherVar localVar ?otherVar localVar ...?");
  }
  if (levels_up >= in.FrameDepth()) {
    return Error("upvar: no frame that many levels up");
  }
  size_t target_frame = in.FrameDepth() - 1 - levels_up;
  for (; i + 1 < argv.size(); i += 2) {
    Status linked = in.LinkUpvar(target_frame, argv[i], argv[i + 1]);
    if (!linked.ok()) {
      return Error(std::string(linked.message()));
    }
  }
  return Ok();
}

Outcome CmdAppend(Interp& in, const Args& argv) {
  if (argv.size() < 2) {
    return WrongArgs("append varName ?value ...?");
  }
  std::string value = in.GetVar(argv[1]).value_or("");
  for (size_t i = 2; i < argv.size(); ++i) {
    value += argv[i];
  }
  in.SetVar(argv[1], value);
  return Ok(value);
}

// --- Control flow ---------------------------------------------------------------

Outcome CmdIf(Interp& in, const Args& argv) {
  // if cond ?then? body ?elseif cond ?then? body ...? ?else? body
  size_t i = 1;
  while (i < argv.size()) {
    if (i + 1 >= argv.size()) {
      return Error("wrong # args: no expression after \"if\"/\"elseif\"");
    }
    const std::string& cond = argv[i];
    size_t body_index = i + 1;
    if (body_index < argv.size() && argv[body_index] == "then") {
      ++body_index;
    }
    if (body_index >= argv.size()) {
      return Error("wrong # args: no script following condition");
    }
    auto truth = in.EvalCondition(cond);
    if (!truth.ok()) {
      return Error(truth.status().message());
    }
    if (*truth) {
      return in.Eval(argv[body_index]);
    }
    i = body_index + 1;
    if (i >= argv.size()) {
      return Ok();
    }
    if (argv[i] == "elseif") {
      ++i;
      continue;
    }
    if (argv[i] == "else") {
      if (i + 1 >= argv.size()) {
        return Error("wrong # args: no script following \"else\"");
      }
      return in.Eval(argv[i + 1]);
    }
    // Bare trailing script acts as else.
    return in.Eval(argv[i]);
  }
  return Ok();
}

Outcome CmdWhile(Interp& in, const Args& argv) {
  if (argv.size() != 3) {
    return WrongArgs("while test command");
  }
  Outcome result = Ok();
  while (true) {
    auto truth = in.EvalCondition(argv[1]);
    if (!truth.ok()) {
      return Error(truth.status().message());
    }
    if (!*truth) {
      break;
    }
    Outcome body = in.Eval(argv[2]);
    if (body.code == Code::kBreak) {
      break;
    }
    if (body.code == Code::kContinue || body.code == Code::kOk) {
      continue;
    }
    return body;  // kError or kReturn propagates.
  }
  return Ok();
}

Outcome CmdFor(Interp& in, const Args& argv) {
  if (argv.size() != 5) {
    return WrongArgs("for start test next command");
  }
  Outcome start = in.Eval(argv[1]);
  if (start.code != Code::kOk) {
    return start;
  }
  while (true) {
    auto truth = in.EvalCondition(argv[2]);
    if (!truth.ok()) {
      return Error(truth.status().message());
    }
    if (!*truth) {
      break;
    }
    Outcome body = in.Eval(argv[4]);
    if (body.code == Code::kBreak) {
      break;
    }
    if (body.code != Code::kContinue && body.code != Code::kOk) {
      return body;
    }
    Outcome next = in.Eval(argv[3]);
    if (next.code != Code::kOk) {
      return next;
    }
  }
  return Ok();
}

Outcome CmdForeach(Interp& in, const Args& argv) {
  if (argv.size() != 4) {
    return WrongArgs("foreach varList list command");
  }
  auto names = ParseList(argv[1]);
  auto values = ParseList(argv[2]);
  if (!names.ok() || names->empty()) {
    return Error("bad variable list in foreach");
  }
  if (!values.ok()) {
    return Error("bad value list in foreach");
  }
  size_t stride = names->size();
  for (size_t i = 0; i < values->size(); i += stride) {
    for (size_t k = 0; k < stride; ++k) {
      size_t idx = i + k;
      in.SetVar((*names)[k], idx < values->size() ? (*values)[idx] : "");
    }
    Outcome body = in.Eval(argv[3]);
    if (body.code == Code::kBreak) {
      break;
    }
    if (body.code != Code::kContinue && body.code != Code::kOk) {
      return body;
    }
  }
  return Ok();
}

Outcome CmdBreak(Interp&, const Args& argv) {
  if (argv.size() != 1) {
    return WrongArgs("break");
  }
  return {Code::kBreak, ""};
}

Outcome CmdContinue(Interp&, const Args& argv) {
  if (argv.size() != 1) {
    return WrongArgs("continue");
  }
  return {Code::kContinue, ""};
}

Outcome CmdReturn(Interp&, const Args& argv) {
  if (argv.size() > 2) {
    return WrongArgs("return ?value?");
  }
  return {Code::kReturn, argv.size() == 2 ? argv[1] : ""};
}

Outcome CmdError(Interp&, const Args& argv) {
  if (argv.size() != 2) {
    return WrongArgs("error message");
  }
  return Error(argv[1]);
}

Outcome CmdCatch(Interp& in, const Args& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return WrongArgs("catch command ?varName?");
  }
  Outcome out = in.Eval(argv[1]);
  if (argv.size() == 3) {
    in.SetVar(argv[2], out.value);
  }
  return Ok(FormatInt(static_cast<int64_t>(out.code)));
}

Outcome CmdEval(Interp& in, const Args& argv) {
  if (argv.size() < 2) {
    return WrongArgs("eval arg ?arg ...?");
  }
  if (argv.size() == 2) {
    return in.Eval(argv[1]);
  }
  std::string script;
  for (size_t i = 1; i < argv.size(); ++i) {
    if (i > 1) {
      script.push_back(' ');
    }
    script += argv[i];
  }
  return in.Eval(script);
}

Outcome CmdExpr(Interp& in, const Args& argv) {
  if (argv.size() < 2) {
    return WrongArgs("expr arg ?arg ...?");
  }
  std::string text;
  for (size_t i = 1; i < argv.size(); ++i) {
    if (i > 1) {
      text.push_back(' ');
    }
    text += argv[i];
  }
  return EvalExpr(in, text);
}

Outcome CmdProc(Interp& in, const Args& argv) {
  if (argv.size() != 4) {
    return WrongArgs("proc name args body");
  }
  Status s = in.DefineProc(argv[1], argv[2], argv[3]);
  if (!s.ok()) {
    return Error(std::string(s.message()));
  }
  return Ok();
}

Outcome CmdPuts(Interp& in, const Args& argv) {
  if (argv.size() == 2) {
    in.Output(argv[1]);
    return Ok();
  }
  if (argv.size() == 3 && argv[1] == "-nonewline") {
    in.Output(argv[2]);
    return Ok();
  }
  return WrongArgs("puts ?-nonewline? string");
}

// --- Lists ------------------------------------------------------------------------

Outcome CmdList(Interp&, const Args& argv) {
  std::vector<std::string> elements(argv.begin() + 1, argv.end());
  return Ok(FormatList(elements));
}

Outcome CmdLindex(Interp&, const Args& argv) {
  if (argv.size() != 3) {
    return WrongArgs("lindex list index");
  }
  auto list = ParseList(argv[1]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  std::string_view index = argv[2];
  int64_t i;
  if (index == "end") {
    i = static_cast<int64_t>(list->size()) - 1;
  } else if (index.substr(0, 4) == "end-") {
    auto off = ParseInt(index.substr(4));
    if (!off.has_value()) {
      return Error("bad index \"" + argv[2] + "\"");
    }
    i = static_cast<int64_t>(list->size()) - 1 - *off;
  } else {
    auto parsed = ParseInt(index);
    if (!parsed.has_value()) {
      return Error("bad index \"" + argv[2] + "\"");
    }
    i = *parsed;
  }
  if (i < 0 || i >= static_cast<int64_t>(list->size())) {
    return Ok("");
  }
  return Ok((*list)[static_cast<size_t>(i)]);
}

Outcome CmdLlength(Interp&, const Args& argv) {
  if (argv.size() != 2) {
    return WrongArgs("llength list");
  }
  auto list = ParseList(argv[1]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  return Ok(FormatInt(static_cast<int64_t>(list->size())));
}

Outcome CmdLappend(Interp& in, const Args& argv) {
  if (argv.size() < 2) {
    return WrongArgs("lappend varName ?value ...?");
  }
  std::string current = in.GetVar(argv[1]).value_or("");
  auto list = ParseList(current);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  for (size_t i = 2; i < argv.size(); ++i) {
    list->push_back(argv[i]);
  }
  std::string result = FormatList(*list);
  in.SetVar(argv[1], result);
  return Ok(result);
}

Outcome CmdLrange(Interp&, const Args& argv) {
  if (argv.size() != 4) {
    return WrongArgs("lrange list first last");
  }
  auto list = ParseList(argv[1]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  auto resolve = [&](const std::string& spec) -> std::optional<int64_t> {
    if (spec == "end") {
      return static_cast<int64_t>(list->size()) - 1;
    }
    if (spec.rfind("end-", 0) == 0) {
      auto off = ParseInt(std::string_view(spec).substr(4));
      if (!off.has_value()) {
        return std::nullopt;
      }
      return static_cast<int64_t>(list->size()) - 1 - *off;
    }
    return ParseInt(spec);
  };
  auto first = resolve(argv[2]);
  auto last = resolve(argv[3]);
  if (!first.has_value() || !last.has_value()) {
    return Error("bad index in lrange");
  }
  int64_t lo = std::max<int64_t>(0, *first);
  int64_t hi = std::min<int64_t>(static_cast<int64_t>(list->size()) - 1, *last);
  std::vector<std::string> out;
  for (int64_t i = lo; i <= hi; ++i) {
    out.push_back((*list)[static_cast<size_t>(i)]);
  }
  return Ok(FormatList(out));
}

Outcome CmdLreverse(Interp&, const Args& argv) {
  if (argv.size() != 2) {
    return WrongArgs("lreverse list");
  }
  auto list = ParseList(argv[1]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  std::reverse(list->begin(), list->end());
  return Ok(FormatList(*list));
}

Outcome CmdLsearch(Interp&, const Args& argv) {
  // lsearch ?-exact|-glob? list pattern
  size_t base = 1;
  bool glob = true;
  if (argv.size() == 4) {
    if (argv[1] == "-exact") {
      glob = false;
    } else if (argv[1] != "-glob") {
      return Error("bad option \"" + argv[1] + "\": must be -exact or -glob");
    }
    base = 2;
  } else if (argv.size() != 3) {
    return WrongArgs("lsearch ?-exact|-glob? list pattern");
  }
  auto list = ParseList(argv[base]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  const std::string& pattern = argv[base + 1];
  for (size_t i = 0; i < list->size(); ++i) {
    bool hit = glob ? GlobMatch(pattern, (*list)[i]) : (*list)[i] == pattern;
    if (hit) {
      return Ok(FormatInt(static_cast<int64_t>(i)));
    }
  }
  return Ok("-1");
}

Outcome CmdLsort(Interp&, const Args& argv) {
  // lsort ?-integer? ?-decreasing? list
  bool integer = false;
  bool decreasing = false;
  size_t i = 1;
  for (; i + 1 < argv.size(); ++i) {
    if (argv[i] == "-integer") {
      integer = true;
    } else if (argv[i] == "-decreasing") {
      decreasing = true;
    } else if (argv[i] == "-increasing") {
      decreasing = false;
    } else {
      return Error("bad option \"" + argv[i] + "\" to lsort");
    }
  }
  if (i >= argv.size()) {
    return WrongArgs("lsort ?options? list");
  }
  auto list = ParseList(argv[i]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  if (integer) {
    for (const std::string& e : *list) {
      if (!ParseInt(e).has_value()) {
        return Error("expected integer but got \"" + e + "\"");
      }
    }
    std::stable_sort(list->begin(), list->end(),
                     [](const std::string& a, const std::string& b) {
                       return *ParseInt(a) < *ParseInt(b);
                     });
  } else {
    std::stable_sort(list->begin(), list->end());
  }
  if (decreasing) {
    std::reverse(list->begin(), list->end());
  }
  return Ok(FormatList(*list));
}

Outcome CmdLinsert(Interp&, const Args& argv) {
  if (argv.size() < 3) {
    return WrongArgs("linsert list index element ?element ...?");
  }
  auto list = ParseList(argv[1]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  int64_t index;
  if (argv[2] == "end") {
    index = static_cast<int64_t>(list->size());
  } else if (argv[2].rfind("end-", 0) == 0) {
    auto off = ParseInt(std::string_view(argv[2]).substr(4));
    if (!off.has_value()) {
      return Error("bad index \"" + argv[2] + "\"");
    }
    index = static_cast<int64_t>(list->size()) - *off;
  } else {
    auto parsed = ParseInt(argv[2]);
    if (!parsed.has_value()) {
      return Error("bad index \"" + argv[2] + "\"");
    }
    index = *parsed;
  }
  index = std::clamp<int64_t>(index, 0, static_cast<int64_t>(list->size()));
  list->insert(list->begin() + static_cast<long>(index), argv.begin() + 3,
               argv.end());
  return Ok(FormatList(*list));
}

Outcome CmdConcat(Interp&, const Args& argv) {
  std::vector<std::string> out;
  for (size_t i = 1; i < argv.size(); ++i) {
    auto list = ParseList(argv[i]);
    if (!list.ok()) {
      return Error(std::string(list.status().message()));
    }
    for (std::string& e : *list) {
      out.push_back(std::move(e));
    }
  }
  return Ok(FormatList(out));
}

Outcome CmdJoin(Interp&, const Args& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return WrongArgs("join list ?separator?");
  }
  auto list = ParseList(argv[1]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  std::string sep = argv.size() == 3 ? argv[2] : " ";
  std::string out;
  for (size_t i = 0; i < list->size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += (*list)[i];
  }
  return Ok(out);
}

Outcome CmdSplit(Interp&, const Args& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return WrongArgs("split string ?splitChars?");
  }
  const std::string& text = argv[1];
  std::string chars = argv.size() == 3 ? argv[2] : " \t\n\r";
  std::vector<std::string> out;
  if (chars.empty()) {
    for (char c : text) {
      out.emplace_back(1, c);
    }
  } else {
    std::string current;
    for (char c : text) {
      if (chars.find(c) != std::string::npos) {
        out.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    out.push_back(current);
  }
  return Ok(FormatList(out));
}

// --- Strings -------------------------------------------------------------------------

Outcome CmdString(Interp&, const Args& argv) {
  if (argv.size() < 3) {
    return WrongArgs("string subcommand arg ?arg ...?");
  }
  const std::string& sub = argv[1];
  const std::string& s = argv[2];

  if (sub == "length") {
    return Ok(FormatInt(static_cast<int64_t>(s.size())));
  }
  if (sub == "tolower" || sub == "toupper") {
    std::string out = s;
    for (char& c : out) {
      c = sub == "tolower"
              ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
              : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return Ok(out);
  }
  if (sub == "trim" || sub == "trimleft" || sub == "trimright") {
    std::string chars = argv.size() >= 4 ? argv[3] : " \t\n\r";
    size_t lo = 0;
    size_t hi = s.size();
    if (sub != "trimright") {
      while (lo < hi && chars.find(s[lo]) != std::string::npos) {
        ++lo;
      }
    }
    if (sub != "trimleft") {
      while (hi > lo && chars.find(s[hi - 1]) != std::string::npos) {
        --hi;
      }
    }
    return Ok(s.substr(lo, hi - lo));
  }
  if (sub == "index") {
    if (argv.size() != 4) {
      return WrongArgs("string index string charIndex");
    }
    int64_t i;
    if (argv[3] == "end") {
      i = static_cast<int64_t>(s.size()) - 1;
    } else {
      auto parsed = ParseInt(argv[3]);
      if (!parsed.has_value()) {
        return Error("bad index \"" + argv[3] + "\"");
      }
      i = *parsed;
    }
    if (i < 0 || i >= static_cast<int64_t>(s.size())) {
      return Ok("");
    }
    return Ok(std::string(1, s[static_cast<size_t>(i)]));
  }
  if (sub == "range") {
    if (argv.size() != 5) {
      return WrongArgs("string range string first last");
    }
    auto resolve = [&](const std::string& spec) -> std::optional<int64_t> {
      if (spec == "end") {
        return static_cast<int64_t>(s.size()) - 1;
      }
      if (spec.rfind("end-", 0) == 0) {
        auto off = ParseInt(std::string_view(spec).substr(4));
        if (!off.has_value()) {
          return std::nullopt;
        }
        return static_cast<int64_t>(s.size()) - 1 - *off;
      }
      return ParseInt(spec);
    };
    auto first = resolve(argv[3]);
    auto last = resolve(argv[4]);
    if (!first.has_value() || !last.has_value()) {
      return Error("bad index in string range");
    }
    int64_t lo = std::max<int64_t>(0, *first);
    int64_t hi = std::min<int64_t>(static_cast<int64_t>(s.size()) - 1, *last);
    if (lo > hi) {
      return Ok("");
    }
    return Ok(s.substr(static_cast<size_t>(lo), static_cast<size_t>(hi - lo + 1)));
  }
  if (sub == "equal") {
    if (argv.size() != 4) {
      return WrongArgs("string equal string1 string2");
    }
    return Ok(s == argv[3] ? "1" : "0");
  }
  if (sub == "compare") {
    if (argv.size() != 4) {
      return WrongArgs("string compare string1 string2");
    }
    int cmp = s.compare(argv[3]);
    return Ok(FormatInt(cmp < 0 ? -1 : cmp > 0 ? 1 : 0));
  }
  if (sub == "first") {
    if (argv.size() != 4) {
      return WrongArgs("string first needle haystack");
    }
    size_t at = argv[3].find(s);
    return Ok(FormatInt(at == std::string::npos ? -1 : static_cast<int64_t>(at)));
  }
  if (sub == "last") {
    if (argv.size() != 4) {
      return WrongArgs("string last needle haystack");
    }
    size_t at = argv[3].rfind(s);
    return Ok(FormatInt(at == std::string::npos ? -1 : static_cast<int64_t>(at)));
  }
  if (sub == "match") {
    if (argv.size() != 4) {
      return WrongArgs("string match pattern string");
    }
    return Ok(GlobMatch(s, argv[3]) ? "1" : "0");
  }
  if (sub == "map") {
    // string map {from to from to ...} string
    if (argv.size() != 4) {
      return WrongArgs("string map mapping string");
    }
    auto mapping = ParseList(argv[2]);
    if (!mapping.ok() || mapping->size() % 2 != 0) {
      return Error("bad mapping in string map");
    }
    const std::string& text = argv[3];
    std::string out;
    size_t pos = 0;
    while (pos < text.size()) {
      bool replaced = false;
      for (size_t m = 0; m + 1 < mapping->size(); m += 2) {
        const std::string& from = (*mapping)[m];
        if (!from.empty() && text.compare(pos, from.size(), from) == 0) {
          out += (*mapping)[m + 1];
          pos += from.size();
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        out.push_back(text[pos++]);
      }
    }
    return Ok(out);
  }
  if (sub == "repeat") {
    if (argv.size() != 4) {
      return WrongArgs("string repeat string count");
    }
    auto count = ParseInt(argv[3]);
    if (!count.has_value() || *count < 0) {
      return Error("bad count \"" + argv[3] + "\"");
    }
    std::string out;
    out.reserve(s.size() * static_cast<size_t>(*count));
    for (int64_t i = 0; i < *count; ++i) {
      out += s;
    }
    return Ok(out);
  }
  return Error("unknown string subcommand \"" + sub + "\"");
}

Outcome CmdFormat(Interp&, const Args& argv) {
  if (argv.size() < 2) {
    return WrongArgs("format formatString ?arg ...?");
  }
  const std::string& fmt = argv[1];
  std::string out;
  size_t arg = 2;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] != '%') {
      out.push_back(fmt[i]);
      continue;
    }
    if (i + 1 >= fmt.size()) {
      return Error("format string ended in the middle of a specifier");
    }
    // Collect the specifier: flags, width, precision, conversion.
    std::string spec = "%";
    ++i;
    while (i < fmt.size() &&
           (std::isdigit(static_cast<unsigned char>(fmt[i])) || fmt[i] == '-' ||
            fmt[i] == '+' || fmt[i] == ' ' || fmt[i] == '0' || fmt[i] == '.')) {
      spec.push_back(fmt[i++]);
    }
    if (i >= fmt.size()) {
      return Error("format string ended in the middle of a specifier");
    }
    char conv = fmt[i];
    if (conv == '%') {
      out.push_back('%');
      continue;
    }
    if (arg >= argv.size()) {
      return Error("not enough arguments for all format specifiers");
    }
    const std::string& value = argv[arg++];
    char buf[256];
    switch (conv) {
      case 'd':
      case 'i':
      case 'x':
      case 'X':
      case 'o': {
        auto v = ParseInt(value);
        if (!v.has_value()) {
          return Error("expected integer but got \"" + value + "\"");
        }
        spec += "ll";
        spec.push_back(conv == 'i' ? 'd' : conv);
        std::snprintf(buf, sizeof(buf), spec.c_str(), static_cast<long long>(*v));
        out += buf;
        break;
      }
      case 'f':
      case 'g':
      case 'e': {
        auto v = ParseDouble(value);
        if (!v.has_value()) {
          return Error("expected float but got \"" + value + "\"");
        }
        spec.push_back(conv);
        std::snprintf(buf, sizeof(buf), spec.c_str(), *v);
        out += buf;
        break;
      }
      case 's': {
        spec.push_back('s');
        if (value.size() < 200) {
          std::snprintf(buf, sizeof(buf), spec.c_str(), value.c_str());
          out += buf;
        } else {
          out += value;  // Skip width formatting for very long strings.
        }
        break;
      }
      default:
        return Error(std::string("bad format conversion '%") + conv + "'");
    }
  }
  return Ok(out);
}

Outcome CmdSwitch(Interp& in, const Args& argv) {
  // switch ?-exact|-glob? value {pattern body ...}  |  value pattern body ...
  size_t i = 1;
  bool glob = false;
  if (i < argv.size() && argv[i] == "-glob") {
    glob = true;
    ++i;
  } else if (i < argv.size() && argv[i] == "-exact") {
    ++i;
  }
  if (i >= argv.size()) {
    return WrongArgs("switch ?-exact|-glob? value pattern body ?...?");
  }
  const std::string& value = argv[i++];

  std::vector<std::string> clauses;
  if (argv.size() - i == 1) {
    // Braced form: one argument holding the pattern/body list.
    auto parsed = ParseList(argv[i]);
    if (!parsed.ok()) {
      return Error(std::string(parsed.status().message()));
    }
    clauses = std::move(parsed).value();
  } else {
    clauses.assign(argv.begin() + static_cast<long>(i), argv.end());
  }
  if (clauses.size() % 2 != 0) {
    return Error("switch: pattern with no body");
  }
  for (size_t c = 0; c < clauses.size(); c += 2) {
    const std::string& pattern = clauses[c];
    bool hit;
    if (pattern == "default" && c + 2 == clauses.size()) {
      hit = true;
    } else {
      hit = glob ? GlobMatch(pattern, value) : pattern == value;
    }
    if (!hit) {
      continue;
    }
    // "-" chains to the next body, like Tcl.
    size_t body = c + 1;
    while (body < clauses.size() && clauses[body] == "-") {
      body += 2;
    }
    if (body >= clauses.size()) {
      return Error("switch: no body for pattern \"" + pattern + "\"");
    }
    return in.Eval(clauses[body]);
  }
  return Ok();
}

Outcome CmdLassign(Interp& in, const Args& argv) {
  if (argv.size() < 3) {
    return WrongArgs("lassign list varName ?varName ...?");
  }
  auto list = ParseList(argv[1]);
  if (!list.ok()) {
    return Error(std::string(list.status().message()));
  }
  size_t n = argv.size() - 2;
  for (size_t i = 0; i < n; ++i) {
    in.SetVar(argv[i + 2], i < list->size() ? (*list)[i] : "");
  }
  // Result: the unassigned remainder.
  std::vector<std::string> rest(list->begin() + std::min(list->size(), n),
                                list->end());
  return Ok(FormatList(rest));
}

Outcome CmdInfo(Interp& in, const Args& argv) {
  if (argv.size() < 2) {
    return WrongArgs("info subcommand ?arg?");
  }
  const std::string& sub = argv[1];
  if (sub == "exists") {
    if (argv.size() != 3) {
      return WrongArgs("info exists varName");
    }
    return Ok(in.GetVar(argv[2]).has_value() ? "1" : "0");
  }
  if (sub == "commands") {
    return Ok(FormatList(in.CommandNames()));
  }
  if (sub == "procs") {
    return Ok(FormatList(in.ProcNames()));
  }
  if (sub == "level") {
    return Ok(FormatInt(static_cast<int64_t>(in.FrameDepth() - 1)));
  }
  if (sub == "vars") {
    return Ok(FormatList(in.VarNames()));
  }
  return Error("unknown info subcommand \"" + sub + "\"");
}

}  // namespace

void RegisterBuiltins(Interp* interp) {
  interp->Register("set", CmdSet);
  interp->Register("unset", CmdUnset);
  interp->Register("incr", CmdIncr);
  interp->Register("global", CmdGlobal);
  interp->Register("upvar", CmdUpvar);
  interp->Register("append", CmdAppend);
  interp->Register("if", CmdIf);
  interp->Register("while", CmdWhile);
  interp->Register("for", CmdFor);
  interp->Register("foreach", CmdForeach);
  interp->Register("break", CmdBreak);
  interp->Register("continue", CmdContinue);
  interp->Register("return", CmdReturn);
  interp->Register("error", CmdError);
  interp->Register("catch", CmdCatch);
  interp->Register("eval", CmdEval);
  interp->Register("expr", CmdExpr);
  interp->Register("proc", CmdProc);
  interp->Register("puts", CmdPuts);
  interp->Register("list", CmdList);
  interp->Register("lindex", CmdLindex);
  interp->Register("llength", CmdLlength);
  interp->Register("lappend", CmdLappend);
  interp->Register("lrange", CmdLrange);
  interp->Register("lreverse", CmdLreverse);
  interp->Register("lsearch", CmdLsearch);
  interp->Register("lsort", CmdLsort);
  interp->Register("linsert", CmdLinsert);
  interp->Register("concat", CmdConcat);
  interp->Register("join", CmdJoin);
  interp->Register("split", CmdSplit);
  interp->Register("string", CmdString);
  interp->Register("format", CmdFormat);
  interp->Register("switch", CmdSwitch);
  interp->Register("lassign", CmdLassign);
  interp->Register("info", CmdInfo);
}

}  // namespace tacoma::tacl
